"""Tests for Rule-2 filtering, Rule-1/Rule-3 qualification and concatenation."""

import numpy as np
import pytest

from repro.algorithms import topk
from repro.algorithms.base import ExecutionTrace
from repro.core.concatenate import concatenate_subranges
from repro.core.delegate import build_delegate_vector
from repro.core.filtering import (
    filter_by_threshold,
    qualification_threshold,
    qualify_subranges,
)
from repro.core.subrange import SubrangePartition
from repro.errors import ConfigurationError


class TestThreshold:
    def test_threshold_is_kth_of_delegate_topk(self, rng):
        keys = rng.integers(0, 2**32, size=1 << 12, dtype=np.uint32)
        p = SubrangePartition(n=keys.shape[0], alpha=5)
        d = build_delegate_vector(keys, p, beta=1)
        first = topk(d.flat_keys(), 16)
        t = qualification_threshold(first)
        assert t == np.sort(d.flat_keys())[-16]

    def test_rule2_bound(self, rng):
        """min(topk(D)) <= min(topk(V)) — the basis of Rule 2."""
        v = rng.integers(0, 2**32, size=1 << 12, dtype=np.uint32)
        p = SubrangePartition(n=v.shape[0], alpha=5)
        d = build_delegate_vector(v, p, beta=1)
        k = 32
        t_delegates = np.sort(d.flat_keys())[-k]
        t_input = np.sort(v)[-k]
        assert t_delegates <= t_input

    def test_filter_by_threshold_keeps_ge(self):
        keys = np.array([1, 5, 5, 9], dtype=np.uint32)
        np.testing.assert_array_equal(
            filter_by_threshold(keys, 5), [False, True, True, True]
        )


class TestQualification:
    def test_rule1_uses_maxima(self):
        maxima = np.array([10, 3, 7], dtype=np.uint32)
        beta_th = np.array([1, 1, 1], dtype=np.uint32)
        qualified, scan = qualify_subranges(maxima, beta_th, 7, use_beta_rule=False)
        np.testing.assert_array_equal(qualified, [True, False, True])
        np.testing.assert_array_equal(scan, qualified)

    def test_rule3_requires_all_beta_delegates(self):
        maxima = np.array([10, 9, 7], dtype=np.uint32)
        beta_th = np.array([8, 2, 7], dtype=np.uint32)
        qualified, scan = qualify_subranges(maxima, beta_th, 7, use_beta_rule=True)
        np.testing.assert_array_equal(qualified, [True, True, True])
        np.testing.assert_array_equal(scan, [True, False, True])

    def test_scan_is_subset_of_qualified(self, rng):
        maxima = rng.integers(0, 100, size=50).astype(np.uint32)
        beta_th = np.minimum(maxima, rng.integers(0, 100, size=50).astype(np.uint32))
        qualified, scan = qualify_subranges(maxima, beta_th, 40, use_beta_rule=True)
        assert np.all(qualified[scan])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            qualify_subranges(np.zeros(3, dtype=np.uint32), np.zeros(4, dtype=np.uint32), 1, True)


class TestConcatenation:
    def _setup(self, rng, n=1 << 12, alpha=5, beta=2, k=32):
        keys = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        p = SubrangePartition(n=n, alpha=alpha)
        d = build_delegate_vector(keys, p, beta=beta)
        first = topk(d.flat_keys(), k)
        threshold = qualification_threshold(first)
        qualified, scan = qualify_subranges(d.maxima(), d.beta_th(), threshold, True)
        return keys, p, d, threshold, scan

    def test_filtered_concatenation_contains_all_topk(self, rng):
        keys, p, d, threshold, scan = self._setup(rng)
        extra = (d.flat_keys() >= threshold) & ~scan[d.flat_subrange_ids()]
        concat = concatenate_subranges(keys, d, scan, threshold, extra_candidate_mask=extra)
        k = 32
        expected = np.sort(keys)[-k:]
        assert set(expected.tolist()).issubset(set(concat.keys.tolist()))

    def test_indices_align_with_keys(self, rng):
        keys, p, d, threshold, scan = self._setup(rng)
        concat = concatenate_subranges(keys, d, scan, threshold)
        np.testing.assert_array_equal(keys[concat.indices], concat.keys)

    def test_no_duplicate_indices(self, rng):
        keys, p, d, threshold, scan = self._setup(rng)
        extra = (d.flat_keys() >= threshold) & ~scan[d.flat_subrange_ids()]
        concat = concatenate_subranges(keys, d, scan, threshold, extra_candidate_mask=extra)
        assert len(np.unique(concat.indices)) == concat.size

    def test_filtering_shrinks_concatenation(self, rng):
        keys, p, d, threshold, scan = self._setup(rng)
        with_filter = concatenate_subranges(keys, d, scan, threshold)
        without_filter = concatenate_subranges(keys, d, scan, None)
        assert with_filter.size <= without_filter.size
        assert with_filter.filtered_out > 0
        assert without_filter.filtered_out == 0

    def test_scanned_elements_counts_real_extent(self, rng):
        keys = rng.integers(0, 2**32, size=100, dtype=np.uint32)
        p = SubrangePartition(n=100, alpha=5)
        d = build_delegate_vector(keys, p, beta=1)
        scan = np.array([False, False, False, True])  # last (partial) subrange
        concat = concatenate_subranges(keys, d, scan, None)
        assert concat.scanned_elements == 4
        assert concat.scanned_subranges == 1

    def test_empty_scan_mask(self, rng):
        keys, p, d, threshold, scan = self._setup(rng)
        none = np.zeros_like(scan)
        concat = concatenate_subranges(keys, d, none, threshold)
        assert concat.size == 0

    def test_wrong_mask_length_rejected(self, rng):
        keys, p, d, threshold, scan = self._setup(rng)
        with pytest.raises(ConfigurationError):
            concatenate_subranges(keys, d, scan[:-1], threshold)

    def test_trace_records_atomics_per_copied_element(self, rng):
        keys, p, d, threshold, scan = self._setup(rng)
        trace = ExecutionTrace()
        concat = concatenate_subranges(keys, d, scan, threshold, trace=trace)
        assert trace.total_counters().atomics == pytest.approx(concat.size)
