"""Docs layer acceptance: the files exist, are linked, and links resolve.

Mirrors the CI docs job locally (``python tools/check_links.py README.md
docs``) so a broken relative link fails the tier-1 suite before it fails CI,
and pins the cross-linking the docs satellite promised: both docs pages
exist, README links to them, and each links back to the other.
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_links  # noqa: E402 - needs the tools/ path above


def test_docs_exist_and_are_cross_linked():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert (REPO / "docs" / "architecture.md").exists()
    assert (REPO / "docs" / "operations.md").exists()
    assert "docs/architecture.md" in readme
    assert "docs/operations.md" in readme
    arch = (REPO / "docs" / "architecture.md").read_text(encoding="utf-8")
    ops = (REPO / "docs" / "operations.md").read_text(encoding="utf-8")
    assert "operations.md" in arch
    assert "architecture.md" in ops


def test_no_broken_relative_links():
    files = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    broken = [issue for md in files for issue in check_links.check_file(md)]
    assert not broken, "\n".join(broken)


def test_checker_flags_a_broken_link(tmp_path, monkeypatch):
    """The checker itself must fail on a dangling target (not silently pass)."""
    md = tmp_path / "page.md"
    md.write_text(
        "[ok](real.md) [dead](missing.md) [web](https://example.com) [anchor](#x)\n"
    )
    (tmp_path / "real.md").write_text("# Real\n")
    monkeypatch.setattr(check_links, "REPO_ROOT", tmp_path)
    broken = check_links.check_file(md)
    assert len(broken) == 1 and "missing.md" in broken[0]


def test_checker_skips_targets_outside_repo(tmp_path, monkeypatch):
    """The CI badge pattern: ../../actions/... resolves outside the repo."""
    md = tmp_path / "page.md"
    md.write_text("[badge](../../actions/workflows/ci.yml)\n")
    monkeypatch.setattr(check_links, "REPO_ROOT", tmp_path)
    assert check_links.check_file(md) == []


def test_glossary_covers_the_promised_fields():
    """operations.md must gloss every field the issue called out by name."""
    ops = (REPO / "docs" / "operations.md").read_text(encoding="utf-8")
    for field in (
        "construction_bytes",
        "plan_bank_hits",
        "groups_split",
        "balance_ratio",
        "p50",
        "p95",
        "p99",
        "shed",
        "degraded",
        "slo_attainment",
        "queue_capacity",
    ):
        assert field in ops, f"operations.md glossary is missing {field!r}"
