"""Spill-tier scrubber: bit-rot detection, quarantine, cold-miss degradation.

The spill tier trusts its data files after the size check; the scrubber is
the component that re-earns that trust continuously.  The injected-corruption
tests flip bytes *without changing the file size* — precisely the failure
``load`` cannot see — and assert the full quarantine contract: the bad file
is renamed aside before any manifest mutation, every aliased name goes with
it, subsequent loads degrade to a clean cold miss, and untouched entries
keep serving.
"""

import os
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service.cache import fingerprint_array
from repro.service.scrubber import SpillScrubber
from repro.service.spill import SpillDirectory

N = 1 << 10


def vec(seed, n=N):
    return np.random.default_rng(seed).standard_normal(n).astype(np.float32)


def spill_with(tmp_path, names):
    spill = SpillDirectory(str(tmp_path))
    for i, name in enumerate(names):
        v = vec(i)
        spill.store(name, v, fingerprint_array(v))
    return spill


def corrupt(spill, name):
    """Flip one mid-file byte of ``name``'s data file, size unchanged."""
    entry = spill.get(name)
    path = spill.data_path(entry.fingerprint)
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.seek(size // 2)
        byte = fh.read(1)
        fh.seek(size // 2)
        fh.write(bytes([byte[0] ^ 0xFF]))
    assert os.path.getsize(path) == size  # the failure load cannot see
    return path


def test_interval_validation(tmp_path):
    spill = spill_with(tmp_path, ["a"])
    with pytest.raises(ConfigurationError):
        SpillScrubber(spill, interval_s=0.0)


def test_clean_pass_checks_each_unique_file_once(tmp_path):
    spill = spill_with(tmp_path, ["a", "b"])
    # An alias: same content as "a", so it shares the data file.
    spill.store("a2", vec(0), fingerprint_array(vec(0)))
    scrubber = SpillScrubber(spill)
    report = scrubber.scrub_once()
    assert report.checked == 2  # two unique fingerprints, not three names
    assert report.ok == 2
    assert report.quarantined == 0 and report.missing == 0
    assert report.quarantined_names == ()
    assert scrubber.passes == 1
    assert scrubber.last_report == report


def test_corruption_is_quarantined_and_loads_become_cold_misses(tmp_path):
    spill = spill_with(tmp_path, ["bad", "good"])
    reference = spill.load("good")
    path = corrupt(spill, "bad")
    seen = []
    scrubber = SpillScrubber(spill, on_quarantine=seen.append)
    report = scrubber.scrub_once()
    assert report.quarantined == 1 and report.ok == 1
    assert report.quarantined_names == ("bad",)
    assert seen == ["bad"]
    # Forensic evidence preserved; the live path never serves it again.
    assert not os.path.exists(path)
    assert os.path.exists(path + ".quarantine")
    assert spill.load("bad") is None  # clean cold miss, not wrong answers
    assert "bad" not in spill.entries()
    # The untouched entry keeps serving, byte-identical.
    _, view = spill.load("good")
    np.testing.assert_array_equal(np.asarray(view), np.asarray(reference[1]))
    # The next pass has nothing left to flag.
    again = scrubber.scrub_once()
    assert again.quarantined == 0 and again.checked == 1


def test_corruption_takes_every_aliased_name_out_of_service(tmp_path):
    spill = spill_with(tmp_path, ["a"])
    spill.store("alias", vec(0), fingerprint_array(vec(0)))
    assert spill.get("a").fingerprint == spill.get("alias").fingerprint
    corrupt(spill, "a")
    report = SpillScrubber(spill).scrub_once()
    assert report.checked == 1
    assert report.quarantined == 1
    assert report.quarantined_names == ("a", "alias")
    assert spill.entries() == {}
    assert spill.load("a") is None and spill.load("alias") is None


def test_missing_file_is_counted_not_quarantined(tmp_path):
    spill = spill_with(tmp_path, ["gone", "ok"])
    os.remove(spill.data_path(spill.get("gone").fingerprint))
    report = SpillScrubber(spill).scrub_once()
    # Already a cold miss for load: counted, nothing renamed or removed.
    assert report.missing == 1 and report.ok == 1 and report.quarantined == 0
    assert "gone" in spill.entries()


def test_background_thread_runs_passes_and_stops(tmp_path):
    spill = spill_with(tmp_path, ["a"])
    first_pass = threading.Event()
    scrubber = SpillScrubber(
        spill, interval_s=0.01, on_quarantine=None
    )
    original = scrubber.scrub_once

    def noticed():
        report = original()
        first_pass.set()
        return report

    scrubber.scrub_once = noticed  # type: ignore[method-assign]
    scrubber.start()
    scrubber.start()  # idempotent
    assert first_pass.wait(timeout=5.0), "background pass never ran"
    scrubber.stop()
    settled = scrubber.passes
    assert settled >= 1
    assert scrubber.last_report is not None
    scrubber.stop()  # no-op when not running
