"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic random generator for every test."""
    return np.random.default_rng(20210916)  # the paper's arXiv date


@pytest.fixture
def uniform_u32(rng):
    """A moderately sized uniform uint32 vector (the paper's default dtype)."""
    return rng.integers(0, 2**32, size=1 << 14, dtype=np.uint32)


@pytest.fixture
def tied_u32(rng):
    """A vector with heavy duplication to exercise tie handling."""
    return rng.integers(0, 64, size=1 << 13).astype(np.uint32)
