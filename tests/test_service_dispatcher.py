"""ServiceDispatcher: routing batches over the simulated multi-GPU fleet."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.drtopk import DrTopK
from repro.errors import ConfigurationError
from repro.service.dispatcher import ServiceDispatcher, dispatch_topk

from tests.helpers import assert_topk_correct


def test_batched_route_matches_loop(uniform_u32):
    queries = [(64, True), (256, False), (64, True), (1024, True), (1, False)] * 2
    dispatcher = ServiceDispatcher(num_workers=3)
    results = dispatcher.dispatch(uniform_u32, queries)
    engine = DrTopK()
    for q, res in zip(queries, results):
        solo = engine.topk(uniform_u32, q[0], largest=q[1])
        np.testing.assert_array_equal(res.values, solo.values)
    report = dispatcher.last_report
    assert report.route == "batched"
    assert report.num_queries == len(queries)
    assert sum(w.queries for w in report.workers) == len(queries)
    assert report.communication_ms > 0  # results were gathered to the primary
    assert report.compute_ms == max(w.compute_ms for w in report.workers)


def test_groups_stay_on_one_worker(uniform_u32):
    # 8 identical queries must share one plan: exactly one construction
    # fleet-wide no matter how many workers are available.
    dispatcher = ServiceDispatcher(num_workers=4)
    dispatcher.dispatch(uniform_u32, [(128, True)] * 8)
    report = dispatcher.last_report
    assert report.constructions == 1
    assert sum(1 for w in report.workers if w.queries) == 1


def test_sharded_route_for_oversized_inputs(uniform_u32):
    dispatcher = ServiceDispatcher(num_workers=4, capacity_elements=1 << 12)
    queries = [(100, True), (10, False)]
    results = dispatcher.dispatch(uniform_u32, queries)
    for q, res in zip(queries, results):
        assert_topk_correct(res, uniform_u32, q[0], largest=q[1])
    report = dispatcher.last_report
    assert report.route == "sharded"
    assert report.communication_ms > 0


def test_empty_dispatch(uniform_u32):
    dispatcher = ServiceDispatcher(num_workers=2)
    assert dispatcher.dispatch(uniform_u32, []) == []
    assert dispatcher.last_report.num_queries == 0
    assert dispatcher.last_report.cache is not None


def test_cache_shared_across_dispatches(uniform_u32):
    dispatcher = ServiceDispatcher(num_workers=2, cache_capacity=16)
    dispatcher.dispatch(uniform_u32, [(64, True)] * 3)
    first = dispatcher.last_report.cache
    dispatcher.dispatch(uniform_u32, [(64, True)] * 3)
    second = dispatcher.last_report.cache
    assert second.misses == first.misses  # shape already resolved
    assert second.hits > first.hits


def test_lru_cache_evicts(uniform_u32):
    dispatcher = ServiceDispatcher(num_workers=1, cache_capacity=2)
    for k in (8, 16, 32, 64):
        dispatcher.dispatch(uniform_u32, [(k, True)])
    info = dispatcher.last_report.cache
    assert info.size == 2
    assert info.evictions == 2


def test_dispatch_topk_convenience(uniform_u32):
    results, report = dispatch_topk(uniform_u32, [(32, True)], num_workers=2)
    assert_topk_correct(results[0], uniform_u32, 32)
    assert report.num_workers == 2


def test_dispatcher_validation(uniform_u32):
    with pytest.raises(ConfigurationError):
        ServiceDispatcher(num_workers=0)
    with pytest.raises(ConfigurationError):
        ServiceDispatcher(capacity_elements=0)
    dispatcher = ServiceDispatcher(num_workers=2)
    with pytest.raises(ConfigurationError):
        dispatcher.dispatch(uniform_u32, [(uniform_u32.shape[0] + 1, True)])
