"""ServiceDispatcher: routing batches over the simulated multi-GPU fleet."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.drtopk import DrTopK
from repro.errors import ConfigurationError
from repro.service.dispatcher import ServiceDispatcher, dispatch_topk

from tests.helpers import assert_topk_correct


def test_batched_route_matches_loop(uniform_u32):
    queries = [(64, True), (256, False), (64, True), (1024, True), (1, False)] * 2
    dispatcher = ServiceDispatcher(num_workers=3)
    results = dispatcher.dispatch(uniform_u32, queries)
    engine = DrTopK()
    for q, res in zip(queries, results):
        solo = engine.topk(uniform_u32, q[0], largest=q[1])
        np.testing.assert_array_equal(res.values, solo.values)
    report = dispatcher.last_report
    assert report.route == "batched"
    assert report.num_queries == len(queries)
    assert sum(w.queries for w in report.workers) == len(queries)
    assert report.communication_ms > 0  # results were gathered to the primary
    assert report.compute_ms == max(w.compute_ms for w in report.workers)


def test_one_plan_construction_no_matter_the_placement(uniform_u32):
    # 8 identical queries share one plan: exactly one construction
    # fleet-wide no matter how many workers serve them.  With splitting
    # disabled the group pins to one worker (the pre-split behaviour); by
    # default the dominant group spreads across the fleet and the single
    # construction happens at broadcast time instead.
    pinned = ServiceDispatcher(num_workers=4, split_threshold=None)
    pinned.dispatch(uniform_u32, [(128, True)] * 8)
    report = pinned.last_report
    assert report.constructions == 1
    assert report.groups_split == 0 and report.plan_broadcasts == 0
    assert sum(1 for w in report.workers if w.queries) == 1

    split = ServiceDispatcher(num_workers=4)
    split.dispatch(uniform_u32, [(128, True)] * 8)
    report = split.last_report
    assert report.constructions == 1
    assert report.groups_split == 1
    assert report.plan_broadcasts == 4
    assert sum(1 for w in report.workers if w.queries) == 4
    # The spread is even and the modelled balance reflects it.
    assert [w.queries for w in report.workers] == [2, 2, 2, 2]
    assert report.balance_ratio < 4.0


def test_sharded_route_for_oversized_inputs(uniform_u32):
    dispatcher = ServiceDispatcher(num_workers=4, capacity_elements=1 << 12)
    queries = [(100, True), (10, False)]
    results = dispatcher.dispatch(uniform_u32, queries)
    for q, res in zip(queries, results):
        assert_topk_correct(res, uniform_u32, q[0], largest=q[1])
    report = dispatcher.last_report
    assert report.route == "sharded"
    assert report.communication_ms > 0


def test_empty_dispatch(uniform_u32):
    dispatcher = ServiceDispatcher(num_workers=2)
    assert dispatcher.dispatch(uniform_u32, []) == []
    assert dispatcher.last_report.num_queries == 0
    assert dispatcher.last_report.cache is not None


def test_alpha_cache_shared_across_dispatches(uniform_u32):
    # Result caching disabled so the second dispatch runs the pipeline again:
    # the (n, k) -> alpha resolution must then come from the shared cache.
    dispatcher = ServiceDispatcher(
        num_workers=2, cache_capacity=16, result_cache_capacity=0
    )
    dispatcher.dispatch(uniform_u32, [(64, True)] * 3)
    first = dispatcher.last_report.cache
    dispatcher.dispatch(uniform_u32, [(64, True)] * 3)
    second = dispatcher.last_report.cache
    assert second.misses == first.misses  # shape already resolved
    assert second.hits > first.hits


def test_result_cache_skips_pipeline_entirely(uniform_u32):
    dispatcher = ServiceDispatcher(num_workers=2)
    queries = [(64, True), (256, False), (64, True)]
    first = dispatcher.dispatch(uniform_u32, queries)
    assert dispatcher.last_report.result_cache_hits == 0
    second = dispatcher.dispatch(uniform_u32, queries)
    report = dispatcher.last_report
    # Every query was served from the result cache: zero pipeline work.
    assert report.route == "cached"
    assert report.result_cache_hits == len(queries)
    assert report.constructions == 0
    assert report.workers == []
    assert report.bytes_moved == 0
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(a.indices, b.indices)


def test_result_cache_distinguishes_vectors(uniform_u32, rng):
    other = rng.integers(0, 2**32, size=uniform_u32.shape[0], dtype=np.uint32)
    dispatcher = ServiceDispatcher(num_workers=2)
    dispatcher.dispatch(uniform_u32, [(32, True)])
    res = dispatcher.dispatch(other, [(32, True)])
    assert dispatcher.last_report.result_cache_hits == 0
    assert_topk_correct(res[0], other, 32)


def test_executor_matches_sequential_dispatch(uniform_u32):
    # 16-query mixed (k, largest) batch: overlapped execution must return
    # element-wise identical results to sequential dispatch.
    queries = [(1 << (2 + i % 4), i % 2 == 0) for i in range(16)]
    sequential = ServiceDispatcher(
        num_workers=4, execution="sequential", result_cache_capacity=0
    )
    threaded = ServiceDispatcher(
        num_workers=4, execution="threads", result_cache_capacity=0
    )
    base = sequential.dispatch(uniform_u32, queries)
    over = threaded.dispatch(uniform_u32, queries)
    assert threaded.last_report.executor_mode == "threads"
    assert threaded.last_report.wall_ms > 0
    assert threaded.last_report.unit_wall_ms_sum > 0
    for a, b in zip(base, over):
        np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(a.indices, b.indices)
    threaded.shutdown()


def test_sharded_route_accounting_nonzero(uniform_u32):
    # Sharded dispatches must report their real traffic: construction scans
    # and the candidate gather, plus per-shard construction counts.
    dispatcher = ServiceDispatcher(num_workers=4, capacity_elements=1 << 12)
    dispatcher.dispatch(uniform_u32, [(100, True), (10, False)])
    report = dispatcher.last_report
    assert report.route == "sharded"
    assert report.bytes_moved > 0
    assert report.constructions > 0
    assert any(w.constructions > 0 for w in report.workers)
    assert any(w.bytes_moved > 0 for w in report.workers)
    # The shared partition cache was consulted for the per-shard shapes.
    assert report.cache.misses > 0 or report.cache.hits > 0


def test_sharded_batch_constructs_once_per_group(uniform_u32):
    """Trace-level: a 16-query mixed batch builds per-shard delegates once
    per (alpha, largest) group, not once per query."""
    from repro.core.drtopk import DrTopK
    from repro.core.subrange import SubrangePartition
    from repro.distributed.partition import plan_partition

    queries = [(64, True), (64, False), (512, True), (512, False)] * 4
    num_workers = 4
    capacity = 1 << 12
    dispatcher = ServiceDispatcher(num_workers=num_workers, capacity_elements=capacity)
    dispatcher.dispatch(uniform_u32, queries)
    report = dispatcher.last_report
    assert report.route == "sharded"

    # Expected: one construction per non-degenerate (alpha, largest) group
    # per shard — derived with the engine's own resolution.
    engine = DrTopK()
    plan = plan_partition(uniform_u32.shape[0], num_workers, capacity)
    expected = 0
    for start, stop in plan.subvector_bounds:
        sub_n = stop - start
        groups = {}
        for k, largest in queries:
            if k > sub_n:
                continue
            groups.setdefault((engine._resolve_alpha(sub_n, k), largest), []).append(k)
        for (alpha, _), ks in groups.items():
            partition = SubrangePartition(n=sub_n, alpha=alpha)
            beta = min(engine.config.beta, partition.subrange_size)
            if partition.num_subranges * beta > min(ks):
                expected += 1
    assert expected > 0
    assert report.constructions == expected
    assert report.constructions < len(queries) * plan.num_subvectors


def test_streaming_route_for_chunked_input(uniform_u32):
    from repro.core.drtopk import DrTopK

    chunks = [uniform_u32[i : i + 1500] for i in range(0, uniform_u32.shape[0], 1500)]
    dispatcher = ServiceDispatcher(num_workers=3)
    results = dispatcher.dispatch(iter(chunks), [(200, True), (32, False)])
    report = dispatcher.last_report
    assert report.route == "streaming"
    assert sum(w.queries for w in report.workers) == len(chunks)  # one unit per chunk
    assert report.communication_ms > 0  # candidates travelled to the primary
    assert report.bytes_moved > 0
    engine = DrTopK()
    np.testing.assert_array_equal(results[0].values, engine.topk(uniform_u32, 200).values)
    np.testing.assert_array_equal(
        results[1].values, engine.topk(uniform_u32, 32, largest=False).values
    )
    assert_topk_correct(results[0], uniform_u32, 200)


def test_streaming_route_chunks_smaller_than_k(uniform_u32):
    # Every chunk is smaller than k: chunks contribute everything they have
    # and the pool only fills up across chunk boundaries.
    from repro.core.drtopk import DrTopK

    k = 3000
    dispatcher = ServiceDispatcher(num_workers=4, chunk_elements=1024)
    results = dispatcher.dispatch([uniform_u32], [(k, True)])
    assert dispatcher.last_report.route == "streaming"
    np.testing.assert_array_equal(results[0].values, DrTopK().topk(uniform_u32, k).values)
    assert_topk_correct(results[0], uniform_u32, k)


def test_plain_python_list_is_a_vector_not_a_stream():
    # A list of numbers is a vector spelled as a list (ensure_1d semantics);
    # only sequences of arrays mean a chunk stream.
    results, report = dispatch_topk([5.0, 3.0, 1.0, 9.0, 7.0], [(2, True)], num_workers=2)
    assert report.route == "batched"
    np.testing.assert_array_equal(np.sort(results[0].values), [7.0, 9.0])


def test_list_of_ragged_arrays_streams(uniform_u32):
    # Unequal-length chunk arrays (the common tail-chunk shape) must stream,
    # not crash in vector coercion.
    from repro.core.drtopk import DrTopK

    chunks = [uniform_u32[:5000], uniform_u32[5000:5800], uniform_u32[5800:]]
    results, report = dispatch_topk(chunks, [(64, True)], num_workers=2)
    assert report.route == "streaming"
    np.testing.assert_array_equal(results[0].values, DrTopK().topk(uniform_u32, 64).values)


def test_streaming_route_validation(uniform_u32):
    dispatcher = ServiceDispatcher(num_workers=2)
    with pytest.raises(ConfigurationError):
        dispatcher.dispatch(iter([]), [(5, True)])  # no data streamed
    with pytest.raises(ConfigurationError):
        dispatcher.dispatch([uniform_u32[:100]], [(200, True)])  # k > streamed


def test_lru_cache_evicts(uniform_u32):
    dispatcher = ServiceDispatcher(num_workers=1, cache_capacity=2)
    for k in (8, 16, 32, 64):
        dispatcher.dispatch(uniform_u32, [(k, True)])
    info = dispatcher.last_report.cache
    assert info.size == 2
    assert info.evictions == 2


def test_dispatch_topk_convenience(uniform_u32):
    results, report = dispatch_topk(uniform_u32, [(32, True)], num_workers=2)
    assert_topk_correct(results[0], uniform_u32, 32)
    assert report.num_workers == 2


def test_dispatcher_validation(uniform_u32):
    with pytest.raises(ConfigurationError):
        ServiceDispatcher(num_workers=0)
    with pytest.raises(ConfigurationError):
        ServiceDispatcher(capacity_elements=0)
    dispatcher = ServiceDispatcher(num_workers=2)
    with pytest.raises(ConfigurationError):
        dispatcher.dispatch(uniform_u32, [(uniform_u32.shape[0] + 1, True)])


def test_query_cached_is_result_cache_only(uniform_u32):
    with ServiceDispatcher(num_workers=2) as dispatcher:
        dispatcher.admit("vec", uniform_u32)
        # Nothing served yet: the degrade path finds nothing, runs nothing.
        misses = dispatcher.query_cached("vec", [(32, True)])
        assert misses == [None]
        served = dispatcher.query("vec", [(32, True), (8, False)])
        report_before = dispatcher.last_report
        hits = dispatcher.query_cached("vec", [(32, True), (8, False), (64, True)])
        assert hits[0] is not None and hits[1] is not None
        assert np.array_equal(hits[0].values, served[0].values)
        assert np.array_equal(hits[1].values, served[1].values)
        assert hits[2] is None  # k=64 was never served
        # query_cached never dispatched: the last report is untouched.
        assert dispatcher.last_report is report_before


def test_query_cached_wraps_single_queries_and_validates(uniform_u32):
    with ServiceDispatcher(num_workers=1) as dispatcher:
        dispatcher.admit("vec", uniform_u32, warm=[(16, True)])
        hits = dispatcher.query_cached("vec", 16)
        assert len(hits) == 1 and hits[0] is not None
        with pytest.raises(ConfigurationError):
            dispatcher.query_cached("ghost", [(16, True)])


def test_query_cached_without_result_cache_misses(uniform_u32):
    with ServiceDispatcher(num_workers=1, result_cache_capacity=0) as dispatcher:
        dispatcher.admit("vec", uniform_u32)
        dispatcher.query("vec", [(16, True)])
        assert dispatcher.query_cached("vec", [(16, True)]) == [None]


def test_dispatch_report_carries_unit_queue_waits(uniform_u32):
    with ServiceDispatcher(num_workers=2) as dispatcher:
        dispatcher.dispatch(uniform_u32, [(16, True), (32, True), (8, False)])
        report = dispatcher.last_report
        assert report.unit_queue_ms_sum >= 0.0
        assert report.max_unit_queue_ms >= 0.0
        assert report.max_unit_queue_ms <= report.unit_queue_ms_sum or (
            report.unit_queue_ms_sum == 0.0
        )


class TestAdmissionPrepareWarming:
    """Satellite: ``admit(warm=..., warm_mode="prepare")`` banks without dispatching."""

    def test_prepare_warm_banks_plans_without_results(self, rng):
        from repro.service.cache import fingerprint_call_count

        v = rng.integers(0, 2**32, size=1 << 12, dtype=np.uint32)
        ks = [8, 64]
        with ServiceDispatcher(num_workers=2, result_cache_capacity=0) as d:
            before = fingerprint_call_count()
            d.admit("a", v, warm=ks, warm_mode="prepare")
            assert fingerprint_call_count() - before == 1
            warm = d.last_report
            assert warm is not None and warm.route == "admit-warm"
            assert warm.constructions >= 1  # plans were genuinely built...
            assert warm.workers == []  # ...but nothing was routed or executed
            assert warm.wall_ms == 0.0
            # The first real query is then pure bank hits: zero construction.
            d.query("a", ks)
            report = d.last_report
            assert report is not None
            assert report.constructions == 0
            assert report.construction_bytes == 0.0
            assert report.plan_bank_hits >= 1

    def test_prepare_warm_matches_dispatch_warm_answers(self, rng):
        v = rng.integers(0, 2**32, size=1 << 12, dtype=np.uint32)
        ks = [16, 128]
        with ServiceDispatcher(num_workers=2, result_cache_capacity=0) as ref:
            ref.admit("a", v.copy(), warm=ks)  # default: dispatch warming
            want = ref.query("a", ks)
        with ServiceDispatcher(num_workers=2, result_cache_capacity=0) as d:
            d.admit("a", v, warm=ks, warm_mode="prepare")
            got = d.query("a", ks)
        for a, b in zip(want, got):
            np.testing.assert_array_equal(a.values, b.values)
            np.testing.assert_array_equal(a.indices, b.indices)

    def test_prepare_warm_covers_shards(self, rng):
        n = 1 << 12
        v = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        with ServiceDispatcher(
            num_workers=2, capacity_elements=n // 2, result_cache_capacity=0
        ) as d:
            d.admit("a", v, warm=[32], warm_mode="prepare")
            warm = d.last_report
            assert warm is not None and warm.route == "admit-warm"
            d.query("a", [32])
            report = d.last_report
            assert report is not None and report.route == "sharded"
            assert report.constructions == 0, "sharded warm missed a shard plan"
            assert report.plan_bank_hits >= 2  # one banked plan per shard

    def test_prepare_warm_rejects_unknown_mode_and_no_bank(self, rng):
        v = rng.integers(0, 2**32, size=1 << 10, dtype=np.uint32)
        with ServiceDispatcher(num_workers=1) as d:
            with pytest.raises(ConfigurationError, match="warm_mode"):
                d.admit("a", v, warm=[8], warm_mode="eagerly")
        with ServiceDispatcher(num_workers=1, plan_bank_bytes=0) as d:
            with pytest.raises(ConfigurationError, match="plan bank"):
                d.admit("a", v, warm=[8], warm_mode="prepare")
