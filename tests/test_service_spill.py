"""Durable spill tier: SpillDirectory, tiered VectorStore, warm restart.

The contracts that make the out-of-core tier safe:

* the manifest round-trips entries and plan geometry, and every class of
  corruption — truncated/torn JSON, wrong schema, a data file that is
  missing or the wrong size — degrades to a clean cold start, never a crash
  or a wrong answer;
* a stale lock (dead pid, or ancient mtime) is broken by crash recovery,
  while a genuinely live foreign lock times the writer out with a clean
  error;
* store eviction with a spill directory demotes instead of drops: spilled
  names keep serving (over read-only mmap views), are promoted back to RAM
  on hotness, and victims are chosen cold-and-large first;
* ``save_state`` / ``load_state`` give a warm restart whose re-admissions
  and first dispatches do zero ``fingerprint_array`` calls and zero
  construction work; and
* the tier survives concurrent evict/re-admit/query races bit-exactly.
"""

from __future__ import annotations

import json
import os
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service.cache import fingerprint_array, fingerprint_call_count
from repro.service.dispatcher import ServiceDispatcher
from repro.service.spill import LOCK_NAME, MANIFEST_NAME, SpillDirectory
from repro.service.store import VectorStore


def _vec(rng, n=1 << 10):
    return rng.integers(0, 2**32, size=n, dtype=np.uint32)


def _admit(store, name, v):
    return store.admit(name, v, fingerprint=fingerprint_array(v))


class TestSpillDirectoryUnit:
    def test_store_load_roundtrip_is_readonly_mmap(self, tmp_path, rng):
        spill = SpillDirectory(str(tmp_path))
        v = _vec(rng)
        fp = fingerprint_array(v)
        entry = spill.store("a", v, fp, queries=7)
        assert entry.nbytes == v.nbytes
        loaded = spill.load("a")
        assert loaded is not None
        got, view = loaded
        assert got.fingerprint == fp and got.queries == 7
        assert isinstance(view, np.memmap)
        assert not view.flags.writeable
        np.testing.assert_array_equal(np.asarray(view), v)

    def test_content_addressing_shares_one_file(self, tmp_path, rng):
        spill = SpillDirectory(str(tmp_path))
        v = _vec(rng)
        fp = fingerprint_array(v)
        spill.store("a", v, fp)
        spill.store("b", v.copy(), fp)
        bins = [f for f in os.listdir(tmp_path) if f.endswith(".bin")]
        assert bins == [f"{fp}.bin"]
        # Removing one alias keeps the shared file; removing both deletes it.
        spill.remove("a")
        assert os.path.exists(spill.data_path(fp))
        assert spill.load("b") is not None
        spill.remove("b")
        assert not os.path.exists(spill.data_path(fp))

    def test_manifest_survives_process_restart(self, tmp_path, rng):
        v = _vec(rng)
        fp = fingerprint_array(v)
        SpillDirectory(str(tmp_path)).store("a", v, fp, queries=3)
        fresh = SpillDirectory(str(tmp_path))  # a new "process"
        entry = fresh.get("a")
        assert entry is not None and entry.fingerprint == fp
        assert entry.queries == 3
        assert not fresh.info().recovered

    def test_plan_rows_roundtrip_and_dedupe(self, tmp_path):
        spill = SpillDirectory(str(tmp_path))
        row = {
            "fingerprint": "f1",
            "alpha": 8,
            "largest": True,
            "beta": 64,
            "n": 1024,
            "offset": 0,
        }
        assert spill.record_plans([row, dict(row)]) == 1
        assert spill.record_plans([dict(row, alpha=9)]) == 2
        assert spill.record_plans([{"fingerprint": "f1"}]) == 2  # malformed: dropped
        fresh = SpillDirectory(str(tmp_path))
        assert len(fresh.plans()) == 2
        assert fresh.plans_for(["f1"]) == fresh.plans()
        assert fresh.plans_for(["other"]) == []


class TestCrashSafety:
    def test_truncated_manifest_is_cold_start(self, tmp_path, rng):
        spill = SpillDirectory(str(tmp_path))
        spill.store("a", _vec(rng), "fp-a")
        manifest = os.path.join(tmp_path, MANIFEST_NAME)
        blob = open(manifest, "rb").read()
        with open(manifest, "wb") as fh:
            fh.write(blob[: len(blob) // 2])  # torn mid-write
        fresh = SpillDirectory(str(tmp_path))
        assert len(fresh) == 0
        assert fresh.plans() == []
        assert fresh.info().recovered

    def test_wrong_schema_is_cold_start(self, tmp_path):
        manifest = os.path.join(tmp_path, MANIFEST_NAME)
        for doc in ("[]", '{"version": 999}', '"not a dict"', "{}"):
            with open(manifest, "w", encoding="utf-8") as fh:
                fh.write(doc)
            fresh = SpillDirectory(str(tmp_path))
            assert len(fresh) == 0
        # A malformed entry inside a valid manifest drops only that entry.
        with open(manifest, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "version": 1,
                    "vectors": {
                        "bad": {"fingerprint": "x", "dtype": "no-such", "shape": [4]},
                        "neg": {"fingerprint": "x", "dtype": "<u4", "shape": [-1]},
                    },
                    "plans": [{"fingerprint": "x"}],
                },
                fh,
            )
        fresh = SpillDirectory(str(tmp_path))
        assert len(fresh) == 0 and fresh.plans() == []
        assert fresh.info().recovered

    def test_data_file_mismatch_is_a_miss(self, tmp_path, rng):
        spill = SpillDirectory(str(tmp_path))
        v = _vec(rng)
        fp = fingerprint_array(v)
        spill.store("a", v, fp)
        with open(spill.data_path(fp), "wb") as fh:
            fh.write(b"\0" * 10)  # truncated data file
        assert spill.load("a") is None  # size mismatch: miss, not garbage
        os.unlink(spill.data_path(fp))
        assert spill.load("a") is None  # missing file: miss, not crash
        assert spill.get("a") is not None  # manifest entry itself survives

    def test_stale_dead_pid_lock_is_broken(self, tmp_path, rng):
        lock = os.path.join(tmp_path, LOCK_NAME)
        with open(lock, "w", encoding="utf-8") as fh:
            fh.write("999999999")  # beyond pid_max: surely dead
        spill = SpillDirectory(str(tmp_path))
        spill.store("a", _vec(rng), "fp-a")  # breaks the corpse's lock
        assert spill.get("a") is not None
        assert not os.path.exists(lock)

    def test_ancient_lock_is_broken_regardless_of_pid(self, tmp_path, rng):
        lock = os.path.join(tmp_path, LOCK_NAME)
        with open(lock, "w", encoding="utf-8") as fh:
            fh.write(str(os.getpid() + 1))
        old = 10_000.0
        os.utime(lock, (os.stat(lock).st_atime - old, os.stat(lock).st_mtime - old))
        spill = SpillDirectory(str(tmp_path), stale_lock_s=60.0)
        spill.store("a", _vec(rng), "fp-a")
        assert spill.get("a") is not None

    def test_live_foreign_lock_times_out_cleanly(self, tmp_path, rng):
        lock = os.path.join(tmp_path, LOCK_NAME)
        spill = SpillDirectory(str(tmp_path), lock_timeout_s=0.05)
        with open(lock, "w", encoding="utf-8") as fh:
            fh.write(str(os.getpid() + 0))  # our own pid probes as alive...
        # ...but our own pid is special-cased as re-entrant, so use a live
        # foreign process instead: pid 1 is always alive.
        with open(lock, "w", encoding="utf-8") as fh:
            fh.write("1")
        with pytest.raises(ConfigurationError, match="locked by a live writer"):
            spill.store("a", _vec(rng), "fp-a")
        os.unlink(lock)


class TestTieredStore:
    def test_eviction_spills_instead_of_drops(self, tmp_path, rng):
        spill = SpillDirectory(str(tmp_path))
        v1, v2 = _vec(rng), _vec(rng)
        store = VectorStore(capacity_bytes=v1.nbytes, spill=spill)
        _admit(store, "a", v1)
        _admit(store, "b", v2)  # evicts "a" under pressure -> spilled
        assert store.names() == ["b"]
        assert store.spilled_names() == ["a"]
        assert "a" in store  # the spill tier still serves it
        entry = store.get("a")
        assert entry is not None and not entry.resident
        np.testing.assert_array_equal(np.asarray(entry.vector), v1)
        info = store.info()
        assert info.spilled == 1 and info.spilled_bytes == v1.nbytes
        assert info.spill_hits == 1

    def test_spilled_name_readmits_without_rehash(self, tmp_path, rng):
        spill = SpillDirectory(str(tmp_path))
        v1, v2 = _vec(rng), _vec(rng)
        store = VectorStore(capacity_bytes=v1.nbytes, spill=spill)
        fp = fingerprint_array(v1)
        store.admit("a", v1, fingerprint=fp)
        _admit(store, "b", v2)
        before = fingerprint_call_count()
        entry = store.admit("a")  # restore from spill: evicts "b" in turn
        assert fingerprint_call_count() == before
        assert entry.resident and entry.fingerprint == fp
        np.testing.assert_array_equal(entry.vector, v1)
        assert store.spilled_names() == ["b"]

    def test_readmit_without_spill_or_unknown_name_raises(self, tmp_path, rng):
        bare = VectorStore(capacity_bytes=1 << 20)
        with pytest.raises(ConfigurationError, match="no spill directory"):
            bare.admit("a")
        store = VectorStore(
            capacity_bytes=1 << 20, spill=SpillDirectory(str(tmp_path))
        )
        with pytest.raises(ConfigurationError, match="no spilled vector"):
            store.admit("ghost")

    def test_promotion_after_hot_spill_hits(self, tmp_path, rng):
        spill = SpillDirectory(str(tmp_path))
        v1, v2 = _vec(rng), _vec(rng)
        store = VectorStore(capacity_bytes=v1.nbytes, spill=spill, promote_after=3)
        _admit(store, "a", v1)
        _admit(store, "b", v2)  # "a" spilled
        for _ in range(2):
            entry = store.get("a")
            assert entry is not None and not entry.resident
        entry = store.get("a")  # the third hit reaches promote_after
        assert entry is not None and entry.resident  # promoted back to RAM
        assert store.info().promotions == 1
        assert store.spilled_names() == ["b"]  # promotion displaced "b"

    def test_promote_after_zero_serves_mmap_forever(self, tmp_path, rng):
        spill = SpillDirectory(str(tmp_path))
        v1, v2 = _vec(rng), _vec(rng)
        store = VectorStore(capacity_bytes=v1.nbytes, spill=spill, promote_after=0)
        _admit(store, "a", v1)
        _admit(store, "b", v2)
        for _ in range(8):
            entry = store.get("a")
            assert entry is not None and not entry.resident
        assert store.info().promotions == 0

    def test_cold_and_large_victim_selection(self, tmp_path, rng):
        spill = SpillDirectory(str(tmp_path))
        hot_small = _vec(rng, 1 << 8)
        cold_big = _vec(rng, 1 << 10)
        cap = hot_small.nbytes + cold_big.nbytes
        store = VectorStore(capacity_bytes=cap, spill=spill)
        _admit(store, "cold_big", cold_big)
        _admit(store, "hot_small", hot_small)
        store.note_queries("cold_big", 1)
        store.note_queries("hot_small", 500)
        # LRU would evict "cold_big"... which cost-aware scoring also picks —
        # so flip recency: touch cold_big last, making it the LRU *survivor*.
        store.get("cold_big")
        _admit(store, "c", _vec(rng, 1 << 9))
        # Pure LRU would now evict "hot_small"; cold-and-large spills the
        # big, barely-queried vector instead.
        assert "hot_small" in store.names()
        assert "cold_big" in store.spilled_names()

    def test_hard_drop_removes_both_tiers(self, tmp_path, rng):
        spill = SpillDirectory(str(tmp_path))
        v1, v2 = _vec(rng), _vec(rng)
        store = VectorStore(capacity_bytes=v1.nbytes, spill=spill)
        _admit(store, "a", v1)
        _admit(store, "b", v2)  # "a" spilled
        assert store.evict("a", spill=False) is not None
        assert "a" not in store
        assert spill.get("a") is None
        assert store.evict("b", spill=False) is not None
        assert len(spill) == 0

    def test_explicit_demote_and_spill_requires_directory(self, rng):
        store = VectorStore(capacity_bytes=1 << 20)
        _admit(store, "a", _vec(rng))
        with pytest.raises(ConfigurationError, match="no spill directory"):
            store.evict("a", spill=True)


class TestDispatcherWarmRestart:
    def test_save_load_roundtrip_zero_rescan(self, tmp_path, rng):
        v = rng.integers(0, 2**32, size=1 << 12, dtype=np.uint32)
        ks = [8, 64]
        with ServiceDispatcher(
            num_workers=2, result_cache_capacity=0, spill_dir=str(tmp_path)
        ) as d:
            d.admit("a", v, warm=ks)
            want = d.query("a", ks)
            save = d.save_state()
            assert save.names_saved == 1
            assert save.plan_rows >= 1
            assert save.spilled_bytes == v.nbytes
        with ServiceDispatcher(
            num_workers=2, result_cache_capacity=0, spill_dir=str(tmp_path)
        ) as d2:
            before = fingerprint_call_count()
            restore = d2.load_state()
            assert restore.names == 1
            assert restore.plans_warmed >= 1
            assert restore.plans_skipped == 0
            assert restore.queries_restored >= len(ks)
            d2.admit("a")  # re-admission from the manifest alone
            got = d2.query("a", ks)
            report = d2.last_report
            assert fingerprint_call_count() == before
            assert report is not None
            assert report.constructions == 0
            assert report.construction_bytes == 0.0
            assert report.plan_bank_hits > 0
            for a, b in zip(want, got):
                np.testing.assert_array_equal(a.values, b.values)
                np.testing.assert_array_equal(a.indices, b.indices)

    def test_spilled_name_serves_over_mmap_and_reports_it(self, tmp_path, rng):
        v1 = rng.integers(0, 2**32, size=1 << 12, dtype=np.uint32)
        v2 = rng.integers(0, 2**32, size=1 << 12, dtype=np.uint32)
        with ServiceDispatcher(
            num_workers=2,
            result_cache_capacity=0,
            store_bytes=v1.nbytes,
            spill_dir=str(tmp_path),
        ) as d:
            d.admit("a", v1)
            want = d.query("a", [16])
            d.admit("b", v2)  # "a" demoted to the spill tier
            assert d.store is not None
            assert d.store.spilled_names() == ["a"]
            got = d.query("a", [16])  # served over the read-only mmap view
            report = d.last_report
            assert report is not None and report.spill_serves == 1
            np.testing.assert_array_equal(want[0].values, got[0].values)
            np.testing.assert_array_equal(want[0].indices, got[0].indices)

    def test_spill_dir_requires_store(self, tmp_path):
        with pytest.raises(ConfigurationError, match="requires the named-vector"):
            ServiceDispatcher(store_bytes=0, spill_dir=str(tmp_path))

    def test_save_load_require_spill_dir(self):
        with ServiceDispatcher(num_workers=1) as d:
            with pytest.raises(ConfigurationError, match="spill directory"):
                d.save_state()
            with pytest.raises(ConfigurationError, match="spill directory"):
                d.load_state()

    def test_foreign_config_plan_rows_are_skipped(self, tmp_path, rng):
        v = rng.integers(0, 2**32, size=1 << 12, dtype=np.uint32)
        with ServiceDispatcher(
            num_workers=2, result_cache_capacity=0, spill_dir=str(tmp_path)
        ) as d:
            d.admit("a", v, warm=[8])
            d.save_state()
            assert d.spill is not None
            # A row written by an imaginary different configuration.
            d.spill.record_plans(
                [
                    {
                        "fingerprint": fingerprint_array(v),
                        "alpha": 5,
                        "largest": True,
                        "beta": 3,  # disagrees with min(config.beta, 2^alpha)
                        "n": int(v.shape[0]),
                        "offset": 0,
                    }
                ]
            )
        with ServiceDispatcher(
            num_workers=2, result_cache_capacity=0, spill_dir=str(tmp_path)
        ) as d2:
            restore = d2.load_state()
            assert restore.plans_skipped >= 1
            got = d2.query("a", [8])  # still serves, and exactly
            ref = ServiceDispatcher(num_workers=2, plan_bank_bytes=0)
            try:
                want = ref.dispatch(v.copy(), [8])
            finally:
                ref.shutdown()
            np.testing.assert_array_equal(want[0].values, got[0].values)
            np.testing.assert_array_equal(want[0].indices, got[0].indices)


class TestConcurrencyHammer:
    def test_evict_readmit_query_races_stay_exact(self, tmp_path, rng):
        n = 1 << 11
        names = [f"v{i}" for i in range(4)]
        vectors = {
            name: rng.integers(0, 2**32, size=n, dtype=np.uint32)
            for name in names
        }
        expected = {}
        with ServiceDispatcher(
            num_workers=2,
            result_cache_capacity=0,
            store_bytes=2 * n * 4,  # half the set resident at a time
            spill_dir=str(tmp_path),
        ) as d:
            for name, v in vectors.items():
                d.admit(name, v)
                expected[name] = d.query(name, [32])[0]

            errors: list = []
            stop = threading.Event()

            def churn(idx: int) -> None:
                local = np.random.default_rng(idx)
                while not stop.is_set():
                    name = names[local.integers(0, len(names))]
                    op = int(local.integers(0, 3))
                    try:
                        if op == 0:
                            d.evict(name)  # demote (no-op if already spilled)
                        elif op == 1:
                            d.admit(name)  # restore from spill (or replace)
                        else:
                            got = d.query(name, [32])[0]
                            want = expected[name]
                            if not (
                                np.array_equal(got.values, want.values)
                                and np.array_equal(got.indices, want.indices)
                            ):
                                errors.append(f"{name}: wrong answer under race")
                    except ConfigurationError:
                        pass  # a racing evict/admit won; acceptable
                    except Exception as exc:  # noqa: BLE001
                        errors.append(f"{name}: {type(exc).__name__}: {exc}")

            threads = [
                threading.Thread(target=churn, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            import time as _time

            _time.sleep(0.5)
            stop.set()
            for t in threads:
                t.join()
            assert not errors, errors[:5]
            # Every name still serves its exact answer after the storm.
            for name, want in expected.items():
                got = d.query(name, [32])[0]
                np.testing.assert_array_equal(got.values, want.values)
                np.testing.assert_array_equal(got.indices, want.indices)
