"""Behavioural tests specific to bitonic top-k."""

import numpy as np
import pytest

from repro.algorithms.base import ExecutionTrace
from repro.algorithms.bitonic import SHARED_MEMORY_MAX_K, BitonicTopK
from repro.errors import ConfigurationError
from tests.helpers import assert_topk_correct


class TestConstruction:
    def test_invalid_limit(self):
        with pytest.raises(ConfigurationError):
            BitonicTopK(shared_memory_max_k=0)


class TestCorrectnessEdges:
    def test_non_power_of_two_input(self, rng):
        v = rng.integers(0, 2**32, size=10_001, dtype=np.uint32)
        result = BitonicTopK().topk(v, 100)
        assert_topk_correct(result, v, 100)

    def test_non_power_of_two_k(self, rng):
        v = rng.integers(0, 2**32, size=4096, dtype=np.uint32)
        result = BitonicTopK().topk(v, 100)
        assert_topk_correct(result, v, 100)

    def test_input_smaller_than_padded_run(self, rng):
        v = rng.integers(0, 2**32, size=70, dtype=np.uint32)
        result = BitonicTopK().topk(v, 64)
        assert_topk_correct(result, v, 64)

    def test_padding_repair_with_zero_ties(self):
        # Many zeros, k large enough that padded slots compete with real zeros.
        v = np.zeros(100, dtype=np.uint32)
        v[:5] = [10, 20, 30, 40, 50]
        result = BitonicTopK().topk(v, 70)
        assert_topk_correct(result, v, 70)
        assert np.all(result.indices >= 0)
        assert np.all(result.indices < 100)

    def test_stability_flag(self):
        assert BitonicTopK.distribution_stable is True


class TestSharedMemoryModel:
    def test_small_k_uses_shared_memory(self, uniform_u32):
        trace = ExecutionTrace()
        BitonicTopK().topk(uniform_u32, 128, trace=trace)
        merged = [s for s in trace.steps if s.name == "bitonic_merge"]
        assert merged
        assert all(s.counters.shared_loads > 0 for s in merged)

    def test_large_k_spills_to_global_memory(self, uniform_u32):
        trace = ExecutionTrace()
        BitonicTopK().topk(uniform_u32, SHARED_MEMORY_MAX_K * 4, trace=trace)
        merged = [s for s in trace.steps if s.name == "bitonic_merge"]
        assert merged
        assert all(s.counters.shared_loads == 0 for s in merged)

    def test_large_k_costs_much_more(self, uniform_u32):
        """The paper's k > 256 performance cliff (Figures 4 and 18)."""
        t_small = ExecutionTrace()
        BitonicTopK().topk(uniform_u32, 256, trace=t_small)
        t_large = ExecutionTrace()
        BitonicTopK().topk(uniform_u32, 1024, trace=t_large)
        assert t_large.total_time_ms() > 2.0 * t_small.total_time_ms()

    def test_workload_halves_each_level(self, rng):
        v = rng.integers(0, 2**32, size=1 << 12, dtype=np.uint32)
        trace = ExecutionTrace()
        BitonicTopK().topk(v, 64, trace=trace)
        merge_loads = [s.counters.global_loads for s in trace.steps if s.name == "bitonic_merge"]
        for earlier, later in zip(merge_loads, merge_loads[1:]):
            assert later == pytest.approx(earlier / 2)
