"""Tests for the simulated multi-GPU substrate: comm, partition plan, workflow."""

import numpy as np
import pytest

from repro.distributed import (
    CommCost,
    MultiGpuDrTopK,
    SimulatedComm,
    estimate_scalability_row,
    plan_partition,
)
from repro.distributed.partition import MAX_SUBVECTOR_ELEMENTS
from repro.errors import CommunicationError, ConfigurationError
from tests.helpers import assert_topk_correct


class TestCommCost:
    def test_latency_plus_bandwidth(self):
        cost = CommCost(latency_ms=0.01, bandwidth_gbps=10.0)
        one_gb_ms = cost.transfer_ms(1e9)
        assert one_gb_ms == pytest.approx(0.01 + 100.0)

    def test_inter_node_slower(self):
        cost = CommCost()
        assert cost.transfer_ms(1e6, inter_node=True) > cost.transfer_ms(1e6, inter_node=False)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CommCost().transfer_ms(-1)


class TestSimulatedComm:
    def test_send_copies_data_and_charges_cost(self):
        comm = SimulatedComm(num_ranks=4)
        data = np.arange(10)
        received = comm.send(data, src=1, dst=2)
        np.testing.assert_array_equal(received, data)
        assert received is not data
        assert comm.total_comm_ms > 0

    def test_self_send_is_free(self):
        comm = SimulatedComm(num_ranks=2)
        comm.send(np.arange(4), src=0, dst=0)
        assert comm.total_comm_ms == 0

    def test_gather_async_cheaper_than_sync(self):
        arrays = [np.arange(1 << 16) for _ in range(8)]
        async_comm = SimulatedComm(num_ranks=8)
        async_comm.gather(arrays, asynchronous=True)
        sync_comm = SimulatedComm(num_ranks=8)
        sync_comm.gather(arrays, asynchronous=False)
        assert async_comm.total_comm_ms < sync_comm.total_comm_ms

    def test_gather_requires_one_array_per_rank(self):
        comm = SimulatedComm(num_ranks=3)
        with pytest.raises(CommunicationError):
            comm.gather([np.arange(3)] * 2)

    def test_node_mapping(self):
        comm = SimulatedComm(num_ranks=8, gpus_per_node=4)
        assert comm.node_of(3) == 0 and comm.node_of(4) == 1

    def test_bcast_and_allreduce(self):
        comm = SimulatedComm(num_ranks=4)
        out = comm.bcast(np.arange(5), root=0)
        assert len(out) == 4
        assert comm.allreduce_max([1.0, 9.0, 3.0, 2.0]) == 9.0

    def test_invalid_rank(self):
        comm = SimulatedComm(num_ranks=2)
        with pytest.raises(CommunicationError):
            comm.send(np.arange(2), src=0, dst=5)


class TestPartitionPlan:
    def test_fits_on_fleet_one_subvector_per_gpu(self):
        plan = plan_partition(1000, num_gpus=4, capacity_elements=500)
        assert plan.num_subvectors == 4
        assert plan.reload_elements() == 0
        assert sum(plan.elements_per_gpu()) == 1000

    def test_does_not_fit_creates_reloads(self):
        plan = plan_partition(1000, num_gpus=2, capacity_elements=200)
        assert plan.num_subvectors == 5
        assert max(plan.reloads_per_gpu()) >= 1
        assert plan.reload_elements() > 0

    def test_paper_rule_capacity_default(self):
        plan = plan_partition(1 << 31, num_gpus=1)
        assert plan.num_subvectors == 2
        assert plan.subvector_bounds[0][1] - plan.subvector_bounds[0][0] <= MAX_SUBVECTOR_ELEMENTS

    def test_bounds_cover_input_exactly(self):
        plan = plan_partition(1003, num_gpus=3, capacity_elements=100)
        covered = sum(stop - start for start, stop in plan.subvector_bounds)
        assert covered == 1003
        assert plan.subvector_bounds[0][0] == 0
        assert plan.subvector_bounds[-1][1] == 1003

    def test_more_gpus_than_elements(self):
        plan = plan_partition(3, num_gpus=8)
        assert plan.num_subvectors == 3

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            plan_partition(0, 1)
        with pytest.raises(ConfigurationError):
            plan_partition(10, 0)


class TestMultiGpuWorkflow:
    @pytest.mark.parametrize("num_gpus", [1, 2, 4, 7])
    def test_correct_across_fleet_sizes(self, rng, num_gpus):
        v = rng.integers(0, 2**32, size=1 << 15, dtype=np.uint32)
        runner = MultiGpuDrTopK(num_gpus=num_gpus, capacity_elements=1 << 13)
        result = runner.topk(v, 100)
        assert_topk_correct(result, v, 100)

    def test_correct_with_reloads(self, rng):
        v = rng.integers(0, 2**32, size=1 << 14, dtype=np.uint32)
        runner = MultiGpuDrTopK(num_gpus=2, capacity_elements=1 << 11)
        result = runner.topk(v, 64)
        assert_topk_correct(result, v, 64)
        assert runner.last_report.reload_ms > 0

    def test_smallest_query(self, rng):
        v = rng.integers(0, 2**32, size=1 << 14, dtype=np.uint32)
        runner = MultiGpuDrTopK(num_gpus=3, capacity_elements=1 << 12)
        result = runner.topk(v, 50, largest=False)
        assert_topk_correct(result, v, 50, largest=False)

    def test_report_populated(self, rng):
        v = rng.integers(0, 2**32, size=1 << 14, dtype=np.uint32)
        runner = MultiGpuDrTopK(num_gpus=4, capacity_elements=1 << 12)
        runner.topk(v, 32)
        report = runner.last_report
        assert report.num_gpus == 4
        assert report.communication_ms > 0
        assert report.compute_ms > 0
        assert report.total_ms >= report.compute_ms

    def test_subvector_smaller_than_k_still_correct(self, rng):
        v = rng.integers(0, 2**32, size=300, dtype=np.uint32)
        runner = MultiGpuDrTopK(num_gpus=4, capacity_elements=64)
        result = runner.topk(v, 100)
        assert_topk_correct(result, v, 100)

    def test_invalid_fleet(self):
        with pytest.raises(ConfigurationError):
            MultiGpuDrTopK(num_gpus=0)

    def test_hierarchical_reduction_same_answer(self, rng):
        v = rng.integers(0, 2**32, size=1 << 14, dtype=np.uint32)
        flat = MultiGpuDrTopK(num_gpus=8, capacity_elements=1 << 11, gpus_per_node=4)
        tree = MultiGpuDrTopK(
            num_gpus=8,
            capacity_elements=1 << 11,
            gpus_per_node=4,
            use_hierarchical_reduction=True,
        )
        a = flat.topk(v, 77)
        b = tree.topk(v, 77)
        np.testing.assert_array_equal(np.sort(a.values), np.sort(b.values))
        assert_topk_correct(b, v, 77)

    def test_hierarchical_reduction_ignored_for_single_node(self, rng):
        v = rng.integers(0, 2**32, size=1 << 13, dtype=np.uint32)
        runner = MultiGpuDrTopK(
            num_gpus=2, capacity_elements=1 << 12, use_hierarchical_reduction=True
        )
        result = runner.topk(v, 20)
        assert_topk_correct(result, v, 20)

    @pytest.mark.parametrize("num_gpus", [5, 6, 8, 12])
    def test_hierarchical_vs_flat_gather_identical(self, rng, num_gpus):
        """Flat and node-leader gathers must return identical results on any
        fleet wider than one node, including ragged last nodes."""
        v = rng.integers(0, 2**32, size=1 << 14, dtype=np.uint32)
        flat = MultiGpuDrTopK(
            num_gpus=num_gpus, capacity_elements=1 << 11, gpus_per_node=4
        )
        tree = MultiGpuDrTopK(
            num_gpus=num_gpus,
            capacity_elements=1 << 11,
            gpus_per_node=4,
            use_hierarchical_reduction=True,
        )
        a = flat.topk(v, 123)
        b = tree.topk(v, 123)
        np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(a.indices, b.indices)
        assert_topk_correct(b, v, 123)

    def test_hierarchical_gather_preserves_float32_dtype(self, rng):
        """Empty per-GPU contributions must not upcast a float32 gather: more
        GPUs than sub-vectors leaves idle ranks with empty candidate sets."""
        v = rng.standard_normal(1 << 12).astype(np.float32)
        runner = MultiGpuDrTopK(
            num_gpus=8,
            capacity_elements=1 << 9,
            gpus_per_node=4,
            use_hierarchical_reduction=True,
        )
        result = runner.topk(v, 40)
        assert result.values.dtype == np.float32
        assert_topk_correct(result, v, 40)


class TestMultiGpuBatch:
    def test_batch_matches_single_query_runs(self, rng):
        v = rng.integers(0, 2**32, size=1 << 14, dtype=np.uint32)
        fleet = MultiGpuDrTopK(num_gpus=3, capacity_elements=1 << 12)
        queries = [(100, True), (10, False), (100, True), (33, True)]
        results, report = fleet.topk_batch(v, queries)
        assert report.num_queries == len(queries)
        for (k, largest), res in zip(queries, results):
            solo = MultiGpuDrTopK(num_gpus=3, capacity_elements=1 << 12).topk(
                v, k, largest=largest
            )
            np.testing.assert_array_equal(np.sort(res.values), np.sort(solo.values))
            assert_topk_correct(res, v, k, largest=largest)

    def test_batch_amortises_constructions_and_reloads(self, rng):
        v = rng.integers(0, 2**32, size=1 << 14, dtype=np.uint32)
        fleet = MultiGpuDrTopK(num_gpus=2, capacity_elements=1 << 11)
        # 8 identical queries: one group per shard, one construction each.
        results, report = fleet.topk_batch(v, [(64, True)] * 8)
        assert len(results) == 8
        assert report.constructions == fleet.last_plan.num_subvectors
        assert report.construction_bytes > 0
        assert report.gather_bytes > 0
        assert report.reload_ms > 0  # shards beyond the first reload once
        # A second fleet answering the queries one by one reloads per query.
        solo = MultiGpuDrTopK(num_gpus=2, capacity_elements=1 << 11)
        solo.topk(v, 64)
        assert report.reload_ms <= solo.last_report.reload_ms * 8

    def test_batch_with_empty_queries(self, rng):
        v = rng.integers(0, 2**32, size=1 << 10, dtype=np.uint32)
        fleet = MultiGpuDrTopK(num_gpus=2, capacity_elements=1 << 8)
        results, report = fleet.topk_batch(v, [])
        assert results == [] and report.num_queries == 0

    def test_batch_hierarchical_gather(self, rng):
        v = rng.standard_normal(1 << 13).astype(np.float32)
        fleet = MultiGpuDrTopK(
            num_gpus=8,
            capacity_elements=1 << 10,
            gpus_per_node=4,
            use_hierarchical_reduction=True,
        )
        results, report = fleet.topk_batch(v, [(25, True), (50, False)])
        assert report.communication_ms > 0
        assert_topk_correct(results[0], v, 25)
        assert_topk_correct(results[1], v, 50, largest=False)
        assert results[0].values.dtype == np.float32


class TestScalabilityModel:
    def test_speedup_improves_with_gpus_when_data_fits(self):
        reports = [estimate_scalability_row(1 << 30, 128, g) for g in (1, 2, 4, 8, 16)]
        totals = [r.total_ms for r in reports]
        assert totals == sorted(totals, reverse=True)
        assert reports[0].reload_ms == 0

    def test_superlinear_speedup_when_reload_disappears(self):
        """Table 2: |V| = 2^31 on 1 GPU pays a reload; on 2 GPUs it does not."""
        one = estimate_scalability_row(1 << 31, 128, 1)
        two = estimate_scalability_row(1 << 31, 128, 2)
        assert one.reload_ms > 100
        assert two.reload_ms == 0
        assert two.speedup_over(one) > 10

    def test_reload_overhead_magnitude_matches_paper(self):
        """Paper: ~373 ms reload for one extra 2^30 sub-vector over PCIe."""
        one = estimate_scalability_row(1 << 31, 128, 1)
        assert 200 < one.reload_ms < 600

    def test_communication_stays_small(self):
        r = estimate_scalability_row(1 << 33, 128, 16)
        assert r.communication_ms < 5.0

    def test_single_gpu_total_magnitude(self):
        """Paper: ~6.1 ms for |V| = 2^30, k = 128 on one V100."""
        r = estimate_scalability_row(1 << 30, 128, 1)
        assert 2.0 < r.total_ms < 15.0
