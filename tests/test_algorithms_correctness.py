"""Cross-cutting correctness tests for every registered top-k algorithm.

These tests treat each algorithm as a black box and compare it against the
sort-based oracle across dtypes, query directions, heavy ties and edge cases
(k = 1, k = n, tiny inputs).
"""

import numpy as np
import pytest

from tests.helpers import assert_topk_correct
from repro.algorithms import available_algorithms, get_algorithm, kth_value, topk
from repro.algorithms.base import ExecutionTrace
from repro.errors import ConfigurationError

ALL_ALGORITHMS = sorted(available_algorithms())


@pytest.fixture(params=ALL_ALGORITHMS)
def algorithm(request):
    return request.param


class TestRegistry:
    def test_expected_algorithms_registered(self):
        expected = {"heap", "sortchoose", "bucket", "radix", "radix_inplace", "radix_flag", "bitonic"}
        assert expected.issubset(set(ALL_ALGORITHMS))

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ConfigurationError):
            get_algorithm("does-not-exist")

    def test_lookup_is_case_insensitive(self):
        assert get_algorithm("RADIX").name == "radix"


class TestUniformCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 17, 128, 1000])
    def test_uint32_largest(self, algorithm, uniform_u32, k):
        result = topk(uniform_u32, k, algorithm=algorithm)
        assert_topk_correct(result, uniform_u32, k, largest=True)

    @pytest.mark.parametrize("k", [1, 63, 500])
    def test_uint32_smallest(self, algorithm, uniform_u32, k):
        result = topk(uniform_u32, k, largest=False, algorithm=algorithm)
        assert_topk_correct(result, uniform_u32, k, largest=False)

    def test_values_sorted_by_preference(self, algorithm, uniform_u32):
        result = topk(uniform_u32, 50, algorithm=algorithm)
        assert np.all(np.diff(result.values.astype(np.int64)) <= 0)

    def test_k_equals_n(self, algorithm, rng):
        v = rng.integers(0, 1000, size=257, dtype=np.uint32)
        result = topk(v, v.shape[0], algorithm=algorithm)
        assert_topk_correct(result, v, v.shape[0])


class TestTiesAndDistributions:
    @pytest.mark.parametrize("k", [1, 100, 1000])
    def test_heavy_ties(self, algorithm, tied_u32, k):
        result = topk(tied_u32, k, algorithm=algorithm)
        assert_topk_correct(result, tied_u32, k)

    def test_all_equal(self, algorithm):
        v = np.full(4096, 7, dtype=np.uint32)
        result = topk(v, 17, algorithm=algorithm)
        assert_topk_correct(result, v, 17)

    def test_sorted_ascending_input(self, algorithm):
        v = np.arange(5000, dtype=np.uint32)
        result = topk(v, 10, algorithm=algorithm)
        np.testing.assert_array_equal(np.sort(result.values), np.arange(4990, 5000))

    def test_sorted_descending_input(self, algorithm):
        v = np.arange(5000, dtype=np.uint32)[::-1].copy()
        result = topk(v, 10, algorithm=algorithm)
        np.testing.assert_array_equal(np.sort(result.values), np.arange(4990, 5000))

    def test_narrow_normal_distribution(self, algorithm, rng):
        v = np.clip(np.rint(rng.normal(1e8, 10, size=20000)), 0, 2**32 - 1).astype(np.uint32)
        result = topk(v, 333, algorithm=algorithm)
        assert_topk_correct(result, v, 333)

    def test_extreme_values_present(self, algorithm):
        v = np.array([0, 2**32 - 1, 5, 2**32 - 1, 0], dtype=np.uint32)
        result = topk(v, 2, algorithm=algorithm)
        np.testing.assert_array_equal(result.values, [2**32 - 1, 2**32 - 1])


class TestDtypes:
    def test_int64(self, algorithm, rng):
        v = rng.integers(-(10**12), 10**12, size=8192, dtype=np.int64)
        result = topk(v, 99, algorithm=algorithm)
        assert_topk_correct(result, v, 99)

    def test_float64(self, algorithm, rng):
        v = rng.normal(size=8192)
        result = topk(v, 99, algorithm=algorithm)
        assert_topk_correct(result, v, 99)

    def test_float32_smallest(self, algorithm, rng):
        v = rng.normal(size=4096).astype(np.float32)
        result = topk(v, 40, largest=False, algorithm=algorithm)
        assert_topk_correct(result, v, 40, largest=False)

    def test_negative_floats(self, algorithm):
        v = np.array([-1.0, -2.0, -3.0, -0.5, -10.0])
        result = topk(v, 2, algorithm=algorithm)
        np.testing.assert_allclose(np.sort(result.values), [-1.0, -0.5])

    def test_uint64_large_values(self, algorithm, rng):
        v = rng.integers(0, 2**63, size=4096, dtype=np.uint64)
        result = topk(v, 64, algorithm=algorithm)
        assert_topk_correct(result, v, 64)


class TestValidation:
    def test_k_zero_rejected(self, algorithm, uniform_u32):
        with pytest.raises(ConfigurationError):
            topk(uniform_u32, 0, algorithm=algorithm)

    def test_k_too_large_rejected(self, algorithm, uniform_u32):
        with pytest.raises(ConfigurationError):
            topk(uniform_u32, uniform_u32.shape[0] + 1, algorithm=algorithm)

    def test_empty_rejected(self, algorithm):
        with pytest.raises(ConfigurationError):
            topk(np.array([], dtype=np.uint32), 1, algorithm=algorithm)

    def test_2d_rejected(self, algorithm):
        with pytest.raises(ConfigurationError):
            topk(np.zeros((4, 4), dtype=np.uint32), 1, algorithm=algorithm)


class TestKthValue:
    @pytest.mark.parametrize("k", [1, 5, 64])
    def test_matches_sort(self, algorithm, uniform_u32, k):
        expected = np.sort(uniform_u32)[-k]
        assert kth_value(uniform_u32, k, algorithm=algorithm) == expected

    def test_smallest(self, algorithm, uniform_u32):
        assert kth_value(uniform_u32, 3, largest=False, algorithm=algorithm) == np.sort(uniform_u32)[2]


class TestTracing:
    def test_trace_records_traffic(self, algorithm, uniform_u32):
        trace = ExecutionTrace()
        topk(uniform_u32, 64, algorithm=algorithm, trace=trace)
        assert len(trace.steps) >= 1
        total = trace.total_counters()
        assert total.global_loads >= uniform_u32.shape[0] * 0.5

    def test_trace_times_positive(self, algorithm, uniform_u32):
        trace = ExecutionTrace()
        topk(uniform_u32, 64, algorithm=algorithm, trace=trace)
        assert trace.total_time_ms() > 0
