"""Tests for the experiment harness: runners, reporting and the CLI."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import available_experiments, format_table, run_experiment, rows_to_csv
from repro.harness.runner import main

# Small sizes so the harness tests stay fast; the benchmarks run the defaults.
SMALL = dict(n=1 << 14)


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}]
        text = format_table(rows, title="demo")
        assert "== demo ==" in text
        assert "a" in text and "b" in text
        assert len(text.splitlines()) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_rows_to_csv(self):
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        csv = rows_to_csv(rows)
        assert csv.splitlines()[0] == "x,y"
        assert csv.splitlines()[2] == "2,b"

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""


class TestRunnerRegistry:
    def test_all_paper_experiments_present(self):
        names = set(available_experiments())
        expected = {
            "fig04", "fig06", "fig07", "fig09", "fig10", "fig12", "fig13", "fig14",
            "fig15", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
            "fig24", "table2", "table3",
            "service",  # batched serving traffic (not a paper figure)
            "async",    # sequential vs overlapped dispatch (not a paper figure)
            "hotpath",  # cold vs plan-bank-warm serving cost (not a paper figure)
            "multivector",  # named admit/query/evict lifecycle (not a paper figure)
            "splitgroup",  # dominant-group splitting vs pinned (not a paper figure)
            "hotfuse",  # fused vs per-query group selection (not a paper figure)
            "loadgen",  # tail latency + admission control under load (not a paper figure)
            "spillwarm",  # out-of-core spill tier + warm restart (not a paper figure)
            "tenantfair",  # multi-tenant fairness + isolation (not a paper figure)
        }
        assert expected == names

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_cli_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out and "table2" in out

    def test_cli_runs_and_writes_csv(self, tmp_path, capsys):
        out_csv = tmp_path / "rows.csv"
        assert main(["fig20", "--csv", str(out_csv)]) == 0
        assert out_csv.exists()
        assert "n" in out_csv.read_text().splitlines()[0]


class TestExperimentShapes:
    """Each runner must produce rows with the columns its figure/table needs,
    and the headline trend of the figure must hold at test scale."""

    def test_fig04_rows(self):
        rows = run_experiment("fig04", n=1 << 14, ks=[16, 256], datasets=("UD", "ND"))
        assert {r["dataset"] for r in rows} == {"UD", "ND"}
        assert all(r["time_ms"] > 0 for r in rows)

    def test_fig06_07_filtering_helps_second_topk(self):
        ks = [1 << 10, 1 << 12]
        base = run_experiment("fig06", n=1 << 16, ks=ks)
        filt = run_experiment("fig07", n=1 << 16, ks=ks)
        for b, f in zip(base, filt):
            assert f["second_topk_ms"] <= b["second_topk_ms"] * 1.05

    def test_fig09_normalisation_baseline_is_one(self):
        rows = run_experiment("fig09", n=1 << 14, ks=[256], betas=(1, 2))
        beta1 = [r for r in rows if r["beta"] == 1][0]
        assert beta1["normalised_to_beta1"] == pytest.approx(1.0)

    def test_fig12_flag_radix_wins(self):
        rows = run_experiment("fig12", n=1 << 17, ks=[64, 1024])
        assert all(r["speedup"] > 1.5 for r in rows)

    def test_fig13_total_is_sum_of_steps(self):
        rows = run_experiment("fig13", n=1 << 15, k=128, alphas=[4, 6, 8])
        for r in rows:
            total = r["delegate_ms"] + r["first_topk_ms"] + r["concat_ms"] + r["second_topk_ms"]
            assert r["total_ms"] == pytest.approx(total, rel=0.01)

    def test_fig14_autotuned_close_to_oracle(self):
        rows = run_experiment("fig14", n=1 << 16, ks=[64, 1024])
        for r in rows:
            assert r["auto_ms"] <= 2.0 * r["oracle_ms"]

    def test_fig15_optimised_construction_not_slower(self):
        ks = [1 << 12]
        warp = run_experiment("fig10", n=1 << 16, ks=ks)
        optimised = run_experiment("fig15", n=1 << 16, ks=ks)
        assert optimised[0]["delegate_ms"] <= warp[0]["delegate_ms"] * 1.05

    def test_fig17_drtopk_beats_baselines_at_largest_size(self):
        rows = run_experiment("fig17", sizes=[1 << 18], k=1024)
        by_system = {r["system"]: r["time_ms"] for r in rows}
        assert by_system["drtopk+radix"] < by_system["radix"]
        assert by_system["drtopk+bitonic"] < by_system["bitonic"]

    def test_fig18_speedups_above_one(self):
        rows = run_experiment("fig18", n=1 << 17, ks=[256], datasets=("UD",), algorithms=("radix", "bitonic"))
        assert all(r["speedup"] > 1.0 for r in rows)

    def test_fig19_realworld_runs_all_datasets(self):
        rows = run_experiment("fig19", n=1 << 14, ks=[64], algorithms=("radix",))
        assert {r["dataset"] for r in rows} == {"AN", "CW", "TR"}

    def test_fig20_fraction_decreases_with_n(self):
        rows = run_experiment("fig20", sizes=[1 << 14, 1 << 16], k=256, include_paper_scale=False)
        assert rows[0]["total_fraction"] > rows[1]["total_fraction"]

    def test_fig21_fraction_increases_with_k(self):
        rows = run_experiment("fig21", n=1 << 16, ks=[16, 4096], include_paper_scale=False)
        assert rows[0]["total_fraction"] < rows[1]["total_fraction"]

    def test_fig22_combined_never_worst(self):
        rows = run_experiment("fig22", n=1 << 16, ks=[1 << 12])
        by_variant = {r["variant"]: r["total_ms"] for r in rows}
        assert by_variant["combined"] <= max(by_variant.values())

    def test_fig23_titanxp_slower_than_v100s(self):
        rows = run_experiment("fig23", n=1 << 15, ks=[256])
        by_device = {r["device"]: r["total_ms"] for r in rows}
        assert by_device["TitanXp"] > by_device["V100S"]
        assert 1.0 < by_device["TitanXp/V100S ratio"] < 3.0

    def test_fig24_bmw_does_more_work(self):
        # The paper's ND-vs-UD magnitude gap (212x vs 6x) only opens up at the
        # full 2^30 scale; the laptop-scale check asserts the robust part of
        # the figure — BMW fully evaluates several times more data than
        # Dr. Top-k touches — on both distributions.
        rows = run_experiment("fig24", n=1 << 14, ks=[64], datasets=("UD", "ND"))
        assert all(r["ratio"] > 1.0 for r in rows)

    def test_table2_columns_and_speedup(self):
        rows = run_experiment("table2", size_exponents=(30,), gpu_counts=(1, 4), measured_n=1 << 14)
        model_rows = [r for r in rows if r["mode"] == "model"]
        assert model_rows[0]["speedup"] == pytest.approx(1.0)
        assert model_rows[1]["speedup"] > 1.0
        assert any(r["mode"] == "measured" for r in rows)

    def test_table3_drtopk_reduces_traffic(self):
        rows = run_experiment("table3", n=1 << 16)
        by_system = {r["system"]: r for r in rows}
        for algo in ("radix", "bucket", "bitonic"):
            assert (
                by_system[f"drtopk+{algo}"]["load_transactions"]
                < by_system[algo]["load_transactions"]
            )
            assert (
                by_system[f"drtopk+{algo}"]["store_transactions"]
                < by_system[algo]["store_transactions"]
            )
