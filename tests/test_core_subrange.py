"""Tests for subrange partitioning."""

import numpy as np
import pytest

from repro.core.subrange import SubrangePartition
from repro.errors import ConfigurationError


class TestGeometry:
    def test_exact_division(self):
        p = SubrangePartition(n=1024, alpha=5)
        assert p.subrange_size == 32
        assert p.num_subranges == 32
        assert p.pad == 0
        assert p.last_subrange_size == 32

    def test_partial_last_subrange(self):
        p = SubrangePartition(n=1000, alpha=5)
        assert p.num_subranges == 32
        assert p.pad == 24
        assert p.last_subrange_size == 8
        assert p.padded_length == 1024

    def test_alpha_zero(self):
        p = SubrangePartition(n=10, alpha=0)
        assert p.subrange_size == 1
        assert p.num_subranges == 10

    def test_sizes_vector(self):
        p = SubrangePartition(n=70, alpha=5)
        np.testing.assert_array_equal(p.sizes(), [32, 32, 6])

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SubrangePartition(n=0, alpha=3)
        with pytest.raises(ConfigurationError):
            SubrangePartition(n=16, alpha=-1)
        with pytest.raises(ConfigurationError):
            SubrangePartition(n=16, alpha=5)  # subrange larger than vector


class TestIndexMapping:
    def test_bounds(self):
        p = SubrangePartition(n=100, alpha=5)
        assert p.bounds(0) == (0, 32)
        assert p.bounds(3) == (96, 100)

    def test_bounds_out_of_range(self):
        p = SubrangePartition(n=100, alpha=5)
        with pytest.raises(ConfigurationError):
            p.bounds(4)

    def test_subrange_of(self):
        p = SubrangePartition(n=100, alpha=5)
        np.testing.assert_array_equal(p.subrange_of([0, 31, 32, 99]), [0, 0, 1, 3])

    def test_subrange_of_out_of_range(self):
        p = SubrangePartition(n=100, alpha=5)
        with pytest.raises(ConfigurationError):
            p.subrange_of(100)

    def test_reshape_padded_roundtrip(self):
        p = SubrangePartition(n=10, alpha=2)
        keys = np.arange(10, dtype=np.uint32)
        view = p.reshape_padded(keys, pad_value=np.uint32(0))
        assert view.shape == (3, 4)
        np.testing.assert_array_equal(view.ravel()[:10], keys)
        np.testing.assert_array_equal(view.ravel()[10:], [0, 0])

    def test_reshape_rejects_wrong_length(self):
        p = SubrangePartition(n=10, alpha=2)
        with pytest.raises(ConfigurationError):
            p.reshape_padded(np.arange(9, dtype=np.uint32), pad_value=np.uint32(0))
