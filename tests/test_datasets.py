"""Tests for the synthetic distributions and real-world workload surrogates."""

import numpy as np
import pytest

from repro.datasets import (
    SiftLikeDataset,
    available_datasets,
    covid_fear_scores,
    customized_distribution,
    get_dataset,
    knn_distance_vector,
    normal_distribution,
    synthetic_power_law_degrees,
    uniform_distribution,
    webgraph_degree_vector,
)
from repro.errors import ConfigurationError


class TestSyntheticDistributions:
    def test_uniform_shape_dtype_range(self):
        v = uniform_distribution(10_000, seed=1)
        assert v.dtype == np.uint32 and v.shape == (10_000,)
        assert v.min() < 2**28 and v.max() > 2**31  # spans the range

    def test_uniform_reproducible(self):
        np.testing.assert_array_equal(uniform_distribution(100, seed=5), uniform_distribution(100, seed=5))

    def test_normal_narrow_value_range(self):
        v = normal_distribution(10_000, seed=1)
        assert v.dtype == np.uint32
        assert abs(float(v.mean()) - 1e8) < 1.0
        assert np.unique(v).shape[0] < 200  # sigma=10 collapses onto few values

    def test_normal_clipping(self):
        v = normal_distribution(1000, mean=5, std=100, seed=2)
        assert v.min() >= 0

    def test_customized_majority_in_top_bucket(self):
        v = customized_distribution(100_000, seed=3)
        width = (2**32) // 256
        top_bucket = v >= np.uint32(2**32 - width)
        # The construction recurses into the top bucket, so most mass ends high.
        assert np.count_nonzero(v >= np.uint32(255 * width)) > 0.9 * v.shape[0]

    def test_customized_lower_buckets_nonempty(self):
        v = customized_distribution(100_000, num_buckets=256, levels=1, seed=4)
        width = (2**32) // 256
        buckets = (v // width).astype(np.int64)
        assert np.unique(buckets).shape[0] >= 250

    def test_customized_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            customized_distribution(100, levels=4)

    @pytest.mark.parametrize("fn", [uniform_distribution, normal_distribution])
    def test_invalid_sizes(self, fn):
        with pytest.raises(ConfigurationError):
            fn(0)


class TestSiftSurrogate:
    def test_generate_shape_and_dtype(self):
        ds = SiftLikeDataset.generate(500, seed=1)
        assert ds.vectors.shape == (500, 128)
        assert ds.vectors.dtype == np.uint8
        assert len(ds) == 500

    def test_distances_match_numpy(self):
        ds = SiftLikeDataset.generate(200, seed=2)
        d = ds.distances_from()
        q = ds.vectors[0].astype(np.int64)
        expected = ((ds.vectors.astype(np.int64) - q) ** 2).sum(axis=1)
        np.testing.assert_array_equal(d, expected.astype(np.uint32))
        assert d[0] == 0  # distance to itself

    def test_custom_query(self):
        ds = SiftLikeDataset.generate(50, seed=3)
        q = np.zeros(128, dtype=np.uint8)
        d = ds.distances_from(q)
        assert d.shape == (50,)

    def test_bad_query_shape(self):
        ds = SiftLikeDataset.generate(10, seed=4)
        with pytest.raises(ConfigurationError):
            ds.distances_from(np.zeros(64))

    def test_bad_vector_shape(self):
        with pytest.raises(ConfigurationError):
            SiftLikeDataset(vectors=np.zeros((10, 64), dtype=np.uint8))

    def test_knn_distance_vector_convenience(self):
        v = knn_distance_vector(300, seed=5)
        assert v.shape == (300,) and v.dtype == np.uint32


class TestGraphSurrogate:
    def test_power_law_degrees_skewed(self):
        d = synthetic_power_law_degrees(50_000, seed=1)
        assert d.dtype == np.uint32
        assert d.min() >= 1
        # Heavy tail: the max dwarfs the median.
        assert d.max() > 50 * np.median(d)

    def test_power_law_invalid_exponent(self):
        with pytest.raises(ConfigurationError):
            synthetic_power_law_degrees(100, exponent=1.0)

    def test_webgraph_degrees_from_real_graph(self):
        d = webgraph_degree_vector(2000, attachment=3, seed=2)
        assert d.shape == (2000,)
        assert d.sum() == 2 * 3 * (2000 - 3)  # 2 * edge count for BA graphs
        assert d.max() > 3 * np.median(d)

    def test_webgraph_invalid_params(self):
        with pytest.raises(ConfigurationError):
            webgraph_degree_vector(3, attachment=4)


class TestTwitterSurrogate:
    def test_scores_bounded_and_duplicated(self):
        v = covid_fear_scores(100_000, seed=1)
        assert v.dtype == np.uint32
        assert v.max() < 100_000
        # Replication of the original block creates heavy duplication.
        assert np.unique(v).shape[0] < 0.5 * v.shape[0]

    def test_zero_fear_spike_exists(self):
        v = covid_fear_scores(50_000, seed=2)
        assert np.count_nonzero(v == 0) > 0.01 * v.shape[0]

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            covid_fear_scores(100, original_fraction=0.0)


class TestRegistry:
    def test_all_paper_datasets_registered(self):
        assert set(available_datasets()) == {"UD", "ND", "CD", "AN", "CW", "TR"}

    def test_generate_via_registry(self):
        for name in available_datasets():
            v = get_dataset(name).generate(2000, seed=7)
            assert v.shape == (2000,)
            assert v.dtype == np.uint32

    def test_knn_and_twitter_are_smallest_queries(self):
        assert get_dataset("AN").largest is False
        assert get_dataset("TR").largest is False
        assert get_dataset("CW").largest is True

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            get_dataset("XX")
