"""Tests for the shared result/statistics containers."""

import numpy as np
import pytest

from repro.types import StepTiming, TopKResult, WorkloadStats


class TestTopKResult:
    def test_kth_value_is_last(self):
        r = TopKResult(values=np.array([9, 7, 5]), indices=np.array([1, 0, 2]), k=3)
        assert r.kth_value == 5

    def test_len(self):
        r = TopKResult(values=np.array([1]), indices=np.array([0]), k=1)
        assert len(r) == 1

    def test_sorted_values(self):
        r = TopKResult(values=np.array([9, 7, 5]), indices=np.array([1, 0, 2]), k=3)
        np.testing.assert_array_equal(r.sorted_values(), [5, 7, 9])

    def test_arrays_coerced(self):
        r = TopKResult(values=[3, 2], indices=[0, 1], k=2)
        assert isinstance(r.values, np.ndarray)
        assert isinstance(r.indices, np.ndarray)


class TestWorkloadStats:
    def make(self):
        return WorkloadStats(
            input_size=1000,
            subrange_size=32,
            alpha=5,
            beta=2,
            num_subranges=32,
            delegate_vector_size=64,
            concatenated_size=36,
            step_times_ms={"delegate_construction": 1.0, "first_topk": 0.5},
        )

    def test_workloads(self):
        s = self.make()
        assert s.first_topk_workload == 64
        assert s.second_topk_workload == 36
        assert s.total_workload == 100

    def test_fractions(self):
        s = self.make()
        assert s.workload_fraction == pytest.approx(0.1)
        assert s.reduction_fraction == pytest.approx(0.9)

    def test_empty_input_fraction_is_zero(self):
        assert WorkloadStats().workload_fraction == 0.0

    def test_total_time(self):
        assert self.make().total_time_ms == pytest.approx(1.5)

    def test_as_dict_has_step_times(self):
        d = self.make().as_dict()
        assert d["time_ms[first_topk]"] == pytest.approx(0.5)
        assert d["total_workload"] == 100
        assert d["total_time_ms"] == pytest.approx(1.5)


class TestStepTiming:
    def test_repr_contains_name(self):
        assert "foo" in repr(StepTiming("foo", 1.23))
