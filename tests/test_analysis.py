"""Tests for the Section 5.2 theory: cost equations, convexity, Rule 4, speedups."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.alpha_tuning import (
    alpha_sweep,
    is_convex_in_alpha,
    optimal_alpha,
    optimal_alpha_exact,
    oracle_alpha,
    rule4_const,
)
from repro.analysis.speedup import SpeedupPoint, estimated_time_ms, speedup_series, wall_clock
from repro.analysis.theory import (
    CostParameters,
    breakdown,
    second_derivative_in_alpha,
    t_concat,
    t_delegate,
    t_first_k,
    t_second_k,
)
from repro.datasets.synthetic import uniform_distribution
from repro.errors import ConfigurationError


class TestCostEquations:
    def test_total_is_sum_of_stages(self):
        n, k, a = 2**30, 2**10, 9
        parts = breakdown(n, k, a)
        assert parts["total"] == pytest.approx(
            t_delegate(n, a) + t_first_k(n, k, a) + t_concat(k, a) + t_second_k(k, a)
        )

    def test_delegate_and_firstk_decrease_with_alpha(self):
        n, k = 2**30, 2**13
        assert t_delegate(n, 4) > t_delegate(n, 12)
        assert t_first_k(n, k, 4) > t_first_k(n, k, 12)

    def test_concat_and_secondk_increase_with_alpha(self):
        k = 2**13
        assert t_concat(k, 12) > t_concat(k, 4)
        assert t_second_k(k, 12) > t_second_k(k, 4)

    def test_from_device_constants(self):
        from repro.gpusim.device import V100S

        params = CostParameters.from_device(V100S)
        assert params.c_global == V100S.c_global
        assert params.c_shfl == V100S.c_shfl

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            CostParameters(c_global=0)
        with pytest.raises(ConfigurationError):
            t_delegate(0, 4)
        with pytest.raises(ConfigurationError):
            t_first_k(100, 0, 4)

    @settings(max_examples=50, deadline=None)
    @given(
        n_exp=st.integers(16, 33),
        k_exp=st.integers(0, 24),
        alpha=st.integers(0, 20),
    )
    def test_second_derivative_positive(self, n_exp, k_exp, alpha):
        """Equation 8/9: the total cost is convex in alpha for all inputs."""
        assert second_derivative_in_alpha(2**n_exp, 2**k_exp, alpha) > 0

    @settings(max_examples=30, deadline=None)
    @given(n_exp=st.integers(20, 32), k_exp=st.integers(0, 18))
    def test_analytic_sweep_is_convex(self, n_exp, k_exp):
        costs = alpha_sweep(2**n_exp, 2**k_exp)
        assert is_convex_in_alpha(costs)


class TestRule4:
    def test_paper_configuration(self):
        """|V| = 2^30, k = 2^24 gives alpha ~ 4 (Section 5.3)."""
        assert optimal_alpha(1 << 30, 1 << 24) == pytest.approx(4, abs=1)

    def test_alpha_decreases_with_k(self):
        n = 1 << 30
        alphas = [optimal_alpha(n, 1 << e) for e in (0, 8, 16, 24)]
        assert alphas == sorted(alphas, reverse=True)

    def test_alpha_increases_with_n(self):
        k = 1 << 10
        alphas = [optimal_alpha(1 << e, k) for e in (20, 25, 30)]
        assert alphas == sorted(alphas)

    def test_clipped_to_feasible_range(self):
        assert 0 <= optimal_alpha(16, 16) <= 4

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            optimal_alpha(10, 20)
        with pytest.raises(ConfigurationError):
            optimal_alpha(0, 1)

    def test_rule4_const_positive_and_close_to_paper(self):
        """log2(6*Cg + 31*Cs) - log2(6*Cg) with V100S-like constants is ~0.5-2;
        the paper adds an empirical correction to reach 3."""
        c = rule4_const()
        assert 0.0 < c < 3.0

    def test_exact_variant_close_to_tuned(self):
        n, k = 1 << 30, 1 << 13
        assert abs(optimal_alpha_exact(n, k) - optimal_alpha(n, k)) <= 2

    def test_oracle_matches_closed_form_on_analytic_model(self):
        """Figure 14: the auto-tuned alpha tracks the oracle closely."""
        n = 1 << 30
        for k_exp in (4, 10, 16, 22):
            k = 1 << k_exp
            oracle = oracle_alpha(n, k, params=CostParameters())
            tuned = optimal_alpha(n, k, const=rule4_const())
            assert abs(oracle - tuned) <= 1

    def test_convexity_helper_rejects_non_convex(self):
        assert not is_convex_in_alpha({0: 1.0, 1: 3.0, 2: 1.0, 3: 5.0, 4: 0.0})

    def test_convexity_helper_small_input(self):
        assert is_convex_in_alpha({1: 1.0, 2: 5.0})


class TestSpeedupHelpers:
    def test_speedup_point(self):
        p = SpeedupPoint(k=10, baseline_ms=10.0, drtopk_ms=2.0)
        assert p.speedup == pytest.approx(5.0)

    def test_zero_time_gives_inf(self):
        assert SpeedupPoint(k=1, baseline_ms=1.0, drtopk_ms=0.0).speedup == float("inf")

    def test_wall_clock_positive(self):
        assert wall_clock(lambda: sum(range(1000)), repeats=2) >= 0

    def test_wall_clock_invalid_repeats(self):
        with pytest.raises(ConfigurationError):
            wall_clock(lambda: None, repeats=0)

    def test_estimated_time_positive(self):
        v = uniform_distribution(1 << 14, seed=0)
        assert estimated_time_ms(v, 64, "radix_flag") > 0

    def test_speedup_series_simulated(self):
        # Large enough that memory traffic, not kernel-launch overhead,
        # decides the comparison (as at the paper's scale).
        v = uniform_distribution(1 << 18, seed=1)
        points = speedup_series(
            v, [256, 4096], "radix_inplace", assisted_algorithm="radix_flag"
        )
        assert [p.k for p in points] == [256, 4096]
        assert all(p.baseline_ms > 0 and p.drtopk_ms > 0 for p in points)
        assert all(p.speedup > 1.0 for p in points)

    def test_speedup_series_wall_clock(self):
        v = uniform_distribution(1 << 14, seed=2)
        points = speedup_series(v, [32], "heap", use_simulated_time=False)
        assert points[0].baseline_ms > 0 and points[0].drtopk_ms > 0
