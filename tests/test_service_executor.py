"""ServiceExecutor: bounded-queue execution, backpressure, determinism."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.service.executor import ServiceExecutor, WorkUnit


def make_units(count, fn_for):
    return [WorkUnit(fn=fn_for(i), worker=i, label=f"u{i}") for i in range(count)]


def test_results_align_with_submission_order():
    # Later units finish first (earlier units sleep longer); the result list
    # must still align with submission order.
    def fn_for(i):
        return lambda: (time.sleep(0.002 * (8 - i)), i)[1]

    executor = ServiceExecutor(max_workers=4)
    results = executor.run(make_units(8, fn_for))
    assert [r.value for r in results] == list(range(8))
    assert all(r.wall_ms > 0 for r in results)
    executor.shutdown()


def test_sequential_mode_runs_inline():
    seen_threads = set()

    def fn_for(i):
        def fn():
            seen_threads.add(threading.current_thread().name)
            return i

        return fn

    executor = ServiceExecutor(max_workers=4, mode="sequential")
    results = executor.run(make_units(5, fn_for))
    assert [r.value for r in results] == list(range(5))
    assert seen_threads == {threading.current_thread().name}
    report = executor.last_report
    assert report.mode == "sequential"
    assert report.units == 5
    assert report.max_in_flight == 1
    assert report.backpressure_waits == 0


def test_backpressure_bounds_in_flight_units():
    release = threading.Event()

    def fn_for(i):
        def fn():
            release.wait(timeout=5.0)
            return i

        return fn

    executor = ServiceExecutor(max_workers=2, queue_capacity=2)

    # Submission of the third unit must block until a slot frees; run the
    # submission loop on a helper thread and release the units once it is
    # visibly blocked.
    outcome = {}

    def submit():
        outcome["results"] = executor.run(make_units(6, fn_for))

    thread = threading.Thread(target=submit)
    thread.start()
    time.sleep(0.05)  # let submission hit the bounded queue
    release.set()
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    results = outcome["results"]
    assert [r.value for r in results] == list(range(6))
    report = executor.last_report
    assert report.max_in_flight <= 2
    assert report.backpressure_waits > 0
    executor.shutdown()


def test_lazy_iterables_are_supported():
    def units():
        for i in range(4):
            yield WorkUnit(fn=(lambda j=i: j * j))

    executor = ServiceExecutor(max_workers=2)
    results = executor.run(units())
    assert [r.value for r in results] == [0, 1, 4, 9]
    executor.shutdown()


def test_unit_errors_propagate():
    def fn_for(i):
        if i == 2:
            def boom():
                raise ValueError("unit failed")

            return boom
        return lambda: i

    executor = ServiceExecutor(max_workers=2)
    with pytest.raises(ValueError, match="unit failed"):
        executor.run(make_units(4, fn_for))
    # The executor stays usable after a failed run.
    ok = executor.run(make_units(3, lambda i: (lambda: i)))
    assert [r.value for r in ok] == [0, 1, 2]
    executor.shutdown()


def test_overlap_report_quantities():
    executor = ServiceExecutor(max_workers=4)
    results = executor.run(make_units(4, lambda i: (lambda: time.sleep(0.01) or i)))
    report = executor.last_report
    assert report.units == 4
    assert report.wall_ms > 0
    assert report.unit_wall_ms_sum == pytest.approx(
        sum(r.wall_ms for r in results), rel=1e-6
    )
    assert report.overlap_factor >= 1.0 or report.wall_ms > report.unit_wall_ms_sum
    executor.shutdown()


def test_context_manager_shuts_down():
    with ServiceExecutor(max_workers=2) as executor:
        executor.run(make_units(2, lambda i: (lambda: i)))
        assert executor._pool is not None
    assert executor._pool is None


def test_validation():
    with pytest.raises(ConfigurationError):
        ServiceExecutor(max_workers=0)
    with pytest.raises(ConfigurationError):
        ServiceExecutor(queue_capacity=0)
    with pytest.raises(ConfigurationError):
        ServiceExecutor(mode="fibers")


def test_unit_queue_wait_is_measured():
    # Saturate a 1-worker pool: later units provably wait for earlier ones,
    # so their measured submit-to-start queue time must be non-zero.
    executor = ServiceExecutor(max_workers=1, queue_capacity=4)
    results = executor.run(make_units(4, lambda i: (lambda: time.sleep(0.01) or i)))
    report = executor.last_report
    assert all(r.queue_ms >= 0.0 for r in results)
    assert max(r.queue_ms for r in results) > 1.0  # the last unit waited ~30ms
    assert report.unit_queue_ms_sum == pytest.approx(
        sum(r.queue_ms for r in results), rel=1e-6
    )
    assert report.max_unit_queue_ms == pytest.approx(
        max(r.queue_ms for r in results), rel=1e-6
    )
    executor.shutdown()


def test_sequential_mode_reports_zero_queue_wait():
    executor = ServiceExecutor(max_workers=2, mode="sequential")
    results = executor.run(make_units(3, lambda i: (lambda: i)))
    assert all(r.queue_ms == 0.0 for r in results)
    assert executor.last_report.unit_queue_ms_sum == 0.0
    assert executor.last_report.max_unit_queue_ms == 0.0
    executor.shutdown()


def test_saturated_probe_and_queue_full_hook():
    release = threading.Event()
    saw = []

    def fn_for(i):
        def fn():
            release.wait(timeout=5.0)
            return i

        return fn

    executor = ServiceExecutor(max_workers=1, queue_capacity=2)
    assert executor.in_flight == 0
    assert not executor.saturated()

    outcome = {}

    def submit():
        outcome["results"] = executor.run(
            make_units(5, fn_for), on_queue_full=saw.append
        )

    thread = threading.Thread(target=submit)
    thread.start()
    time.sleep(0.05)  # let submission hit the bounded queue
    # The queue is full: the probe reports saturation and the hook fired
    # with the in-flight count, before the submission blocked.
    assert executor.saturated()
    assert executor.in_flight == 2
    release.set()
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert [r.value for r in outcome["results"]] == list(range(5))
    assert len(saw) == executor.last_report.backpressure_waits
    assert saw and all(count >= 1 for count in saw)
    assert not executor.saturated()
    executor.shutdown()
