"""Cross-module integration tests.

These exercise realistic end-to-end paths: dataset generator → pipeline →
application → reporting, the public package namespace, and consistency between
the different ways of computing the same answer (stand-alone algorithm,
single-GPU pipeline, multi-GPU pipeline).
"""

import numpy as np
import pytest

import repro
from repro import DrTopK, DrTopKConfig, drtopk, topk
from repro.datasets import get_dataset
from repro.distributed import MultiGpuDrTopK
from repro.gpusim.profiler import Profiler
from repro.harness import format_table, run_experiment
from tests.helpers import assert_topk_correct


class TestPublicNamespace:
    def test_version_exposed(self):
        assert repro.__version__.count(".") == 2

    def test_all_symbols_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_docstring_example_runs(self):
        v = np.random.default_rng(0).integers(0, 2**32, size=1 << 14, dtype=np.uint32)
        result = drtopk(v, k=64)
        assert np.array_equal(np.sort(result.values), np.sort(v)[-64:])


class TestConsistencyAcrossEngines:
    @pytest.mark.parametrize("dataset", ["UD", "ND", "CD", "AN", "CW", "TR"])
    def test_all_engines_agree_on_every_dataset(self, dataset):
        spec = get_dataset(dataset)
        v = spec.generate(1 << 14, seed=99)
        k = 200
        largest = spec.largest
        reference = np.sort(topk(v, k, largest=largest, algorithm="sortchoose").values)
        single = np.sort(DrTopK().topk(v, k, largest=largest).values)
        multi = np.sort(
            MultiGpuDrTopK(num_gpus=3, capacity_elements=1 << 12).topk(v, k, largest=largest).values
        )
        np.testing.assert_array_equal(reference, single)
        np.testing.assert_array_equal(reference, multi)

    def test_every_algorithm_pairing_inside_pipeline(self, uniform_u32):
        """The first and second top-k can use different algorithms."""
        cfg = DrTopKConfig(first_algorithm="bucket", second_algorithm="bitonic")
        result = DrTopK(cfg).topk(uniform_u32, 128)
        assert_topk_correct(result, uniform_u32, 128)

    def test_repeated_queries_share_engine(self, uniform_u32):
        engine = DrTopK()
        for k in (1, 10, 100, 1000):
            assert_topk_correct(engine.topk(uniform_u32, k), uniform_u32, k)


class TestProfilerIntegration:
    def test_pipeline_trace_feeds_profiler(self, uniform_u32):
        engine = DrTopK()
        engine.topk(uniform_u32, 256)
        profiler = Profiler()
        profiler.record_all(engine.last_trace.steps)
        report = profiler.report()
        for step in ("delegate_construction", "first_topk", "concatenation", "second_topk"):
            assert step in report
        assert profiler.load_transactions() > 0

    def test_harness_rows_render(self):
        rows = run_experiment("fig21", n=1 << 14, ks=[16, 256], include_paper_scale=False)
        text = format_table(rows, title="fig21")
        assert "total_fraction" in text
        assert len(text.splitlines()) == len(rows) + 3


class TestHeadlineClaims:
    def test_workload_reduction_above_99_percent_at_scale(self):
        """The abstract's claim: delegate machinery removes >99% of the work
        (holds from ~2^20 elements upward for moderate k)."""
        v = get_dataset("UD").generate(1 << 20, seed=1)
        stats = drtopk(v, 256).stats
        assert stats.reduction_fraction > 0.99

    def test_drtopk_never_does_more_memory_work_than_sortchoose(self, uniform_u32):
        from repro.algorithms.base import ExecutionTrace
        from repro.algorithms import get_algorithm

        trace = ExecutionTrace()
        get_algorithm("sortchoose").topk(uniform_u32, 512, trace=trace)
        engine = DrTopK()
        engine.topk(uniform_u32, 512)
        assert (
            engine.last_trace.total_counters().global_bytes
            < trace.total_counters().global_bytes
        )

    def test_stability_across_distributions(self):
        """Dr. Top-k's workload is value-distribution independent (Section 3):
        for fixed |V| and k the delegate vector size is identical and the
        concatenated vector stays within a small band across UD/ND/CD."""
        k = 512
        sizes = {}
        for name in ("UD", "ND", "CD"):
            v = get_dataset(name).generate(1 << 16, seed=5)
            stats = drtopk(v, k).stats
            sizes[name] = stats
        delegate_sizes = {s.delegate_vector_size for s in sizes.values()}
        assert len(delegate_sizes) == 1
        concat = [s.concatenated_size for s in sizes.values()]
        assert max(concat) < 10 * max(min(concat), 1)
