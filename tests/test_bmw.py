"""Tests for the posting-list substrate and the WAND / Block-Max WAND searcher."""

import numpy as np
import pytest

from repro.bmw import (
    BMWSearcher,
    InvertedIndex,
    PostingList,
    bmw_vector_workload,
    build_corpus_index,
)
from repro.datasets.synthetic import normal_distribution, uniform_distribution
from repro.errors import ConfigurationError


class TestPostingList:
    def test_sorted_by_doc_id(self):
        pl = PostingList([5, 1, 3], [1.0, 2.0, 3.0], block_size=2)
        np.testing.assert_array_equal(pl.doc_ids, [1, 3, 5])
        np.testing.assert_array_equal(pl.scores, [2.0, 3.0, 1.0])

    def test_blocks_and_block_max(self):
        pl = PostingList(range(10), [float(i) for i in range(10)], block_size=4)
        assert len(pl.blocks) == 3
        assert pl.blocks[0].max_score == 3.0
        assert pl.blocks[2].max_score == 9.0
        assert len(pl.blocks[2]) == 2

    def test_block_of_and_seek(self):
        pl = PostingList(range(0, 20, 2), [1.0] * 10, block_size=4)
        assert pl.block_of(5).start == 4
        assert pl.seek(0, 7) == 4  # first posting with doc id >= 7 is doc 8
        assert pl.doc_at(pl.seek(0, 8)) == 8

    def test_max_score(self):
        pl = PostingList([1, 2], [3.0, 7.0])
        assert pl.max_score == 7.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PostingList([], [])
        with pytest.raises(ConfigurationError):
            PostingList([1, 2], [1.0])
        with pytest.raises(ConfigurationError):
            PostingList([1, 1], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            PostingList([1], [1.0], block_size=0)


class TestInvertedIndex:
    def test_terms_and_lookup(self):
        idx = build_corpus_index(500, ["a", "b"], seed=1)
        assert idx.terms() == ("a", "b")
        assert "a" in idx and "z" not in idx
        assert idx.num_documents <= 500

    def test_unknown_term(self):
        idx = build_corpus_index(100, ["a"], seed=1)
        with pytest.raises(ConfigurationError):
            idx["missing"]

    def test_empty_index_rejected(self):
        with pytest.raises(ConfigurationError):
            InvertedIndex({})


def brute_force_scores(index, terms):
    """Oracle: summed score per document over the query terms."""
    scores = {}
    for t in terms:
        pl = index[t]
        for doc, s in zip(pl.doc_ids.tolist(), pl.scores.tolist()):
            scores[doc] = scores.get(doc, 0.0) + s
    return scores


class TestBMWSearcher:
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_matches_brute_force(self, k):
        idx = build_corpus_index(800, ["the", "search", "engine"], density=0.4, seed=7)
        result = BMWSearcher(idx).search(["the", "search", "engine"], k)
        oracle = brute_force_scores(idx, ["the", "search", "engine"])
        expected = sorted(oracle.values(), reverse=True)[:k]
        assert result.scores == pytest.approx(expected)

    def test_single_term_query(self):
        idx = build_corpus_index(300, ["only"], density=0.5, seed=3)
        result = BMWSearcher(idx).search(["only"], 10)
        oracle = brute_force_scores(idx, ["only"])
        assert result.scores == pytest.approx(sorted(oracle.values(), reverse=True)[:10])

    def test_pruning_skips_documents(self):
        idx = build_corpus_index(3000, ["a", "b"], density=0.5, seed=5)
        result = BMWSearcher(idx).search(["a", "b"], 10)
        c = result.counters
        assert c.fully_evaluated < 3000
        assert c.blockmax_skipped + c.wand_skipped > 0
        assert c.total_considered > 0

    def test_empty_query_rejected(self):
        idx = build_corpus_index(100, ["a"], seed=1)
        with pytest.raises(ConfigurationError):
            BMWSearcher(idx).search([], 5)


class TestVectorWorkload:
    def test_counts_cover_whole_vector(self):
        v = uniform_distribution(1 << 14, seed=1)
        c = bmw_vector_workload(v, 128, block_size=256)
        assert c.fully_evaluated + c.blockmax_skipped == v.shape[0]

    def test_skips_grow_as_threshold_rises(self):
        v = uniform_distribution(1 << 15, seed=2)
        c_small_k = bmw_vector_workload(v, 16, block_size=256)
        c_large_k = bmw_vector_workload(v, 4096, block_size=256)
        assert c_small_k.blockmax_skipped > c_large_k.blockmax_skipped

    def test_narrow_distribution_evaluates_most_blocks(self):
        """The Figure 24 effect: on ND the block maxima tie with the threshold
        so the vast majority of the vector is still fully evaluated."""
        n, k = 1 << 15, 256
        nd = normal_distribution(n, seed=3)
        c_nd = bmw_vector_workload(nd, k, block_size=256)
        assert c_nd.fully_evaluated > 0.9 * n

    def test_bmw_workload_exceeds_drtopk_workload(self):
        from repro.core.drtopk import drtopk

        v = uniform_distribution(1 << 15, seed=4)
        k = 64
        stats = drtopk(v, k).stats
        c = bmw_vector_workload(v, k, block_size=stats.subrange_size)
        assert c.fully_evaluated > stats.total_workload

    def test_invalid_block_size(self):
        with pytest.raises(ConfigurationError):
            bmw_vector_workload(np.arange(10, dtype=np.uint32), 2, block_size=0)
