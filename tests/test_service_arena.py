"""ScratchArena: pooling semantics, limits, and concurrency safety.

The arena hands the fused hot path reusable gather/filter temporaries; the
properties that must hold are (a) a borrowed buffer is exclusively the
borrower's until its scope closes — no aliasing between concurrent in-flight
results, even under the same hammer loads the service tests use — and
(b) the global ledger's counters stay consistent after every thread
quiesces.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.service.dispatcher import ServiceDispatcher
from repro.service.fusion import (
    ScratchArena,
    arena_info,
    reset_arenas,
    thread_arena,
)


class TestScratchArenaUnit:
    def test_miss_then_hit(self):
        arena = ScratchArena()
        with arena.scope():
            first = arena.take((128,), np.float32)
            assert first.shape == (128,) and first.dtype == np.float32
        with arena.scope():
            again = arena.take((128,), np.float32)
            assert again.shape == (128,)
        assert arena.misses >= 1
        assert arena.hits >= 1

    def test_resize_reuses_backing_bucket(self):
        arena = ScratchArena()
        with arena.scope():
            arena.take((64,), np.int64)
        with arena.scope():
            big = arena.take((4096,), np.int64)
            assert big.shape == (4096,)
        assert arena.resizes == 1

    def test_distinct_takes_never_alias_within_scope(self):
        arena = ScratchArena()
        with arena.scope():
            a = arena.take((256,), np.int32)
            b = arena.take((256,), np.int32)
            a[:] = 1
            b[:] = 2
            assert not np.shares_memory(a, b)
            np.testing.assert_array_equal(a, np.ones(256, dtype=np.int32))

    def test_take_outside_scope_is_plain_allocation(self):
        arena = ScratchArena()
        buf = arena.take((32,), np.float64)
        assert buf.shape == (32,)
        assert arena.held_bytes == 0  # nothing was pooled

    def test_limit_trims_largest_first(self):
        arena = ScratchArena(limit_bytes=1024)
        with arena.scope():
            arena.take((4096,), np.int64)  # 32 KiB, over the limit
            arena.take((16,), np.int64)
        assert arena.held_bytes <= 1024

    def test_clear_resets_everything(self):
        arena = ScratchArena()
        with arena.scope():
            arena.take((64,), np.float32)
        arena.clear()
        assert arena.hits == arena.misses == arena.resizes == 0
        assert arena.held_bytes == 0

    def test_info_counts_are_consistent(self):
        arena = ScratchArena()
        with arena.scope():
            for _ in range(5):
                arena.take((100,), np.float32)
        info = arena.info()
        assert info.takes == info.hits + info.misses + info.resizes == 5


class TestThreadArenas:
    def test_thread_arena_is_per_thread(self):
        reset_arenas()
        seen = {}

        def grab(name):
            seen[name] = id(thread_arena())

        threads = [
            threading.Thread(target=grab, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen.values())) == 3

    def test_ledger_consistent_after_concurrent_hammer(self):
        """No aliasing between in-flight results; counters add up at quiesce.

        Each worker thread borrows buffers, stamps them with a thread-unique
        pattern, yields the scheduler, and verifies the pattern survived —
        any cross-thread aliasing of pooled buffers would corrupt it.
        """
        reset_arenas()
        errors = []
        rounds = 50

        def hammer(stamp):
            try:
                arena = thread_arena()
                for i in range(rounds):
                    with arena.scope():
                        bufs = [
                            arena.take((257,), np.int64),
                            arena.take((63,), np.int64),
                        ]
                        for b in bufs:
                            b[:] = stamp * 100_000 + i
                        for b in bufs:
                            assert int(b[0]) == stamp * 100_000 + i
                            assert (b == b[0]).all()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        info = arena_info()
        assert info.takes == info.hits + info.misses + info.resizes
        assert info.takes >= 8 * rounds * 2
        assert info.arenas >= 8

    def test_concurrent_dispatches_return_exact_results(self, rng):
        """The service-level hammer: parallel fused dispatches stay exact."""
        n = 1 << 13
        v = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        queries = [(64, True)] * 4 + [(17, False), (300, True)]
        with ServiceDispatcher(num_workers=4, result_cache_capacity=0) as d:
            expected = d.dispatch(v, queries)
            errors = []

            def worker():
                try:
                    for _ in range(5):
                        got = d.dispatch(v, queries)
                        for a, b in zip(got, expected):
                            np.testing.assert_array_equal(a.values, b.values)
                            np.testing.assert_array_equal(a.indices, b.indices)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
        info = arena_info()
        assert info.takes == info.hits + info.misses + info.resizes

    def test_dispatch_report_surfaces_arena_deltas(self, rng):
        reset_arenas()
        n = 1 << 14
        v = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        with ServiceDispatcher(num_workers=1, result_cache_capacity=0) as d:
            d.dispatch(v, [(100, True)] * 8)
            first = d.last_report
            d.dispatch(v, [(100, True)] * 8)
            second = d.last_report
        assert first is not None and second is not None
        assert first.arena is not None
        assert first.arena_misses > 0  # cold pools allocate
        assert second.arena_hits > 0  # warm dispatch reuses them
