"""Docstring coverage of the public ``repro.service`` API.

CI enforces the ruff pydocstyle ``D1xx`` subset on ``src/repro/service/``
(see ``pyproject.toml``); this test mirrors the same rule via introspection
so the gate also holds in environments without ruff installed.  The covered
subset: every public module (D100), public class (D101), public
method (D102), public function (D103) and the package itself (D104) must
carry a docstring.  Magic methods (D105) and ``__init__`` (D107) are
exempt, matching the configured ignores.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro.service

MODULES = sorted(
    name
    for _, name, _ in pkgutil.iter_modules(
        repro.service.__path__, prefix="repro.service."
    )
    if not name.rsplit(".", 1)[-1].startswith("_")
)


def _public_members(module):
    """(qualname, object) pairs the D1xx subset applies to in one module."""
    members = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented where it is defined
        members.append((f"{module.__name__}.{name}", obj))
        if inspect.isclass(obj):
            for mname, mobj in vars(obj).items():
                if mname.startswith("_"):
                    continue  # dunders are D105/D107, exempt
                if isinstance(mobj, property):
                    members.append((f"{module.__name__}.{name}.{mname}", mobj.fget))
                elif inspect.isfunction(mobj):
                    members.append((f"{module.__name__}.{name}.{mname}", mobj))
                elif isinstance(mobj, (classmethod, staticmethod)):
                    members.append((f"{module.__name__}.{name}.{mname}", mobj.__func__))
    return members


def test_package_has_docstring():
    assert repro.service.__doc__ and repro.service.__doc__.strip()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_and_public_symbols_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name}: missing module docstring"
    undocumented = [
        qualname
        for qualname, obj in _public_members(module)
        if not (getattr(obj, "__doc__", None) or "").strip()
    ]
    assert not undocumented, (
        f"undocumented public symbols (ruff D1xx would fail): {undocumented}"
    )
