"""reprolint's own test suite: fixtures, the real tree, and the CI mirror.

Three layers:

1. Fixture corpus (``tests/reprolint_fixtures/``): each known-bad snippet
   is caught by exactly its intended rule, the clean corpus yields zero
   findings, and waiver accounting (used / reason-less) behaves.
2. Real tree: ``--strict`` semantics hold on the repository itself — no
   unwaived findings, every waiver reasoned, the lock-order graph covers
   the serving locks and is acyclic — and deleting a glossary row makes
   the drift rule fire.
3. CI mirror: the exact command the ``staticcheck`` job runs, plus the
   mypy gate (skipped when mypy is not installed locally).
"""

import ast
import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import LintConfig, run  # noqa: E402
from tools.reprolint.frozen import FrozenPass  # noqa: E402
from tools.reprolint.glossary import GlossaryPass  # noqa: E402
from tools.reprolint.hygiene import run_hygiene  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "reprolint_fixtures"

BAD_CONFIG = dict(
    root=FIXTURES,
    scan_globs=("bad/*.py",),
    hot_functions=("bad.hot_alloc:hot_fn",),
    glossary_classes={"WidgetReport": "bad/report_drift.py"},
    glossary_doc="bad/glossary.md",
    check_hygiene=False,
)

CLEAN_CONFIG = dict(
    root=FIXTURES,
    scan_globs=("clean/*.py",),
    hot_functions=("clean.hot_clean:hot_fn",),
    glossary_classes={"WidgetReport": "clean/report_clean.py"},
    glossary_doc="clean/glossary.md",
    check_hygiene=False,
)

WAIVED_CONFIG = dict(
    root=FIXTURES,
    scan_globs=("waived/*.py",),
    hot_functions=(),
    glossary_classes={},
    glossary_doc="clean/glossary.md",
    check_hygiene=False,
)


# ---------------------------------------------------------------------------
# 1. Fixture corpus
# ---------------------------------------------------------------------------


class TestBadCorpus:
    EXPECTED = {
        "LOCK001": "bad/unguarded_write.py",
        "LOCK002": "bad/callback_under_lock.py",
        "LOCK003": "bad/lock_cycle.py",
        "HOT001": "bad/hot_alloc.py",
        "DOC001": "bad/glossary.md",
        "FRZ001": "bad/frozen_mutation.py",
    }

    @pytest.fixture(scope="class")
    def report(self):
        return run(LintConfig(**BAD_CONFIG))

    def test_exactly_six_findings(self, report):
        assert len(report.findings) == len(self.EXPECTED), [
            f.format() for f in report.findings
        ]

    @pytest.mark.parametrize("rule", sorted(EXPECTED))
    def test_rule_fires_exactly_once_in_intended_file(self, report, rule):
        hits = [f for f in report.findings if f.rule == rule]
        assert len(hits) == 1, [f.format() for f in report.findings]
        assert hits[0].path == self.EXPECTED[rule]
        assert not hits[0].waived

    def test_lock_cycle_names_both_locks(self, report):
        (cycle,) = [f for f in report.findings if f.rule == "LOCK003"]
        assert "Left._lock" in cycle.message and "Right._lock" in cycle.message
        assert report.lock_graph is not None and report.lock_graph.cycles

    def test_stale_glossary_row_is_the_drift(self, report):
        (drift,) = [f for f in report.findings if f.rule == "DOC001"]
        assert "retired" in drift.message

    def test_strict_semantics_would_fail(self, report):
        assert report.unwaived, "bad corpus must not be strict-clean"


def test_clean_corpus_zero_findings():
    report = run(LintConfig(**CLEAN_CONFIG))
    assert report.findings == [], [f.format() for f in report.findings]
    assert report.files_scanned == 4


def test_clean_corpus_lock_graph_is_acyclic_with_expected_edge():
    report = run(LintConfig(**CLEAN_CONFIG))
    graph = report.lock_graph
    assert graph is not None and not graph.cycles
    assert ("Front._lock", "Back._lock") in {(a, b) for a, b, _, _ in graph.edges}


class TestWaiverAccounting:
    @pytest.fixture(scope="class")
    def report(self):
        return run(LintConfig(**WAIVED_CONFIG))

    def test_finding_is_waived_with_reason(self, report):
        (finding,) = report.findings
        assert finding.rule == "LOCK001" and finding.waived
        assert finding.waive_reason == "monitoring read tolerates staleness"
        assert report.unwaived == []

    def test_used_waiver_is_recorded(self, report):
        used = [w for w in report.waivers if w.used]
        assert [w.path for w in used] == ["waived/waived_write.py"]
        assert used[0].rules == ["LOCK001"]

    def test_reasonless_waiver_fails_strict(self, report):
        reasonless = report.reasonless_waivers
        assert [w.path for w in reasonless] == ["waived/reasonless.py"]

    def test_summary_accounts_for_waivers(self, report):
        counts = report.rule_counts()
        assert counts["LOCK001"] == {"total": 1, "waived": 1}


def test_frz002_sealed_array_mutation_is_flagged():
    source = (
        "import numpy as np\n"
        "def seal(a):\n"
        "    a.setflags(write=False)\n"
        "    a[0] = 1\n"
    )
    findings = FrozenPass().run("snippet.py", ast.parse(source))
    assert [f.rule for f in findings] == ["FRZ002"]
    assert findings[0].line == 4


# ---------------------------------------------------------------------------
# 2. The real tree
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tree_report():
    return run(LintConfig(root=REPO_ROOT))


def test_real_tree_is_strict_clean(tree_report):
    """Mirror of CI's `python -m tools.reprolint --strict` gate."""
    assert tree_report.unwaived == [], [
        f.format() for f in tree_report.unwaived
    ]
    assert tree_report.reasonless_waivers == []
    assert tree_report.files_scanned > 50


def test_real_tree_every_waiver_is_used_and_reasoned(tree_report):
    for waiver in tree_report.waivers:
        assert waiver.reason, f"{waiver.path}:{waiver.line} has no reason"
        assert waiver.used, f"{waiver.path}:{waiver.line} waives nothing"


def test_real_tree_lock_graph_covers_serving_locks(tree_report):
    graph = tree_report.lock_graph
    assert graph is not None
    for lock in (
        "VectorStore._lock",
        "SpillDirectory._mutex",
        "PartitionCache._lock",
        "ResultCache._lock",
        "_ByteBudgetLru._lock",
    ):
        assert lock in graph.nodes, f"{lock} missing from {sorted(graph.nodes)}"


def test_real_tree_lock_graph_expected_edges_and_acyclic(tree_report):
    graph = tree_report.lock_graph
    pairs = {(a, b) for a, b, _, _ in graph.edges}
    assert ("VectorStore._lock", "SpillDirectory._mutex") in pairs
    assert ("PlanBank._build_lock()", "_ByteBudgetLru._lock") in pairs
    assert graph.cycles == [], graph.render()


def test_deleting_a_glossary_row_fails_drift_check(tmp_path):
    doc = (REPO_ROOT / "docs" / "operations.md").read_text()
    lines = [ln for ln in doc.splitlines() if not ln.startswith("| `num_queries`")]
    assert len(lines) < len(doc.splitlines()), "fixture row not found"
    mutated = tmp_path / "operations.md"
    mutated.write_text("\n".join(lines) + "\n")
    config = LintConfig(
        root=REPO_ROOT,
        glossary_classes={"DispatchReport": "src/repro/service/dispatcher.py"},
        glossary_doc=str(mutated),
    )
    findings = GlossaryPass(config).run({})
    assert any(
        f.rule == "DOC001" and "num_queries" in f.message for f in findings
    ), [f.format() for f in findings]


def test_hygiene_no_tracked_compiled_artifacts():
    findings = run_hygiene(LintConfig(root=REPO_ROOT))
    assert findings == [], [f.format() for f in findings]


# ---------------------------------------------------------------------------
# 3. CI mirror
# ---------------------------------------------------------------------------


def test_cli_strict_mirrors_ci(tmp_path):
    """The exact staticcheck invocation must exit 0 and emit the report."""
    out = tmp_path / "reprolint_report.json"
    proc = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "--strict", "--json", str(out)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(out.read_text())
    assert all(f["waived"] for f in payload["findings"])
    assert payload["lock_graph"]["cycles"] == []


def test_cli_strict_fails_on_bad_corpus():
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.reprolint",
            "--strict",
            "--no-hygiene",
            "--root",
            str(FIXTURES),
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    # The fixture root has no src/repro tree, so the default scan finds no
    # files — but the missing glossary doc alone must fail strict mode.
    assert proc.returncode == 1, proc.stdout + proc.stderr


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed in this environment (CI installs it)",
)
def test_mypy_strict_service_mirrors_ci():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
