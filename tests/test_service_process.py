"""Process executor mode: shared-memory round-trips, fallbacks, lifecycle.

Process mode must (a) answer exactly what thread mode answers, (b) move the
admitted vector across the process boundary **once** — at admission, into a
shared-memory segment whose picklable ref is dozens of bytes — and (c)
degrade to threads, never error, when a run's units close over unpicklable
state.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.distributed.multigpu import MultiGpuDrTopK
from repro.errors import ConfigurationError
from repro.service.batch import TopKQuery
from repro.service.dispatcher import ServiceDispatcher
from repro.service.executor import ProcessTask, ServiceExecutor, WorkUnit
from repro.service.sharedmem import SharedArray, SharedArrayRef, attached


class TestSharedArray:
    def test_ref_is_tiny_and_picklable(self, rng):
        v = rng.standard_normal(1 << 14).astype(np.float32)
        shared = SharedArray.create(v)
        try:
            blob = pickle.dumps(shared.ref)
            assert len(blob) < 512  # the handle, not the vector
            assert shared.ref.nbytes == v.nbytes
        finally:
            shared.destroy()

    def test_attached_view_sees_owner_content(self, rng):
        v = rng.integers(0, 2**32, size=4096, dtype=np.uint32)
        shared = SharedArray.create(v)
        try:
            with attached(shared.ref) as view:
                np.testing.assert_array_equal(view, v)
                assert not view.flags.writeable
        finally:
            shared.destroy()

    def test_destroy_is_idempotent(self, rng):
        shared = SharedArray.create(np.arange(16, dtype=np.int64))
        shared.destroy()
        shared.destroy()  # no error
        with pytest.raises(FileNotFoundError):
            with attached(SharedArrayRef(shared.ref.name, (16,), "<i8")):
                pass

    def test_empty_array_is_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedArray.create(np.empty(0, dtype=np.float32))


class TestProcessExecutor:
    def test_process_task_round_trip(self):
        with ServiceExecutor(max_workers=2, mode="process") as ex:
            units = [
                WorkUnit(fn=lambda: None, task=ProcessTask(fn=divmod, args=(17, 5)))
                for _ in range(4)
            ]
            results = ex.run(units)
            assert [r.value for r in results] == [(3, 2)] * 4
            assert ex.last_report is not None
            assert ex.last_report.process_units == 4
            assert ex.last_report.process_fallbacks == 0

    def test_unpicklable_unit_falls_back_to_threads(self):
        state = {"x": 41}
        with ServiceExecutor(max_workers=2, mode="process") as ex:
            # A closure over live state carries no task: the whole run must
            # fall back to threads and still answer.
            results = ex.run([WorkUnit(fn=lambda: state["x"] + 1)])
            assert results[0].value == 42
            assert ex.last_report is not None
            assert ex.last_report.process_fallbacks == 1
            assert ex.last_report.process_units == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceExecutor(mode="fibers")

    def test_worker_error_propagates(self):
        with ServiceExecutor(max_workers=1, mode="process") as ex:
            with pytest.raises(ZeroDivisionError):
                ex.run(
                    [WorkUnit(fn=lambda: None, task=ProcessTask(fn=divmod, args=(1, 0)))]
                )


class TestShardedProcessMode:
    def test_fleet_round_trip_matches_sequential(self, rng):
        v = rng.standard_normal(1 << 15).astype(np.float32)
        queries = [TopKQuery(k=64), TopKQuery(k=100), TopKQuery(k=32, largest=False)]
        fleet = MultiGpuDrTopK(num_gpus=2, capacity_elements=1 << 14)
        base, _ = fleet.topk_batch(v, queries)
        shared = SharedArray.create(v)
        try:
            with ServiceExecutor(max_workers=2, mode="process") as ex:
                got, report = fleet.topk_batch(
                    v, queries, executor=ex, shared_ref=shared.ref
                )
                for a, b in zip(base, got):
                    np.testing.assert_array_equal(a.values, b.values)
                    np.testing.assert_array_equal(a.indices, b.indices)
                assert report.shared_memory_units == 2
                assert ex.last_report is not None
                assert ex.last_report.process_fallbacks == 0
        finally:
            shared.destroy()

    def test_dispatcher_process_mode_equals_threads(self, rng):
        n = 1 << 15
        v = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        ks = [64, 100, 32]
        with ServiceDispatcher(
            num_workers=2, capacity_elements=n // 2, execution="process"
        ) as dproc:
            dproc.admit("vec", v)
            got = dproc.query("vec", ks)
            report = dproc.last_report
            assert report is not None
            assert report.route == "sharded"
            assert report.shared_memory_units == 2
            assert report.process_units == 2
            assert report.process_fallbacks == 0
        with ServiceDispatcher(num_workers=2, capacity_elements=n // 2) as dthr:
            dthr.admit("vec", v)
            want = dthr.query("vec", ks)
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a.values, b.values)
            np.testing.assert_array_equal(a.indices, b.indices)

    def test_shared_segment_follows_eviction_and_shutdown(self, rng):
        n = 1 << 15
        v = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        d = ServiceDispatcher(
            num_workers=2, capacity_elements=n // 2, execution="process"
        )
        try:
            entry = d.admit("vec", v)
            assert entry.fingerprint in d._shared
            ref = d._shared[entry.fingerprint].ref
            d.evict("vec")
            assert entry.fingerprint not in d._shared
            with pytest.raises(FileNotFoundError):
                with attached(ref):
                    pass
            # Re-admit, then shutdown must release the segment too.
            entry = d.admit("vec", v)
            ref = d._shared[entry.fingerprint].ref
        finally:
            d.shutdown()
        assert not d._shared
        with pytest.raises(FileNotFoundError):
            with attached(ref):
                pass

    def test_anonymous_process_dispatch_falls_back(self, rng):
        """No admission means no shared segment: the run degrades to threads."""
        n = 1 << 15
        v = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        with ServiceDispatcher(
            num_workers=2, capacity_elements=n // 2, execution="process"
        ) as d:
            results = d.dispatch(v, [(64, True)])
            report = d.last_report
            assert report is not None
            assert report.process_fallbacks == 1
            assert report.shared_memory_units == 0
        assert len(results) == 1
