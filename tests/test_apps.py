"""Tests for the end-to-end applications (kNN, degree centrality, tweet ranking)."""

import networkx as nx
import numpy as np
import pytest

from repro.apps import (
    KNNSearch,
    degree_centrality_report,
    knn_search,
    least_fearful_tweets,
    most_fearful_tweets,
    top_degree_nodes,
)
from repro.datasets.ann import SiftLikeDataset
from repro.datasets.twitter import covid_fear_scores
from repro.errors import ConfigurationError


class TestKNN:
    def test_query_returns_nearest(self):
        searcher = KNNSearch.from_random(2000, seed=1)
        result = searcher.query(None, 10)
        distances = searcher.dataset.distances_from()
        expected = np.sort(distances)[:10]
        np.testing.assert_array_equal(np.sort(result.values), expected)
        # The query vector itself (distance 0) must be among the neighbours.
        assert 0 in result.indices

    def test_values_ascending(self):
        searcher = KNNSearch.from_random(1000, seed=2)
        result = searcher.query(None, 25)
        assert np.all(np.diff(result.values.astype(np.int64)) >= 0)

    def test_explicit_query_vector(self):
        searcher = KNNSearch.from_random(500, seed=3)
        q = searcher.dataset.vectors[42]
        result = searcher.query(q, 5)
        assert 42 in result.indices

    def test_one_shot_helper(self):
        ds = SiftLikeDataset.generate(300, seed=4)
        result = knn_search(ds.vectors, ds.vectors[7], 3)
        assert 7 in result.indices

    def test_invalid_k(self):
        searcher = KNNSearch.from_random(100, seed=5)
        with pytest.raises(ConfigurationError):
            searcher.query(None, 0)
        with pytest.raises(ConfigurationError):
            searcher.query(None, 101)


class TestDegreeCentrality:
    def test_star_graph_center_wins(self):
        g = nx.star_graph(50)  # node 0 connected to 1..50
        result = top_degree_nodes(g, 1)
        assert result.indices[0] == 0
        assert result.values[0] == 50

    def test_matches_networkx_ranking(self):
        g = nx.barabasi_albert_graph(500, 3, seed=1)
        result = top_degree_nodes(g, 10)
        degrees = np.array([d for _, d in g.degree()])
        np.testing.assert_array_equal(np.sort(result.values), np.sort(degrees)[-10:])

    def test_accepts_degree_array(self):
        degrees = np.array([5, 1, 9, 9, 2], dtype=np.uint32)
        result = top_degree_nodes(degrees, 2)
        np.testing.assert_array_equal(np.sort(result.values), [9, 9])

    def test_report_mapping(self):
        degrees = np.array([5, 1, 9], dtype=np.uint32)
        report = degree_centrality_report(degrees, 2)
        assert report == {2: 9, 0: 5}

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            top_degree_nodes(nx.Graph(), 1)

    def test_bad_degree_input(self):
        with pytest.raises(ConfigurationError):
            top_degree_nodes(np.zeros((2, 2)), 1)


class TestTweetRanking:
    def test_least_fearful_are_minimum_scores(self):
        scores = covid_fear_scores(20_000, seed=1)
        result = least_fearful_tweets(scores, 50)
        np.testing.assert_array_equal(np.sort(result.values), np.sort(scores)[:50])

    def test_most_fearful_are_maximum_scores(self):
        scores = covid_fear_scores(20_000, seed=2)
        result = most_fearful_tweets(scores, 50)
        np.testing.assert_array_equal(np.sort(result.values), np.sort(scores)[-50:])

    def test_least_and_most_disjoint_for_spread_scores(self):
        scores = np.arange(1000, dtype=np.uint32)
        least = set(least_fearful_tweets(scores, 10).indices.tolist())
        most = set(most_fearful_tweets(scores, 10).indices.tolist())
        assert not least & most
