"""Property-based tests of the Dr. Top-k pipeline invariants.

The pipeline must produce exactly the same value multiset as a full sort for
*every* combination of input data, k, beta, filtering switches and alpha —
including adversarial tie patterns, because the delegate rules (Rules 1-3)
are the part of the system where a subtle tie-handling bug could silently
prune a correct answer.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.config import DrTopKConfig
from repro.core.drtopk import DrTopK, drtopk
from tests.helpers import assert_topk_correct

vectors = hnp.arrays(
    dtype=np.uint32,
    shape=st.integers(min_value=2, max_value=600),
    elements=st.integers(min_value=0, max_value=2**32 - 1),
)

tie_heavy_vectors = hnp.arrays(
    dtype=np.uint32,
    shape=st.integers(min_value=2, max_value=400),
    elements=st.integers(min_value=0, max_value=4),
)


class TestPipelineProperties:
    @settings(max_examples=60, deadline=None)
    @given(v=vectors, data=st.data())
    def test_matches_oracle(self, v, data):
        k = data.draw(st.integers(1, v.shape[0]))
        beta = data.draw(st.integers(1, 3))
        use_filtering = data.draw(st.booleans())
        result = drtopk(v, k, beta=beta, use_filtering=use_filtering)
        assert_topk_correct(result, v, k)

    @settings(max_examples=60, deadline=None)
    @given(v=tie_heavy_vectors, data=st.data())
    def test_ties_never_prune_answers(self, v, data):
        k = data.draw(st.integers(1, v.shape[0]))
        beta = data.draw(st.integers(1, 3))
        result = drtopk(v, k, beta=beta)
        assert_topk_correct(result, v, k)

    @settings(max_examples=40, deadline=None)
    @given(v=vectors, data=st.data())
    def test_explicit_alpha_never_changes_answer(self, v, data):
        k = data.draw(st.integers(1, v.shape[0]))
        max_alpha = int(np.floor(np.log2(v.shape[0])))
        alpha = data.draw(st.integers(0, max_alpha))
        expected = np.sort(drtopk(v, k).values)
        got = np.sort(drtopk(v, k, alpha=alpha).values)
        np.testing.assert_array_equal(expected, got)

    @settings(max_examples=40, deadline=None)
    @given(v=vectors, data=st.data())
    def test_largest_smallest_duality(self, v, data):
        k = data.draw(st.integers(1, v.shape[0]))
        smallest = drtopk(v, k, largest=False)
        negated = drtopk((2**32 - 1) - v, k, largest=True)
        np.testing.assert_array_equal(
            np.sort(smallest.values), np.sort((2**32 - 1) - negated.values)
        )

    @settings(max_examples=40, deadline=None)
    @given(v=vectors, data=st.data())
    def test_workload_invariants(self, v, data):
        k = data.draw(st.integers(1, v.shape[0]))
        result = DrTopK(DrTopKConfig()).topk(v, k)
        stats = result.stats
        assert stats is not None
        # The delegate vector can never exceed the input, and the concatenated
        # vector is bounded by the input size.
        assert 0 <= stats.delegate_vector_size <= stats.input_size
        assert 0 <= stats.concatenated_size <= stats.input_size
        assert stats.fully_qualified_subranges <= stats.num_subranges
        assert 0.0 <= stats.workload_fraction <= 2.0
