"""End-to-end tests for the Dr. Top-k pipeline."""

import numpy as np
import pytest

from repro.core.config import ConstructionStrategy, DrTopKConfig
from repro.core.drtopk import DrTopK, drtopk
from repro.datasets.synthetic import customized_distribution, normal_distribution
from repro.errors import ConfigurationError
from repro.gpusim.device import TITAN_XP
from tests.helpers import assert_topk_correct


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 37, 512, 4000])
    def test_uniform(self, uniform_u32, k):
        assert_topk_correct(drtopk(uniform_u32, k), uniform_u32, k)

    @pytest.mark.parametrize("beta", [1, 2, 3, 4])
    def test_beta_variants(self, uniform_u32, beta):
        result = drtopk(uniform_u32, 200, beta=beta)
        assert_topk_correct(result, uniform_u32, 200)
        assert result.stats.beta == beta

    @pytest.mark.parametrize("use_filtering,use_beta_rule", [(False, False), (True, False), (False, True), (True, True)])
    def test_feature_toggles(self, uniform_u32, use_filtering, use_beta_rule):
        result = drtopk(
            uniform_u32, 300, use_filtering=use_filtering, use_beta_rule=use_beta_rule
        )
        assert_topk_correct(result, uniform_u32, 300)

    @pytest.mark.parametrize("algorithm", ["radix", "radix_flag", "radix_inplace", "bucket", "bitonic", "heap", "sortchoose"])
    def test_any_inner_algorithm(self, uniform_u32, algorithm):
        result = drtopk(
            uniform_u32, 100, first_algorithm=algorithm, second_algorithm=algorithm
        )
        assert_topk_correct(result, uniform_u32, 100)

    def test_smallest(self, uniform_u32):
        result = drtopk(uniform_u32, 64, largest=False)
        assert_topk_correct(result, uniform_u32, 64, largest=False)

    def test_float_input(self, rng):
        v = rng.normal(size=1 << 13)
        assert_topk_correct(drtopk(v, 99), v, 99)

    def test_signed_input(self, rng):
        v = rng.integers(-(2**31), 2**31, size=1 << 13, dtype=np.int64)
        assert_topk_correct(drtopk(v, 99), v, 99)

    def test_heavy_ties(self, tied_u32):
        assert_topk_correct(drtopk(tied_u32, 500), tied_u32, 500)

    def test_all_equal_values(self):
        v = np.full(1 << 12, 42, dtype=np.uint32)
        assert_topk_correct(drtopk(v, 100), v, 100)

    def test_normal_distribution(self):
        v = normal_distribution(1 << 14, seed=5)
        assert_topk_correct(drtopk(v, 333), v, 333)

    def test_customized_distribution(self):
        v = customized_distribution(1 << 14, seed=5)
        assert_topk_correct(drtopk(v, 333), v, 333)

    @pytest.mark.parametrize("n", [5, 17, 100, 1025])
    def test_small_inputs(self, rng, n):
        v = rng.integers(0, 1000, size=n, dtype=np.uint32)
        k = max(n // 3, 1)
        assert_topk_correct(drtopk(v, k), v, k)

    def test_explicit_alpha(self, uniform_u32):
        for alpha in (3, 6, 9):
            result = drtopk(uniform_u32, 128, alpha=alpha)
            assert_topk_correct(result, uniform_u32, 128)
            assert result.stats.alpha == alpha

    def test_non_power_of_two_length(self, rng):
        v = rng.integers(0, 2**32, size=12_345, dtype=np.uint32)
        assert_topk_correct(drtopk(v, 77), v, 77)

    @pytest.mark.parametrize("strategy", list(ConstructionStrategy))
    def test_construction_strategies(self, uniform_u32, strategy):
        result = drtopk(uniform_u32, 128, construction=strategy)
        assert_topk_correct(result, uniform_u32, 128)


class TestDegenerateAndSkipPaths:
    def test_degenerate_large_k(self, rng):
        """k close to n forces the plain-algorithm fallback."""
        v = rng.integers(0, 2**32, size=4096, dtype=np.uint32)
        result = drtopk(v, 4000)
        assert_topk_correct(result, v, 4000)
        assert result.stats.delegate_vector_size == 0

    def test_skip_second_topk_possible_for_tiny_k(self, uniform_u32):
        """With k=1 no subrange is ever fully taken (Figure 8b's shortcut)."""
        result = drtopk(uniform_u32, 1, beta=2)
        assert result.values[0] == uniform_u32.max()
        assert result.stats.second_topk_skipped
        assert result.stats.concatenated_size == 0

    def test_skip_disabled(self, uniform_u32):
        result = drtopk(uniform_u32, 1, beta=2, skip_second_when_possible=False)
        assert result.values[0] == uniform_u32.max()
        assert not result.stats.second_topk_skipped

    def test_kth_value(self, uniform_u32):
        assert DrTopK().kth_value(uniform_u32, 10) == np.sort(uniform_u32)[-10]


class TestConfigValidation:
    def test_invalid_beta(self):
        with pytest.raises(ConfigurationError):
            DrTopKConfig(beta=0)

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            DrTopKConfig(alpha=-3)

    def test_unknown_algorithm_rejected_eagerly(self):
        with pytest.raises(ConfigurationError):
            DrTopK(DrTopKConfig(first_algorithm="nope"))

    def test_string_strategy_coerced(self):
        cfg = DrTopKConfig(construction="warp_centric")
        assert cfg.construction is ConstructionStrategy.WARP_CENTRIC

    def test_replace_returns_new_config(self):
        cfg = DrTopKConfig()
        other = cfg.replace(beta=3)
        assert cfg.beta == 2 and other.beta == 3

    def test_invalid_k(self, uniform_u32):
        with pytest.raises(ConfigurationError):
            drtopk(uniform_u32, 0)
        with pytest.raises(ConfigurationError):
            drtopk(uniform_u32, uniform_u32.shape[0] + 1)


class TestStatsAndTrace:
    def test_workload_much_smaller_than_input(self, rng):
        """The headline claim: the delegate machinery prunes most of the work."""
        v = rng.integers(0, 2**32, size=1 << 16, dtype=np.uint32)
        result = drtopk(v, 64)
        stats = result.stats
        assert stats.total_workload < 0.2 * stats.input_size
        assert stats.reduction_fraction > 0.8

    def test_step_times_present(self, uniform_u32):
        stats = drtopk(uniform_u32, 128).stats
        assert {"delegate_construction", "first_topk", "concatenation", "second_topk"}.issubset(
            stats.step_times_ms
        )
        assert stats.total_time_ms > 0

    def test_trace_disabled(self, uniform_u32):
        result = drtopk(uniform_u32, 128, collect_trace=False)
        assert result.stats.step_times_ms == {}

    def test_device_affects_estimated_time(self, uniform_u32):
        fast = drtopk(uniform_u32, 128).stats.total_time_ms
        slow = drtopk(uniform_u32, 128, device=TITAN_XP).stats.total_time_ms
        assert slow > fast

    def test_alpha_auto_tuned_by_rule4(self, rng):
        v = rng.integers(0, 2**32, size=1 << 16, dtype=np.uint32)
        small_k = drtopk(v, 4).stats.alpha
        large_k = drtopk(v, 1 << 10).stats.alpha
        assert small_k > large_k  # Rule 4: alpha shrinks as k grows

    def test_filtering_reduces_concatenated_size(self, rng):
        v = rng.integers(0, 2**32, size=1 << 16, dtype=np.uint32)
        with_filter = drtopk(v, 1024, beta=1, use_filtering=True).stats.concatenated_size
        without = drtopk(v, 1024, beta=1, use_filtering=False).stats.concatenated_size
        assert with_filter < without

    def test_beta_rule_reduces_scanned_subranges(self, rng):
        v = rng.integers(0, 2**32, size=1 << 16, dtype=np.uint32)
        beta_on = drtopk(v, 1024, beta=2, use_beta_rule=True).stats.fully_qualified_subranges
        beta_off = drtopk(v, 1024, beta=2, use_beta_rule=False).stats.fully_qualified_subranges
        assert beta_on <= beta_off

    def test_qualified_counts_consistent(self, uniform_u32):
        stats = drtopk(uniform_u32, 256).stats
        assert stats.fully_qualified_subranges <= stats.qualified_subranges
        assert stats.qualified_subranges <= stats.num_subranges
