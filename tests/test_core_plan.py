"""Query plans: prepare/topk_prepared must match the one-shot pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DrTopKConfig
from repro.core.drtopk import DrTopK
from repro.core.plan import QueryPlan
from repro.errors import ConfigurationError

from tests.helpers import assert_topk_correct


def test_prepare_then_execute_matches_one_shot(uniform_u32):
    engine = DrTopK()
    for k in (1, 16, 500):
        plan = engine.prepare(uniform_u32, k)
        prepared = engine.topk_prepared(plan, k)
        one_shot = engine.topk(uniform_u32, k)
        np.testing.assert_array_equal(prepared.values, one_shot.values)
        np.testing.assert_array_equal(prepared.indices, one_shot.indices)


def test_plan_serves_multiple_ks(uniform_u32):
    engine = DrTopK()
    plan = engine.prepare(uniform_u32, 128)
    for k in (1, 64, 128):
        result = engine.topk_prepared(plan, k)
        assert_topk_correct(result, uniform_u32, k)


def test_plan_records_construction_traffic(uniform_u32):
    engine = DrTopK()
    plan = engine.prepare(uniform_u32, 64)
    assert not plan.is_degenerate
    assert plan.construction_bytes > 0
    assert plan.construction_ms() > 0
    # Construction reads the whole vector at least once.
    assert plan.construction_counters().global_loads >= uniform_u32.shape[0]


def test_uncharged_construction_excluded_from_query_trace(uniform_u32):
    engine = DrTopK()
    plan = engine.prepare(uniform_u32, 64)

    charged = engine.topk_prepared(plan, 64, charge_construction=True)
    assert "delegate_construction" in charged.stats.step_times_ms

    uncharged = engine.topk_prepared(plan, 64, charge_construction=False)
    assert "delegate_construction" not in uncharged.stats.step_times_ms
    np.testing.assert_array_equal(charged.values, uncharged.values)


def test_degenerate_plan_falls_back(uniform_u32):
    engine = DrTopK()
    n = uniform_u32.shape[0]
    plan = engine.prepare(uniform_u32, n)  # k == n cannot be pruned
    assert plan.is_degenerate
    assert plan.construction_bytes == 0
    result = engine.topk_prepared(plan, n)
    assert_topk_correct(result, uniform_u32, n)
    assert result.stats.delegate_vector_size == 0


def test_plan_answers_predicate(uniform_u32):
    engine = DrTopK()
    plan = engine.prepare(uniform_u32, 64)
    assert plan.answers(64)
    assert not plan.answers(uniform_u32.shape[0])


def test_plan_for_smallest_queries(uniform_u32):
    engine = DrTopK()
    plan = engine.prepare(uniform_u32, 32, largest=False)
    assert plan.largest is False
    result = engine.topk_prepared(plan, 32)
    assert_topk_correct(result, uniform_u32, 32, largest=False)


def test_prepare_with_alpha_respects_geometry(uniform_u32):
    engine = DrTopK()
    plan = engine.prepare_with_alpha(uniform_u32, alpha=6)
    assert isinstance(plan, QueryPlan)
    assert plan.alpha == 6
    assert plan.partition.subrange_size == 64
    result = engine.topk_prepared(plan, 10)
    assert_topk_correct(result, uniform_u32, 10)


def test_plan_without_trace_has_no_steps(uniform_u32):
    engine = DrTopK(DrTopKConfig(collect_trace=False))
    plan = engine.prepare(uniform_u32, 64)
    assert plan.construction_steps == []
    assert plan.construction_bytes == 0
    result = engine.topk_prepared(plan, 64)
    assert result.stats.step_times_ms == {}
    assert_topk_correct(result, uniform_u32, 64)


def test_topk_prepared_validates_k(uniform_u32):
    engine = DrTopK()
    plan = engine.prepare(uniform_u32, 16)
    with pytest.raises(ConfigurationError):
        engine.topk_prepared(plan, 0)
    with pytest.raises(ConfigurationError):
        engine.topk_prepared(plan, uniform_u32.shape[0] + 1)


def test_padded_view_memoised_and_shared_across_replace(uniform_u32):
    from dataclasses import replace

    engine = DrTopK()
    plan = engine.prepare(uniform_u32, 64)
    view = plan.padded_view()
    assert view is plan.padded_view()  # memoised
    assert view.shape == (plan.partition.num_subranges, plan.partition.subrange_size)
    # Offset clones (the sharded route re-anchors banked plans) share the
    # memoised views instead of re-padding.
    clone = replace(plan, offset=100)
    assert clone.padded_view() is view
    np.testing.assert_array_equal(
        clone.global_indices(np.array([0, 1])), np.array([100, 101])
    )


def test_plan_nbytes_accounts_views(uniform_u32):
    engine = DrTopK()
    plan = engine.prepare(uniform_u32, 64)
    base = plan.nbytes()
    assert base >= uniform_u32.nbytes * 2  # input vector + key vector
    # A partial final subrange forces a real padded copy; prepare
    # materialises it eagerly (construction needs it) and nbytes charges it.
    odd = uniform_u32[: (1 << 12) + 3]
    odd_plan = engine.prepare(odd, 16)
    assert odd_plan.partition.pad > 0
    assert odd_plan.views.padded is not None
    assert odd_plan.nbytes() >= odd.nbytes * 2 + odd_plan.views.padded.nbytes
