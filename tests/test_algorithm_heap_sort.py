"""Tests for the priority-queue and sort-and-choose baselines."""

import numpy as np
import pytest

from repro.algorithms.base import ExecutionTrace
from repro.algorithms.heap import HeapTopK
from repro.algorithms.sort_choose import SortAndChooseTopK
from tests.helpers import assert_topk_correct


class TestHeapTopK:
    def test_blocked_matches_reference(self, rng):
        v = rng.integers(0, 1000, size=5000, dtype=np.uint32)
        result = HeapTopK(block_size=512).topk(v, 25)
        reference = HeapTopK.reference_topk(v.tolist(), 25)
        np.testing.assert_array_equal(result.values, reference)

    def test_block_size_does_not_change_answer(self, uniform_u32):
        answers = [
            np.sort(HeapTopK(block_size=bs).topk(uniform_u32, 77).values)
            for bs in (64, 1000, 1 << 20)
        ]
        np.testing.assert_array_equal(answers[0], answers[1])
        np.testing.assert_array_equal(answers[0], answers[2])

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            HeapTopK(block_size=0)

    def test_reference_oracle_small(self):
        assert HeapTopK.reference_topk([5, 1, 9, 3], 2) == [9, 5]

    def test_trace_single_streaming_pass(self, uniform_u32):
        trace = ExecutionTrace()
        HeapTopK().topk(uniform_u32, 10, trace=trace)
        total = trace.total_counters()
        assert total.global_loads == pytest.approx(uniform_u32.shape[0])
        assert total.global_stores == pytest.approx(10)


class TestSortAndChoose:
    def test_correct(self, uniform_u32):
        result = SortAndChooseTopK().topk(uniform_u32, 50)
        assert_topk_correct(result, uniform_u32, 50)

    def test_traffic_far_exceeds_streaming(self, uniform_u32):
        """Sort-and-choose does much more memory work than one pass (Figure 17)."""
        trace = ExecutionTrace()
        SortAndChooseTopK().topk(uniform_u32, 50, trace=trace)
        total = trace.total_counters()
        n = uniform_u32.shape[0]
        assert total.global_loads > 4 * n
        assert total.global_stores > 4 * n
