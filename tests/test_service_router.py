"""Router: route classification and work-unit emission."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service.batch import BatchTopK, TopKQuery
from repro.service.cache import PartitionCache
from repro.service.router import Router


@pytest.fixture
def router():
    return Router(num_workers=3, capacity_elements=1 << 12, cache=PartitionCache())


def test_classify_by_size_and_shape(router, uniform_u32):
    assert router.classify(uniform_u32[: 1 << 10]) == "batched"
    assert router.classify(uniform_u32) == "sharded"  # 2^14 > 2^12 capacity
    assert router.classify(iter([uniform_u32])) == "streaming"
    assert router.classify([uniform_u32[:10], uniform_u32[10:]]) == "streaming"
    with pytest.raises(ConfigurationError):
        router.classify(uniform_u32.reshape(128, -1))
    with pytest.raises(ConfigurationError):
        router.classify(42)


def test_groups_are_never_split_across_workers(router, uniform_u32):
    v = uniform_u32[: 1 << 12]
    # Two plan groups: identical k, opposite key order.
    parsed = [TopKQuery.of((64, i % 2 == 0)) for i in range(10)]
    workers = [BatchTopK(cache=router.cache) for _ in range(3)]
    placement = router.place_groups(v, parsed, workers[0].engine)
    assert sum(len(p) for p in placement) == len(parsed)
    # Each group's positions all landed on one worker.
    even = {w for w, positions in enumerate(placement) for p in positions if p % 2 == 0}
    odd = {w for w, positions in enumerate(placement) for p in positions if p % 2 == 1}
    assert len(even) == 1 and len(odd) == 1
    assert even != odd  # least-loaded placement spreads the two groups


def test_batched_units_skip_idle_workers(uniform_u32):
    # With splitting disabled a single group pins to one worker: one unit,
    # idle workers emit nothing.
    router = Router(
        num_workers=3,
        capacity_elements=1 << 12,
        cache=PartitionCache(),
        split_threshold=None,
    )
    v = uniform_u32[: 1 << 12]
    parsed = [TopKQuery.of(64)] * 4  # one group -> one worker
    workers = [BatchTopK(cache=router.cache) for _ in range(3)]
    units, plan = router.batched_units(v, parsed, workers)
    assert len(units) == 1
    assert units[0].route == "batched"
    assert plan.groups_split == 0 and not plan.shared_plans
    positions, results, report = units[0].fn()
    assert positions == [0, 1, 2, 3]
    assert len(results) == 4
    assert report.constructions == 1


def test_batched_units_split_dominant_group(router, uniform_u32):
    # Default splitting: one group owning 100% of the work spreads across
    # the fleet, every unit sharing one broadcast plan — exactly one
    # construction happens, at broadcast time, none inside the units.
    v = uniform_u32[: 1 << 12]
    parsed = [TopKQuery.of(64)] * 4
    workers = [BatchTopK(cache=router.cache) for _ in range(3)]
    units, plan = router.batched_units(v, parsed, workers)
    assert len(units) == 3
    assert plan.groups_split == 1
    assert plan.plan_broadcasts == 3  # one shared handle per split
    assert plan.broadcast_constructions == 1  # no bank: built directly, once
    (key,) = plan.shared_plans
    shared = plan.shared_plans[key]
    all_positions = []
    for unit in units:
        assert unit.shares and all(s.split_total == 3 for s in unit.shares)
        positions, results, report = unit.fn()
        all_positions.extend(positions)
        assert report.constructions == 0  # served from the broadcast handle
        assert report.shared_plan_groups == 1
        for res in results:
            np.testing.assert_array_equal(
                np.sort(res.values), np.sort(np.sort(v)[::-1][:64])
            )
    assert sorted(all_positions) == [0, 1, 2, 3]
    assert shared is not None and not shared.is_degenerate


def test_streaming_units_round_robin_and_slicing(router, uniform_u32):
    parsed = [TopKQuery.of((50, True)), TopKQuery.of((20, False))]
    units = list(
        router.streaming_units(
            uniform_u32, parsed, chunk_elements=3000, make_engine=lambda: BatchTopK()
        )
    )
    assert len(units) == -(-uniform_u32.shape[0] // 3000)
    assert [u.worker for u in units[:4]] == [0, 1, 2, 0]
    offset, length, by_largest, _report, memo_hits = units[1].fn()
    assert offset == 3000 and length == 3000
    assert memo_hits == 0  # no chunk memo attached
    # One distilled candidate set per key order present in the batch.
    assert set(by_largest) == {True, False}
    assert by_largest[True].values.shape[0] == 50
    assert by_largest[False].values.shape[0] == 20


def test_streaming_units_reject_bad_chunks(router):
    parsed = [TopKQuery.of(5)]
    bad = [np.zeros((4, 4), dtype=np.uint32)]
    with pytest.raises(ConfigurationError):
        list(router.streaming_units(bad, parsed, 1000, make_engine=lambda: BatchTopK()))


def test_router_validation():
    with pytest.raises(ConfigurationError):
        Router(num_workers=0, capacity_elements=10, cache=PartitionCache())
    with pytest.raises(ConfigurationError):
        Router(num_workers=1, capacity_elements=0, cache=PartitionCache())
    for bad in (0.0, -0.5, 1.5):
        with pytest.raises(ConfigurationError):
            Router(
                num_workers=2,
                capacity_elements=10,
                cache=PartitionCache(),
                split_threshold=bad,
            )


class TestPlacementProperties:
    """Property-based placement: randomized batches and fleets, seeded rng.

    The greedy invariants the split decision must never break, checked over
    randomized group weights (via random ``(k, largest)`` mixes, which the
    Rule-4 resolution turns into groups of very different modelled weights)
    and worker counts.
    """

    N = 1 << 12

    def _random_batch(self, rng):
        size = int(rng.integers(2, 25))
        ks = rng.integers(1, self.N + 1, size=size)
        flags = rng.integers(0, 2, size=size).astype(bool)
        return [TopKQuery.of((int(k), bool(f))) for k, f in zip(ks, flags)]

    def _item_weights(self, router, parsed, engine):
        """Mirror plan_batched's item decomposition (no bank: all cold)."""
        from repro.service.batch import group_queries_by_plan

        groups = group_queries_by_plan(parsed, self.N, router.cache, engine)
        beta = engine.config.beta
        weights = []
        total = 0.0
        for (alpha, largest), positions in groups.items():
            ks = [parsed[p].k for p in positions]
            group_w = router.expected_group_work(self.N, ks, alpha, beta, False)
            per_query = [
                router.expected_query_work(self.N, k, alpha, beta) for k in ks
            ]
            weights.append((group_w, per_query, len(positions)))
            total += group_w
        items = []
        for group_w, per_query, size in weights:
            if (
                router.split_threshold is not None
                and router.num_workers > 1
                and size >= 2
                and group_w > router.split_threshold * total
            ):
                items.extend(per_query)
            else:
                items.append(group_w)
        return items, total

    def test_no_worker_exceeds_even_share_plus_one_item(self, rng, uniform_u32):
        v = uniform_u32[: self.N]
        for _ in range(15):
            workers = int(rng.integers(2, 7))
            router = Router(
                num_workers=workers, capacity_elements=1 << 20, cache=PartitionCache()
            )
            engine = BatchTopK(cache=router.cache).engine
            parsed = self._random_batch(rng)
            plan = router.plan_batched(v, parsed, engine)
            items, total = self._item_weights(router, parsed, engine)
            # Greedy least-loaded: whoever holds the most never exceeds the
            # perfectly even share by more than one placed item.  Split
            # groups contribute per-query items (their construction is paid
            # once by the broadcast, not by any one worker's placement).
            placed_total = sum(items)
            bound = placed_total / workers + max(items)
            assert max(plan.loads) <= bound + 1e-6, (
                f"worst worker {max(plan.loads)} exceeds {bound} "
                f"({workers} workers, {len(parsed)} queries)"
            )
            # The loads are exactly the placed item weights, nothing lost,
            # and the plan's total is the full modelled work incl. splits'
            # construction.
            assert sum(plan.loads) == pytest.approx(placed_total)
            assert plan.total_weight == pytest.approx(total)

    def test_every_position_placed_exactly_once(self, rng, uniform_u32):
        v = uniform_u32[: self.N]
        for _ in range(10):
            workers = int(rng.integers(1, 7))
            router = Router(
                num_workers=workers, capacity_elements=1 << 20, cache=PartitionCache()
            )
            engine = BatchTopK(cache=router.cache).engine
            parsed = self._random_batch(rng)
            plan = router.plan_batched(v, parsed, engine)
            placed = sorted(p for positions in plan.placement for p in positions)
            assert placed == list(range(len(parsed)))
            # Share provenance covers the same positions, once each, and
            # split_total counts the group's distinct workers.
            from_shares = sorted(p for s in plan.shares for p in s.positions)
            assert from_shares == placed
            by_group = {}
            for share in plan.shares:
                by_group.setdefault(share.group, []).append(share)
            for shares in by_group.values():
                assert len({s.worker for s in shares}) == len(shares)  # one per worker
                assert all(s.split_total == len(shares) for s in shares)
                assert sorted(s.split_index for s in shares) == list(range(len(shares)))

    def test_placement_is_deterministic(self, rng, uniform_u32):
        v = uniform_u32[: self.N]
        for _ in range(8):
            workers = int(rng.integers(2, 7))
            parsed = self._random_batch(rng)

            def fresh_plan():
                router = Router(
                    num_workers=workers,
                    capacity_elements=1 << 20,
                    cache=PartitionCache(),
                )
                engine = BatchTopK(cache=router.cache).engine
                return router.plan_batched(v, parsed, engine)

            first, second = fresh_plan(), fresh_plan()
            assert first.placement == second.placement
            assert first.shares == second.shares
            assert first.loads == second.loads
            assert first.split_min_k == second.split_min_k


class TestExpectedWorkGuards:
    """expected_group_work edges it previously trusted callers on."""

    def _router(self, workers=2):
        return Router(
            num_workers=workers, capacity_elements=1 << 20, cache=PartitionCache()
        )

    def test_non_negative_over_random_inputs(self, rng):
        router = self._router()
        for _ in range(50):
            n = int(rng.integers(1, 1 << 20))
            ks = [int(k) for k in rng.integers(1, n + 1, size=int(rng.integers(0, 6)))]
            alpha = int(rng.integers(0, 22))
            beta = int(rng.integers(1, 5))
            bank_hit = bool(rng.integers(0, 2))
            assert router.expected_group_work(n, ks, alpha, beta, bank_hit) >= 0.0

    def test_monotone_in_query_count(self, rng):
        router = self._router()
        for _ in range(30):
            n = int(rng.integers(2, 1 << 18))
            alpha = int(rng.integers(0, 18))
            beta = int(rng.integers(1, 5))
            bank_hit = bool(rng.integers(0, 2))
            ks: list = []
            previous = router.expected_group_work(n, ks, alpha, beta, bank_hit)
            for _ in range(5):
                ks.append(int(rng.integers(1, n + 1)))
                current = router.expected_group_work(n, ks, alpha, beta, bank_hit)
                assert current >= previous
                previous = current

    def test_empty_group_weighs_nothing(self):
        # No queries trigger no construction either: an empty group must not
        # skew placement with a phantom construction scan.
        assert self._router().expected_group_work(1 << 12, [], 8, 2, False) == 0.0

    def test_invalid_edges_raise(self):
        router = self._router()
        with pytest.raises(ConfigurationError):
            router.expected_group_work(1 << 12, [0], 8, 2, False)
        with pytest.raises(ConfigurationError):
            router.expected_group_work(1 << 12, [16, -3], 8, 2, False)
        with pytest.raises(ConfigurationError):
            router.expected_group_work(0, [16], 8, 2, False)
        with pytest.raises(ConfigurationError):
            router.expected_group_work(1 << 12, [16], -1, 2, False)
        with pytest.raises(ConfigurationError):
            router.expected_group_work(1 << 12, [16], 8, 0, False)
        with pytest.raises(ConfigurationError):
            router.expected_query_work(1 << 12, 0, 8, 2)
