"""Router: route classification and work-unit emission."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service.batch import BatchTopK, TopKQuery
from repro.service.cache import PartitionCache
from repro.service.router import Router


@pytest.fixture
def router():
    return Router(num_workers=3, capacity_elements=1 << 12, cache=PartitionCache())


def test_classify_by_size_and_shape(router, uniform_u32):
    assert router.classify(uniform_u32[: 1 << 10]) == "batched"
    assert router.classify(uniform_u32) == "sharded"  # 2^14 > 2^12 capacity
    assert router.classify(iter([uniform_u32])) == "streaming"
    assert router.classify([uniform_u32[:10], uniform_u32[10:]]) == "streaming"
    with pytest.raises(ConfigurationError):
        router.classify(uniform_u32.reshape(128, -1))
    with pytest.raises(ConfigurationError):
        router.classify(42)


def test_groups_are_never_split_across_workers(router, uniform_u32):
    v = uniform_u32[: 1 << 12]
    # Two plan groups: identical k, opposite key order.
    parsed = [TopKQuery.of((64, i % 2 == 0)) for i in range(10)]
    workers = [BatchTopK(cache=router.cache) for _ in range(3)]
    placement = router.place_groups(v, parsed, workers[0].engine)
    assert sum(len(p) for p in placement) == len(parsed)
    # Each group's positions all landed on one worker.
    even = {w for w, positions in enumerate(placement) for p in positions if p % 2 == 0}
    odd = {w for w, positions in enumerate(placement) for p in positions if p % 2 == 1}
    assert len(even) == 1 and len(odd) == 1
    assert even != odd  # least-loaded placement spreads the two groups


def test_batched_units_skip_idle_workers(router, uniform_u32):
    v = uniform_u32[: 1 << 12]
    parsed = [TopKQuery.of(64)] * 4  # one group -> one worker
    workers = [BatchTopK(cache=router.cache) for _ in range(3)]
    units, placement = router.batched_units(v, parsed, workers)
    assert len(units) == 1
    assert units[0].route == "batched"
    positions, results, report = units[0].fn()
    assert positions == [0, 1, 2, 3]
    assert len(results) == 4
    assert report.constructions == 1


def test_streaming_units_round_robin_and_slicing(router, uniform_u32):
    parsed = [TopKQuery.of((50, True)), TopKQuery.of((20, False))]
    units = list(
        router.streaming_units(
            uniform_u32, parsed, chunk_elements=3000, make_engine=lambda: BatchTopK()
        )
    )
    assert len(units) == -(-uniform_u32.shape[0] // 3000)
    assert [u.worker for u in units[:4]] == [0, 1, 2, 0]
    offset, length, by_largest, _report, memo_hits = units[1].fn()
    assert offset == 3000 and length == 3000
    assert memo_hits == 0  # no chunk memo attached
    # One distilled candidate set per key order present in the batch.
    assert set(by_largest) == {True, False}
    assert by_largest[True].values.shape[0] == 50
    assert by_largest[False].values.shape[0] == 20


def test_streaming_units_reject_bad_chunks(router):
    parsed = [TopKQuery.of(5)]
    bad = [np.zeros((4, 4), dtype=np.uint32)]
    with pytest.raises(ConfigurationError):
        list(router.streaming_units(bad, parsed, 1000, make_engine=lambda: BatchTopK()))


def test_router_validation():
    with pytest.raises(ConfigurationError):
        Router(num_workers=0, capacity_elements=10, cache=PartitionCache())
    with pytest.raises(ConfigurationError):
        Router(num_workers=1, capacity_elements=0, cache=PartitionCache())
