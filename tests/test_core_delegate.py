"""Tests for delegate-vector construction (maximum and β delegates)."""

import numpy as np
import pytest

from repro.algorithms.base import ExecutionTrace
from repro.core.config import ConstructionStrategy
from repro.core.delegate import (
    COALESCED_ALPHA_THRESHOLD,
    build_delegate_vector,
    resolve_strategy,
)
from repro.core.subrange import SubrangePartition
from repro.errors import ConfigurationError


def make_keys(rng, n=1 << 12):
    return rng.integers(0, 2**32, size=n, dtype=np.uint32)


class TestMaximumDelegate:
    def test_maxima_match_numpy(self, rng):
        keys = make_keys(rng)
        p = SubrangePartition(n=keys.shape[0], alpha=6)
        d = build_delegate_vector(keys, p, beta=1)
        expected = keys.reshape(-1, 64).max(axis=1)
        np.testing.assert_array_equal(d.maxima(), expected)

    def test_indices_point_at_maxima(self, rng):
        keys = make_keys(rng)
        p = SubrangePartition(n=keys.shape[0], alpha=5)
        d = build_delegate_vector(keys, p, beta=1)
        np.testing.assert_array_equal(keys[d.indices[:, 0]], d.maxima())

    def test_partial_last_subrange(self, rng):
        keys = make_keys(rng, n=1000)
        p = SubrangePartition(n=1000, alpha=6)
        d = build_delegate_vector(keys, p, beta=1)
        last = keys[(p.num_subranges - 1) * 64 :]
        assert d.maxima()[-1] == last.max()
        assert d.valid.all()

    def test_size_counts_valid_entries(self, rng):
        keys = make_keys(rng)
        p = SubrangePartition(n=keys.shape[0], alpha=4)
        d = build_delegate_vector(keys, p, beta=1)
        assert d.size == p.num_subranges


class TestBetaDelegate:
    def test_top_beta_per_subrange(self, rng):
        keys = make_keys(rng)
        p = SubrangePartition(n=keys.shape[0], alpha=6)
        d = build_delegate_vector(keys, p, beta=3)
        view = keys.reshape(-1, 64)
        expected = np.sort(view, axis=1)[:, -3:][:, ::-1]
        np.testing.assert_array_equal(d.keys, expected)

    def test_columns_sorted_descending(self, rng):
        keys = make_keys(rng)
        p = SubrangePartition(n=keys.shape[0], alpha=5)
        d = build_delegate_vector(keys, p, beta=4)
        assert np.all(np.diff(d.keys.astype(np.int64), axis=1) <= 0)

    def test_beta_th_is_row_minimum_of_valid(self, rng):
        keys = make_keys(rng)
        p = SubrangePartition(n=keys.shape[0], alpha=5)
        d = build_delegate_vector(keys, p, beta=2)
        np.testing.assert_array_equal(d.beta_th(), d.keys[:, 1])

    def test_flat_views_align(self, rng):
        keys = make_keys(rng)
        p = SubrangePartition(n=keys.shape[0], alpha=5)
        d = build_delegate_vector(keys, p, beta=2)
        np.testing.assert_array_equal(keys[d.flat_indices()], d.flat_keys())
        sub_ids = d.flat_subrange_ids()
        np.testing.assert_array_equal(d.flat_indices() >> 5, sub_ids)

    def test_partial_subrange_smaller_than_beta(self, rng):
        keys = make_keys(rng, n=130)  # last subrange has 2 real elements
        p = SubrangePartition(n=130, alpha=6)
        d = build_delegate_vector(keys, p, beta=4)
        # The last subrange can contribute at most its 2 real elements.
        assert d.valid[-1].sum() <= 2
        assert d.size == d.valid.sum()

    def test_beta_larger_than_subrange_rejected(self, rng):
        keys = make_keys(rng, n=64)
        p = SubrangePartition(n=64, alpha=2)
        with pytest.raises(ConfigurationError):
            build_delegate_vector(keys, p, beta=5)

    def test_invalid_beta(self, rng):
        keys = make_keys(rng, n=64)
        p = SubrangePartition(n=64, alpha=3)
        with pytest.raises(ConfigurationError):
            build_delegate_vector(keys, p, beta=0)

    def test_length_mismatch_rejected(self, rng):
        keys = make_keys(rng, n=64)
        p = SubrangePartition(n=128, alpha=3)
        with pytest.raises(ConfigurationError):
            build_delegate_vector(keys, p, beta=1)


class TestStrategies:
    def test_auto_resolution(self):
        assert (
            resolve_strategy(ConstructionStrategy.AUTO, COALESCED_ALPHA_THRESHOLD)
            is ConstructionStrategy.COALESCED_STRIDED
        )
        assert (
            resolve_strategy(ConstructionStrategy.AUTO, COALESCED_ALPHA_THRESHOLD + 1)
            is ConstructionStrategy.WARP_CENTRIC
        )

    def test_explicit_strategy_respected(self):
        assert (
            resolve_strategy(ConstructionStrategy.WARP_CENTRIC, 2)
            is ConstructionStrategy.WARP_CENTRIC
        )

    def test_result_identical_across_strategies(self, rng):
        keys = make_keys(rng)
        p = SubrangePartition(n=keys.shape[0], alpha=4)
        d_warp = build_delegate_vector(
            keys, p, beta=2, strategy=ConstructionStrategy.WARP_CENTRIC
        )
        d_coal = build_delegate_vector(
            keys, p, beta=2, strategy=ConstructionStrategy.COALESCED_STRIDED
        )
        np.testing.assert_array_equal(d_warp.keys, d_coal.keys)
        np.testing.assert_array_equal(d_warp.indices, d_coal.indices)

    def test_warp_centric_records_shuffles(self, rng):
        keys = make_keys(rng)
        p = SubrangePartition(n=keys.shape[0], alpha=6)
        trace = ExecutionTrace()
        build_delegate_vector(
            keys, p, beta=1, strategy=ConstructionStrategy.WARP_CENTRIC, trace=trace
        )
        counters = trace.total_counters()
        assert counters.shuffles == 31 * p.num_subranges
        assert counters.shared_loads == 0

    def test_coalesced_strategy_avoids_shuffles(self, rng):
        keys = make_keys(rng)
        p = SubrangePartition(n=keys.shape[0], alpha=4)
        trace = ExecutionTrace()
        build_delegate_vector(
            keys, p, beta=2, strategy=ConstructionStrategy.COALESCED_STRIDED, trace=trace
        )
        counters = trace.total_counters()
        assert counters.shuffles == 0
        assert counters.shared_loads > 0
        assert counters.utilization == 1.0

    def test_warp_centric_small_subrange_underutilised(self, rng):
        keys = make_keys(rng)
        p = SubrangePartition(n=keys.shape[0], alpha=3)
        trace = ExecutionTrace()
        build_delegate_vector(
            keys, p, beta=1, strategy=ConstructionStrategy.WARP_CENTRIC, trace=trace
        )
        assert trace.total_counters().utilization == pytest.approx(8 / 32)

    def test_optimisation_reduces_construction_time_for_small_alpha(self, rng):
        """The Section 5.3 optimisation: faster construction when alpha is small."""
        keys = make_keys(rng, n=1 << 16)
        p = SubrangePartition(n=keys.shape[0], alpha=4)
        t_warp, t_coal = ExecutionTrace(), ExecutionTrace()
        build_delegate_vector(keys, p, beta=2, strategy=ConstructionStrategy.WARP_CENTRIC, trace=t_warp)
        build_delegate_vector(keys, p, beta=2, strategy=ConstructionStrategy.COALESCED_STRIDED, trace=t_coal)
        assert t_coal.total_time_ms() < t_warp.total_time_ms()


class TestPaddedTieSelection:
    """Regression: padded slots share the pad value with real zero keys, so
    β-delegate selection must never pick padding over a real element in the
    final subrange (it used to, shrinking the delegate vector below k and
    crashing the first top-k on all-zero inputs)."""

    def test_padded_final_subrange_keeps_real_delegates(self):
        keys = np.zeros(5, dtype=np.uint32)
        p = SubrangePartition(n=5, alpha=2)  # subranges [0..3] and [4] + 3 pads
        d = build_delegate_vector(keys, p, beta=2)
        # The final subrange has one real element: exactly one valid delegate.
        assert d.valid[-1].sum() == 1
        assert d.indices[-1, 0] == 4
        assert d.size == 3

    def test_all_zero_vector_full_pipeline(self):
        from repro.core.drtopk import drtopk

        v = np.zeros(5, dtype=np.uint32)
        for k in (1, 3, 5):
            result = drtopk(v, k)
            assert result.values.shape[0] == k
            assert (result.values == 0).all()


class TestMemoisedFlatViews:
    """The flat gathers run once per construction, not once per query."""

    def test_flat_views_are_memoised(self, uniform_u32):
        from repro.algorithms.keys import to_keys

        keys = to_keys(uniform_u32, largest=True)
        p = SubrangePartition(n=keys.shape[0], alpha=6)
        d = build_delegate_vector(keys, p, beta=2)
        assert d.flat_keys() is d.flat_keys()
        assert d.flat_indices() is d.flat_indices()
        assert d.flat_subrange_ids() is d.flat_subrange_ids()
        # Memoisation must not change the values.
        np.testing.assert_array_equal(d.flat_keys(), d.keys[d.valid])
        np.testing.assert_array_equal(d.flat_indices(), d.indices[d.valid])
        assert d.nbytes() > 0

    def test_precomputed_padded_view_matches(self):
        keys = np.arange(21, dtype=np.uint32)  # partial final subrange
        p = SubrangePartition(n=21, alpha=3)
        view = p.reshape_padded(keys, pad_value=np.uint32(0))
        a = build_delegate_vector(keys, p, beta=2)
        b = build_delegate_vector(keys, p, beta=2, padded_view=view)
        np.testing.assert_array_equal(a.keys, b.keys)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.valid, b.valid)

    def test_padded_view_shape_validated(self):
        from repro.errors import ConfigurationError

        keys = np.arange(16, dtype=np.uint32)
        p = SubrangePartition(n=16, alpha=2)
        with pytest.raises(ConfigurationError):
            build_delegate_vector(keys, p, padded_view=keys.reshape(2, 8))
