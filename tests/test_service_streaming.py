"""StreamingTopK: chunked/out-of-core top-k equivalence and edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DrTopKConfig
from repro.core.drtopk import DrTopK
from repro.errors import ConfigurationError
from repro.service.streaming import (
    StreamingTopK,
    merge_candidate_pool,
    order_candidate_pool,
    streaming_topk,
)

from tests.helpers import assert_topk_correct


@pytest.mark.parametrize("chunk_elements", [1 << 10, 3000, 1 << 14])
@pytest.mark.parametrize("largest", [True, False])
def test_streaming_matches_one_shot(uniform_u32, chunk_elements, largest):
    k = 200
    result = streaming_topk(uniform_u32, k, largest=largest, chunk_elements=chunk_elements)
    one_shot = DrTopK().topk(uniform_u32, k, largest=largest)
    # The top-k value multiset is unique, so values match element-wise.
    np.testing.assert_array_equal(result.values, one_shot.values)
    assert_topk_correct(result, uniform_u32, k, largest=largest)


def test_chunk_smaller_than_subrange_size(uniform_u32):
    # The one-shot Rule-4 alpha at this shape gives subranges larger than 16
    # elements; streaming in 16-element chunks must still agree.
    engine = DrTopK()
    plan = engine.prepare(uniform_u32, 32)
    assert plan.partition.subrange_size > 16
    result = streaming_topk(uniform_u32, 32, chunk_elements=16)
    np.testing.assert_array_equal(result.values, engine.topk(uniform_u32, 32).values)


def test_k_larger_than_first_chunks(uniform_u32):
    # k exceeds every individual chunk: early chunks contribute everything
    # they have and the pool only fills up across chunk boundaries.
    k = 3000
    result = streaming_topk(uniform_u32, k, chunk_elements=1024)
    np.testing.assert_array_equal(result.values, DrTopK().topk(uniform_u32, k).values)


def test_k_equals_total_length(uniform_u32):
    k = uniform_u32.shape[0]
    result = streaming_topk(uniform_u32, k, chunk_elements=1 << 12)
    np.testing.assert_array_equal(result.values, DrTopK().topk(uniform_u32, k).values)


def test_iterator_of_uneven_chunks(rng):
    v = rng.standard_normal(50_000).astype(np.float32)
    pieces = (v[i : i + 777] for i in range(0, v.shape[0], 777))
    result = streaming_topk(pieces, 64)
    np.testing.assert_array_equal(result.values, DrTopK().topk(v, 64).values)
    assert_topk_correct(result, v, 64)


def test_indices_are_global(uniform_u32):
    stream = StreamingTopK(50, chunk_elements=1 << 11)
    stream.consume(uniform_u32)
    result = stream.finalize()
    np.testing.assert_array_equal(uniform_u32[result.indices], result.values)
    assert len(np.unique(result.indices)) == 50


def test_incremental_push_and_report(uniform_u32):
    stream = StreamingTopK(16, chunk_elements=1 << 12)
    half = uniform_u32.shape[0] // 2
    stream.push(uniform_u32[:half]).push(uniform_u32[half:])
    assert stream.elements_seen == uniform_u32.shape[0]
    assert stream.pool_size == 16
    result = stream.finalize()
    assert result.stats is not None
    assert result.stats.input_size == uniform_u32.shape[0]
    assert stream.report.chunks == uniform_u32.shape[0] // (1 << 12)
    assert stream.report.total_bytes > 0
    # Finalize is idempotent.
    assert stream.finalize() is result


def test_stream_lifecycle_errors(uniform_u32):
    with pytest.raises(ConfigurationError):
        StreamingTopK(0)
    with pytest.raises(ConfigurationError):
        StreamingTopK(5, chunk_elements=0)
    with pytest.raises(ConfigurationError):
        StreamingTopK(5).finalize()  # no data
    stream = StreamingTopK(1000).push(uniform_u32[:100])
    with pytest.raises(ConfigurationError):
        stream.finalize()  # k exceeds streamed elements
    with pytest.raises(ConfigurationError):
        StreamingTopK(5).push(uniform_u32.reshape(128, -1))  # not 1-D
    done = StreamingTopK(5).push(uniform_u32[:64])
    done.finalize()
    with pytest.raises(ConfigurationError):
        done.push(uniform_u32[:8])


def test_empty_chunks_are_ignored(uniform_u32):
    stream = StreamingTopK(8, chunk_elements=1 << 12)
    stream.push(np.empty(0, dtype=np.uint32))
    stream.consume([uniform_u32[:5000], np.empty(0, dtype=np.uint32), uniform_u32[5000:]])
    result = stream.finalize()
    np.testing.assert_array_equal(result.values, DrTopK().topk(uniform_u32, 8).values)


def test_streaming_with_ties(tied_u32):
    result = streaming_topk(tied_u32, 77, chunk_elements=500)
    assert_topk_correct(result, tied_u32, 77)


def test_merge_candidate_pool_keeps_exact_topk(rng):
    # The shared pool helper must keep exactly the top-k of everything seen,
    # whatever order candidates arrive in.
    v = rng.integers(0, 2**32, size=5000, dtype=np.uint32)
    pool_v, pool_i = None, np.empty(0, dtype=np.int64)
    for start in range(0, v.shape[0], 700):
        piece = v[start : start + 700]
        pool_v, pool_i = merge_candidate_pool(
            pool_v, pool_i, piece, np.arange(start, start + piece.shape[0]), 100, True
        )
    assert pool_v.shape[0] == 100
    expected = np.sort(v)[-100:]
    np.testing.assert_array_equal(np.sort(pool_v), expected)
    np.testing.assert_array_equal(v[pool_i], pool_v)


def test_merge_candidate_pool_below_k_keeps_everything():
    values = np.array([5, 1, 9], dtype=np.uint32)
    pool_v, pool_i = merge_candidate_pool(
        None, np.empty(0, dtype=np.int64), values, np.arange(3), 10, True
    )
    assert pool_v.shape[0] == 3
    assert pool_i.dtype == np.int64


def test_order_candidate_pool_orders_and_maps(rng):
    v = rng.integers(0, 2**32, size=1000, dtype=np.uint32)
    indices = rng.permutation(1000)[:64].astype(np.int64)
    values, global_idx, traced = order_candidate_pool(
        v[indices], indices, 16, True, DrTopKConfig()
    )
    assert values.shape[0] == 16
    np.testing.assert_array_equal(values, np.sort(v[indices])[::-1][:16])
    np.testing.assert_array_equal(v[global_idx], values)
    assert traced > 0  # tracing on by default

    _, _, untraced = order_candidate_pool(
        v[indices], indices, 16, True, DrTopKConfig(collect_trace=False)
    )
    assert untraced == 0.0


class TestChunkMemo:
    """StreamingTopK with a chunk memo: replays skip the per-chunk pipeline."""

    def test_replayed_stream_hits_memo_and_matches(self, uniform_u32):
        from repro.service.planbank import ChunkMemo

        memo = ChunkMemo()
        k, chunk = 64, 1 << 12

        first = StreamingTopK(k, chunk_elements=chunk, chunk_memo=memo)
        first.consume(uniform_u32)
        cold = first.finalize()
        assert first.report.memo_hits == 0
        assert first.report.chunk_bytes > 0

        replay = StreamingTopK(k, chunk_elements=chunk, chunk_memo=memo)
        replay.consume(uniform_u32)
        warm = replay.finalize()
        assert replay.report.memo_hits == replay.report.chunks
        assert replay.report.chunk_bytes == 0.0  # zero pipeline work
        # Memoised chunks are recorded as explicit zero-work entries.
        assert len(replay.report.chunk_stats) == replay.report.chunks
        assert all(s.total_workload == 0 for s in replay.report.chunk_stats)
        np.testing.assert_array_equal(cold.values, warm.values)
        np.testing.assert_array_equal(cold.indices, warm.indices)
        assert_topk_correct(warm, uniform_u32, k)

    def test_mixed_stream_stats_count_memoised_chunks(self, uniform_u32):
        """Stats-aggregation regression: memo hits are explicit zero-work rows.

        A stream mixing replayed and cold chunks used to aggregate only the
        cold chunks' workload against the *full* stream's element count —
        silently mixing denominators.  Memoised chunks now appear in
        ``chunk_stats`` as zero-work entries, so the aggregate's workload is
        honest about what was processed and over how many elements.
        """
        from repro.service.planbank import ChunkMemo

        memo = ChunkMemo()
        k, chunk = 64, 1 << 12
        half = uniform_u32[: uniform_u32.shape[0] // 2]

        # Prime the memo with the first half of the stream only.
        StreamingTopK(k, chunk_elements=chunk, chunk_memo=memo).consume(half).finalize()

        mixed = StreamingTopK(k, chunk_elements=chunk, chunk_memo=memo)
        mixed.consume(uniform_u32)
        result = mixed.finalize()
        report = mixed.report
        assert 0 < report.memo_hits < report.chunks  # genuinely mixed
        # One stats entry per consumed chunk, memoised ones zero-work with
        # the chunk's element count intact.
        assert len(report.chunk_stats) == report.chunks
        memoised = [s for s in report.chunk_stats if s.num_subranges == 0]
        assert len(memoised) == report.memo_hits
        assert all(s.total_workload == 0 for s in memoised)
        assert all(s.input_size > 0 for s in memoised)
        # The aggregate sums only the cold chunks' workload over the full
        # stream, and its geometry comes from a chunk that ran the pipeline.
        stats = result.stats
        assert stats is not None
        assert stats.input_size == uniform_u32.shape[0]
        cold = [s for s in report.chunk_stats if s.num_subranges > 0]
        assert stats.total_workload == sum(s.total_workload for s in cold)
        assert stats.num_subranges == sum(s.num_subranges for s in cold)
        assert stats.alpha == cold[-1].alpha > 0
        assert_topk_correct(result, uniform_u32, k)

    def test_fully_memoised_stream_aggregates_to_zero_work(self, uniform_u32):
        from repro.service.planbank import ChunkMemo

        memo = ChunkMemo()
        k, chunk = 64, 1 << 12
        StreamingTopK(k, chunk_elements=chunk, chunk_memo=memo).consume(
            uniform_u32
        ).finalize()
        replay = StreamingTopK(k, chunk_elements=chunk, chunk_memo=memo)
        replay.consume(uniform_u32)
        stats = replay.finalize().stats
        assert stats is not None
        assert stats.input_size == uniform_u32.shape[0]
        assert stats.total_workload == 0
        assert stats.workload_fraction == 0.0

    def test_memo_is_k_sensitive(self, uniform_u32):
        from repro.service.planbank import ChunkMemo

        memo = ChunkMemo()
        StreamingTopK(32, chunk_elements=1 << 12, chunk_memo=memo).consume(
            uniform_u32
        ).finalize()
        other = StreamingTopK(64, chunk_elements=1 << 12, chunk_memo=memo)
        other.consume(uniform_u32)
        result = other.finalize()
        assert other.report.memo_hits == 0  # k is part of the memo key
        assert_topk_correct(result, uniform_u32, 64)
