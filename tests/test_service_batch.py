"""BatchTopK: amortised batched serving over one shared vector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DrTopKConfig
from repro.core.drtopk import DrTopK
from repro.errors import ConfigurationError
from repro.harness.reporting import format_table, workload_rows
from repro.service.batch import BatchTopK, TopKQuery, batch_topk
from repro.service.cache import PartitionCache

from tests.helpers import assert_topk_correct


def _assert_matches_loop(v, queries, results, config=None):
    engine = DrTopK(config)
    assert len(results) == len(queries)
    for q, res in zip(queries, results):
        q = TopKQuery.of(q)
        solo = engine.topk(v, q.k, largest=q.largest)
        np.testing.assert_array_equal(res.values, solo.values)
        np.testing.assert_array_equal(res.indices, solo.indices)


def test_batch_identical_to_loop(uniform_u32):
    queries = [(64, True), (1, True), (500, False), (64, True), (4096, True)]
    results = batch_topk(uniform_u32, queries)
    _assert_matches_loop(uniform_u32, queries, results)


def test_empty_batch(uniform_u32):
    service = BatchTopK()
    results, report = service.run_with_report(uniform_u32, [])
    assert results == []
    assert report.num_queries == 0
    assert report.constructions == 0
    assert report.total_bytes == 0.0
    assert report.bytes_per_query == 0.0


def test_k_equals_n(uniform_u32):
    n = uniform_u32.shape[0]
    service = BatchTopK()
    results, report = service.run_with_report(uniform_u32, [(n, True), (n, False)])
    _assert_matches_loop(uniform_u32, [(n, True), (n, False)], results)
    # k == n is the degenerate regime: nothing to construct.
    assert report.constructions == 0


def test_mixed_largest_flags_share_nothing_but_still_group(uniform_u32):
    queries = [(128, True)] * 3 + [(128, False)] * 3
    service = BatchTopK()
    results, report = service.run_with_report(uniform_u32, queries)
    _assert_matches_loop(uniform_u32, queries, results)
    # Same alpha but opposite key orders: exactly two plans, two constructions.
    assert report.num_groups == 2
    assert report.constructions == 2


def test_homogeneous_batch_constructs_once(uniform_u32):
    service = BatchTopK()
    results, report = service.run_with_report(uniform_u32, [(256, True)] * 16)
    _assert_matches_loop(uniform_u32, [(256, True)] * 16, results)
    assert report.num_groups == 1
    assert report.constructions == 1
    # The loop would have paid 16 constructions; the batch pays one.
    assert report.total_bytes < report.naive_bytes
    assert report.traffic_saved_fraction > 0.5


def test_query_spellings(uniform_u32):
    queries = [64, (64,), (64, False), TopKQuery(64)]
    results = BatchTopK().run(uniform_u32, queries)
    _assert_matches_loop(uniform_u32, queries, results)
    with pytest.raises(ConfigurationError):
        TopKQuery.of("sixty-four")
    with pytest.raises(ConfigurationError):
        TopKQuery.of((1, 2, 3))


def test_invalid_k_rejected_before_any_work(uniform_u32):
    service = BatchTopK()
    with pytest.raises(ConfigurationError):
        service.run(uniform_u32, [(16, True), (uniform_u32.shape[0] + 1, True)])
    with pytest.raises(ConfigurationError):
        service.run(uniform_u32, [(0, True)])


def test_batch_results_are_correct_topk(tied_u32):
    # Heavy duplication: indices may differ from the loop's under ties, but
    # every answer must still be a valid top-k.
    queries = [(10, True), (100, False), (1, True)]
    results = BatchTopK().run(tied_u32, queries)
    for q, res in zip(queries, results):
        assert_topk_correct(res, tied_u32, q[0], largest=q[1])


def test_shared_cache_is_reused(uniform_u32):
    cache = PartitionCache(capacity=8)
    service = BatchTopK(cache=cache)
    service.run(uniform_u32, [(64, True)] * 4)
    first = cache.info()
    assert first.misses == 1
    assert first.hits == 3
    service.run(uniform_u32, [(64, True)] * 4)
    second = cache.info()
    assert second.misses == 1
    assert second.hits == 7


def test_report_summary_renders(uniform_u32):
    service = BatchTopK()
    _, report = service.run_with_report(uniform_u32, [(32, True), (512, False)])
    summary = report.summary()
    assert summary["queries"] == 2
    assert summary["total_input"] == 2 * uniform_u32.shape[0]
    assert summary["total_bytes"] == report.total_bytes
    # The per-query rows plug into the standard reporting pipeline.
    table = format_table(workload_rows(report.stats), title="batch")
    assert "workload_fraction" in table


def test_batch_without_trace_collects_no_bytes(uniform_u32):
    service = BatchTopK(DrTopKConfig(collect_trace=False))
    results, report = service.run_with_report(uniform_u32, [(64, True)] * 3)
    _assert_matches_loop(
        uniform_u32, [(64, True)] * 3, results, config=DrTopKConfig(collect_trace=False)
    )
    assert report.total_bytes == 0.0
    assert report.constructions == 1


def test_gap_regime_accounting_never_negative():
    """Regression: a padded partition can leave valid delegates <= k while
    num_subranges * beta > k ("gap regime").  The construction the plan built
    must be charged to the one-shot query's trace, and the batch must never
    report negative savings against the loop."""
    v = np.array([5.0, 1.0, 3.0, 2.0, 4.0], dtype=np.float32)
    cfg = DrTopKConfig(alpha=2)

    engine = DrTopK(cfg)
    engine.topk(v, 3)
    assert any(s.name == "delegate_construction" for s in engine.last_trace.steps)

    service = BatchTopK(cfg)
    results, report = service.run_with_report(v, [3, 3, 3])
    _assert_matches_loop(v, [3, 3, 3], results, config=cfg)
    assert report.traffic_saved_fraction >= 0
