"""VectorStore and the dispatcher's named-vector admit/query/evict front end.

The contracts that make named serving safe:

* admission fingerprints once and enforces immutability (writes raise);
* a warm named query does zero construction work and zero fingerprint work;
* evicting a name cascades into the plan bank / result cache (released bytes
  are observable) unless another name still serves identical content;
* the byte-budgeted LRU respects pins and never evicts the entry being
  admitted; and
* the whole front end survives concurrent admit/query/evict traffic.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.drtopk import DrTopK
from repro.errors import ConfigurationError
from repro.harness.experiments import _same_alpha_variant
from repro.service.cache import fingerprint_array, fingerprint_call_count
from repro.service.dispatcher import ServiceDispatcher
from repro.service.store import StoredVector, VectorStore
from tests.helpers import assert_topk_correct

N = 1 << 14


def _vec(rng, n=1 << 10):
    return rng.integers(0, 2**32, size=n, dtype=np.uint32)


class TestVectorStoreUnit:
    def test_admit_get_evict_roundtrip(self, rng):
        store = VectorStore(capacity_bytes=1 << 20)
        v = _vec(rng)
        entry = store.admit("a", v)
        assert entry.fingerprint == fingerprint_array(v)
        assert store.get("a") is entry
        assert "a" in store and len(store) == 1
        assert store.info().bytes == v.nbytes
        evicted = store.evict("a")
        assert evicted is entry
        assert store.get("a") is None
        assert store.info().bytes == 0
        assert store.evict("a") is None  # idempotent

    def test_admission_enforces_immutability(self, rng):
        store = VectorStore(capacity_bytes=1 << 20)
        v = _vec(rng)
        store.admit("a", v)
        with pytest.raises(ValueError):
            v[0] = 1

    def test_byte_budget_evicts_lru_not_pinned(self, rng):
        vectors = [_vec(rng) for _ in range(3)]
        budget = sum(v.nbytes for v in vectors[:2])
        removed = []
        store = VectorStore(capacity_bytes=budget, on_evict=removed.append)
        store.admit("a", vectors[0], pin=True)
        store.admit("b", vectors[1])
        # "b" is the LRU unpinned entry; admitting "c" must evict it, not
        # the pinned (and older) "a".
        store.admit("c", vectors[2])
        assert [e.name for e in removed] == ["b"]
        assert store.names() == ["a", "c"]
        assert store.info().bytes == budget
        assert store.info().evictions == 1

    def test_get_promotes_lru_order(self, rng):
        vectors = [_vec(rng) for _ in range(3)]
        store = VectorStore(capacity_bytes=sum(v.nbytes for v in vectors[:2]))
        store.admit("a", vectors[0])
        store.admit("b", vectors[1])
        store.get("a")  # promote: "b" becomes the eviction candidate
        store.admit("c", vectors[2])
        assert store.names() == ["a", "c"]

    def test_oversize_vector_never_admitted(self, rng):
        v = _vec(rng)
        store = VectorStore(capacity_bytes=v.nbytes - 1)
        with pytest.raises(ConfigurationError):
            store.admit("a", v)
        assert len(store) == 0 and store.info().bytes == 0

    def test_all_pinned_admission_rolls_back(self, rng):
        vectors = [_vec(rng) for _ in range(2)]
        store = VectorStore(capacity_bytes=vectors[0].nbytes)
        store.admit("a", vectors[0], pin=True)
        with pytest.raises(ConfigurationError):
            store.admit("b", vectors[1])
        # The failed admission left no trace: "a" resident, bytes exact,
        # and the refused vector was NOT made read-only.
        assert store.names() == ["a"]
        assert store.info().bytes == vectors[0].nbytes
        vectors[1][0] = 1  # still writable

    def test_refused_admission_evicts_nothing_and_fires_no_cascade(self, rng):
        """A refused admission must not half-evict the working set.

        Regression: the eviction loop used to evict unpinned victims one by
        one and, on discovering the budget still could not be met, roll back
        only the newly admitted entry — earlier victims stayed gone *and*
        their on_evict cascade was suppressed (leaked banked plans).
        """
        removed = []
        v = _vec(rng)  # all vectors equal-sized
        store = VectorStore(capacity_bytes=3 * v.nbytes, on_evict=removed.append)
        store.admit("p", _vec(rng), pin=True)
        store.admit("a", _vec(rng))
        store.admit("b", _vec(rng))
        # Re-admitting "b" at 2.5x the size needs 3.5x even after evicting
        # "a" — refused, and "a" must still be resident with no callback.
        big = rng.integers(0, 2**32, size=(1 << 10) * 5 // 2, dtype=np.uint32)
        with pytest.raises(ConfigurationError):
            store.admit("b", big)
        assert set(store.names()) == {"p", "a", "b"}
        assert removed == []
        assert store.info().bytes == 3 * v.nbytes
        assert store.info().evictions == 0
        big[0] = 1  # the refused vector stayed writable too

    def test_readmission_replaces_and_fires_on_changed_content(self, rng):
        removed = []
        store = VectorStore(capacity_bytes=1 << 20, on_evict=removed.append)
        v1, v2 = _vec(rng), _vec(rng)
        store.admit("a", v1)
        store.note_queries("a", 5)
        # Same content: a refresh, not an eviction; history survives.
        entry = store.admit("a", v1.copy())
        assert removed == [] and entry.queries == 5
        # Changed content: the old entry is released.
        store.admit("a", v2)
        assert [e.fingerprint for e in removed] == [fingerprint_array(v1)]
        assert store.info().bytes == v2.nbytes

    def test_pin_unpin_validation(self, rng):
        store = VectorStore(capacity_bytes=1 << 20)
        with pytest.raises(ConfigurationError):
            store.pin("ghost")
        store.admit("a", _vec(rng))
        store.pin("a")
        assert store.get("a").pinned
        store.unpin("a")
        assert not store.get("a").pinned

    def test_pin_sticks_across_readmission(self, rng):
        """A pin names the name, not one content version."""
        store = VectorStore(capacity_bytes=1 << 20)
        v1, v2 = _vec(rng), _vec(rng)
        store.admit("a", v1, pin=True)
        store.admit("a", v1.copy())  # same-content refresh
        assert store.get("a").pinned
        store.admit("a", v2)  # changed content
        assert store.get("a").pinned
        store.unpin("a")
        store.admit("a", v2.copy())
        assert not store.get("a").pinned

    def test_entries_compare_by_identity(self, rng):
        # eq=False: numpy fields make generated equality raise, and entries
        # are handles, not values — identity is the right semantics.
        a = VectorStore(capacity_bytes=1 << 20).admit("a", _vec(rng))
        b = VectorStore(capacity_bytes=1 << 20).admit("a", _vec(rng))
        assert a != b and a == a
        assert a in [b, a]  # list membership must not raise

    def test_pin_is_not_a_query(self, rng):
        """Pinning must neither promote the LRU entry nor count as a hit."""
        vectors = [_vec(rng) for _ in range(3)]
        store = VectorStore(capacity_bytes=sum(v.nbytes for v in vectors[:2]))
        store.admit("a", vectors[0])
        store.admit("b", vectors[1])
        hits_before = store.info().hits
        store.pin("a")
        store.unpin("a")
        assert store.info().hits == hits_before
        # "a" was not promoted: it is still the LRU entry and gets evicted.
        store.admit("c", vectors[2])
        assert store.names() == ["b", "c"]

    def test_rejects_bad_shapes(self, rng):
        store = VectorStore(capacity_bytes=1 << 20)
        with pytest.raises(ConfigurationError):
            store.admit("m", rng.integers(0, 9, size=(4, 4)))
        with pytest.raises(ConfigurationError):
            store.admit("e", np.empty(0, dtype=np.uint32))

    def test_live_fingerprints_cover_shards(self, rng):
        store = VectorStore(capacity_bytes=1 << 20)
        v = _vec(rng)
        store.admit("a", v, shard_fingerprints={(0, 10): "shard-fp"})
        assert store.live_fingerprints() == {fingerprint_array(v), "shard-fp"}


class TestDispatcherNamedServing:
    """The acceptance path: admit / query / evict over a working set."""

    def _dispatcher(self, **kwargs):
        kwargs.setdefault("num_workers", 2)
        kwargs.setdefault("result_cache_capacity", 0)
        return ServiceDispatcher(**kwargs)

    def test_working_set_serves_warm_and_zero_hash(self, rng):
        ks = [8, 64]
        engine = DrTopK()
        changed = [(_same_alpha_variant(engine, N, k), True) for k in ks]
        vectors = {f"vec{i}": _vec(rng, N) for i in range(3)}
        with self._dispatcher() as d:
            for name, v in vectors.items():
                d.admit(name, v, warm=[(k, True) for k in ks])
            before = fingerprint_call_count()
            for name, v in vectors.items():
                results = d.query(name, changed)
                report = d.last_report
                assert report.constructions == 0
                assert report.construction_bytes == 0.0
                assert report.plan_bank_hits > 0
                for (k, _), result in zip(changed, results):
                    assert_topk_correct(result, v, k)
            # No per-query fingerprint recomputation across the whole round.
            assert fingerprint_call_count() == before
            assert report.store is not None and report.store.size == 3

    def test_evict_releases_banked_plan_bytes(self, rng):
        with self._dispatcher() as d:
            d.admit("a", _vec(rng, N), warm=[(16, True)])
            d.admit("b", _vec(rng, N), warm=[(16, True)])
            before = d.plan_bank.info().bytes
            assert d.evict("a")
            after = d.plan_bank.info().bytes
            assert 0 < after < before
            # The other name still serves warm.
            d.query("b", (16, True))
            assert d.last_report.constructions == 0
            with pytest.raises(ConfigurationError):
                d.query("a", 16)

    def test_evict_spares_aliased_content(self, rng):
        v = _vec(rng, N)
        with self._dispatcher() as d:
            d.admit("a", v, warm=[(16, True)])
            d.admit("alias", v.copy())  # identical content, second name
            before = d.plan_bank.info().bytes
            assert d.evict("a")
            # The alias still pins the fingerprint: nothing was invalidated.
            assert d.plan_bank.info().bytes == before
            d.query("alias", (16, True))
            assert d.last_report.constructions == 0

    def test_readmission_with_changed_content_invalidates(self, rng):
        v1, v2 = _vec(rng, N), _vec(rng, N)
        with self._dispatcher() as d:
            d.admit("a", v1, warm=[(16, True)])
            fp1 = d.store.get("a").fingerprint
            assert any(key[0] == fp1 for key in d.plan_bank._entries)
            d.admit("a", v2, warm=[(16, True)])
            # Every plan banked under the replaced content is gone.
            assert all(key[0] != fp1 for key in d.plan_bank._entries)
            results = d.query("a", (16, True))
            assert_topk_correct(results[0], v2, 16)
            assert d.last_report.constructions == 0  # v2's own warm plan

    def test_sharded_named_vector_precomputes_shard_fingerprints(self, rng):
        v = _vec(rng, N)
        with self._dispatcher(capacity_elements=N // 4) as d:
            entry = d.admit("big", v, warm=[(16, True)])
            assert entry.shard_fingerprints  # one per shard, at admission
            for (start, stop), fp in entry.shard_fingerprints.items():
                assert fp == fingerprint_array(v[start:stop])
            before = fingerprint_call_count()
            results = d.query("big", (16, True))
            assert d.last_report.route == "sharded"
            assert d.last_report.constructions == 0
            assert d.last_report.construction_bytes == 0.0
            assert fingerprint_call_count() == before
            assert_topk_correct(results[0], v, 16)
            bank_before = d.plan_bank.info().bytes
            assert d.evict("big")
            assert d.plan_bank.info().bytes < bank_before

    def test_query_accepts_scalar_and_sequence(self, rng):
        v = _vec(rng, N)
        with self._dispatcher() as d:
            d.admit("a", v)
            assert len(d.query("a", 8)) == 1
            assert len(d.query("a", (8, False))) == 1
            assert len(d.query("a", [8, (16, True)])) == 2

    def test_store_disabled(self, rng):
        with self._dispatcher(store_bytes=0) as d:
            for call in (
                lambda: d.admit("a", _vec(rng)),
                lambda: d.query("a", 8),
                lambda: d.evict("a"),
                lambda: d.pin("a"),
                lambda: d.unpin("a"),
            ):
                # Every entry point diagnoses the same misconfiguration the
                # same way (not "admit() it first", which cannot succeed).
                with pytest.raises(ConfigurationError, match="store is disabled"):
                    call()
            # Anonymous dispatch is unaffected.
            assert len(d.dispatch(_vec(rng, N), [8])) == 1

    def test_query_feeds_router_history_and_affinity(self, rng):
        v = _vec(rng, N)
        with self._dispatcher() as d:
            entry = d.admit("a", v)
            d.query("a", [(8, True), (64, True)])
            assert d.router.query_history(entry.fingerprint) == 2
            d.query("a", (8, True))
            assert d.router.query_history(entry.fingerprint) == 3
            assert d.evict("a")
            assert d.router.query_history(entry.fingerprint) == 0  # forgotten


class TestRouterAffinity:
    def test_history_pins_placement_to_remembered_worker(self, uniform_u32):
        from repro.service.batch import BatchTopK, TopKQuery
        from repro.service.cache import PartitionCache
        from repro.service.router import Router

        cache = PartitionCache()
        engine = BatchTopK(cache=cache).engine
        router = Router(num_workers=4, capacity_elements=1 << 30, cache=cache)
        parsed = [TopKQuery.of(16)]
        fp = fingerprint_array(uniform_u32)
        # Without history, a single group lands on the first (least-loaded).
        placement = router.place_groups(uniform_u32, parsed, engine, fingerprint=fp)
        assert placement[0] == [0]
        # With history and a remembered worker, placement follows it.
        router.note_queries(fp, 1)
        router._affinity[fp] = 2
        placement = router.place_groups(uniform_u32, parsed, engine, fingerprint=fp)
        assert placement[2] == [0]

    def test_affinity_records_heaviest_groups_worker(self, uniform_u32):
        """Affinity must track the heaviest group, not the most-loaded worker.

        With two workers and three plan groups, the two lighter groups stack
        on the second worker and out-weigh the heaviest; remembering the
        most-loaded worker would steer the heaviest group to a different
        worker on the next identical dispatch (oscillation).
        """
        from repro.service.batch import BatchTopK, TopKQuery
        from repro.service.cache import PartitionCache
        from repro.service.router import Router

        cache = PartitionCache()
        engine = BatchTopK(cache=cache).engine
        router = Router(num_workers=2, capacity_elements=1 << 30, cache=cache)
        # Three distinct Rule-4 alphas -> three cold groups of similar weight.
        parsed = [TopKQuery.of(k) for k in (2, 64, 2048)]
        fp = fingerprint_array(uniform_u32)
        placement = router.place_groups(uniform_u32, parsed, engine, fingerprint=fp)
        heaviest_worker = next(
            w for w, positions in enumerate(placement) if len(positions) == 1
        )
        assert router._affinity[fp] == heaviest_worker
        # A repeat dispatch keeps the heaviest group on that same worker.
        router.note_queries(fp, len(parsed))
        again = router.place_groups(uniform_u32, parsed, engine, fingerprint=fp)
        assert placement[heaviest_worker][0] in again[heaviest_worker]

    def test_forget_drops_history(self):
        from repro.service.cache import PartitionCache
        from repro.service.router import Router

        router = Router(num_workers=2, capacity_elements=1 << 30, cache=PartitionCache())
        router.note_queries("fp", 3)
        assert router.query_history("fp") == 3
        router.forget("fp")
        assert router.query_history("fp") == 0


class TestConcurrentHammer:
    """Concurrent admit/query/evict must neither crash nor corrupt answers.

    Sized for the 1-CPU CI box: four threads, small vectors, short loops —
    the point is interleaving under the GIL's preemption, not load.
    """

    def test_admit_query_evict_hammer(self, rng):
        n = 1 << 10
        rounds = 12
        vectors = [_vec(rng, n) for _ in range(4)]
        expected = [np.sort(v)[::-1][:16] for v in vectors]
        errors = []
        with ServiceDispatcher(
            num_workers=2, result_cache_capacity=0, store_bytes=3 * vectors[0].nbytes
        ) as d:

            def worker(idx: int) -> None:
                try:
                    name = f"vec{idx}"
                    for _ in range(rounds):
                        d.admit(name, vectors[idx].copy())
                        try:
                            (result,) = d.query(name, (16, True))
                        except ConfigurationError:
                            continue  # evicted between admit and query: legal
                        np.testing.assert_array_equal(result.values, expected[idx])
                        d.evict(name)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors, errors
        # Accounting survived the interleaving: resident bytes match entries.
        info = d.store.info()
        assert info.bytes == sum(
            d.store.get(name).nbytes for name in d.store.names()
        )
        assert info.bytes >= 0

    def test_query_racing_evict_admit_keeps_plans_whole(self, rng):
        """Warm queries racing evict/re-admit cascades: answers stay exact.

        Queriers hammer split-group batches against a named vector while a
        churner evicts and re-admits it (same content) — every eviction
        cascades invalidation into the plan bank while in-flight splits may
        hold the broadcast plan.  No query may ever observe a
        half-invalidated plan: a query either fails with the documented
        "no vector named" error (evicted between admit cycles — legal) or
        returns element-wise exact answers.  After quiesce every cache's
        byte ledger must equal the sum of its resident entry sizes.
        """
        n = 1 << 10
        hot = _vec(rng, n)
        ks = (8, 32)
        expected = {k: np.sort(hot)[::-1][:k] for k in ks}
        errors = []
        with ServiceDispatcher(num_workers=2, result_cache_capacity=0) as d:
            d.admit("hot", hot)

            def querier():
                try:
                    for i in range(15):
                        k = ks[i % len(ks)]
                        # 4 identical queries: a 100%-dominant group, so the
                        # batched route splits it and broadcasts the plan.
                        try:
                            results = d.query("hot", [(k, True)] * 4)
                        except ConfigurationError:
                            continue  # evicted between admit cycles: legal
                        for res in results:
                            np.testing.assert_array_equal(
                                np.sort(res.values)[::-1], expected[k]
                            )
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            def churner():
                try:
                    for _ in range(15):
                        d.evict("hot")
                        d.admit("hot", hot)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=querier) for _ in range(2)]
            threads.append(threading.Thread(target=churner))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors
            # Byte ledgers balance for every cache after quiesce.
            assert d.store.info().bytes == sum(
                d.store.get(name).nbytes for name in d.store.names()
            )
            assert d.plan_bank is not None
            assert d.plan_bank.info().bytes == sum(d.plan_bank._sizes.values())
            assert len(d.plan_bank._entries) == len(d.plan_bank._sizes)


def test_stored_vector_fingerprints_listing(rng):
    v = _vec(rng)
    entry = StoredVector(
        name="a",
        vector=v,
        fingerprint="whole",
        shard_fingerprints={(0, 5): "s0", (5, 10): "s1"},
    )
    assert sorted(entry.fingerprints()) == ["s0", "s1", "whole"]
    assert entry.nbytes == v.nbytes
