"""Tests for repro.utils."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils import (
    as_rng,
    ceil_div,
    check_k,
    ensure_1d,
    is_power_of_two,
    log2_int,
    next_power_of_two,
)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert as_rng(7).integers(0, 100) == as_rng(7).integers(0, 100)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert as_rng(gen) is gen


class TestEnsure1d:
    def test_accepts_vector(self):
        out = ensure_1d([1, 2, 3])
        assert out.shape == (3,)

    def test_rejects_matrix(self):
        with pytest.raises(ConfigurationError):
            ensure_1d(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ensure_1d(np.array([]))


class TestCheckK:
    def test_valid(self):
        assert check_k(5, 10) == 5

    def test_numpy_integer_accepted(self):
        assert check_k(np.int64(3), 10) == 3

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            check_k(0, 10)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            check_k(-1, 10)

    def test_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            check_k(11, 10)

    def test_non_integer_rejected(self):
        with pytest.raises(ConfigurationError):
            check_k(2.5, 10)


class TestPowerOfTwo:
    @pytest.mark.parametrize("x", [1, 2, 4, 1024, 1 << 30])
    def test_powers(self, x):
        assert is_power_of_two(x)

    @pytest.mark.parametrize("x", [0, -2, 3, 6, 1023])
    def test_non_powers(self, x):
        assert not is_power_of_two(x)

    @pytest.mark.parametrize("x,expected", [(0, 1), (1, 1), (2, 2), (3, 4), (1025, 2048)])
    def test_next_power_of_two(self, x, expected):
        assert next_power_of_two(x) == expected

    def test_log2_int(self):
        assert log2_int(1024) == 10

    def test_log2_int_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            log2_int(12)


class TestCeilDiv:
    @pytest.mark.parametrize("a,b,expected", [(10, 3, 4), (9, 3, 3), (1, 5, 1), (0, 5, 0)])
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected
