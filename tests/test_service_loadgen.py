"""Load-harness unit tests: generators, popularity, admission, reports.

The satellite acceptance set from the issue — seeded determinism of every
arrival process, Poisson inter-arrival mean within tolerance, Zipf
popularity skew, the closed-loop concurrency bound — plus structural tests
of the bursty/diurnal processes, the admission policies (block / shed /
degrade), and the LoadReport row/Prometheus renderings.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service import ServiceDispatcher
from repro.service.loadgen import (
    ADMISSION_POLICIES,
    BurstyArrivals,
    DiurnalArrivals,
    LoadHarness,
    PoissonArrivals,
    RequestProfile,
    ZipfPopularity,
)

N = 1 << 12


@pytest.fixture()
def dispatcher():
    rng = np.random.default_rng(0)
    with ServiceDispatcher(num_workers=2, capacity_elements=N, queue_capacity=2) as d:
        for name in ("hot", "warm", "cold"):
            d.admit(name, rng.standard_normal(N).astype(np.float32), warm=[(8, True), (16, True)])
        yield d


def batched_profile(**overrides):
    base = dict(route="batched", names=("hot", "warm", "cold"), ks=(8, 16))
    base.update(overrides)
    return RequestProfile(**base)


# ---------------------------------------------------------------------------
# arrival generators
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "arrivals",
    [
        PoissonArrivals(100.0, seed=7),
        BurstyArrivals(on_rate=200.0, off_rate=1.0, on_seconds=0.5, off_seconds=0.5, seed=7),
        DiurnalArrivals(base_rate=5.0, peak_rate=100.0, period=10.0, seed=7),
    ],
    ids=["poisson", "bursty", "diurnal"],
)
def test_generators_are_seeded_deterministic_and_monotone(arrivals):
    a = arrivals.times(500)
    b = arrivals.times(500)
    np.testing.assert_array_equal(a, b)
    assert np.all(np.diff(a) >= 0.0)
    assert a[0] > 0.0
    # A different seed must give a different schedule.
    other = type(arrivals)(**{**arrivals.__dict__, "seed": arrivals.seed + 1})
    assert not np.array_equal(other.times(500), a)


def test_poisson_interarrival_mean_within_tolerance():
    rate = 50.0
    gaps = np.diff(PoissonArrivals(rate, seed=3).times(20_000))
    # Exponential(1/rate): the 20k-sample mean lands within a few percent.
    assert np.mean(gaps) == pytest.approx(1.0 / rate, rel=0.05)


def test_bursty_on_phase_is_denser_than_off_phase():
    on_rate, off_rate = 500.0, 5.0
    b = BurstyArrivals(on_rate, off_rate, on_seconds=1.0, off_seconds=1.0, seed=11)
    t = b.times(2000)
    # Phase of each arrival: even seconds are on, odd are off.
    phase = np.floor(t).astype(int) % 2
    on_count, off_count = int(np.sum(phase == 0)), int(np.sum(phase == 1))
    assert on_count > 10 * max(off_count, 1)


def test_diurnal_rate_function_and_peak_density():
    d = DiurnalArrivals(base_rate=2.0, peak_rate=80.0, period=10.0, seed=5)
    assert d.rate_at(0.0) == pytest.approx(2.0)
    assert d.rate_at(5.0) == pytest.approx(80.0)
    t = d.times(3000)
    within = t[t < 10.0] if np.any(t < 10.0) else t % 10.0
    # More arrivals land near the peak (middle of the period) than the trough.
    pos = (t % 10.0) / 10.0
    near_peak = np.sum((pos > 0.35) & (pos < 0.65))
    near_trough = np.sum((pos < 0.15) | (pos > 0.85))
    assert near_peak > near_trough
    assert len(within) > 0


@pytest.mark.parametrize(
    "bad",
    [
        lambda: PoissonArrivals(0.0),
        lambda: BurstyArrivals(0.0, 1.0, 1.0, 1.0),
        lambda: BurstyArrivals(1.0, -1.0, 1.0, 1.0),
        lambda: BurstyArrivals(1.0, 1.0, 0.0, 1.0),
        lambda: DiurnalArrivals(-1.0, 10.0, 1.0),
        lambda: DiurnalArrivals(20.0, 10.0, 1.0),
        lambda: DiurnalArrivals(1.0, 10.0, 0.0),
    ],
)
def test_generator_validation(bad):
    with pytest.raises(ConfigurationError):
        bad()


def test_generator_count_validation():
    with pytest.raises(ConfigurationError):
        PoissonArrivals(1.0).times(0)


# ---------------------------------------------------------------------------
# Zipf popularity
# ---------------------------------------------------------------------------


def test_zipf_probabilities_are_skewed_and_normalised():
    z = ZipfPopularity(["a", "b", "c", "d"], exponent=1.1)
    p = z.probabilities
    assert p.sum() == pytest.approx(1.0)
    assert np.all(np.diff(p) < 0.0), "rank order must be strictly decreasing"
    # Zipf s=1.1 over 4 names: the head holds the plurality.
    assert p[0] > 0.45


def test_zipf_draws_match_the_law():
    z = ZipfPopularity(["a", "b", "c"], exponent=1.5)
    seq = z.sequence(30_000, seed=9)
    counts = np.array([seq.count(n) for n in z.names]) / len(seq)
    np.testing.assert_allclose(counts, z.probabilities, atol=0.02)
    assert z.sequence(100, seed=9) == z.sequence(100, seed=9)


def test_zipf_zero_exponent_is_uniform():
    z = ZipfPopularity(["a", "b"], exponent=0.0)
    np.testing.assert_allclose(z.probabilities, [0.5, 0.5])


def test_zipf_validation():
    with pytest.raises(ConfigurationError):
        ZipfPopularity([])
    with pytest.raises(ConfigurationError):
        ZipfPopularity(["a"], exponent=-0.1)


# ---------------------------------------------------------------------------
# profiles and harness construction
# ---------------------------------------------------------------------------


def test_profile_validation():
    with pytest.raises(ConfigurationError):
        RequestProfile(route="batched", names=(), ks=(8,))
    with pytest.raises(ConfigurationError):
        RequestProfile(route="batched", names=("a",), ks=())
    with pytest.raises(ConfigurationError):
        RequestProfile(route="batched", names=("a",), ks=(0,))
    with pytest.raises(ConfigurationError):
        RequestProfile(route="batched", names=("a",), ks=(8,), weight=0.0)


def test_harness_validation(dispatcher):
    with pytest.raises(ConfigurationError):
        LoadHarness(dispatcher, [])
    with pytest.raises(ConfigurationError):
        LoadHarness(dispatcher, [batched_profile()], policy="drop")
    with pytest.raises(ConfigurationError):
        LoadHarness(dispatcher, [batched_profile()], queue_capacity=0)
    # Streaming profiles must name entries of the streams table.
    with pytest.raises(ConfigurationError):
        LoadHarness(
            dispatcher,
            [RequestProfile(route="streaming", names=("missing",), ks=(8,))],
        )


def test_queue_capacity_defaults_to_the_executor_bound(dispatcher):
    h = LoadHarness(dispatcher, [batched_profile()])
    assert h.queue_capacity == dispatcher.executor.queue_capacity


# ---------------------------------------------------------------------------
# runs: determinism, underload, saturation, policies
# ---------------------------------------------------------------------------


def test_open_loop_underload_sheds_nothing(dispatcher):
    h = LoadHarness(dispatcher, [batched_profile()], policy="shed", seed=1)
    report = h.run_open(PoissonArrivals(2.0, seed=2), 30)
    assert report.mode == "open"
    assert report.requests == 30
    assert report.shed == 0 and report.degraded == 0
    stats = report.route_stats("all")
    assert stats.ok == 30
    assert stats.p50_latency_ms <= stats.p95_latency_ms <= stats.p99_latency_ms
    # With 500 ms gaps and ms-scale service the queue never forms.
    assert stats.p99_queue_ms == 0.0


def test_open_loop_overload_saturates_without_blocking(dispatcher):
    h = LoadHarness(dispatcher, [batched_profile()], policy="shed", seed=1)
    report = h.run_open(PoissonArrivals(2e6, seed=2), 80)
    assert report.shed > 0, "a 2M rps burst must overflow a 2-deep queue"
    assert report.shed + report.degraded + report.route_stats("all").ok == 80
    for sample in report.samples:
        if sample.outcome == "shed":
            assert sample.latency_ms == 0.0 and sample.service_ms == 0.0


def test_degrade_policy_answers_from_the_result_cache(dispatcher):
    # The admitted names were warmed with exactly the profile's (k, largest)
    # mix, so every saturated arrival finds a cached answer.
    h = LoadHarness(dispatcher, [batched_profile()], policy="degrade", seed=1)
    report = h.run_open(PoissonArrivals(2e6, seed=2), 80)
    assert report.degraded > 0
    assert report.policy == "degrade"
    degraded = [s for s in report.samples if s.outcome == "degraded"]
    for s in degraded:
        assert s.latency_ms == s.service_ms  # no queue wait on the degrade path
        assert s.queue_wait_ms == 0.0


def test_degrade_policy_sheds_on_cache_miss():
    # With the result cache disabled every degrade attempt misses, so the
    # policy falls back to shedding — still without blocking the loop.
    rng = np.random.default_rng(0)
    with ServiceDispatcher(
        num_workers=2, capacity_elements=N, queue_capacity=2, result_cache_capacity=0
    ) as d:
        d.admit("only", rng.standard_normal(N).astype(np.float32))
        h = LoadHarness(
            d,
            [RequestProfile(route="batched", names=("only",), ks=(8,))],
            policy="degrade",
            seed=1,
        )
        report = h.run_open(PoissonArrivals(2e6, seed=2), 60)
    assert report.shed > 0
    assert report.degraded == 0


def test_block_policy_admits_everything_and_grows_the_queue(dispatcher):
    h = LoadHarness(dispatcher, [batched_profile()], policy="block", seed=1)
    report = h.run_open(PoissonArrivals(2e6, seed=2), 60)
    assert report.shed == 0 and report.degraded == 0
    stats = report.route_stats("all")
    assert stats.ok == 60
    # Blocking means the tail queue wait dominates the (cache-hit) service.
    assert stats.p99_queue_ms > stats.mean_service_ms


def test_runs_are_deterministic_apart_from_measured_times(dispatcher):
    h = LoadHarness(dispatcher, [batched_profile()], policy="degrade", seed=42)
    a = h.run_open(PoissonArrivals(2e6, seed=3), 60)
    b = h.run_open(PoissonArrivals(2e6, seed=3), 60)
    # Wall-clock varies; the request sequence and admission decisions do not.
    assert [s.name for s in a.samples] == [s.name for s in b.samples]
    assert [s.k for s in a.samples] == [s.k for s in b.samples]
    assert [s.arrival_s for s in a.samples] == [s.arrival_s for s in b.samples]


def test_closed_loop_concurrency_bound_is_honoured(dispatcher):
    for concurrency in (1, 3):
        h = LoadHarness(dispatcher, [batched_profile()], seed=5)
        report = h.run_closed(concurrency=concurrency, requests=30)
        assert report.mode == "closed"
        assert 1 <= report.max_in_flight <= concurrency
        assert report.shed == 0  # closed loops self-regulate below capacity
        # Overlap check from first principles: at any arrival, the number of
        # earlier-arrived, still-unfinished requests stays under the bound.
        intervals = [
            (s.arrival_s, s.arrival_s + s.latency_ms / 1e3) for s in report.samples
        ]
        for i, (a_i, _) in enumerate(intervals):
            overlapping = sum(
                1 for a_j, f_j in intervals if a_j <= a_i and f_j > a_i
            )
            assert overlapping <= concurrency


def test_closed_loop_validation(dispatcher):
    h = LoadHarness(dispatcher, [batched_profile()])
    with pytest.raises(ConfigurationError):
        h.run_closed(concurrency=0, requests=10)
    with pytest.raises(ConfigurationError):
        h.run_closed(concurrency=1, requests=0)
    with pytest.raises(ConfigurationError):
        h.run_closed(concurrency=1, requests=10, think_seconds=-1.0)


def test_mixed_routes_report_streaming_and_sharded(dispatcher):
    rng = np.random.default_rng(7)
    dispatcher.admit("wide", rng.standard_normal(4 * N).astype(np.float32))
    streams = {"s": [rng.standard_normal(N // 4).astype(np.float32) for _ in range(4)]}
    profiles = [
        batched_profile(weight=2.0),
        RequestProfile(route="sharded", names=("wide",), ks=(8,)),
        RequestProfile(route="streaming", names=("s",), ks=(8,)),
    ]
    h = LoadHarness(dispatcher, profiles, streams=streams, seed=0)
    report = h.run_closed(concurrency=2, requests=40)
    routes = [s.route for s in report.routes]
    assert routes[-1] == "all"
    assert {"batched", "sharded", "streaming"} <= set(routes)
    ok = [s for s in report.samples if s.outcome == "ok"]
    assert all(s.service_ms > 0.0 for s in ok), "service times must be measured"
    sharded_ok = [s for s in ok if s.route == "sharded"]
    assert any(s.unit_wall_ms > 0.0 for s in sharded_ok), (
        "per-unit executor measurements must ride along"
    )


# ---------------------------------------------------------------------------
# reports
# ---------------------------------------------------------------------------


def test_report_rows_and_slo(dispatcher):
    h = LoadHarness(
        dispatcher,
        [batched_profile()],
        slo_ms={"batched": 25.0, "all": 30.0},
        seed=8,
    )
    report = h.run_closed(concurrency=2, requests=20)
    rows = report.to_rows()
    assert [r["route"] for r in rows] == ["batched", "all"]
    for row in rows:
        assert row["ok"] + row["shed"] + row["degraded"] == row["requests"]
        assert 0.0 <= row["slo_attainment"] <= 1.0
        assert row["throughput_rps"] > 0.0
    assert rows[0]["slo_ms"] == 25.0
    assert rows[1]["slo_ms"] == 30.0
    with pytest.raises(ConfigurationError):
        report.route_stats("sharded")


def test_prometheus_exposition_format(dispatcher):
    h = LoadHarness(dispatcher, [batched_profile()], seed=8)
    report = h.run_closed(concurrency=2, requests=20)
    text = report.to_prometheus(labels={"phase": "demo"})
    assert text.endswith("\n")
    assert "# TYPE repro_loadgen_latency_ms summary" in text
    assert "# TYPE repro_loadgen_requests_total counter" in text
    assert 'repro_loadgen_latency_ms{phase="demo",quantile="0.5",route="all"}' in text
    assert 'repro_loadgen_slo_attainment{phase="demo",route="batched"}' in text
    # Every non-comment line is `name{labels} value`.
    for line in text.strip().splitlines():
        if line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        float(value)
        assert name_part.startswith("repro_loadgen_") and name_part.endswith("}")


def test_admission_policies_constant():
    assert ADMISSION_POLICIES == ("block", "shed", "degrade")
