"""Split-group dispatch: differential equivalence and broadcast semantics.

The contract of splitting a dominant plan-sharing group across workers is
that it is *invisible* in the answers: element-wise identical values and
indices to a forced single-worker dispatch, on the cold path and the warm
(banked) replay alike, with the group's one construction charged exactly
once no matter how many splits ran.  The differential tests here hold that
line over randomized ``(n, k-mix, largest-mix, fleet size)`` grids; the
remaining tests pin the broadcast accounting and the eviction-cascade
behaviour for in-flight shared handles.
"""

from __future__ import annotations

import numpy as np

from repro.core.drtopk import DrTopK
from repro.errors import ConfigurationError
from repro.harness.experiments import _same_alpha_variant
from repro.service.batch import TopKQuery
from repro.service.dispatcher import ServiceDispatcher

from tests.helpers import assert_topk_correct


def _random_queries(rng, n, size):
    """A batch biased toward one dominant group plus a random remainder."""
    base_k = int(rng.integers(1, max(2, n // 4)))
    queries = [(base_k, True)] * (size - size // 3)
    for _ in range(size // 3):
        queries.append((int(rng.integers(1, n + 1)), bool(rng.integers(0, 2))))
    return queries


def _warm_variant(engine, n, queries):
    """Same-alpha changed ks where one exists (the banked-replay mix)."""
    warm = []
    for k, largest in queries:
        try:
            warm.append((_same_alpha_variant(engine, n, k), largest))
        except ConfigurationError:
            warm.append((k, largest))
    return warm


class TestDifferentialEquivalence:
    """Split vs forced single-worker dispatch must agree element-wise."""

    def _assert_identical(self, left, right):
        for a, b in zip(left, right):
            np.testing.assert_array_equal(a.values, b.values)
            np.testing.assert_array_equal(a.indices, b.indices)
            assert sorted(a.indices.tolist()) == sorted(b.indices.tolist())

    def test_randomized_grid_cold_and_warm(self, rng):
        engine = DrTopK()
        for trial in range(5):
            n = 1 << int(rng.integers(10, 14))
            workers = int(rng.integers(2, 6))
            v = rng.integers(0, 2**32, size=n, dtype=np.uint32)
            queries = _random_queries(rng, n, size=int(rng.integers(6, 15)))
            warm_queries = _warm_variant(engine, n, queries)
            with ServiceDispatcher(
                num_workers=workers, result_cache_capacity=0, split_threshold=None
            ) as pinned, ServiceDispatcher(
                num_workers=workers, result_cache_capacity=0, split_threshold=0.3
            ) as split:
                cold_pinned = pinned.dispatch(v, queries)
                cold_split = split.dispatch(v, queries)
                self._assert_identical(cold_pinned, cold_split)
                assert split.last_report.groups_split >= 1, (
                    f"trial {trial}: the dominant group never split "
                    f"({workers} workers, {len(queries)} queries)"
                )
                # Warm replay: changed ks keying the same banked plans.
                warm_pinned = pinned.dispatch(v, warm_queries)
                warm_split = split.dispatch(v, warm_queries)
                self._assert_identical(warm_pinned, warm_split)
                report = split.last_report
                assert report.constructions == 0, (
                    f"trial {trial}: warm split replay reconstructed"
                )
                assert report.construction_bytes == 0.0
                assert report.plan_bank_hits > 0
            for res, (k, largest) in zip(cold_split, queries):
                assert_topk_correct(res, v, k, largest=largest)

    def test_degenerate_groups_split_identically(self, rng):
        # ks near n force the degenerate regime (no delegate construction):
        # a split degenerate group must still agree with the pinned dispatch
        # through the plain-top-k fallback.
        n = 1 << 10
        v = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        queries = [(n - 1, True)] * 4 + [(n // 2 + 1, False)] * 2
        with ServiceDispatcher(
            num_workers=3, result_cache_capacity=0, split_threshold=None
        ) as pinned, ServiceDispatcher(
            num_workers=3, result_cache_capacity=0, split_threshold=0.3
        ) as split:
            self._assert_identical(
                pinned.dispatch(v, queries), split.dispatch(v, queries)
            )
            report = split.last_report
            # Degenerate broadcasts hand out shared handles but charge no
            # construction anywhere.
            assert report.constructions == 0

    def test_split_disabled_on_single_worker_fleet(self, rng):
        n = 1 << 10
        v = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        with ServiceDispatcher(num_workers=1, result_cache_capacity=0) as d:
            results = d.dispatch(v, [(16, True)] * 6)
            assert d.last_report.groups_split == 0
            assert d.last_report.plan_broadcasts == 0
            for res in results:
                assert_topk_correct(res, v, 16)


class TestBroadcastAccounting:
    def test_dominant_group_splits_with_one_construction(self, uniform_u32):
        # A >= 70%-dominant group (9 of 11 queries share one plan) spreads
        # over >= 2 workers while the fleet charges its construction once.
        queries = [(64, True)] * 9 + [(64, False)] * 2
        with ServiceDispatcher(num_workers=4, result_cache_capacity=0) as d:
            d.dispatch(uniform_u32, queries)
            report = d.last_report
            assert report.groups_split >= 1
            assert report.plan_broadcasts >= 2
            # One construction for the split group, one for the unsplit
            # minor group: splitting never adds constructions.
            assert report.constructions == 2
            split_workers = sum(1 for w in report.workers if w.queries)
            assert split_workers >= 2
            # Balance strictly beats everything-on-one-worker.
            assert 1.0 <= report.balance_ratio < report.num_workers

    def test_split_without_plan_bank_still_constructs_once(self, uniform_u32):
        # No bank and no fingerprint to key one: the broadcast must hand a
        # directly built plan to every split, construction still once.
        queries = [(128, True)] * 8
        with ServiceDispatcher(
            num_workers=4,
            result_cache_capacity=0,
            plan_bank_bytes=0,
        ) as d:
            results = d.dispatch(uniform_u32, queries)
            report = d.last_report
            assert report.groups_split == 1
            assert report.constructions == 1
            assert sum(1 for w in report.workers if w.queries) == 4
            for res in results:
                assert_topk_correct(res, uniform_u32, 128)

    def test_inflight_broadcast_survives_eviction_cascade(self, uniform_u32):
        """evict(name) while N splits hold the broadcast plan handle.

        The cascade must release the banked bytes immediately (observable in
        the bank's ``CacheInfo``), while in-flight split units keep their
        read-only handle and answer exactly.
        """
        expected = DrTopK().topk(uniform_u32, 64)
        with ServiceDispatcher(num_workers=2, result_cache_capacity=0) as d:
            entry = d.admit("hot", uniform_u32.copy())
            parsed = [TopKQuery.of((64, True))] * 4
            units, plan = d.router.batched_units(
                entry.vector, parsed, d.workers, fingerprint=entry.fingerprint
            )
            # The broadcast banked the plan under the admitted fingerprint.
            assert plan.shared_plans and plan.broadcast_constructions == 1
            assert d.plan_bank is not None
            bytes_before = d.plan_bank.info().bytes
            assert bytes_before > 0
            assert d.evict("hot")
            assert d.plan_bank.info().bytes < bytes_before
            # In-flight units still answer exactly from their held handles.
            for unit in units:
                _positions, results, report = unit.fn()
                assert report.shared_plan_groups == 1
                assert report.constructions == 0
                for res in results:
                    np.testing.assert_array_equal(res.values, expected.values)
                    np.testing.assert_array_equal(res.indices, expected.indices)

    def test_warm_named_split_query_is_zero_rescan(self, uniform_u32):
        # The named front end composes with splitting: a warm split query
        # records zero constructions, zero construction bytes and zero
        # fingerprint work on top of the balanced placement.
        from repro.service.cache import fingerprint_call_count

        n = uniform_u32.shape[0]
        engine = DrTopK()
        warm_k = _same_alpha_variant(engine, n, 64)
        with ServiceDispatcher(num_workers=4, result_cache_capacity=0) as d:
            d.admit("hot", uniform_u32.copy(), warm=[(64, True)])
            before = fingerprint_call_count()
            d.query("hot", [(warm_k, True)] * 8)
            report = d.last_report
            assert fingerprint_call_count() == before
            assert report.groups_split == 1
            assert report.constructions == 0
            assert report.construction_bytes == 0.0
            assert report.plan_bank_hits > 0
