"""Behavioural tests specific to the radix top-k variants."""

import numpy as np
import pytest

from repro.algorithms.base import ExecutionTrace
from repro.algorithms.radix import FlagRadixTopK, InPlaceRadixTopK, RadixTopK
from repro.errors import ConfigurationError
from tests.helpers import assert_topk_correct


class TestConstruction:
    def test_bad_bits_per_pass(self):
        with pytest.raises(ConfigurationError):
            RadixTopK(bits_per_pass=0)
        with pytest.raises(ConfigurationError):
            RadixTopK(bits_per_pass=20)

    @pytest.mark.parametrize("bits", [1, 2, 4, 8, 11, 16])
    def test_any_bits_per_pass_is_correct(self, bits, rng):
        v = rng.integers(0, 2**32, size=4096, dtype=np.uint32)
        result = RadixTopK(bits_per_pass=bits).topk(v, 77)
        assert_topk_correct(result, v, 77)


class TestVariantEquivalence:
    @pytest.mark.parametrize("k", [1, 32, 500])
    def test_all_variants_agree_on_values(self, rng, k):
        v = rng.integers(0, 2**20, size=8192, dtype=np.uint32)  # narrow range -> ties
        results = [
            np.sort(cls().topk(v, k).values)
            for cls in (RadixTopK, InPlaceRadixTopK, FlagRadixTopK)
        ]
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])

    def test_flag_variant_handles_single_pass_exit(self, rng):
        # All elements equal: the prefix never narrows and the extraction path
        # must still return exactly k elements.
        v = np.full(2048, 123456, dtype=np.uint32)
        result = FlagRadixTopK().topk(v, 10)
        assert_topk_correct(result, v, 10)


class TestTrafficModel:
    def test_flag_scans_do_not_store(self, uniform_u32):
        trace = ExecutionTrace()
        FlagRadixTopK().topk(uniform_u32, 128, trace=trace)
        scan_steps = [s for s in trace.steps if s.name == "radix_flag_scan"]
        assert scan_steps, "flag radix must record scan steps"
        assert all(s.counters.global_stores == 0 for s in scan_steps)

    def test_inplace_charges_scattered_stores(self, uniform_u32):
        trace = ExecutionTrace()
        InPlaceRadixTopK().topk(uniform_u32, 128, trace=trace)
        zero_steps = [s for s in trace.steps if s.name == "radix_inplace_zero"]
        assert zero_steps
        assert all(s.counters.utilization < 1.0 for s in zero_steps)
        total_zeroed = sum(s.counters.global_stores for s in zero_steps)
        # Nearly the whole vector is eventually zeroed out.
        assert total_zeroed > uniform_u32.shape[0] * 0.5

    def test_flag_is_faster_than_inplace_in_simulated_time(self, rng):
        """The Figure 12 effect: the flag optimisation wins by a clear margin.

        The advantage comes from removing the scattered zeroing stores, so it
        shows once the input is large enough for traffic (rather than kernel
        launch overhead) to dominate — the paper uses |V| = 2^21.
        """
        v = rng.integers(0, 2**32, size=1 << 19, dtype=np.uint32)
        t_flag = ExecutionTrace()
        FlagRadixTopK().topk(v, 256, trace=t_flag)
        t_inplace = ExecutionTrace()
        InPlaceRadixTopK().topk(v, 256, trace=t_inplace)
        assert t_inplace.total_time_ms() > 2.0 * t_flag.total_time_ms()

    def test_outofplace_loads_shrink_across_passes(self, uniform_u32):
        trace = ExecutionTrace()
        RadixTopK().topk(uniform_u32, 64, trace=trace)
        loads = [s.counters.global_loads for s in trace.steps if s.name == "radix_topk"]
        assert loads == sorted(loads, reverse=True)

    def test_iteration_counter_exposed(self, uniform_u32):
        algo = RadixTopK()
        algo.topk(uniform_u32, 64)
        assert 1 <= algo.last_iterations <= 4
