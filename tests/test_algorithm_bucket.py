"""Behavioural tests specific to bucket top-k."""

import numpy as np
import pytest

from repro.algorithms.base import ExecutionTrace
from repro.algorithms.bucket import BucketTopK
from repro.datasets.synthetic import customized_distribution, uniform_distribution
from repro.errors import ConfigurationError
from tests.helpers import assert_topk_correct


class TestConstruction:
    def test_invalid_bucket_count(self):
        with pytest.raises(ConfigurationError):
            BucketTopK(num_buckets=1)

    @pytest.mark.parametrize("buckets", [2, 7, 16, 256, 1024])
    def test_any_bucket_count_correct(self, buckets, rng):
        v = rng.integers(0, 2**32, size=4096, dtype=np.uint32)
        result = BucketTopK(num_buckets=buckets).topk(v, 50)
        assert_topk_correct(result, v, 50)


class TestIterationBehaviour:
    def test_k_equals_one_terminates_quickly(self, uniform_u32):
        algo = BucketTopK()
        result = algo.topk(uniform_u32, 1)
        assert result.values[0] == uniform_u32.max()
        assert algo.last_iterations <= 2

    def test_adversarial_distribution_needs_more_iterations(self):
        """The CD dataset is built to inflate bucket top-k's iteration count."""
        n, k = 1 << 15, 256
        ud = uniform_distribution(n, seed=1)
        cd = customized_distribution(n, seed=1)
        algo_ud, algo_cd = BucketTopK(), BucketTopK()
        assert_topk_correct(algo_ud.topk(ud, k), ud, k)
        assert_topk_correct(algo_cd.topk(cd, k), cd, k)
        assert algo_cd.last_iterations >= algo_ud.last_iterations

    def test_adversarial_distribution_costs_more(self):
        n, k = 1 << 15, 256
        ud = uniform_distribution(n, seed=2)
        cd = customized_distribution(n, seed=2)
        t_ud, t_cd = ExecutionTrace(), ExecutionTrace()
        BucketTopK().topk(ud, k, trace=t_ud)
        BucketTopK().topk(cd, k, trace=t_cd)
        assert t_cd.total_counters().global_loads > t_ud.total_counters().global_loads

    def test_narrow_range_still_correct(self, rng):
        v = (rng.normal(1e8, 10, size=1 << 14)).astype(np.uint32)
        result = BucketTopK().topk(v, 777)
        assert_topk_correct(result, v, 777)

    def test_trace_records_atomics(self, uniform_u32):
        trace = ExecutionTrace()
        BucketTopK().topk(uniform_u32, 32, trace=trace)
        assert trace.total_counters().atomics > 0

    def test_distribution_instability_flag(self):
        assert BucketTopK.distribution_stable is False
