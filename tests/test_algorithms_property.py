"""Property-based tests (hypothesis) for the top-k algorithm substrate.

The central invariant: for any input vector and any valid k, every algorithm
returns a multiset of values identical to the sort-based oracle, with unique
indices that point at matching elements.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms import available_algorithms, topk
from tests.helpers import assert_topk_correct

ALGORITHMS = sorted(available_algorithms())

uint32_vectors = hnp.arrays(
    dtype=np.uint32,
    shape=st.integers(min_value=1, max_value=300),
    elements=st.integers(min_value=0, max_value=2**32 - 1),
)

small_value_vectors = hnp.arrays(
    dtype=np.uint32,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.integers(min_value=0, max_value=7),
)

float_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=150),
    elements=st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestTopKProperties:
    @settings(max_examples=30, deadline=None)
    @given(v=uint32_vectors, data=st.data())
    def test_matches_oracle_uint32(self, algorithm, v, data):
        k = data.draw(st.integers(1, v.shape[0]))
        result = topk(v, k, algorithm=algorithm)
        assert_topk_correct(result, v, k)

    @settings(max_examples=25, deadline=None)
    @given(v=small_value_vectors, data=st.data())
    def test_matches_oracle_with_heavy_ties(self, algorithm, v, data):
        k = data.draw(st.integers(1, v.shape[0]))
        result = topk(v, k, algorithm=algorithm)
        assert_topk_correct(result, v, k)

    @settings(max_examples=25, deadline=None)
    @given(v=float_vectors, data=st.data())
    def test_matches_oracle_floats_both_directions(self, algorithm, v, data):
        k = data.draw(st.integers(1, v.shape[0]))
        largest = data.draw(st.booleans())
        result = topk(v, k, largest=largest, algorithm=algorithm)
        assert_topk_correct(result, v, k, largest=largest)

    @settings(max_examples=20, deadline=None)
    @given(v=uint32_vectors)
    def test_k1_is_extremum(self, algorithm, v):
        assert topk(v, 1, algorithm=algorithm).values[0] == v.max()
        assert topk(v, 1, largest=False, algorithm=algorithm).values[0] == v.min()

    @settings(max_examples=20, deadline=None)
    @given(v=uint32_vectors, data=st.data())
    def test_monotone_in_k(self, algorithm, v, data):
        """top-(k) values are a sub-multiset of top-(k+1) values."""
        if v.shape[0] < 2:
            return
        k = data.draw(st.integers(1, v.shape[0] - 1))
        small = np.sort(topk(v, k, algorithm=algorithm).values)
        large = np.sort(topk(v, k + 1, algorithm=algorithm).values)
        # Removing the smallest element of the larger answer yields the smaller.
        np.testing.assert_array_equal(small, large[1:])
