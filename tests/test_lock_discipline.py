"""Regression tests for the LOCK001 fixes: sized/membership probes under churn.

reprolint's lock-discipline pass flagged lockless ``__len__`` /
``__contains__`` probes on every serving container (VectorStore,
PartitionCache, ResultCache, the PlanBank/ChunkMemo LRU, SpillDirectory).
Each was fixed to take its container's lock; these tests hammer the fixed
probes from reader threads while writer threads mutate the underlying
dict, so a regression to lockless iteration shows up as a
``RuntimeError: dictionary changed size during iteration`` or a torn
read, not a silent data race.

The static side of the regression — "the probes hold the lock" — is
enforced by ``tests/test_reprolint.py::test_real_tree_is_strict_clean``.
"""

import threading

import numpy as np
import pytest

from repro.core.drtopk import DrTopK
from repro.service.cache import PartitionCache, ResultCache
from repro.service.planbank import ChunkMemo
from repro.service.spill import SpillDirectory
from repro.service.store import VectorStore
from repro.types import TopKResult

WRITER_ROUNDS = 200
READER_ROUNDS = 400


def _run_threads(workers):
    errors = []

    def wrap(fn):
        def inner():
            try:
                fn()
            except Exception as exc:  # noqa: BLE001 - surfaced via errors list
                errors.append(exc)

        return inner

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == [], errors


def _result(k: int = 2) -> TopKResult:
    values = np.arange(k, dtype=np.float64)[::-1].copy()
    return TopKResult(values=values, indices=np.arange(k), k=k, largest=True)


def test_vector_store_len_contains_under_admit_evict_churn():
    store = VectorStore(capacity_bytes=1 << 20)

    def writer():
        rng = np.random.default_rng(7)
        for i in range(WRITER_ROUNDS):
            name = f"v{i % 8}"
            store.admit(name, rng.standard_normal(64))
            if i % 3 == 0:
                store.evict(name)

    def reader():
        for i in range(READER_ROUNDS):
            assert len(store) >= 0
            (f"v{i % 8}" in store)

    _run_threads([writer, writer, reader, reader])
    assert len(store) <= 8


def test_partition_cache_len_contains_under_resolve_churn():
    cache = PartitionCache(capacity=16)
    engine = DrTopK()

    def writer():
        for i in range(WRITER_ROUNDS):
            cache.resolve(1024 + i % 64, 8 + i % 8, engine)

    def reader():
        for _ in range(READER_ROUNDS):
            assert 0 <= len(cache) <= 16

    _run_threads([writer, writer, reader, reader])


def test_result_cache_len_under_put_get_churn():
    cache = ResultCache(capacity=8)

    def writer():
        for i in range(WRITER_ROUNDS):
            cache.put(f"fp{i % 12}", 2, True, _result())
            cache.get(f"fp{(i + 3) % 12}", 2, True)

    def reader():
        for _ in range(READER_ROUNDS):
            assert 0 <= len(cache) <= 8

    _run_threads([writer, writer, reader, reader])


def test_chunk_memo_len_under_put_churn():
    memo = ChunkMemo(capacity_bytes=1 << 14)

    def writer():
        for i in range(WRITER_ROUNDS):
            memo.put(f"fp{i % 10}", 2, True, _result())

    def reader():
        for _ in range(READER_ROUNDS):
            assert len(memo) >= 0

    _run_threads([writer, writer, reader, reader])


@pytest.mark.parametrize("probes", [("len",), ("contains",), ("len", "contains")])
def test_spill_directory_probes_under_store_remove_churn(tmp_path, probes):
    spill = SpillDirectory(str(tmp_path / "spill"))
    rng = np.random.default_rng(11)

    def writer():
        for i in range(40):
            name = f"s{i % 4}"
            spill.store(name, rng.standard_normal(32), fingerprint=f"fp{i % 4}")
            if i % 2:
                spill.remove(name)

    def reader():
        for i in range(120):
            if "len" in probes:
                assert len(spill) >= 0
            if "contains" in probes:
                (f"s{i % 4}" in spill)

    _run_threads([writer, reader, reader])
    assert len(spill) <= 4
