"""Tests for the order-preserving key transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms.keys import key_bits, supported_dtype, to_keys
from repro.errors import ConfigurationError


class TestSupportedDtypes:
    @pytest.mark.parametrize(
        "dtype", [np.uint8, np.uint16, np.uint32, np.uint64, np.int32, np.int64, np.float32, np.float64]
    )
    def test_supported(self, dtype):
        assert supported_dtype(np.dtype(dtype))

    @pytest.mark.parametrize("dtype", [np.complex128, np.bool_, object])
    def test_unsupported(self, dtype):
        assert not supported_dtype(np.dtype(dtype))

    def test_key_bits(self):
        assert key_bits(np.uint32) == 32
        assert key_bits(np.float64) == 64

    def test_key_bits_rejects_unsupported(self):
        with pytest.raises(ConfigurationError):
            key_bits(np.complex64)


class TestOrderPreservation:
    def test_uint_identity(self):
        v = np.array([3, 1, 2], dtype=np.uint32)
        np.testing.assert_array_equal(to_keys(v), v)

    def test_signed_ordering(self):
        v = np.array([-5, 0, 5, -1], dtype=np.int32)
        keys = to_keys(v)
        assert np.argmax(keys) == 2
        assert np.argmin(keys) == 0

    def test_float_ordering(self):
        v = np.array([-1.5, 0.0, 2.25, -0.25], dtype=np.float64)
        keys = to_keys(v)
        assert np.argmax(keys) == 2
        assert np.argmin(keys) == 0

    def test_smallest_flips_order(self):
        v = np.array([10, 20, 30], dtype=np.uint32)
        keys = to_keys(v, largest=False)
        assert np.argmax(keys) == 0

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            to_keys(np.array([1.0, np.nan]))

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ConfigurationError):
            to_keys(np.array([True, False]))


class TestOrderPreservationProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(1, 64),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        ),
        st.booleans(),
    )
    def test_pairwise_order_preserved(self, values, largest):
        keys = to_keys(values, largest=largest)
        # For every pair, the key comparison must agree with the value
        # comparison (respecting the direction of the query).
        v = values.astype(np.float64)
        for i in range(min(len(v), 10)):
            for j in range(min(len(v), 10)):
                if v[i] == v[j]:
                    continue
                prefer_i = v[i] > v[j] if largest else v[i] < v[j]
                assert (keys[i] > keys[j]) == prefer_i
