"""Tests for the simulated GPU substrate: devices, counters, warps, cost model."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.gpusim import (
    A100,
    TITAN_XP,
    V100S,
    CostModel,
    DeviceSpec,
    GlobalMemory,
    KernelStep,
    MemoryCounters,
    Profiler,
    SharedMemory,
    WarpModel,
    available_devices,
    get_device,
)
from repro.gpusim.warp import WARP_SIZE, shuffles_per_reduction


class TestDeviceSpec:
    def test_registry_contains_paper_devices(self):
        assert {"a100", "titanxp", "v100s"}.issubset(set(available_devices()))

    def test_lookup_case_insensitive(self):
        assert get_device("v100s") is V100S
        assert get_device("TITANXP") is TITAN_XP

    def test_unknown_device(self):
        with pytest.raises(ConfigurationError):
            get_device("h100")

    def test_v100s_matches_paper_numbers(self):
        assert V100S.num_sms == 80
        assert V100S.cores_per_sm == 64
        assert V100S.total_cores == 5120
        assert V100S.peak_bandwidth_gbps == pytest.approx(1134.0)
        assert V100S.global_memory_gb == pytest.approx(32.0)

    def test_bandwidth_ratio_v100s_titanxp(self):
        """Figure 23 attributes the speed difference to the bandwidth ratio (~2x)."""
        ratio = V100S.peak_bandwidth_gbps / TITAN_XP.peak_bandwidth_gbps
        assert 1.8 < ratio < 2.3

    def test_capacity_holds_2_30_elements(self):
        assert V100S.capacity_elements(itemsize=4) >= 1 << 30

    def test_with_overrides(self):
        slow = V100S.with_overrides(peak_bandwidth_gbps=100.0)
        assert slow.peak_bandwidth_gbps == 100.0
        assert V100S.peak_bandwidth_gbps == pytest.approx(1134.0)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(
                name="bad", num_sms=0, cores_per_sm=64, clock_ghz=1.0,
                global_memory_gb=1, peak_bandwidth_gbps=100,
            )


class TestMemoryCounters:
    def test_transactions_are_32_bytes(self):
        c = MemoryCounters(global_loads=16, global_stores=8, itemsize=4)
        assert c.load_transactions == 2
        assert c.store_transactions == 1

    def test_addition_accumulates(self):
        a = MemoryCounters(global_loads=10, shuffles=5)
        b = MemoryCounters(global_stores=3, atomics=2)
        c = a + b
        assert c.global_loads == 10 and c.global_stores == 3
        assert c.shuffles == 5 and c.atomics == 2

    def test_addition_blends_utilization_by_traffic(self):
        a = MemoryCounters(global_loads=100, utilization=1.0)
        b = MemoryCounters(global_loads=100, utilization=0.5)
        assert (a + b).utilization == pytest.approx(0.75)

    def test_mixed_itemsize_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryCounters(itemsize=4) + MemoryCounters(itemsize=8)

    def test_scaled(self):
        c = MemoryCounters(global_loads=10, shuffles=4).scaled(2.5)
        assert c.global_loads == 25 and c.shuffles == 10

    def test_total_of_empty_is_zero(self):
        assert MemoryCounters.total([]).global_bytes == 0

    def test_invalid_utilization(self):
        with pytest.raises(ConfigurationError):
            MemoryCounters(utilization=0.0)


class TestMemories:
    def test_global_allocation_and_free(self):
        mem = GlobalMemory(capacity_bytes=1000)
        mem.allocate("a", 600)
        assert mem.free_bytes == 400
        mem.free("a")
        assert mem.free_bytes == 1000

    def test_global_over_allocation_raises(self):
        mem = GlobalMemory(capacity_bytes=100)
        with pytest.raises(CapacityError):
            mem.allocate("big", 101)

    def test_duplicate_allocation_name(self):
        mem = GlobalMemory(capacity_bytes=100)
        mem.allocate("x", 10)
        with pytest.raises(ConfigurationError):
            mem.allocate("x", 10)

    def test_shared_memory_check(self):
        shared = SharedMemory(capacity_bytes=96 * 1024)
        shared.check_fit(1024)
        assert not shared.fits(200 * 1024)
        with pytest.raises(CapacityError):
            shared.check_fit(200 * 1024)


class TestWarpModel:
    def test_full_reduction_is_31_shuffles(self):
        """The constant used by Equation 2."""
        assert shuffles_per_reduction(WARP_SIZE) == 31

    def test_utilization_small_subrange(self):
        warp = WarpModel()
        assert warp.utilization_for_subrange(8) == pytest.approx(0.25)
        assert warp.utilization_for_subrange(32) == 1.0
        assert warp.utilization_for_subrange(4096) == 1.0

    def test_beta_multiplies_shuffles(self):
        warp = WarpModel()
        assert warp.reduction_shuffles(64, beta=2) == 2 * warp.reduction_shuffles(64, beta=1)

    def test_warps_for(self):
        assert WarpModel().warps_for(33) == 2

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            WarpModel().utilization_for_subrange(0)
        with pytest.raises(ConfigurationError):
            WarpModel().reduction_shuffles(32, beta=0)


class TestCostModel:
    def test_streaming_scan_matches_paper_magnitude(self):
        """Scanning 2^30 uint32 on V100S takes ~4-5 ms (Section 4.1)."""
        model = CostModel(V100S)
        ms = model.streaming_scan_ms(1 << 30)
        assert 3.0 < ms < 6.0

    def test_devices_rank_by_bandwidth(self):
        counters = MemoryCounters(global_loads=1 << 24)
        t_v100 = CostModel(V100S).estimate_ms(counters)
        t_titan = CostModel(TITAN_XP).estimate_ms(counters)
        t_a100 = CostModel(A100).estimate_ms(counters)
        assert t_a100 < t_v100 < t_titan

    def test_utilization_penalty(self):
        fast = MemoryCounters(global_loads=1 << 22, utilization=1.0)
        slow = MemoryCounters(global_loads=1 << 22, utilization=0.25)
        model = CostModel(V100S)
        assert model.global_time_ms(slow) == pytest.approx(4 * model.global_time_ms(fast))

    def test_shuffle_and_atomic_terms_positive(self):
        model = CostModel(V100S)
        c = MemoryCounters(shuffles=1e6, atomics=1e5)
        assert model.shuffle_time_ms(c) > 0
        assert model.atomic_time_ms(c) > 0

    def test_host_transfer_slower_than_device_scan(self):
        model = CostModel(V100S)
        assert model.host_transfer_ms(1 << 26) > model.streaming_scan_ms(1 << 26)


class TestProfiler:
    def test_records_and_totals(self):
        profiler = Profiler(V100S)
        profiler.record(KernelStep("a", MemoryCounters(global_loads=1024, global_stores=256)))
        profiler.record(KernelStep("b", MemoryCounters(global_loads=2048)))
        assert profiler.total_time_ms() > 0
        assert profiler.load_transactions() == (1024 + 2048) * 4 // 32
        assert profiler.store_transactions() == 256 * 4 // 32
        assert set(profiler.step_times_ms()) == {"a", "b"}

    def test_report_mentions_device_and_steps(self):
        profiler = Profiler(TITAN_XP)
        profiler.record(KernelStep("delegate", MemoryCounters(global_loads=64)))
        report = profiler.report()
        assert "TitanXp" in report and "delegate" in report and "TOTAL" in report

    def test_reset(self):
        profiler = Profiler()
        profiler.record(KernelStep("x", MemoryCounters(global_loads=1)))
        profiler.reset()
        assert profiler.records == []
        assert profiler.total_time_ms() == 0
