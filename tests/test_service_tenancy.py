"""Multi-tenant serving: quotas, fairness, isolation — the proof suite.

The tenancy machinery claims properties, not tendencies, and everything
here is deterministic so they can be *proved* per seed:

* the token bucket's refill is monotone in an injected clock and a
  rejected burst leaves no half-admitted state;
* the weighted deficit-round-robin queue degrades to exact FIFO with one
  tenant (or equal weights over interleaved arrivals), serves backlogged
  tenants in their weight ratio, and is a pure function of the push
  sequence (property-tested over seeded random weights and arrivals);
* the store's per-tenant byte ledgers always sum to the resident total —
  including under a four-thread admission hammer — and eviction victims
  only ever come from the requesting tenant's slice;
* a noisy neighbour flooding its own budget can never evict a quiet
  tenant's pinned vector nor trip ``cross_tenant_evictions``;
* a torn ``tenant`` column (or a v1 manifest) degrades to a clean cold
  start instead of mis-attributed bytes;
* and with no registry — or an *empty* one — the single-tenant path is
  element-wise identical (values and indices, cold and warm, on all three
  routes) to a dispatcher that has never heard of tenants.
"""

import json
import os
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError, TenantQuotaError
from repro.service import ServiceDispatcher
from repro.service.loadgen import LoadHarness, PoissonArrivals, RequestProfile
from repro.service.spill import MANIFEST_NAME, SpillDirectory
from repro.service.store import VectorStore
from repro.service.cache import fingerprint_array
from repro.service.tenancy import (
    DEFAULT_TENANT,
    TenantPolicy,
    TenantRegistry,
    TokenBucket,
    WeightedFairQueue,
)

N = 1 << 12


def vec(seed, n=N):
    return np.random.default_rng(seed).standard_normal(n).astype(np.float32)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = float(now)

    def __call__(self):
        return self.now


# ---------------------------------------------------------------------------
# TenantPolicy / TokenBucket
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"tenant": ""},
        {"tenant": "t", "byte_budget": 0},
        {"tenant": "t", "qps": 0.0},
        {"tenant": "t", "qps": -1.0},
        {"tenant": "t", "burst": 0},
        {"tenant": "t", "weight": 0.0},
        {"tenant": "t", "weight": -2.0},
        {"tenant": "t", "max_pins": -1},
    ],
)
def test_policy_validation(kwargs):
    with pytest.raises(ConfigurationError):
        TenantPolicy(**kwargs)


def test_token_bucket_starts_full_and_rejects_past_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
    assert [bucket.try_acquire() for _ in range(5)] == [True, True, True, False, False]


def test_token_bucket_refill_is_monotone_and_capped():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=4, clock=clock)
    for _ in range(4):
        assert bucket.try_acquire()
    # A non-advancing clock never refills.
    assert bucket.available() == pytest.approx(0.0)
    assert not bucket.try_acquire()
    # Refill is exactly rate x elapsed, monotone in the clock...
    previous = 0.0
    for step in (0.25, 0.5, 1.0, 1.5):
        clock.now = step
        available = bucket.available()
        assert available >= previous
        assert available == pytest.approx(min(4.0, 2.0 * step))
        previous = available
    # ...and capped at burst no matter how far the clock jumps.
    clock.now = 1e6
    assert bucket.available() == pytest.approx(4.0)
    # A clock that moves *backwards* (paused fake, clock skew) never drains.
    clock.now = 1.0
    assert bucket.available() == pytest.approx(4.0)


def test_token_bucket_fractional_refill_readmits_exactly():
    clock = FakeClock()
    bucket = TokenBucket(rate=4.0, burst=2, clock=clock)
    assert bucket.try_acquire() and bucket.try_acquire()
    clock.now = 0.5  # 4/s x 0.5s = exactly 2 tokens
    assert bucket.try_acquire() and bucket.try_acquire()
    assert not bucket.try_acquire()


def test_registry_quota_counts_rejections_per_tenant():
    clock = FakeClock()
    registry = TenantRegistry(
        policies=[TenantPolicy(tenant="hot", qps=1.0, burst=2)], clock=clock
    )
    registry.acquire("hot")
    registry.acquire("hot")
    for _ in range(3):
        with pytest.raises(TenantQuotaError):
            registry.acquire("hot")
    # Unregistered tenants are never charged.
    for _ in range(10):
        registry.acquire("unmetered")
    assert registry.rejections("hot") == 3
    assert registry.rejections("unmetered") == 0
    assert registry.rejections() == 3
    assert registry.rejections_by_tenant() == {"hot": 3}
    clock.now = 2.0  # refill re-admits
    registry.acquire("hot")
    assert registry.rejections("hot") == 3


# ---------------------------------------------------------------------------
# WeightedFairQueue — provable scheduling properties
# ---------------------------------------------------------------------------


def test_wfq_single_tenant_is_exact_fifo():
    fair = WeightedFairQueue(lambda t: 7.0)
    items = list(range(50))
    for item in items:
        fair.push("solo", item)
    assert [fair.pop() for _ in items] == [("solo", i) for i in items]
    assert fair.pop() is None and len(fair) == 0


def test_wfq_equal_weights_interleaved_is_fifo():
    fair = WeightedFairQueue(lambda t: 1.0)
    pushes = [("a", 0), ("b", 1), ("a", 2), ("b", 3), ("a", 4), ("b", 5)]
    for tenant, item in pushes:
        fair.push(tenant, item)
    popped = [fair.pop()[1] for _ in pushes]
    assert popped == [0, 1, 2, 3, 4, 5]


def test_wfq_converges_to_weight_ratio_under_backlog():
    weights = {"hot": 4.0, "quiet": 1.0}
    fair = WeightedFairQueue(weights.__getitem__)
    for i in range(200):
        fair.push("hot", i)
        fair.push("quiet", i)
    served = {"hot": 0, "quiet": 0}
    for _ in range(100):  # both stay backlogged throughout
        tenant, _ = fair.pop()
        served[tenant] += 1
    assert served == {"hot": 80, "quiet": 20}


def test_wfq_head_of_line_wait_bounded_by_one_round():
    # With weights 4:1 the quiet tenant waits at most one hot quantum (4
    # units) between its services while both stay backlogged.
    fair = WeightedFairQueue(lambda t: 4.0 if t == "hot" else 1.0)
    for i in range(100):
        fair.push("hot", i)
        fair.push("quiet", i)
    gap, worst = 0, 0
    for _ in range(50):
        tenant, _ = fair.pop()
        if tenant == "quiet":
            worst, gap = max(worst, gap), 0
        else:
            gap += 1
    assert worst <= 4


@pytest.mark.parametrize("seed", range(5))
def test_wfq_property_deterministic_and_fifo_per_tenant(seed):
    rng = np.random.default_rng(seed)
    tenants = [f"t{i}" for i in range(int(rng.integers(2, 5)))]
    weights = {t: float(rng.uniform(0.5, 8.0)) for t in tenants}

    def run():
        fair = WeightedFairQueue(weights.__getitem__)
        order = []
        pushed = {t: [] for t in tenants}
        arrivals = rng.integers(0, len(tenants), size=120)
        rng_state = arrivals.tolist()  # identical across both runs below
        for i, which in enumerate(rng_state):
            tenant = tenants[which]
            fair.push(tenant, i)
            pushed[tenant].append(i)
            if i % 3 == 0 and len(fair):  # interleave pops with pushes
                order.append(fair.pop())
        while len(fair):
            order.append(fair.pop())
        return order, pushed

    # rng must be re-seeded so both runs see the same arrival sequence.
    rng = np.random.default_rng(seed)
    first, pushed = run()
    rng = np.random.default_rng(seed)
    second, _ = run()
    # Pure function of the push sequence and weights: bit-identical replay.
    assert first == second
    # Per-tenant FIFO: each tenant's items pop in its own push order.
    for tenant in tenants:
        got = [item for t, item in first if t == tenant]
        assert got == pushed[tenant]


@pytest.mark.parametrize("seed", range(3))
def test_wfq_property_backlogged_shares_match_weights(seed):
    rng = np.random.default_rng(100 + seed)
    weights = {"a": float(rng.uniform(1, 6)), "b": float(rng.uniform(1, 6))}
    fair = WeightedFairQueue(weights.__getitem__)
    for i in range(600):
        fair.push("a", i)
        fair.push("b", i)
    served = {"a": 0, "b": 0}
    pops = 300  # both backlogged for all 300 pops
    for _ in range(pops):
        tenant, _ = fair.pop()
        served[tenant] += 1
    share = served["a"] / pops
    want = weights["a"] / (weights["a"] + weights["b"])
    # DRR quantisation bounds the error by one round, not a percentage.
    round_units = sum(w / min(weights.values()) for w in weights.values())
    assert abs(share - want) <= round_units / pops


# ---------------------------------------------------------------------------
# VectorStore — ledgers, isolation, atomic rejection
# ---------------------------------------------------------------------------


def registry_two(hot_budget, quiet_budget, quiet_pins=None):
    return TenantRegistry(
        policies=[
            TenantPolicy(tenant="hot", weight=4.0, byte_budget=hot_budget),
            TenantPolicy(
                tenant="quiet", weight=1.0, byte_budget=quiet_budget,
                max_pins=quiet_pins,
            ),
        ]
    )


def test_store_ledgers_sum_to_resident_bytes():
    one = vec(0).nbytes
    store = VectorStore(capacity_bytes=10 * one, tenants=registry_two(4 * one, 4 * one))
    for i in range(3):
        store.admit(f"h{i}", vec(i), tenant="hot")
    for i in range(2):
        store.admit(f"q{i}", vec(10 + i), tenant="quiet")
    ledgers = store.tenant_bytes()
    assert ledgers == {"hot": 3 * one, "quiet": 2 * one}
    assert sum(ledgers.values()) == sum(e.nbytes for e in store.snapshot())
    store.evict("h0")
    assert store.tenant_bytes() == {"hot": 2 * one, "quiet": 2 * one}


def test_store_victims_come_only_from_own_tenant():
    one = vec(0).nbytes
    store = VectorStore(capacity_bytes=4 * one, tenants=registry_two(3 * one, 2 * one))
    for i in range(3):
        store.admit(f"h{i}", vec(i), tenant="hot")
    store.admit("q0", vec(10), tenant="quiet")
    # Hot is at its own budget: the next hot admission evicts hot's LRU,
    # never the quiet vector, even though the global budget is also full.
    store.admit("h3", vec(3), tenant="hot")
    assert "q0" in store.names()
    assert "h0" not in store.names()
    assert store.cross_tenant_evictions() == 0


def test_store_admission_blocked_by_other_tenants_is_quota_not_config():
    one = vec(0).nbytes
    registry = registry_two(hot_budget=4 * one, quiet_budget=2 * one)
    store = VectorStore(capacity_bytes=3 * one, tenants=registry)
    for i in range(3):
        store.admit(f"h{i}", vec(i), tenant="hot")
    # The global budget is exhausted by *hot's* residency: quiet's admission
    # must not steal it, and the refusal is tenant-attributed.
    with pytest.raises(TenantQuotaError, match="belongs to other tenants"):
        store.admit("q0", vec(10), tenant="quiet")
    assert registry.rejections("quiet") == 1
    assert sorted(store.names()) == ["h0", "h1", "h2"]


def test_store_quota_rejection_leaves_no_half_admitted_state():
    one = vec(0).nbytes
    store = VectorStore(capacity_bytes=10 * one, tenants=registry_two(2 * one, 2 * one))
    store.admit("h0", vec(0), tenant="hot")
    store.admit("h1", vec(1), pin=True, tenant="hot")
    store.admit("h2", vec(2), pin=True, tenant="hot")  # budget full, all pinned bar h0
    before = (store.names(), store.tenant_bytes(), store.info().bytes)
    rejected = vec(99)
    with pytest.raises(TenantQuotaError, match="over its"):
        store.admit("h3", rejected, tenant="hot")
    assert (store.names(), store.tenant_bytes(), store.info().bytes) == before
    # The caller's array was not touched: admission freezes only on success.
    assert rejected.flags.writeable


def test_store_pin_allowance():
    one = vec(0).nbytes
    store = VectorStore(
        capacity_bytes=10 * one, tenants=registry_two(8 * one, 8 * one, quiet_pins=1)
    )
    store.admit("q0", vec(0), pin=True, tenant="quiet")
    with pytest.raises(TenantQuotaError, match="pin"):
        store.admit("q1", vec(1), pin=True, tenant="quiet")
    assert "q1" not in store.names()
    store.admit("q1", vec(1), tenant="quiet")
    with pytest.raises(TenantQuotaError, match="pin"):
        store.pin("q1")
    store.unpin("q0")
    store.pin("q1")  # the allowance freed by unpinning is reusable


def test_store_ledger_invariant_under_concurrent_admissions():
    one = vec(0).nbytes
    registry = registry_two(hot_budget=6 * one, quiet_budget=6 * one)
    store = VectorStore(capacity_bytes=12 * one, tenants=registry)
    errors = []

    def hammer(tenant, base):
        rng = np.random.default_rng(base)
        try:
            for i in range(40):
                name = f"{tenant}-{int(rng.integers(0, 8))}"
                store.admit(name, vec(base * 100 + i), tenant=tenant)
                if rng.integers(0, 4) == 0 and store.names():
                    store.evict(name)
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(tenant, base))
        for base, tenant in enumerate(["hot", "hot", "quiet", "quiet"])
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # After quiesce the ledgers are exactly the per-tenant residency sums.
    by_tenant = {}
    for entry in store.snapshot():
        by_tenant[entry.tenant] = by_tenant.get(entry.tenant, 0) + entry.nbytes
    assert store.tenant_bytes() == by_tenant
    assert sum(by_tenant.values()) == store.info().bytes
    assert store.cross_tenant_evictions() == 0


# ---------------------------------------------------------------------------
# Dispatcher — ownership, QPS, the noisy neighbour
# ---------------------------------------------------------------------------


def test_dispatcher_ownership_guard():
    registry = registry_two(None, None)
    with ServiceDispatcher(num_workers=2, capacity_elements=N, tenants=registry) as d:
        d.admit("hv", vec(0), tenant="hot")
        d.admit("qv", vec(1), tenant="quiet")
        with pytest.raises(TenantQuotaError, match="owned by tenant 'quiet'"):
            d.evict("qv", tenant="hot")
        with pytest.raises(TenantQuotaError, match="may not pin"):
            d.pin("qv", tenant="hot")
        d.pin("qv", tenant="quiet")
        d.unpin("qv", tenant="quiet")
        assert d.evict("hv", tenant="hot")
        assert registry.rejections("hot") == 2
        # The default tenant is the operator: no ownership guard applies.
        assert d.evict("qv")


def test_dispatcher_qps_quota_is_deterministic_and_atomic():
    clock = FakeClock()
    registry = TenantRegistry(
        policies=[TenantPolicy(tenant="hot", qps=2.0, burst=2)], clock=clock
    )
    with ServiceDispatcher(num_workers=1, capacity_elements=N, tenants=registry) as d:
        d.admit("hv", vec(0), tenant="hot")
        outcomes = []
        for _ in range(4):
            try:
                d.query("hv", [8], tenant="hot")
                outcomes.append("ok")
            except TenantQuotaError:
                outcomes.append("quota")
        assert outcomes == ["ok", "ok", "quota", "quota"]
        assert registry.rejections("hot") == 2
        # A rejected query did no work and left no half-admitted state.
        assert d.last_report is None or d.last_report.tenant == "hot"
        clock.now = 1.0  # 2/s x 1s: exactly two more queries pass
        d.query("hv", [8], tenant="hot")
        d.query("hv", [8], tenant="hot")
        with pytest.raises(TenantQuotaError):
            d.query("hv", [8], tenant="hot")
        # A multi-query batch charges len(queries): reject it atomically.
        clock.now = 2.0
        with pytest.raises(TenantQuotaError):
            d.query("hv", [(8, True), (16, True), (32, True)], tenant="hot")
        assert d.query("hv", [(8, True), (16, True)], tenant="hot")


def test_noisy_neighbour_never_touches_quiet_tenant():
    one = vec(0).nbytes
    registry = registry_two(hot_budget=3 * one, quiet_budget=2 * one, quiet_pins=1)
    with ServiceDispatcher(
        num_workers=4,
        capacity_elements=N,
        store_bytes=8 * one,
        result_cache_capacity=0,
        tenants=registry,
    ) as d:
        quiet_v = vec(999)
        d.admit("quiet-pin", quiet_v, tenant="quiet", pin=True)
        want = d.query("quiet-pin", [(8, True)], tenant="quiet")[0]
        errors = []

        def hammer(worker):
            rng = np.random.default_rng(worker)
            try:
                for i in range(30):
                    # Zipf-ish skew: low indices dominate, forcing constant
                    # churn through hot's 3-vector budget over 6 names.
                    idx = min(int(rng.zipf(1.3)) - 1, 5)
                    name = f"hot-{idx}"
                    try:
                        d.admit(name, vec(idx), tenant="hot")
                        d.query(name, [(8, True)], tenant="hot")
                    except (TenantQuotaError, ConfigurationError):
                        pass  # evicted-under-us / budget races are expected
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert d.store is not None
        # The quiet tenant is untouched: pinned vector resident, answers
        # identical, ledger exact, zero cross-tenant evictions.
        assert "quiet-pin" in d.store.names()
        got = d.query("quiet-pin", [(8, True)], tenant="quiet")[0]
        np.testing.assert_array_equal(got.values, want.values)
        np.testing.assert_array_equal(
            np.asarray(got.indices), np.asarray(want.indices)
        )
        assert d.store.cross_tenant_evictions() == 0
        by_tenant = {}
        for entry in d.store.snapshot():
            by_tenant[entry.tenant] = by_tenant.get(entry.tenant, 0) + entry.nbytes
        assert d.store.tenant_bytes() == by_tenant
        assert by_tenant["quiet"] == one
        assert by_tenant["hot"] <= 3 * one
        # The executor's fair path attributed work to both tenants.
        assert d.executor.tenant_units("quiet") > 0
        assert d.executor.tenant_units("hot") > 0
        assert d.executor.in_flight_for("hot") == 0


# ---------------------------------------------------------------------------
# Spill manifest v2 — tenant round-trip and torn-column degradation
# ---------------------------------------------------------------------------


def test_spill_tenant_round_trip(tmp_path):
    spill = SpillDirectory(str(tmp_path))
    v = vec(0)
    spill.store("hv", v, fingerprint_array(v), tenant="hot")
    reopened = SpillDirectory(str(tmp_path))
    assert reopened.entries()["hv"].tenant == "hot"
    assert not reopened.info().recovered


def test_spill_torn_tenant_column_degrades_to_cold_start(tmp_path):
    spill = SpillDirectory(str(tmp_path))
    a, b = vec(0), vec(1)
    spill.store("torn", a, fingerprint_array(a), tenant="hot")
    spill.store("fine", b, fingerprint_array(b), tenant="quiet")
    manifest_path = os.path.join(str(tmp_path), MANIFEST_NAME)
    with open(manifest_path) as fh:
        raw = json.load(fh)
    raw["vectors"]["torn"]["tenant"] = 0  # torn column: wrong type
    with open(manifest_path, "w") as fh:
        json.dump(raw, fh)
    reopened = SpillDirectory(str(tmp_path))
    # The torn entry is dropped (a clean cold miss), the rest survive, and
    # the recovery is reported rather than silent.
    assert "torn" not in reopened.entries()
    assert reopened.entries()["fine"].tenant == "quiet"
    assert reopened.info().recovered
    assert reopened.load("torn") is None


def test_spill_v1_manifest_cold_starts_clean(tmp_path):
    spill = SpillDirectory(str(tmp_path))
    v = vec(0)
    spill.store("old", v, fingerprint_array(v), tenant="hot")
    manifest_path = os.path.join(str(tmp_path), MANIFEST_NAME)
    with open(manifest_path) as fh:
        raw = json.load(fh)
    raw["version"] = 1
    with open(manifest_path, "w") as fh:
        json.dump(raw, fh)
    reopened = SpillDirectory(str(tmp_path))
    assert reopened.entries() == {}
    assert reopened.info().recovered


def test_spill_restore_inherits_manifest_tenant(tmp_path):
    one = vec(0).nbytes
    registry = registry_two(4 * one, 4 * one)
    with ServiceDispatcher(
        num_workers=2,
        capacity_elements=N,
        spill_dir=str(tmp_path),
        tenants=registry,
    ) as d:
        d.admit("hv", vec(0), tenant="hot")
        d.save_state()
    with ServiceDispatcher(
        num_workers=2,
        capacity_elements=N,
        spill_dir=str(tmp_path),
        tenants=registry_two(4 * one, 4 * one),
    ) as d2:
        d2.load_state()
        assert d2.store is not None
        # Re-admission under the default tenant inherits the spilled owner.
        d2.admit("hv")
        assert d2.store.owner("hv") == "hot"
        assert d2.store.tenant_bytes() == {"hot": one}


# ---------------------------------------------------------------------------
# Differential: single tenant ≡ the pre-tenancy dispatcher
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("registry", [None, "empty"])
def test_single_tenant_differential_all_routes(registry):
    tenants = TenantRegistry() if registry == "empty" else None
    big = 4 * N  # four shards through capacity_elements=N: the sharded route
    v_small, v_big = vec(0), vec(1, n=big)
    chunks = [v_big[i::4].copy() for i in range(4)]
    queries = [(8, True), (16, False), (8, True)]

    def run(d):
        d.admit("small", v_small.copy())
        d.admit("big", v_big.copy())
        out = []
        for _ in range(2):  # cold, then warm replay
            out.append(d.query("small", queries))  # batched
            out.append(d.query("big", queries))  # sharded
            out.append(d.dispatch(list(chunks), queries))  # streaming
        return out

    kwargs = dict(num_workers=2, capacity_elements=N, result_cache_capacity=0)
    with ServiceDispatcher(**kwargs) as baseline:
        want = run(baseline)
    with ServiceDispatcher(**kwargs, tenants=tenants) as tenanted:
        got = run(tenanted)
    for want_batch, got_batch in zip(want, got):
        for a, b in zip(want_batch, got_batch):
            np.testing.assert_array_equal(a.values, b.values)
            np.testing.assert_array_equal(np.asarray(a.indices), np.asarray(b.indices))


def test_default_tenant_report_and_ledger_behaviour():
    with ServiceDispatcher(num_workers=2, capacity_elements=N) as d:
        d.admit("v", vec(0))
        d.query("v", [8])
        assert d.last_report.tenant == DEFAULT_TENANT
        assert d.store is not None
        # Without a registry the per-tenant ledger map stays empty in info().
        assert d.store.info().tenant_bytes == {}
        assert d.store.info().cross_tenant_evictions == 0


# ---------------------------------------------------------------------------
# Load harness — quota outcomes and TenantStats
# ---------------------------------------------------------------------------


def fair_dispatcher(registry):
    d = ServiceDispatcher(
        num_workers=2, capacity_elements=N, queue_capacity=8, tenants=registry
    )
    d.admit("hv", vec(0), tenant="hot", warm=[(8, True)])
    d.admit("qv", vec(1), tenant="quiet", warm=[(8, True)])
    return d


def test_loadgen_multi_tenant_report_and_prometheus():
    registry = registry_two(None, None)
    with fair_dispatcher(registry) as d:
        harness = LoadHarness(
            d,
            [
                RequestProfile(route="batched", names=("hv",), ks=(8,), weight=4.0, tenant="hot"),
                RequestProfile(route="batched", names=("qv",), ks=(8,), tenant="quiet"),
            ],
            seed=3,
        )
        report = harness.run_open(PoissonArrivals(500.0, seed=3), 60)
    assert report.mode == "open-fair"
    tenants = {t.tenant: t for t in report.tenants}
    assert set(tenants) == {"hot", "quiet"}
    assert sum(t.attained_share for t in tenants.values()) == pytest.approx(1.0)
    assert tenants["hot"].configured_share == pytest.approx(0.8)
    assert tenants["quiet"].configured_share == pytest.approx(0.2)
    assert {row["tenant"] for row in report.tenant_rows()} == {"hot", "quiet"}
    text = report.to_prometheus()
    assert "repro_loadgen_tenant_attained_share" in text
    assert 'tenant="quiet"' in text


def test_loadgen_quota_outcome_counted():
    clock = FakeClock()
    registry = TenantRegistry(
        policies=[
            TenantPolicy(tenant="hot", qps=1000.0, burst=2),
            TenantPolicy(tenant="quiet", weight=1.0),
        ],
        clock=clock,  # frozen: the bucket never refills mid-run
    )
    with fair_dispatcher(registry) as d:
        harness = LoadHarness(
            d,
            [RequestProfile(route="batched", names=("hv",), ks=(8,), tenant="hot")],
            seed=0,
        )
        report = harness.run_open(PoissonArrivals(50.0, seed=0), 6)
    stats = report.tenant_stats("hot")
    assert stats.ok == 2  # the burst
    assert stats.quota == 4  # everything after it, counted not crashed
    assert report.quota == 4
    assert report.route_stats("all").quota == 4
    assert registry.rejections("hot") == 4


def test_loadgen_closed_loop_rejects_multi_tenant():
    registry = registry_two(None, None)
    with fair_dispatcher(registry) as d:
        harness = LoadHarness(
            d,
            [RequestProfile(route="batched", names=("hv",), ks=(8,), tenant="hot")],
            seed=0,
        )
        with pytest.raises(ConfigurationError, match="closed-loop"):
            harness.run_closed(concurrency=2, requests=4)
