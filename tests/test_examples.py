"""Smoke tests for the example scripts.

Each example is executed in-process (import + ``main``) with small arguments
so the documented entry points cannot rot.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, script: str, argv):
    """Execute an example script as ``__main__`` with the given argv."""
    monkeypatch.setattr(sys, "argv", [script] + [str(a) for a in argv])
    with pytest.raises(SystemExit) as excinfo:
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    assert excinfo.value.code in (0, None)
    return capsys.readouterr().out


def test_examples_directory_contents():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart.py", [14, 64])
    assert "verified against a full sort" in out
    assert "workload" in out


def test_knn_search(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "knn_search.py", [3000, 10])
    assert "nearest neighbours" in out
    assert "verified" in out


def test_degree_centrality(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "degree_centrality.py", [2000, 5])
    assert "top 5 pages by degree" in out


def test_tweet_ranking(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "tweet_ranking.py", [50_000, 10])
    assert "least fearful" in out


def test_multi_gpu_scaling(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "multi_gpu_scaling.py", [15, 32])
    assert "measured runs on real data" in out
    assert "analytic model at the paper's scales" in out


def test_bmw_document_retrieval(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "bmw_document_retrieval.py", [3000, 5])
    assert "top 5 documents" in out
    assert "ratio" in out


def test_batch_service(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "batch_service.py", [15, 8])
    assert "constructions              : 1 (loop pays 8)" in out
    assert "traffic saved" in out
    assert "matches the one-shot answer" in out


def test_load_test(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "load_test.py", [13, 3, 60])
    assert "admitting 3 named vectors" in out
    assert "closed loop: 3 users" in out
    assert "peak in flight 3 (bound 3)" in out
    assert "closed-loop latency / SLO per route" in out
    assert "p50_ms" in out and "p99_ms" in out and "slo_attainment" in out
    assert "the arrival loop never blocked" in out
