"""Tests for workload measurement and the analytic expected-workload model."""

import pytest

from repro.core.workload import expected_workload, measure_workload
from repro.datasets.synthetic import uniform_distribution
from repro.errors import ConfigurationError


class TestMeasureWorkload:
    def test_returns_stats_of_real_run(self):
        v = uniform_distribution(1 << 14, seed=1)
        stats = measure_workload(v, 128)
        assert stats.input_size == v.shape[0]
        assert stats.total_workload > 0

    def test_workload_fraction_decreases_with_n(self):
        """Figure 20's trend: bigger vectors are pruned proportionally more."""
        k = 256
        fractions = []
        for exp in (12, 14, 16):
            v = uniform_distribution(1 << exp, seed=2)
            fractions.append(measure_workload(v, k).workload_fraction)
        assert fractions[0] > fractions[1] > fractions[2]

    def test_workload_fraction_increases_with_k(self):
        """Figure 21's trend: larger k leaves less room for pruning."""
        v = uniform_distribution(1 << 16, seed=3)
        small = measure_workload(v, 16).workload_fraction
        large = measure_workload(v, 1 << 12).workload_fraction
        assert large > small


class TestExpectedWorkload:
    def test_matches_measured_within_factor_two(self):
        n, k = 1 << 16, 512
        v = uniform_distribution(n, seed=4)
        measured = measure_workload(v, k)
        model = expected_workload(n, k, alpha=measured.alpha)
        assert model.delegate_vector_size == pytest.approx(
            measured.delegate_vector_size, rel=0.01
        )
        assert model.concatenated_size <= 2 * max(measured.concatenated_size, 1)
        assert measured.concatenated_size <= 2 * max(model.concatenated_size, 1)

    def test_paper_scale_reduction(self):
        """At |V| = 2^30 the combined workload is a small fraction of the input."""
        stats = expected_workload(1 << 30, 1 << 19)
        assert stats.workload_fraction < 0.05

    def test_fraction_decreases_with_n(self):
        k = 1 << 19
        fracs = [expected_workload(1 << e, k).workload_fraction for e in (24, 27, 30)]
        assert fracs[0] > fracs[1] > fracs[2]

    def test_fraction_increases_with_k(self):
        n = 1 << 30
        fracs = [expected_workload(n, 1 << e).workload_fraction for e in (4, 14, 24)]
        assert fracs[0] < fracs[1] < fracs[2]

    def test_degenerate_when_k_huge(self):
        stats = expected_workload(1 << 10, 1 << 9, alpha=6)
        assert stats.concatenated_size == 1 << 10

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            expected_workload(0, 1)
        with pytest.raises(ConfigurationError):
            expected_workload(100, 200)
        with pytest.raises(ConfigurationError):
            expected_workload(100, 10, beta=0)

    def test_filtering_toggle_changes_concatenated_size(self):
        with_f = expected_workload(1 << 26, 1 << 16, use_filtering=True)
        without_f = expected_workload(1 << 26, 1 << 16, use_filtering=False)
        assert with_f.concatenated_size < without_f.concatenated_size
