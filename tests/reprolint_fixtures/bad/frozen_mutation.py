"""FRZ001 fixture: ``object.__setattr__`` on a frozen dataclass after init.

The ``__post_init__`` normalisation is the sanctioned escape hatch; the
module-level ``bump`` helper mutating a live instance must be flagged
exactly once.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Snapshot:
    total: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "total", int(self.total))


def bump(snap: Snapshot) -> None:
    object.__setattr__(snap, "total", snap.total + 1)
