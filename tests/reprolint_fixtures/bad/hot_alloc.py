"""HOT001 fixture: a raw numpy allocation inside a registered hot function.

``hot_fn`` is registered via the test's ``LintConfig.hot_functions``; the
``np.empty`` without an ``out=`` target must be flagged exactly once.
"""

import numpy as np


def hot_fn(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    merged = np.empty(a.shape[0] + b.shape[0], dtype=a.dtype)
    merged[: a.shape[0]] = a
    merged[a.shape[0] :] = b
    return merged
