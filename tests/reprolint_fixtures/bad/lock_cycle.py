"""LOCK003 fixture: two classes acquiring each other's locks in opposite order.

``Left.poke`` holds ``Left._lock`` and calls into ``Right.poke_back``
(which takes ``Right._lock``); ``Right.poke`` does the mirror image.  The
inter-class lock-order graph therefore has the 2-cycle
``Left._lock -> Right._lock -> Left._lock`` and must fail — once.
"""

import threading
from typing import Optional


class Left:
    def __init__(self, peer: Optional["Right"] = None) -> None:
        self._lock = threading.Lock()
        self._peer = peer

    def poke(self) -> None:
        with self._lock:
            if self._peer is not None:
                self._peer.poke_back()

    def poke_back(self) -> None:
        with self._lock:
            pass


class Right:
    def __init__(self, peer: Optional[Left] = None) -> None:
        self._lock = threading.Lock()
        self._peer = peer

    def poke(self) -> None:
        with self._lock:
            if self._peer is not None:
                self._peer.poke_back()

    def poke_back(self) -> None:
        with self._lock:
            pass
