"""DOC001 fixture: a report dataclass whose glossary has drifted.

``bad/glossary.md`` documents ``built``, ``failed`` *and* a ``retired``
field that no longer exists here — the stale row must be flagged exactly
once.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class WidgetReport:
    built: int = 0
    failed: int = 0
