"""LOCK002 fixture: a user-supplied callback invoked while holding a lock.

``on_evict`` is recognised as a callback from its ``Callable`` constructor
annotation; calling it inside the ``with self._lock`` region is the
classic re-entrancy / lock-order hazard and must be flagged exactly once.
"""

import threading
from typing import Callable, List, Optional


class Notifier:
    def __init__(self, on_evict: Optional[Callable[[str], None]] = None) -> None:
        self._lock = threading.Lock()
        self.on_evict = on_evict
        self._names: List[str] = []

    def evict(self, name: str) -> None:
        with self._lock:
            self._names.append(name)
            if self.on_evict is not None:
                self.on_evict(name)
