"""LOCK001 fixture: one unguarded write to an inferred lock-guarded attr.

``_count`` is written under ``_lock`` in three methods (3/4 accesses, at
the 0.75 inference ratio), so the lockless write in ``reset`` must be
flagged — exactly once.
"""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    def incr(self) -> None:
        with self._lock:
            self._count += 1

    def decr(self) -> None:
        with self._lock:
            self._count -= 1

    def double(self) -> None:
        with self._lock:
            self._count *= 2

    def reset(self) -> None:
        self._count = 0
