"""Clean counterpart of the lock-discipline fixtures: zero findings.

Every ``_count`` access holds the lock, and the eviction callback is
snapshotted under the lock but *invoked outside it* — the pattern the
bad fixtures violate.
"""

import threading
from typing import Callable, List, Optional


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    def incr(self) -> None:
        with self._lock:
            self._count += 1

    def decr(self) -> None:
        with self._lock:
            self._count -= 1

    def reset(self) -> None:
        with self._lock:
            self._count = 0

    def value(self) -> int:
        with self._lock:
            return self._count


class Notifier:
    def __init__(self, on_evict: Optional[Callable[[str], None]] = None) -> None:
        self._lock = threading.Lock()
        self.on_evict = on_evict
        self._names: List[str] = []

    def evict(self, name: str) -> None:
        with self._lock:
            self._names.append(name)
            callback = self.on_evict
        if callback is not None:
            callback(name)
