"""Clean hot-path fixture: the registered hot function allocates nothing.

``np.concatenate(..., out=buf)`` writes into a caller-provided (arena)
buffer, which HOT001 recognises as the sanctioned pooled pattern.
"""

from typing import Sequence

import numpy as np


def hot_fn(pieces: Sequence[np.ndarray], buf: np.ndarray) -> np.ndarray:
    np.concatenate(list(pieces), out=buf)
    return buf
