"""Clean glossary fixture: dataclass fields and the doc table agree."""

from dataclasses import dataclass


@dataclass(frozen=True)
class WidgetReport:
    built: int = 0
    failed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "built", int(self.built))
