"""Clean lock-order fixture: cross-class acquisition with one global order.

``Front`` takes its own lock and calls into ``Back`` (which takes its
lock) — and ``Back`` never calls ``Front`` while locked, so the graph is
``Front._lock -> Back._lock`` and acyclic.
"""

import threading
from typing import Optional


class Back:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hits = 0

    def poke_back(self) -> None:
        with self._lock:
            self._hits += 1


class Front:
    def __init__(self, peer: Optional[Back] = None) -> None:
        self._lock = threading.Lock()
        self._peer = peer

    def poke(self) -> None:
        with self._lock:
            if self._peer is not None:
                self._peer.poke_back()
