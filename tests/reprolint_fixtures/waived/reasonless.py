"""Waiver fixture: a reason-less waiver that ``--strict`` must reject.

The comment below suppresses nothing (there is no finding on the next
line) and gives no justification; strict mode fails on it regardless,
because every waiver must carry a reason.
"""

# reprolint: waive[HOT001]
UNUSED = 1
