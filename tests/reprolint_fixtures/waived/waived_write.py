"""Waiver fixture: a real LOCK001 suppressed with a reasoned waiver.

The unguarded read in ``peek`` is intentional (monitoring endpoint that
tolerates a stale value); the waiver must mark the finding as waived and
be reported as *used* with its reason.
"""

import threading


class Gauge:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._level = 0

    def fill(self) -> None:
        with self._lock:
            self._level += 1

    def drain(self) -> None:
        with self._lock:
            self._level -= 1

    def clamp(self) -> None:
        with self._lock:
            self._level = max(self._level, 0)

    def peek(self) -> int:
        # reprolint: waive[LOCK001] monitoring read tolerates staleness
        return self._level
