"""Fused group selection: exact equivalence to the per-query pipeline.

The contract of :mod:`repro.service.fusion` is strict: for every query of a
plan-sharing group, the fused path must return the *same values and the same
indices* as running :meth:`DrTopK.topk_prepared` per query — not merely a
valid top-k under ties.  The differential tests here hold that line at the
engine level (randomized dtype/tie/config grids), at the batch level
(``BatchTopK(fused=...)``), and across all three dispatcher routes, cold and
warm, including the mixed-``k`` regression the fused path exists to fix
(groups prepared at ``min(k)`` but serving larger ``k``\\ s) and the
``largest=False`` key order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import available_algorithms, get_algorithm
from repro.core.config import DrTopKConfig
from repro.core.drtopk import DrTopK
from repro.service.batch import BatchTopK, TopKQuery
from repro.service.dispatcher import ServiceDispatcher
from repro.service.fusion import fused_group_topk

from tests.helpers import assert_topk_correct


def _assert_same_results(fused, reference):
    for got, want in zip(fused, reference):
        np.testing.assert_array_equal(got.values, want.values)
        np.testing.assert_array_equal(got.indices, want.indices)


def _random_config(rng) -> DrTopKConfig:
    first = available_algorithms()[int(rng.integers(0, len(available_algorithms())))]
    second = available_algorithms()[int(rng.integers(0, len(available_algorithms())))]
    return DrTopKConfig(
        beta=int(rng.integers(1, 4)),
        use_filtering=bool(rng.integers(0, 2)),
        use_beta_rule=bool(rng.integers(0, 2)),
        first_algorithm=first,
        second_algorithm=second,
        skip_second_when_possible=bool(rng.integers(0, 2)),
        collect_trace=bool(rng.integers(0, 2)),
    )


def _random_vector(rng, n):
    dtype = [np.int32, np.float32, np.int64][int(rng.integers(0, 3))]
    if rng.integers(0, 2):
        # Heavy ties: the regime where "any valid top-k" and "the same
        # top-k" differ, which is exactly what the contract forbids.
        v = rng.integers(0, 16, size=n)
    else:
        v = rng.integers(0, 2**24, size=n)
    return v.astype(dtype)


class TestEngineLevelEquivalence:
    """fused_group_topk vs topk_prepared on one shared plan."""

    def test_randomized_grid(self, rng):
        for _ in range(60):
            n = int(rng.integers(64, 5000))
            config = _random_config(rng)
            engine = DrTopK(config)
            v = _random_vector(rng, n)
            largest = bool(rng.integers(0, 2))
            ks = sorted(
                int(rng.integers(1, n + 1)) for _ in range(int(rng.integers(1, 6)))
            )
            plan = engine.prepare(v, min(ks), largest=largest)
            reference = [engine.topk_prepared(plan, k) for k in ks]
            outcome = fused_group_topk(engine, plan, ks)
            _assert_same_results(outcome.results, reference)
            for k, res in zip(ks, outcome.results):
                assert_topk_correct(res, v, k, largest)
            assert outcome.selection_calls >= 1
            assert outcome.fused_queries + outcome.fallback_queries == len(ks)

    def test_stats_match_per_query_path(self, rng):
        for _ in range(20):
            n = int(rng.integers(128, 3000))
            engine = DrTopK(_random_config(rng))
            v = _random_vector(rng, n)
            ks = [int(rng.integers(1, n + 1)) for _ in range(3)]
            plan = engine.prepare(v, min(ks), largest=True)
            reference = [engine.topk_prepared(plan, k) for k in ks]
            outcome = fused_group_topk(engine, plan, ks)
            for got, want in zip(outcome.results, reference):
                assert got.stats is not None and want.stats is not None
                for fld in (
                    "qualified_subranges",
                    "fully_qualified_subranges",
                    "concatenated_size",
                    "filtered_out",
                    "second_topk_skipped",
                    "delegate_vector_size",
                ):
                    assert getattr(got.stats, fld) == getattr(want.stats, fld), fld

    def test_mixed_k_beyond_delegate_size(self, rng):
        """ks past the delegate regime take the exact degenerate fallback."""
        n = 512
        engine = DrTopK()
        v = _random_vector(rng, n)
        ks = [4, 16, n // 2, n - 1]  # the large ks cannot be served delegated
        plan = engine.prepare(v, min(ks), largest=True)
        reference = [engine.topk_prepared(plan, k) for k in ks]
        outcome = fused_group_topk(engine, plan, ks)
        _assert_same_results(outcome.results, reference)
        assert outcome.fused_queries + outcome.fallback_queries == len(ks)


class TestPrefixConsistency:
    """The class attribute gating shared skip/degenerate passes is honest."""

    @pytest.mark.parametrize("name", available_algorithms())
    def test_flagged_algorithms_have_consistent_prefixes(self, name, rng):
        algo = get_algorithm(name)
        if not algo.prefix_consistent:
            pytest.skip(f"{name} does not claim prefix consistency")
        for _ in range(20):
            n = int(rng.integers(32, 2000))
            v = rng.integers(0, 8, size=n).astype(np.int64)  # heavy ties
            kmax = int(rng.integers(2, n + 1))
            full = algo.topk(v, kmax, largest=True)
            for k in {1, kmax // 2 or 1, kmax}:
                sliced = full.indices[:k]
                single = algo.topk(v, k, largest=True)
                np.testing.assert_array_equal(sliced, single.indices)


class TestBatchLevelEquivalence:
    """BatchTopK(fused=True) vs BatchTopK(fused=False), same queries."""

    def test_randomized_batches(self, rng):
        for _ in range(15):
            n = int(rng.integers(256, 6000))
            v = _random_vector(rng, n)
            queries = [
                (int(rng.integers(1, n + 1)), bool(rng.integers(0, 2)))
                for _ in range(int(rng.integers(2, 10)))
            ]
            config = _random_config(rng)
            fused = BatchTopK(config, fused=True)
            unfused = BatchTopK(config, fused=False)
            _assert_same_results(fused.run(v, queries), unfused.run(v, queries))
            assert fused.last_report is not None and unfused.last_report is not None
            assert unfused.last_report.selection_calls == len(queries)
            assert fused.last_report.selection_calls <= unfused.last_report.selection_calls

    def test_mixed_k_group_prepares_at_max_k(self, rng):
        """Regression: a group's plan must answer its largest k, not its min.

        One group with ks spanning the delegate regime returns exact
        per-query results (the old per-query path prepared at ``min_k`` and
        served larger ks through per-query fallbacks; fused must match it
        exactly while running one shared pass at ``max(k)``).
        """
        n = 1 << 13
        v = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        ks = [8, 64, 512, 2048]
        engine = DrTopK()
        reference = [engine.topk(v, k) for k in ks]
        batch = BatchTopK(DrTopKConfig(), fused=True)
        results = batch.run(v, [(k, True) for k in ks])
        _assert_same_results(results, reference)
        for k, res in zip(ks, results):
            assert_topk_correct(res, v, k)

    def test_single_group_counts_one_selection(self, rng):
        n = 1 << 16
        v = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        queries = [(100 + i, True) for i in range(16)]
        batch = BatchTopK(DrTopKConfig(), fused=True)
        batch.run(v, queries)
        report = batch.last_report
        assert report is not None
        assert report.num_groups == 1
        assert report.selection_calls == 1
        assert report.fused_groups == 1
        assert report.fused_queries == 16
        assert report.fusion_stage_ms  # per-stage wall-clocks were recorded


class TestDispatcherRoutes:
    """Fused vs unfused dispatchers agree on every route, cold and warm."""

    def _differential(self, make_input, queries, rng, **kwargs):
        with ServiceDispatcher(
            num_workers=2, result_cache_capacity=0, fused=True, **kwargs
        ) as fused, ServiceDispatcher(
            num_workers=2, result_cache_capacity=0, fused=False, **kwargs
        ) as unfused:
            for phase in ("cold", "warm"):
                got = fused.dispatch(make_input(), queries)
                want = unfused.dispatch(make_input(), queries)
                _assert_same_results(got, want)
                assert fused.last_report is not None
                assert unfused.last_report is not None
                yield phase, fused.last_report, unfused.last_report

    def test_batched_route(self, rng):
        n = 1 << 14
        v = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        queries = [(64, True)] * 6 + [(200, True), (32, False)]
        for phase, frep, urep in self._differential(lambda: v, queries, rng):
            assert frep.route == urep.route == "batched"
            assert 0 < frep.selection_calls < urep.selection_calls
            assert frep.fused_queries > 0
            if phase == "warm":
                assert frep.constructions == 0

    def test_sharded_route(self, rng):
        n = 1 << 14
        v = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        queries = [(64, True)] * 5 + [(100, False)]
        for _, frep, urep in self._differential(
            lambda: v, queries, rng, capacity_elements=n // 2
        ):
            assert frep.route == urep.route == "sharded"
            assert 0 < frep.selection_calls < urep.selection_calls
            assert frep.fused_groups > 0

    def test_streaming_route_with_memo_replay(self, rng):
        n = 1 << 13
        v = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        chunks = [v[i : i + 2048] for i in range(0, n, 2048)]
        queries = [(64, True), (17, True), (8, False)]
        for phase, frep, urep in self._differential(
            lambda: iter(chunks), queries, rng, chunk_elements=2048
        ):
            assert frep.route == urep.route == "streaming"
            if phase == "cold":
                assert frep.selection_calls > 0
            else:
                # The warm replay serves every chunk from the memo: zero
                # pipeline work means zero selection calls at all.
                assert frep.chunk_memo_hits > 0
