"""ResultCache and array fingerprinting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service.cache import ResultCache, fingerprint_array
from repro.types import TopKResult


def _result(k=4):
    values = np.arange(k, dtype=np.uint32)[::-1].copy()
    return TopKResult(values=values, indices=np.arange(k, dtype=np.int64), k=k)


class TestFingerprint:
    def test_deterministic_and_content_sensitive(self, uniform_u32):
        a = fingerprint_array(uniform_u32)
        assert a == fingerprint_array(uniform_u32.copy())
        mutated = uniform_u32.copy()
        mutated[123] += 1
        assert a != fingerprint_array(mutated)

    def test_shape_and_dtype_sensitive(self):
        v32 = np.arange(100, dtype=np.uint32)
        assert fingerprint_array(v32) != fingerprint_array(v32.astype(np.uint64))
        assert fingerprint_array(v32) != fingerprint_array(v32[:99])

    def test_large_vector_sampled_path(self, rng):
        big = rng.integers(0, 2**32, size=(1 << 19) + 7, dtype=np.uint32)  # > 1 MiB
        a = fingerprint_array(big)
        assert a == fingerprint_array(big.copy())
        edge = big.copy()
        edge[-1] += 1  # tail block is always hashed
        assert a != fingerprint_array(edge)


class TestResultCache:
    def test_hit_miss_and_lru_eviction(self, uniform_u32):
        cache = ResultCache(capacity=2)
        fp = fingerprint_array(uniform_u32)
        assert cache.get(fp, 4, True) is None
        cache.put(fp, 4, True, _result())
        assert cache.get(fp, 4, True) is not None
        assert cache.get(fp, 4, False) is None  # largest is part of the key
        cache.put(fp, 8, True, _result(8))
        cache.put(fp, 16, True, _result(16))  # evicts the LRU (k=4) entry
        assert len(cache) == 2
        info = cache.info()
        assert info.evictions == 1
        assert info.hits == 1
        assert info.misses == 2

    def test_clear_keeps_counters(self, uniform_u32):
        cache = ResultCache()
        fp = fingerprint_array(uniform_u32)
        cache.put(fp, 4, True, _result())
        cache.get(fp, 4, True)
        cache.clear()
        assert len(cache) == 0
        assert cache.info().hits == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResultCache(capacity=0)
