"""ResultCache and array fingerprinting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service.cache import ResultCache, fingerprint_array
from repro.types import TopKResult


def _result(k=4):
    values = np.arange(k, dtype=np.uint32)[::-1].copy()
    return TopKResult(values=values, indices=np.arange(k, dtype=np.int64), k=k)


class TestFingerprint:
    def test_deterministic_and_content_sensitive(self, uniform_u32):
        a = fingerprint_array(uniform_u32)
        assert a == fingerprint_array(uniform_u32.copy())
        mutated = uniform_u32.copy()
        mutated[123] += 1
        assert a != fingerprint_array(mutated)

    def test_shape_and_dtype_sensitive(self):
        v32 = np.arange(100, dtype=np.uint32)
        assert fingerprint_array(v32) != fingerprint_array(v32.astype(np.uint64))
        assert fingerprint_array(v32) != fingerprint_array(v32[:99])

    def test_large_vector_sampled_path(self, rng):
        big = rng.integers(0, 2**32, size=(1 << 19) + 7, dtype=np.uint32)  # > 1 MiB
        a = fingerprint_array(big)
        assert a == fingerprint_array(big.copy())
        edge = big.copy()
        edge[-1] += 1  # tail block is always hashed
        assert a != fingerprint_array(edge)

    def test_interior_coverage_spans_to_the_tail_block(self, rng):
        """Coverage regression: the stride sample anchors to the interior.

        The v1 scheme started the sample at element 0 (re-hashing the head)
        and truncated it, so the interior region just before the tail block
        could go entirely unsampled.  v2 samples the span between head and
        tail with a ceiling stride: every window of ``stride`` consecutive
        interior elements — including the one flush against the tail block —
        contains at least one sampled position, so mutating any such window
        must change the fingerprint.
        """
        from repro.service.cache import _EDGE_BYTES, _SAMPLE_ELEMENTS

        n = 1 << 18  # float64: 2 MiB, well above the full-hash threshold
        v = rng.standard_normal(n)
        edge = _EDGE_BYTES // v.dtype.itemsize
        stride = -(-(n - 2 * edge) // _SAMPLE_ELEMENTS)
        baseline = fingerprint_array(v)
        for start in (
            edge,  # first interior window
            (n - stride) // 2,  # middle
            n - edge - stride,  # flush against the tail block (the v1 gap)
        ):
            mutated = v.copy()
            mutated[start : start + stride] += 1.0
            assert fingerprint_array(mutated) != baseline, (
                f"stride-wide mutation at {start} went unnoticed"
            )

    def test_version_salt_prevents_cross_version_hits(self, rng, uniform_u32):
        """A v1-scheme digest can never equal a current fingerprint.

        The inline reimplementation below is the pre-fix v1 scheme (no salt,
        head-anchored truncated sample); cache keys computed under it must
        not collide with current ones, for small and sampled vectors alike.
        """
        import hashlib

        def v1_fingerprint(v):
            v = np.ascontiguousarray(v)
            digest = hashlib.blake2b(digest_size=16)
            digest.update(repr(v.shape).encode())
            digest.update(v.dtype.str.encode())
            if v.nbytes <= 1 << 20:
                digest.update(v.tobytes())
            else:
                flat = v.reshape(-1)
                head = flat[: max((1 << 14) // v.dtype.itemsize, 1)]
                tail = flat[-max((1 << 14) // v.dtype.itemsize, 1) :]
                stride = max(flat.shape[0] // 4096, 1)
                digest.update(head.tobytes())
                digest.update(tail.tobytes())
                digest.update(np.ascontiguousarray(flat[::stride][:4096]).tobytes())
            return digest.hexdigest()

        big = rng.integers(0, 2**32, size=1 << 19, dtype=np.uint32)
        assert fingerprint_array(uniform_u32) != v1_fingerprint(uniform_u32)
        assert fingerprint_array(big) != v1_fingerprint(big)

    def test_call_counter_is_monotonic(self, uniform_u32):
        from repro.service.cache import fingerprint_call_count

        before = fingerprint_call_count()
        fingerprint_array(uniform_u32)
        fingerprint_array(uniform_u32)
        assert fingerprint_call_count() == before + 2


class TestResultCache:
    def test_hit_miss_and_lru_eviction(self, uniform_u32):
        cache = ResultCache(capacity=2)
        fp = fingerprint_array(uniform_u32)
        assert cache.get(fp, 4, True) is None
        cache.put(fp, 4, True, _result())
        assert cache.get(fp, 4, True) is not None
        assert cache.get(fp, 4, False) is None  # largest is part of the key
        cache.put(fp, 8, True, _result(8))
        cache.put(fp, 16, True, _result(16))  # evicts the LRU (k=4) entry
        assert len(cache) == 2
        info = cache.info()
        assert info.evictions == 1
        assert info.hits == 1
        assert info.misses == 2

    def test_clear_keeps_counters(self, uniform_u32):
        cache = ResultCache()
        fp = fingerprint_array(uniform_u32)
        cache.put(fp, 4, True, _result())
        cache.get(fp, 4, True)
        cache.clear()
        assert len(cache) == 0
        assert cache.info().hits == 1

    def test_invalidate_by_fingerprint(self, uniform_u32):
        cache = ResultCache()
        fp = fingerprint_array(uniform_u32)
        cache.put(fp, 4, True, _result())
        cache.put(fp, 8, True, _result(8))
        cache.put("other", 4, True, _result())
        assert cache.invalidate(fp) == 2
        assert cache.get(fp, 4, True) is None
        assert cache.get("other", 4, True) is not None
        assert cache.invalidate("ghost") == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResultCache(capacity=0)
