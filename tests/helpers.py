"""Assertion helpers shared across test modules."""

from __future__ import annotations

import numpy as np


def reference_topk_values(v: np.ndarray, k: int, largest: bool = True) -> np.ndarray:
    """Oracle top-k values (sorted ascending) computed with a full sort."""
    s = np.sort(v)
    return s[-k:] if largest else s[:k]


def assert_topk_correct(result, v: np.ndarray, k: int, largest: bool = True) -> None:
    """Assert a TopKResult is a valid top-k answer for ``v``.

    Checks: the value multiset matches the sort-based oracle, indices point at
    matching values, and indices are unique.
    """
    v = np.asarray(v)
    expected = reference_topk_values(v, k, largest)
    got = np.sort(np.asarray(result.values))
    if np.issubdtype(v.dtype, np.floating):
        np.testing.assert_allclose(got, expected)
    else:
        np.testing.assert_array_equal(got, expected)
    assert len(result.indices) == k
    assert len(np.unique(result.indices)) == k, "indices must be unique"
    np.testing.assert_array_equal(np.asarray(result.values), v[result.indices])
