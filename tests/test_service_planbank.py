"""PlanBank / ChunkMemo: cross-dispatch plan persistence correctness.

The properties that make the zero-rescan path safe to serve from:

* a *mutated* vector misses (no stale answers, ever),
* an equal-content but distinct array hits (content keying, not identity),
* the byte budget evicts strictly LRU plans,
* bank (and chunk-memo) hits return bit-identical results to cold runs on
  the batched, sharded and streaming routes, with zero construction traffic.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.drtopk import DrTopK
from repro.errors import ConfigurationError
from repro.harness.experiments import _same_alpha_variant as _variant
from repro.service.batch import BatchTopK, TopKQuery
from repro.service.cache import PartitionCache, fingerprint_array
from repro.service.dispatcher import ServiceDispatcher
from repro.service.planbank import ChunkMemo, PlanBank
from repro.service.router import Router
from repro.types import TopKResult
from tests.helpers import assert_topk_correct

N = 1 << 14


def _plan_for(v, k=64, largest=True):
    return DrTopK().prepare(v, k, largest=largest)


def _same_alpha_variant(n: int, k: int) -> int:
    """A changed k keying the same banked plan (the experiments helper)."""
    return _variant(DrTopK(), n, k)


class TestPlanBankUnit:
    def test_content_keyed_hit_and_mutation_miss(self, uniform_u32):
        bank = PlanBank()
        plan = _plan_for(uniform_u32)
        fp = fingerprint_array(uniform_u32)
        assert bank.put(fp, plan)
        # Equal content, distinct array: same fingerprint, same plan back.
        copy_fp = fingerprint_array(uniform_u32.copy())
        assert copy_fp == fp
        assert bank.get(copy_fp, plan.alpha, plan.largest) is plan
        # One mutated element: different fingerprint, guaranteed miss.
        mutated = uniform_u32.copy()
        mutated[123] ^= 1
        assert bank.get(fingerprint_array(mutated), plan.alpha, plan.largest) is None
        # alpha and largest are part of the key.
        assert bank.get(fp, plan.alpha + 1, plan.largest) is None
        assert bank.get(fp, plan.alpha, not plan.largest) is None

    def test_byte_budget_evicts_lru(self, rng):
        vectors = [
            rng.integers(0, 2**32, size=1 << 10, dtype=np.uint32) for _ in range(3)
        ]
        plans = [_plan_for(v, k=16) for v in vectors]
        fps = [fingerprint_array(v) for v in vectors]
        # A budget that holds exactly two of the (equally sized) plans, at
        # their full steady-state footprint (what put() charges).
        for plan in plans:
            plan.materialise_views()
        budget = plans[0].nbytes() + plans[1].nbytes()
        bank = PlanBank(capacity_bytes=budget)
        assert bank.put(fps[0], plans[0])
        assert bank.put(fps[1], plans[1])
        # Touch plan 0 so plan 1 becomes the LRU entry.
        assert bank.get(fps[0], plans[0].alpha, plans[0].largest) is plans[0]
        assert bank.put(fps[2], plans[2])
        info = bank.info()
        assert info.evictions == 1
        assert info.bytes <= budget
        assert bank.get(fps[1], plans[1].alpha, plans[1].largest) is None  # evicted LRU
        assert bank.get(fps[0], plans[0].alpha, plans[0].largest) is plans[0]
        assert bank.get(fps[2], plans[2].alpha, plans[2].largest) is plans[2]

    def test_oversized_plan_never_admitted(self, uniform_u32):
        plan = _plan_for(uniform_u32)
        bank = PlanBank(capacity_bytes=plan.nbytes() - 1)
        assert not bank.put(fingerprint_array(uniform_u32), plan)
        assert len(bank) == 0

    def test_degenerate_plan_not_banked(self, uniform_u32):
        small = uniform_u32[:64]
        plan = DrTopK().prepare(small, 60)  # delegate vector cannot beat k
        assert plan.is_degenerate
        bank = PlanBank()
        assert not bank.put(fingerprint_array(small), plan)

    def test_contains_does_not_perturb_stats_or_lru(self, uniform_u32):
        bank = PlanBank()
        plan = _plan_for(uniform_u32)
        fp = fingerprint_array(uniform_u32)
        bank.put(fp, plan)
        before = bank.info()
        assert bank.contains(fp, plan.alpha, plan.largest)
        assert not bank.contains(fp, plan.alpha + 1, plan.largest)
        after = bank.info()
        assert (after.hits, after.misses) == (before.hits, before.misses)

    def test_beta_mismatch_is_a_miss(self, uniform_u32):
        bank = PlanBank()
        plan = _plan_for(uniform_u32)  # default config: beta=2
        fp = fingerprint_array(uniform_u32)
        bank.put(fp, plan)
        assert bank.get(fp, plan.alpha, plan.largest, beta=2) is plan
        assert bank.get(fp, plan.alpha, plan.largest, beta=1) is None
        assert bank.get(fp, plan.alpha, plan.largest) is plan  # unchecked get

    def test_put_sizes_the_steady_state_footprint(self, uniform_u32):
        """Admission charges the flat views, not the pre-first-query size."""
        bank = PlanBank()
        plan = _plan_for(uniform_u32)
        assert plan.delegates is not None
        before = plan.nbytes()
        bank.put(fingerprint_array(uniform_u32), plan)
        # put() materialised the lazy gathers, growing the charged size …
        assert plan.delegates._flat_keys is not None
        assert bank.info().bytes == plan.nbytes() > before
        # … and serving queries afterwards cannot grow the plan further.
        DrTopK().topk_prepared(plan, 64)
        assert bank.info().bytes == plan.nbytes()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlanBank(capacity_bytes=0)


class TestByteBudgetLruInvariants:
    """Accounting invariants of the shared byte-budgeted LRU.

    Regression coverage for the oversize-re-put defect: a re-put of an
    existing key with a now-oversize value used to return early *before*
    taking the lock, leaving the stale entry resident and its size counted.
    The invariant under any put/evict/oversize-re-put sequence is
    ``info().bytes == sum of resident entry sizes`` (never negative).
    """

    @staticmethod
    def _lru(capacity):
        from repro.service.planbank import _ByteBudgetLru

        # Values are (payload, size) pairs so one run mixes arbitrary sizes.
        return _ByteBudgetLru(capacity, size_of=lambda v: v[1])

    def _check_accounting(self, lru):
        info = lru.info()
        assert info.bytes == sum(lru._sizes[k] for k in lru._entries)
        assert info.bytes >= 0
        assert set(lru._sizes) == set(lru._entries)

    def test_oversize_reput_drops_stale_entry(self):
        lru = self._lru(capacity=100)
        assert lru._put(("k",), ("small", 40))
        assert lru.info().bytes == 40
        # The re-put value exceeds the whole budget: not admitted — and the
        # stale previous value must not keep serving (or staying counted).
        assert not lru._put(("k",), ("huge", 101))
        assert lru._get(("k",)) is None
        self._check_accounting(lru)
        assert lru.info().bytes == 0

    def test_get_does_not_conflate_falsy_values_with_misses(self):
        lru = self._lru(capacity=100)
        # A falsy payload (None, 0, empty containers) is a legitimate value.
        assert lru._put(("k",), (None, 10))
        hit = lru._get(("k",))
        assert hit == (None, 10)
        info = lru.info()
        assert (info.hits, info.misses) == (1, 0)

    def test_random_put_evict_sequences_keep_bytes_exact(self, rng):
        lru = self._lru(capacity=512)
        keys = [(f"k{i}",) for i in range(8)]
        for step in range(400):
            key = keys[int(rng.integers(len(keys)))]
            action = rng.random()
            if action < 0.70:
                # Sizes straddle the budget so oversize puts (fresh and
                # re-puts alike) interleave with normal ones.
                size = int(rng.integers(1, 768))
                lru._put(key, (step, size))
            elif action < 0.85:
                lru._get(key)
            else:
                lru._invalidate_where(lambda k: k == key)
            self._check_accounting(lru)
        assert lru.info().bytes <= 512

    def test_invalidate_releases_bytes_by_fingerprint(self):
        lru = self._lru(capacity=1000)
        lru._put(("fp1", 1), ("a", 100))
        lru._put(("fp1", 2), ("b", 150))
        lru._put(("fp2", 1), ("c", 200))
        assert lru.invalidate("fp1") == 250
        assert lru.info().bytes == 200
        assert lru._get(("fp1", 1)) is None
        assert lru._get(("fp2", 1)) == ("c", 200)
        assert lru.invalidate("ghost") == 0


class TestChunkMemoUnit:
    def test_keyed_by_k_and_largest(self, uniform_u32):
        memo = ChunkMemo()
        fp = fingerprint_array(uniform_u32)
        result = TopKResult(
            values=uniform_u32[:8].copy(),
            indices=np.arange(8, dtype=np.int64),
            k=8,
        )
        assert memo.put(fp, 8, True, result)
        assert memo.get(fp, 8, True) is result
        assert memo.get(fp, 8, False) is None
        assert memo.get(fp, 4, True) is None

    def test_byte_budget_eviction(self):
        def result(k):
            return TopKResult(
                values=np.zeros(k, dtype=np.uint32),
                indices=np.arange(k, dtype=np.int64),
                k=k,
            )

        entry = result(16)
        entry_bytes = entry.values.nbytes + entry.indices.nbytes
        memo = ChunkMemo(capacity_bytes=2 * entry_bytes)
        memo.put("a", 16, True, result(16))
        memo.put("b", 16, True, result(16))
        memo.put("c", 16, True, result(16))
        assert memo.get("a", 16, True) is None  # LRU evicted
        assert memo.get("b", 16, True) is not None
        assert memo.get("c", 16, True) is not None


class TestBankedServingCorrectness:
    """Bank hits are bit-identical to cold runs, on every route."""

    def test_batched_route(self, uniform_u32):
        warm_k = _same_alpha_variant(N, 64)
        queries = [(64, True), (64, False)]
        warm_queries = [(warm_k, True), (warm_k, False)]
        with ServiceDispatcher(num_workers=2, result_cache_capacity=0) as d:
            d.dispatch(uniform_u32, queries)
            assert d.last_report.constructions > 0
            # Same content, *different* array object, different k: bank hits.
            warm = d.dispatch(uniform_u32.copy(), warm_queries)
            report = d.last_report
        assert report.plan_bank_hits == 2
        assert report.constructions == 0
        assert report.construction_bytes == 0.0
        assert report.bytes_moved > 0  # queries still move their own traffic
        with ServiceDispatcher(
            num_workers=2, result_cache_capacity=0, plan_bank_bytes=0
        ) as fresh:
            cold = fresh.dispatch(uniform_u32, warm_queries)
        for a, b in zip(warm, cold):
            np.testing.assert_array_equal(a.values, b.values)
            np.testing.assert_array_equal(a.indices, b.indices)

    def test_batched_route_mutation_misses(self, uniform_u32):
        with ServiceDispatcher(num_workers=2, result_cache_capacity=0) as d:
            d.dispatch(uniform_u32, [(64, True)])
            mutated = uniform_u32.copy()
            mutated[0] = mutated[0] ^ np.uint32(0xFFFFFFFF)
            results = d.dispatch(mutated, [(64, True)])
            report = d.last_report
        assert report.plan_bank_hits == 0
        assert report.constructions > 0  # no stale plan served
        assert_topk_correct(results[0], mutated, 64)

    def test_sharded_route(self, uniform_u32):
        capacity = N // 4
        warm_k = _same_alpha_variant(capacity, 64)
        with ServiceDispatcher(
            num_workers=4,
            capacity_elements=capacity,
            result_cache_capacity=0,
        ) as d:
            d.dispatch(uniform_u32, [(64, True)])
            assert d.last_report.route == "sharded"
            assert d.last_report.constructions > 0
            warm = d.dispatch(uniform_u32, [(warm_k, True)])
            report = d.last_report
        assert report.plan_bank_hits > 0
        assert report.constructions == 0
        assert report.construction_bytes == 0.0
        with ServiceDispatcher(
            num_workers=4,
            capacity_elements=capacity,
            result_cache_capacity=0,
            plan_bank_bytes=0,
        ) as fresh:
            cold = fresh.dispatch(uniform_u32, [(warm_k, True)])
        np.testing.assert_array_equal(warm[0].values, cold[0].values)
        np.testing.assert_array_equal(warm[0].indices, cold[0].indices)

    def test_streaming_route_replay(self, uniform_u32):
        chunks = [uniform_u32[: N // 2], uniform_u32[N // 2 :]]
        with ServiceDispatcher(num_workers=2, result_cache_capacity=0) as d:
            first = d.dispatch(list(chunks), [(32, True)])
            assert d.last_report.route == "streaming"
            assert d.last_report.chunk_memo_hits == 0
            replay = d.dispatch(list(chunks), [(32, True)])
            report = d.last_report
        assert report.chunk_memo_hits == 2  # both chunks served from the memo
        assert report.constructions == 0
        assert report.construction_bytes == 0.0
        np.testing.assert_array_equal(first[0].values, replay[0].values)
        np.testing.assert_array_equal(first[0].indices, replay[0].indices)
        with ServiceDispatcher(
            num_workers=2, result_cache_capacity=0, chunk_memo_bytes=0
        ) as fresh:
            cold = fresh.dispatch(list(chunks), [(32, True)])
        np.testing.assert_array_equal(replay[0].values, cold[0].values)
        np.testing.assert_array_equal(replay[0].indices, cold[0].indices)

    def test_streaming_chunk_position_independence(self, uniform_u32):
        """A memoised chunk serves at a *different* stream offset correctly."""
        a, b = uniform_u32[: N // 2], uniform_u32[N // 2 :]
        with ServiceDispatcher(num_workers=2, result_cache_capacity=0) as d:
            d.dispatch([a, b], [(32, True)])
            swapped = d.dispatch([b, a], [(32, True)])
            assert d.last_report.chunk_memo_hits == 2
        # Same value multiset; indices must point at the right elements of
        # the *swapped* stream (local indices + new offsets).
        stream = np.concatenate([b, a])
        assert_topk_correct(swapped[0], stream, 32)


class TestWorkWeightedRouting:
    def test_bank_hit_groups_weigh_less(self, uniform_u32):
        router = Router(
            num_workers=2,
            capacity_elements=1 << 20,
            cache=PartitionCache(),
            plan_bank=PlanBank(),
        )
        cold = router.expected_group_work(N, [64, 64], alpha=8, beta=2, bank_hit=False)
        warm = router.expected_group_work(N, [64, 64], alpha=8, beta=2, bank_hit=True)
        assert warm < cold
        assert cold - warm >= N  # the construction scan dominates the gap

    def test_cold_group_placed_alone(self, uniform_u32):
        """Two banked groups share a worker; the cold group gets its own."""
        bank = PlanBank()
        cache = PartitionCache()
        router = Router(
            num_workers=2, capacity_elements=1 << 20, cache=cache, plan_bank=bank
        )
        engine = BatchTopK(cache=cache, plan_bank=bank).engine
        k_small, k_large = 16, 1024
        assert engine._resolve_alpha(N, k_small) != engine._resolve_alpha(N, k_large)
        fp = fingerprint_array(uniform_u32)
        # Bank plans for (k_small, True) and (k_small, False); leave
        # (k_large, True) cold.
        for largest in (True, False):
            alpha = engine._resolve_alpha(N, k_small)
            bank.put(
                fp,
                engine.prepare_with_alpha(uniform_u32, alpha, largest=largest, k=k_small),
            )
        parsed = [
            TopKQuery.of((k_small, True)),
            TopKQuery.of((k_small, False)),
            TopKQuery.of((k_large, True)),
            TopKQuery.of((k_small, True)),
            TopKQuery.of((k_small, False)),
        ]
        placement = router.place_groups(uniform_u32, parsed, engine, fingerprint=fp)
        by_worker = [sorted(p) for p in placement]
        # The cold (k_large) group is position 2; it must sit alone while
        # both cheap bank-hit groups share the other worker.
        assert [2] in by_worker
        assert sorted([0, 1, 3, 4]) in by_worker

    def test_query_count_tie_still_spreads(self, uniform_u32):
        """Without a bank, equal groups still spread like the old heuristic."""
        router = Router(num_workers=2, capacity_elements=1 << 20, cache=PartitionCache())
        engine = BatchTopK(cache=router.cache).engine
        parsed = [TopKQuery.of((64, i % 2 == 0)) for i in range(10)]
        placement = router.place_groups(uniform_u32, parsed, engine)
        assert sorted(len(p) for p in placement) == [5, 5]


def _ledger_consistent(cache) -> bool:
    """A _ByteBudgetLru's byte ledger equals the sum of its resident sizes."""
    return (
        cache.info().bytes == sum(cache._sizes.values())
        and len(cache._entries) == len(cache._sizes)
    )


class TestSharedBroadcastConcurrency:
    """PlanBank.shared under threads: one construction, coherent handles.

    Sized for the 1-CPU CI box: these are determinism/invariant stress
    tests (no timing asserts) — the GIL's preemption and numpy's
    GIL-releasing kernels provide the interleaving.
    """

    def test_concurrent_shared_constructs_once(self, uniform_u32):
        bank = PlanBank()
        fp = fingerprint_array(uniform_u32)
        engine = DrTopK()
        k = 64
        alpha = engine._resolve_alpha(N, k)
        builds: list = []
        outcomes: list = []
        errors: list = []

        def builder():
            plan = engine.prepare_with_alpha(uniform_u32, alpha, largest=True, k=k)
            builds.append(plan)
            return plan

        def worker():
            try:
                outcomes.append(
                    bank.shared(fp, alpha, True, engine.config.beta, builder)
                )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        # Exactly one builder ran; every caller got the same banked handle
        # and exactly one of them is credited with the construction.
        assert len(builds) == 1
        assert len(outcomes) == 8
        assert {id(plan) for plan, _ in outcomes} == {id(builds[0])}
        assert sum(1 for _, constructed in outcomes if constructed) == 1
        assert _ledger_consistent(bank)

    def test_shared_survives_racing_invalidation(self, uniform_u32):
        """evict-cascade vs in-flight splits: handles stay whole, ledger exact.

        Queriers fetch a shared handle and answer through it while another
        thread invalidates the fingerprint in a loop — the exact shape of a
        named-vector eviction racing a split-group broadcast.  No querier
        may ever observe a half-invalidated plan: every answer must be
        element-wise exact, and the byte ledger must balance after quiesce.
        """
        bank = PlanBank()
        fp = fingerprint_array(uniform_u32)
        reference = DrTopK()
        k = 64
        alpha = reference._resolve_alpha(N, k)
        expected = np.sort(reference.topk(uniform_u32, k).values)
        errors: list = []
        stop = threading.Event()

        def querier():
            try:
                own = DrTopK()  # engines are per-thread; the bank is shared
                for _ in range(15):
                    plan, _ = bank.shared(
                        fp,
                        alpha,
                        True,
                        own.config.beta,
                        lambda: own.prepare_with_alpha(
                            uniform_u32, alpha, largest=True, k=k
                        ),
                    )
                    result = own.topk_prepared(plan, k, charge_construction=False)
                    np.testing.assert_array_equal(np.sort(result.values), expected)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def invalidator():
            try:
                while not stop.is_set():
                    bank.invalidate(fp)
                    stop.wait(0.001)  # yield so queriers make progress
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        queriers = [threading.Thread(target=querier) for _ in range(3)]
        churn = threading.Thread(target=invalidator)
        churn.start()
        for t in queriers:
            t.start()
        for t in queriers:
            t.join()
        stop.set()
        churn.join()
        assert not errors, errors
        assert _ledger_consistent(bank)

    def test_build_lock_prune_spares_inflight_builds(self):
        # The lock-table prune must never orphan a held lock: a key being
        # built is not resident yet, and replacing its lock would admit a
        # second concurrent builder (double-charged construction).
        from repro.service.planbank import _BUILD_LOCK_CAP

        bank = PlanBank()
        key = ("fp-inflight", 8, True)
        lock = bank._build_lock(key)
        lock.acquire()  # simulate a builder mid-flight
        try:
            for i in range(_BUILD_LOCK_CAP + 5):  # force prune passes
                bank._build_lock((f"fp{i}", 0, True))
            assert bank._build_lock(key) is lock
        finally:
            lock.release()

    def test_concurrent_puts_and_invalidates_keep_ledger(self, rng):
        """Admission churn from threads: bytes == sum(sizes) after quiesce."""
        vectors = [
            rng.integers(0, 2**32, size=1 << 9, dtype=np.uint32) for _ in range(6)
        ]
        plans = [_plan_for(v, k=16) for v in vectors]
        fps = [fingerprint_array(v) for v in vectors]
        for plan in plans:
            plan.materialise_views()
        # A budget that holds only some of the plans, so puts also evict.
        bank = PlanBank(capacity_bytes=3 * plans[0].nbytes())
        errors: list = []

        def churner(idx: int):
            try:
                for _ in range(30):
                    bank.put(fps[idx], plans[idx])
                    bank.get(fps[idx], plans[idx].alpha, plans[idx].largest)
                    if idx % 2:
                        bank.invalidate(fps[idx])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churner, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        assert _ledger_consistent(bank)
        info = bank.info()
        assert 0 <= info.bytes <= bank.capacity_bytes


class TestBankAwareAlphaSnap:
    """Satellite: near-miss alpha resolutions snap onto banked neighbours."""

    # At n = 2^14 with the default beta, k=8 resolves to alpha=7 and k=32 to
    # alpha=6 — but serving k=32 through the banked alpha-7 plan is modelled
    # *cheaper* (256 + 4k vs 512 + 4k), so the snap must turn the second
    # dispatch into a pure bank hit.
    N_SNAP = 1 << 14

    def test_near_miss_k_becomes_bank_hit(self, rng):
        v = rng.integers(0, 2**32, size=self.N_SNAP, dtype=np.uint32)
        with ServiceDispatcher(num_workers=1, result_cache_capacity=0) as d:
            d.dispatch(v, [8])  # banks the alpha-7 plan
            report = d.last_report
            assert report is not None and report.constructions == 1
            results = d.dispatch(v, [32])  # resolves alpha 6: a near miss
            report = d.last_report
            assert report is not None
            assert report.constructions == 0, "near-miss k re-scanned the vector"
            assert report.construction_bytes == 0.0
            assert report.plan_bank_hits == 1
        assert_topk_correct(results[0], v, 32, largest=True)

    def test_snap_disabled_rebuilds(self, rng):
        v = rng.integers(0, 2**32, size=self.N_SNAP, dtype=np.uint32)
        with ServiceDispatcher(
            num_workers=1, result_cache_capacity=0, snap_tolerance=None
        ) as d:
            d.dispatch(v, [8])
            d.dispatch(v, [32])
            report = d.last_report
            assert report is not None
            assert report.constructions == 1, "snap ran while disabled"
            assert report.plan_bank_hits == 0

    def test_snapped_answers_are_identical_to_unsnapped(self, rng):
        v = rng.integers(0, 2**32, size=self.N_SNAP, dtype=np.uint32)
        ks = [8, 32, 32, 8]
        with ServiceDispatcher(
            num_workers=1, result_cache_capacity=0, snap_tolerance=None
        ) as ref:
            ref.dispatch(v.copy(), [8])
            want = ref.dispatch(v.copy(), ks)
        with ServiceDispatcher(num_workers=1, result_cache_capacity=0) as d:
            d.dispatch(v, [8])
            got = d.dispatch(v, ks)
        for a, b in zip(want, got):
            np.testing.assert_array_equal(a.values, b.values)
            np.testing.assert_array_equal(a.indices, b.indices)

    def test_costlier_neighbour_does_not_snap(self, rng):
        # k=512 resolves to alpha=4 and banks a fine partition; k=8 then
        # resolves to alpha=7, and serving it through the banked alpha-4
        # plan would cost ~7x the modelled base, far past the tolerance —
        # the resolver must keep the Rule-4 exponent and rebuild.
        v = rng.integers(0, 2**32, size=self.N_SNAP, dtype=np.uint32)
        with ServiceDispatcher(num_workers=1, result_cache_capacity=0) as d:
            d.dispatch(v, [512])
            results = d.dispatch(v, [8])
            report = d.last_report
            assert report is not None
            assert report.constructions == 1
            assert report.plan_bank_hits == 0
        assert_topk_correct(results[0], v, 8, largest=True)

    def test_modelled_cost_matches_expected_work(self):
        from repro.service.batch import modelled_query_cost

        with ServiceDispatcher(num_workers=1) as d:
            engine = DrTopK()
            beta = engine.config.beta
            for k in (4, 64, 512):
                alpha = engine._resolve_alpha(self.N_SNAP, k)
                assert modelled_query_cost(
                    self.N_SNAP, k, alpha, beta
                ) == d.router.expected_query_work(self.N_SNAP, k, alpha, beta)
