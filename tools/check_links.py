#!/usr/bin/env python3
"""Fail on broken relative links in Markdown files.

Usage::

    python tools/check_links.py README.md docs [more files or dirs ...]

Every ``[text](target)`` and ``[text]: target`` reference in the given
Markdown files is resolved relative to the file that contains it.  A link is
**broken** — and fails the run — when its target is a relative path that does
not exist on disk.  Deliberately skipped:

* absolute URLs (``http://``, ``https://``, ``mailto:`` or any scheme),
* pure in-page anchors (``#section``),
* targets that resolve *outside* the repository root — the README's CI badge
  links ``../../actions/...`` relative to the GitHub web UI, which has no
  on-disk equivalent by design.

Anchors on existing files (``architecture.md#the-pieces``) are checked
against the target file's headings (GitHub's slug rules, close enough for
ASCII headings).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline links/images plus reference-style definitions. Good enough for the
#: Markdown this repo writes; not a full CommonMark parser.
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
_FENCE = re.compile(r"^(```|~~~)")


def _strip_code(text: str) -> str:
    """Drop fenced code blocks (shell snippets are full of false positives)."""
    out, fenced = [], False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def _slug(heading: str) -> str:
    """GitHub-style anchor slug of one heading line."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\s-]", "", heading)
    # GitHub hyphenates every whitespace character individually, so a
    # heading like "DOC001 — drift" (em-dash dropped, two spaces left)
    # slugs to a double hyphen — do not collapse runs.
    return re.sub(r"\s", "-", heading)


def _anchors(path: Path) -> set:
    return {
        _slug(line.lstrip("#"))
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.startswith("#")
    }


def check_file(md: Path) -> list:
    """All broken links of one Markdown file, as human-readable strings."""
    text = _strip_code(md.read_text(encoding="utf-8"))
    targets = _INLINE.findall(text) + _REFDEF.findall(text)
    broken = []
    for target in targets:
        if _SCHEME.match(target) or target.startswith("#"):
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (md.parent / path_part).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            continue  # resolves outside the repo (e.g. the CI badge) — by design
        if not resolved.exists():
            broken.append(f"{md}: broken link -> {target}")
        elif anchor and resolved.suffix == ".md" and _slug(anchor) not in _anchors(resolved):
            broken.append(f"{md}: missing anchor -> {target}")
    return broken


def main(argv: list) -> int:
    """Check every Markdown file named by ``argv`` (dirs expand to ``*.md``)."""
    if not argv:
        print(__doc__)
        return 2
    files = []
    for arg in argv:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.glob("*.md")))
        elif p.exists():
            files.append(p)
        else:
            print(f"no such file or directory: {arg}", file=sys.stderr)
            return 2
    broken = [issue for md in files for issue in check_file(md)]
    for issue in broken:
        print(issue, file=sys.stderr)
    print(f"checked {len(files)} file(s): {len(broken)} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
