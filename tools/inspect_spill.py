#!/usr/bin/env python3
"""Pretty-print (and optionally verify) a spill directory's manifest.

Usage::

    PYTHONPATH=src python tools/inspect_spill.py /path/to/spill_dir [--verify]

Prints the manifest's spilled vectors (name, fingerprint, dtype/shape,
bytes, recorded query history, shard count) and the persisted plan-geometry
rows (fingerprint, alpha, largest, beta, n, offset), plus the directory's
occupancy totals — the operator's view of what a warm restart would pick up.

``--verify`` additionally checks each entry against its data file: the file
must exist and match the manifest's recorded byte size (the same check
``SpillDirectory.load`` applies before serving), and with ``--verify`` the
content is also re-hashed and compared to the manifest fingerprint — the one
place in the codebase a spilled fingerprint is ever recomputed, because an
operator asking "has this file rotted?" is exactly the case content
addressing cannot answer by construction.  Exit status is non-zero when any
entry fails verification.
"""

from __future__ import annotations

import argparse
import os
import sys


def _fmt_bytes(count: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(count) < 1024.0 or unit == "GiB":
            return f"{count:,.1f} {unit}" if unit != "B" else f"{int(count)} B"
        count /= 1024.0
    return f"{count:,.1f} GiB"


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        description="Inspect a spill directory's manifest."
    )
    parser.add_argument("path", help="spill directory (holds manifest.json)")
    parser.add_argument(
        "--verify",
        action="store_true",
        help="re-hash each data file and compare against the manifest",
    )
    args = parser.parse_args(argv)

    from repro.service.cache import fingerprint_array
    from repro.service.spill import SpillDirectory

    if not os.path.isdir(args.path):
        print(f"error: {args.path!r} is not a directory", file=sys.stderr)
        return 2
    spill = SpillDirectory(args.path)
    info = spill.info()

    print(f"spill directory: {info.path}")
    print(
        f"  {info.entries} vector(s), {_fmt_bytes(info.spilled_bytes)} spilled, "
        f"{info.plan_rows} plan row(s)"
        + ("  [manifest recovered from corruption: cold start]" if info.recovered else "")
    )

    entries = sorted(spill.entries().values(), key=lambda e: (-e.queries, e.name))
    failures = 0
    if entries:
        print("\nvectors (hottest first):")
        header = f"  {'name':<16} {'fingerprint':<34} {'dtype':<6} {'n':>10} {'bytes':>12} {'queries':>8} {'shards':>6}"
        print(header)
        print("  " + "-" * (len(header) - 2))
        for entry in entries:
            shards = len(entry.shard_fingerprints or {})
            status = ""
            if args.verify:
                loaded = spill.load(entry.name)
                if loaded is None:
                    status = "  MISSING/SIZE-MISMATCH"
                    failures += 1
                else:
                    _, view = loaded
                    import numpy as np

                    if fingerprint_array(np.asarray(view)) != entry.fingerprint:
                        status = "  CONTENT-MISMATCH"
                        failures += 1
                    else:
                        status = "  ok"
            print(
                f"  {entry.name:<16} {entry.fingerprint:<34} {entry.dtype:<6} "
                f"{entry.shape[0]:>10,} {_fmt_bytes(entry.nbytes):>12} "
                f"{entry.queries:>8,} {shards:>6}{status}"
            )

    plans = spill.plans()
    if plans:
        print("\nplan geometry:")
        header = f"  {'fingerprint':<34} {'alpha':>5} {'largest':>7} {'beta':>5} {'n':>10} {'offset':>10}"
        print(header)
        print("  " + "-" * (len(header) - 2))
        for row in sorted(
            plans, key=lambda r: (r["fingerprint"], r["alpha"], not r["largest"])
        ):
            print(
                f"  {row['fingerprint']:<34} {row['alpha']:>5} "
                f"{str(row['largest']):>7} {row['beta']:>5} {row['n']:>10,} "
                f"{row['offset']:>10,}"
            )

    if args.verify:
        print(
            f"\nverify: {len(entries) - failures}/{len(entries)} entries ok"
            + (f", {failures} FAILED" if failures else "")
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
