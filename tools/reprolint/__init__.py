"""reprolint — AST-based invariant checker for this repository.

Four passes over ``src/repro/**`` plus one git-hygiene rule, each mapped to
stable rule ids (see ``docs/development.md`` for the full catalog):

- **LOCK001/002/003** — lock discipline: unguarded access to lock-guarded
  attributes, external/user code called under a lock, and cycles in the
  inter-class lock-order graph.
- **HOT001** — raw numpy allocations inside registered hot-path functions
  that should borrow from ``ScratchArena``.
- **DOC001** — drift between report dataclasses and the
  ``docs/operations.md`` glossary tables (checked both ways).
- **FRZ001/002** — frozen-report integrity: ``object.__setattr__`` outside
  ``__post_init__`` and mutation of sealed (``setflags(write=False)``)
  arrays.
- **HYG001** — compiled artifacts tracked by git.

Run ``python -m tools.reprolint --strict`` from the repo root; deliberate
exceptions carry ``# reprolint: waive[RULE] reason`` inline comments.
"""

from .config import LintConfig
from .model import Finding, LockGraph, Report, Waiver
from .runner import run

__all__ = ["Finding", "LintConfig", "LockGraph", "Report", "Waiver", "run"]
