"""Frozen-report integrity pass: FRZ001 / FRZ002.

**FRZ001** — ``object.__setattr__(...)`` anywhere except inside the
``__post_init__`` of a ``@dataclass(frozen=True)`` class.  Frozen reports
are the repo's immutability contract; bypassing it after construction makes
published reports mutate under their readers.

**FRZ002** — mutating an array after it was sealed with
``x.setflags(write=False)``: a later ``x[...] = ...``, ``x += ...`` or an
in-place method (``sort``, ``fill``, ``partition``, ``put``, ``resize``)
on the same name in the same function raises at runtime — flag it at
authoring time instead.
"""

from __future__ import annotations

import ast
from typing import List, Set

from .model import Finding

_INPLACE_METHODS = {"sort", "fill", "partition", "put", "resize", "setfield"}


def _frozen_dataclasses(tree: ast.Module) -> Set[str]:
    """Names of ``@dataclass(frozen=True)`` classes in this module."""
    frozen: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for deco in node.decorator_list:
            if (
                isinstance(deco, ast.Call)
                and isinstance(deco.func, ast.Name)
                and deco.func.id == "dataclass"
                and any(
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in deco.keywords
                )
            ):
                frozen.add(node.name)
    return frozen


def _is_object_setattr(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "__setattr__"
        and isinstance(func.value, ast.Name)
        and func.value.id == "object"
    )


def _target_name(expr: ast.expr) -> str:
    """A stable name for ``x`` / ``self.x`` targets; '' when unnameable."""
    if isinstance(expr, ast.Name):
        return expr.id
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
    ):
        return f"{expr.value.id}.{expr.attr}"
    return ""


class FrozenPass:
    """Scan one file for frozen-contract violations."""

    def run(self, path_rel: str, tree: ast.Module) -> List[Finding]:
        """Findings for one parsed file."""
        findings: List[Finding] = []
        findings += self._setattr_findings(path_rel, tree)
        for fn in (
            n
            for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            findings += self._sealed_array_findings(path_rel, fn)
        return findings

    def _setattr_findings(self, path_rel: str, tree: ast.Module) -> List[Finding]:
        findings: List[Finding] = []
        allowed: Set[int] = set()  # line spans of frozen __post_init__ bodies
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                frozen_here = _frozen_dataclasses(ast.Module(body=[node], type_ignores=[]))
                if node.name not in frozen_here:
                    continue
                for item in node.body:
                    if (
                        isinstance(item, ast.FunctionDef)
                        and item.name == "__post_init__"
                    ):
                        end = item.end_lineno or item.lineno
                        allowed.update(range(item.lineno, end + 1))
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _is_object_setattr(node):
                if node.lineno in allowed:
                    continue
                findings.append(
                    Finding(
                        rule="FRZ001",
                        path=path_rel,
                        line=node.lineno,
                        message="object.__setattr__ outside a frozen "
                        "dataclass's __post_init__",
                        hint="use dataclasses.replace() to derive a new report",
                    )
                )
        return findings

    def _sealed_array_findings(self, path_rel: str, fn) -> List[Finding]:
        findings: List[Finding] = []
        sealed: Set[str] = set()
        # Line-ordered scan: a seal point must precede the mutation it flags.
        for node in sorted(
            (n for n in ast.walk(fn) if isinstance(n, (ast.Call, ast.Assign, ast.AugAssign))),
            key=lambda n: (n.lineno, n.col_offset),
        ):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "setflags"
                    and any(
                        kw.arg == "write"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is False
                        for kw in node.keywords
                    )
                ):
                    name = _target_name(func.value)
                    if name:
                        sealed.add(name)
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in _INPLACE_METHODS
                    and _target_name(func.value) in sealed
                ):
                    findings.append(
                        Finding(
                            rule="FRZ002",
                            path=path_rel,
                            line=node.lineno,
                            message=(
                                f"in-place .{func.attr}() on "
                                f"'{_target_name(func.value)}' after "
                                "setflags(write=False)"
                            ),
                            hint="mutate before sealing, or copy first",
                        )
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and _target_name(target.value) in sealed
                    ):
                        findings.append(
                            Finding(
                                rule="FRZ002",
                                path=path_rel,
                                line=node.lineno,
                                message=(
                                    f"write into '{_target_name(target.value)}' "
                                    "after setflags(write=False)"
                                ),
                                hint="mutate before sealing, or copy first",
                            )
                        )
            elif isinstance(node, ast.AugAssign):
                target = node.target
                name = (
                    _target_name(target.value)
                    if isinstance(target, ast.Subscript)
                    else _target_name(target)
                )
                if name in sealed:
                    findings.append(
                        Finding(
                            rule="FRZ002",
                            path=path_rel,
                            line=node.lineno,
                            message=f"augmented write to '{name}' after "
                            "setflags(write=False)",
                            hint="mutate before sealing, or copy first",
                        )
                    )
        return findings
