"""Reprolint configuration: what to scan and what the rules key off.

The defaults describe *this* repository (``src/repro/**``); tests point the
same passes at fixture corpora by building a custom :class:`LintConfig`.

Registering a new hot-path function or glossary class is a one-line edit
here — see ``docs/development.md`` for the conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

#: Allocation calls the hot-path rule flags (``np.<name>`` / ``numpy.<name>``).
ALLOC_CALLS = ("empty", "zeros", "concatenate", "full", "ones")

#: Free functions that reach external/user code; calling one while holding a
#: lock risks re-entrancy and unbounded hold times (LOCK002).
EXTERNAL_CALL_NAMES = ("fingerprint_array", "dispatch")

#: Functions whose temporaries must borrow from ``ScratchArena`` — the fused
#: selection chain, the hierarchical gather, and the streaming memo-replay
#: merge.  Keys are ``module.dotted.path:qualname`` relative to ``src/``.
DEFAULT_HOT_FUNCTIONS = (
    "repro.service.fusion:fused_group_topk",
    "repro.service.fusion:_serve_fused",
    "repro.service.fusion:_serve_fallback",
    "repro.service.streaming:merge_candidate_pool",
    "repro.service.streaming:StreamingTopK._consume_piece",
    "repro.distributed.multigpu:MultiGpuDrTopK._hierarchical_gather",
)

#: Report dataclasses mirrored by the ``docs/operations.md`` glossary, as
#: ``class name -> module path`` (relative to the repo root).  Each class
#: needs a ``<!-- reprolint:glossary <Class> -->`` marker ahead of its table.
DEFAULT_GLOSSARY_CLASSES: Dict[str, str] = {
    "DispatchReport": "src/repro/service/dispatcher.py",
    "SaveReport": "src/repro/service/dispatcher.py",
    "RestoreReport": "src/repro/service/dispatcher.py",
    "CacheInfo": "src/repro/service/cache.py",
    "LoadReport": "src/repro/service/loadgen.py",
    "RouteStats": "src/repro/service/loadgen.py",
    "TenantStats": "src/repro/service/loadgen.py",
    "TenantPolicy": "src/repro/service/tenancy.py",
    "ScrubReport": "src/repro/service/scrubber.py",
}


@dataclass
class LintConfig:
    """One reprolint run's inputs: root, file set, and rule registries."""

    root: Path
    #: Globs (relative to ``root``) selecting the python files to scan.
    scan_globs: Tuple[str, ...] = ("src/repro/**/*.py",)
    #: ``module:qualname`` entries for the hot-path allocation rule.
    hot_functions: Tuple[str, ...] = DEFAULT_HOT_FUNCTIONS
    #: Glossary classes and the modules defining them.
    glossary_classes: Dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_GLOSSARY_CLASSES)
    )
    #: The markdown file holding the glossary tables.
    glossary_doc: str = "docs/operations.md"
    #: Run the tracked-artifact hygiene rule (needs a git checkout).
    check_hygiene: bool = True
    #: Attribute-guarding inference: an attribute is lock-guarded when at
    #: least ``min_guarded_accesses`` accesses happen under one lock and they
    #: make up at least ``guarded_ratio`` of all its accesses.
    min_guarded_accesses: int = 2
    guarded_ratio: float = 0.75

    def files(self) -> List[Path]:
        """Every python file the AST passes scan, sorted for determinism."""
        seen = set()
        out: List[Path] = []
        for pattern in self.scan_globs:
            for path in sorted(self.root.glob(pattern)):
                if path.suffix == ".py" and path not in seen and path.is_file():
                    seen.add(path)
                    out.append(path)
        return out

    def rel(self, path: Path) -> str:
        """``path`` relative to the scan root, as a forward-slash string."""
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def module_of(self, path: Path) -> str:
        """Dotted module path for a scanned file (``src/`` stripped)."""
        rel = self.rel(path)
        parts = Path(rel).with_suffix("").parts
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)
