"""CLI for reprolint: ``python -m tools.reprolint [--strict] [--json PATH]``.

Exit status: ``--strict`` fails (1) on any unwaived finding or any waiver
missing a reason; without it the run only reports.  ``--json`` writes the
full machine-readable report (per-rule counts, findings, waiver inventory,
lock-order graph) — CI uploads it as ``reprolint_report.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .config import LintConfig
from .runner import run


def main(argv=None) -> int:
    """Run the checker; return the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST invariant checker: lock discipline, hot-path "
        "allocations, glossary drift, frozen-report integrity, repo hygiene.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[2],
        help="repository root to scan (default: this checkout)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on unwaived findings or reason-less waivers",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write the full report as JSON"
    )
    parser.add_argument(
        "--graph", action="store_true", help="print the lock-order graph"
    )
    parser.add_argument(
        "--no-hygiene",
        action="store_true",
        help="skip the git tracked-artifact rule",
    )
    args = parser.parse_args(argv)

    config = LintConfig(root=args.root, check_hygiene=not args.no_hygiene)
    report = run(config)

    for finding in report.findings:
        print(finding.format())
    counts = report.rule_counts()
    unwaived = report.unwaived
    print(
        f"reprolint: {report.files_scanned} files, "
        f"{len(report.findings)} findings "
        f"({len(report.findings) - len(unwaived)} waived), "
        f"{len(report.waivers)} waivers"
    )
    for rule in sorted(counts):
        entry = counts[rule]
        print(f"  {rule}: {entry['total']} ({entry['waived']} waived)")
    if args.graph and report.lock_graph is not None:
        print(report.lock_graph.render())

    if args.json is not None:
        args.json.write_text(json.dumps(report.to_json(), indent=2) + "\n")
        print(f"report written to {args.json}")

    if args.strict:
        failed = False
        if unwaived:
            print(f"STRICT: {len(unwaived)} unwaived finding(s)", file=sys.stderr)
            failed = True
        reasonless = report.reasonless_waivers
        if reasonless:
            for waiver in reasonless:
                print(
                    f"STRICT: waiver without reason at "
                    f"{waiver.path}:{waiver.line}",
                    file=sys.stderr,
                )
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
