"""Core datatypes for reprolint: findings, waivers, and the run report.

A :class:`Finding` is one rule violation at a ``file:line``.  A
:class:`Waiver` is an inline ``# reprolint: waive[RULE] reason`` comment; it
silences findings of that rule on the same line, or — when the comment is
alone on its line — on the next statement line.  Waived findings stay in the
report (marked ``waived``) so deliberate exceptions remain visible.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: ``# reprolint: waive[LOCK001] reason`` (multiple rules comma-separated).
WAIVE_RE = re.compile(
    r"#\s*reprolint:\s*waive\[(?P<rules>[A-Z0-9,\s]+)\]\s*(?P<reason>.*)$"
)


@dataclass
class Finding:
    """One rule violation: where it is, what fired, and how to fix it."""

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""
    waived: bool = False
    waive_reason: str = ""

    def format(self) -> str:
        """Render ``path:line: RULE message (hint)`` for terminal output."""
        tail = f"  [fix: {self.hint}]" if self.hint else ""
        mark = " (waived: %s)" % self.waive_reason if self.waived else ""
        return f"{self.path}:{self.line}: {self.rule} {self.message}{tail}{mark}"

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable form for ``reprolint_report.json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
            "waived": self.waived,
            "waive_reason": self.waive_reason,
        }


@dataclass
class Waiver:
    """One inline waiver comment and its bookkeeping."""

    path: str
    line: int
    rules: List[str]
    reason: str
    own_line: bool  # comment-only line: applies to the next code line too
    used: bool = False

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable form for the waiver inventory."""
        return {
            "path": self.path,
            "line": self.line,
            "rules": self.rules,
            "reason": self.reason,
            "used": self.used,
        }


def parse_waivers(path: str, source: str) -> List[Waiver]:
    """Extract every waiver comment from one file's source text."""
    waivers: List[Waiver] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = WAIVE_RE.search(text)
        if not match:
            continue
        rules = [r.strip() for r in match.group("rules").split(",") if r.strip()]
        waivers.append(
            Waiver(
                path=path,
                line=lineno,
                rules=rules,
                reason=match.group("reason").strip(),
                own_line=text.lstrip().startswith("#"),
            )
        )
    return waivers


def apply_waivers(findings: List[Finding], waivers: List[Waiver]) -> None:
    """Mark findings covered by a waiver; mark the waivers used.

    A waiver on line ``N`` covers findings on line ``N``; a comment-only
    waiver additionally covers line ``N + 1`` (the statement it annotates).
    """
    by_loc: Dict[tuple, List[Waiver]] = {}
    for waiver in waivers:
        for rule in waiver.rules:
            by_loc.setdefault((waiver.path, waiver.line, rule), []).append(waiver)
            if waiver.own_line:
                by_loc.setdefault((waiver.path, waiver.line + 1, rule), []).append(
                    waiver
                )
    for finding in findings:
        for waiver in by_loc.get((finding.path, finding.line, finding.rule), []):
            finding.waived = True
            finding.waive_reason = waiver.reason
            waiver.used = True
            break


@dataclass
class LockGraph:
    """The inter-class lock-order graph: nodes, edges, and any cycles."""

    nodes: List[str] = field(default_factory=list)
    edges: List[tuple] = field(default_factory=list)  # (holder, acquired, path, line)
    cycles: List[List[str]] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable form for the report artifact."""
        return {
            "nodes": sorted(self.nodes),
            "edges": [
                {"from": a, "to": b, "path": p, "line": n}
                for a, b, p, n in sorted(set(self.edges))
            ],
            "cycles": self.cycles,
        }

    def render(self) -> str:
        """Human-readable edge list (``A -> B`` per line)."""
        lines = [f"lock-order graph: {len(self.nodes)} locks"]
        for a, b, path, line in sorted(set((a, b, p, n) for a, b, p, n in self.edges)):
            lines.append(f"  {a} -> {b}  ({path}:{line})")
        if not self.edges:
            lines.append("  (no nested acquisitions)")
        for cycle in self.cycles:
            lines.append("  CYCLE: " + " -> ".join(cycle))
        return "\n".join(lines)


@dataclass
class Report:
    """Everything one reprolint run produced."""

    findings: List[Finding] = field(default_factory=list)
    waivers: List[Waiver] = field(default_factory=list)
    lock_graph: Optional[LockGraph] = None
    files_scanned: int = 0

    @property
    def unwaived(self) -> List[Finding]:
        """Findings no waiver covers — these fail ``--strict``."""
        return [f for f in self.findings if not f.waived]

    @property
    def reasonless_waivers(self) -> List[Waiver]:
        """Waivers with no reason text — these also fail ``--strict``."""
        return [w for w in self.waivers if not w.reason]

    def rule_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-rule ``{total, waived}`` counts for the summary."""
        counts: Dict[str, Dict[str, int]] = {}
        for finding in self.findings:
            entry = counts.setdefault(finding.rule, {"total": 0, "waived": 0})
            entry["total"] += 1
            if finding.waived:
                entry["waived"] += 1
        return counts

    def to_json(self) -> Dict[str, object]:
        """The full ``reprolint_report.json`` payload."""
        return {
            "files_scanned": self.files_scanned,
            "rule_counts": self.rule_counts(),
            "findings": [f.to_json() for f in self.findings],
            "waivers": [w.to_json() for w in self.waivers],
            "lock_graph": self.lock_graph.to_json() if self.lock_graph else None,
        }
