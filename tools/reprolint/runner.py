"""Orchestrate the reprolint passes over one file set.

:func:`run` is the single entry point the CLI and the test suite share:
parse every scanned file once, feed the ASTs to the four AST passes plus
the git-hygiene rule, apply inline waivers, and return a
:class:`~tools.reprolint.model.Report`.
"""

from __future__ import annotations

import ast
from typing import Dict, List

from .config import LintConfig
from .frozen import FrozenPass
from .glossary import GlossaryPass
from .hotpath import HotPathPass
from .hygiene import run_hygiene
from .locks import LockAnalyzer
from .model import Finding, Report, apply_waivers, parse_waivers


def run(config: LintConfig) -> Report:
    """Execute every pass and return the combined report."""
    report = Report()
    parsed: Dict[str, ast.Module] = {}
    sources: Dict[str, str] = {}
    for path in config.files():
        rel = config.rel(path)
        try:
            source = path.read_text()
            parsed[rel] = ast.parse(source)
        except (OSError, SyntaxError) as exc:
            report.findings.append(
                Finding(
                    rule="PARSE",
                    path=rel,
                    line=getattr(exc, "lineno", 1) or 1,
                    message=f"cannot parse: {exc}",
                    hint="fix the syntax error",
                )
            )
            continue
        sources[rel] = source
    report.files_scanned = len(parsed)

    lock_pass = LockAnalyzer(config)
    hot_pass = HotPathPass(config)
    frozen_pass = FrozenPass()
    for rel, tree in parsed.items():
        module = config.module_of(config.root / rel)
        lock_pass.collect(rel, module, tree)
        report.findings += hot_pass.run(rel, module, tree)
        report.findings += frozen_pass.run(rel, tree)
    lock_findings, lock_graph = lock_pass.analyze()
    report.findings += lock_findings
    report.lock_graph = lock_graph

    report.findings += GlossaryPass(config).run(parsed)
    if config.check_hygiene:
        report.findings += run_hygiene(config)

    waivers: List = []
    for rel, source in sources.items():
        waivers += parse_waivers(rel, source)
    apply_waivers(report.findings, waivers)
    report.waivers = waivers
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
