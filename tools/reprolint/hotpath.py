"""Hot-path allocation pass: HOT001.

Functions registered in :data:`tools.reprolint.config.DEFAULT_HOT_FUNCTIONS`
run once per dispatch/group on the serving fast path; a raw
``np.empty/zeros/concatenate/full`` there is a per-call heap allocation the
:class:`~repro.service.fusion.ScratchArena` exists to amortise.  The rule
flags those calls inside registered functions; allocations that feed an
``out=`` buffer already borrowed from the arena are fine as long as the
destination came from ``arena.take`` (the rule only looks at the allocating
call itself, so pass a pooled buffer via ``out=`` *and* waive, or restructure
to ``arena.take`` + copy).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from .config import ALLOC_CALLS, LintConfig
from .model import Finding


def _alloc_name(node: ast.Call) -> str:
    """``np.empty`` / ``numpy.zeros`` / bare ``empty`` → the alloc name, else ''."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in ALLOC_CALLS:
        if isinstance(func.value, ast.Name) and func.value.id in ("np", "numpy"):
            return func.attr
    return ""


def _has_out_kwarg(node: ast.Call) -> bool:
    return any(kw.arg == "out" for kw in node.keywords)


class HotPathPass:
    """Scan registered hot functions for raw numpy allocations."""

    def __init__(self, config: LintConfig):
        #: module -> set of qualnames registered as hot in that module
        self.registry: Dict[str, Set[str]] = {}
        for entry in config.hot_functions:
            module, _, qualname = entry.partition(":")
            self.registry.setdefault(module, set()).add(qualname)

    def run(self, path_rel: str, module: str, tree: ast.Module) -> List[Finding]:
        """Findings for one parsed file."""
        hot = self.registry.get(module)
        if not hot:
            return []
        findings: List[Finding] = []
        for qualname, fn in _functions_with_qualnames(tree):
            if qualname not in hot:
                continue
            for sub in ast.walk(fn):
                if not isinstance(sub, ast.Call):
                    continue
                alloc = _alloc_name(sub)
                if not alloc:
                    continue
                if _has_out_kwarg(sub):
                    # Writing into an existing (arena-borrowed) buffer
                    # allocates nothing — this is the sanctioned pattern.
                    continue
                findings.append(
                    Finding(
                        rule="HOT001",
                        path=path_rel,
                        line=sub.lineno,
                        message=(
                            f"raw np.{alloc} in hot function "
                            f"'{qualname}' allocates per call"
                        ),
                        hint="borrow the buffer from ScratchArena.scope()/take()",
                    )
                )
        return findings


def _functions_with_qualnames(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    """``(qualname, node)`` for every function, with ``Class.method`` names."""
    out: List[Tuple[str, ast.AST]] = []

    def visit(body, prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append((prefix + node.name, node))
                # Nested defs get dotted names but hot registration targets
                # top-level functions and methods, so no recursion needed.
            elif isinstance(node, ast.ClassDef):
                visit(node.body, prefix + node.name + ".")

    visit(tree.body, "")
    return out
