"""Lock-discipline pass: LOCK001 / LOCK002 / LOCK003.

Works purely on the AST, in two phases:

**Collect** — per module, find lock objects (``self._x = threading.Lock()``
or module-level ``_X = threading.Lock()``), lock *factories* (methods whose
return annotation is ``threading.Lock``), callback attributes (``__init__``
params annotated ``Callable`` stored on ``self``), and attribute types
(``__init__`` params annotated with a scanned class, stored on ``self``).

**Analyze** — walk every method tracking the set of locks lexically held.
Private methods whose intra-class call sites all hold a lock inherit that
held set (fixpoint), so ``# caller holds the lock`` helpers don't
false-positive.  From the events we derive:

- **LOCK001**: an attribute written outside ``__init__`` whose accesses
  overwhelmingly happen under one lock is *guarded*; any access of it off
  the lock is flagged (torn reads / lost updates).
- **LOCK002**: calls that reach external/user code (callback attributes,
  ``fingerprint_array``, ``dispatch``) while any lock is held.
- **LOCK003**: the inter-class lock-order graph — an edge ``A -> B`` for
  every acquisition of ``B`` (lexical, or transitively through calls, with
  cross-class calls resolved through attribute types) while ``A`` is held —
  with a finding per cycle.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .config import EXTERNAL_CALL_NAMES, LintConfig
from .model import Finding, LockGraph

_LOCK_CTORS = {"Lock", "RLock"}

#: Method calls that mutate their receiver — ``self.x.pop(...)`` counts as a
#: *write* to ``x`` for the guarded-attribute inference.
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "move_to_end",
    "add",
    "discard",
    "remove",
    "sort",
}


def _is_lock_ctor(node: ast.expr) -> bool:
    """``threading.Lock()`` / ``threading.RLock()`` (or bare ``Lock()``)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_CTORS and isinstance(func.value, ast.Name)
    return isinstance(func, ast.Name) and func.id in _LOCK_CTORS


def _annotation_names(node: Optional[ast.expr]) -> Set[str]:
    """Every bare identifier mentioned in an annotation expression."""
    if node is None:
        return set()
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String / forward-ref annotations: extract identifiers.
            try:
                names |= _annotation_names(ast.parse(sub.value, mode="eval").body)
            except SyntaxError:
                pass
    return names


@dataclass
class ClassInfo:
    """Everything the analyzer needs to know about one class."""

    name: str
    module: str
    path: str
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    properties: Set[str] = field(default_factory=set)
    lock_attrs: Dict[str, str] = field(default_factory=dict)
    lock_factories: Set[str] = field(default_factory=set)
    callback_attrs: Set[str] = field(default_factory=set)
    attr_class: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Module-level lock context: global locks, mutable globals, functions."""

    module: str
    path: str
    locks: Dict[str, str] = field(default_factory=dict)  # name -> lock id
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    mutable_globals: Set[str] = field(default_factory=set)


@dataclass
class Event:
    """One occurrence the walker recorded, with the locks held at it."""

    kind: str  # access | acquire | call_name | call_self | call_attr | callback
    name: str  # attr / lock id / callee
    line: int
    held: Tuple[str, ...]
    is_store: bool = False
    extra: str = ""  # call_attr: the attribute the call went through


class _MethodWalker(ast.NodeVisitor):
    """Walk one function body tracking lexically-held locks."""

    def __init__(
        self,
        cls: Optional[ClassInfo],
        mod: ModuleInfo,
        effective_locks: Dict[str, str],
        group_methods: Set[str],
        group_props: Set[str],
        callback_attrs: Set[str],
        lock_factories: Dict[str, str],
        entry_held: Tuple[str, ...],
    ):
        self.cls = cls
        self.mod = mod
        self.effective_locks = effective_locks
        self.group_methods = group_methods
        self.group_props = group_props
        self.callback_attrs = callback_attrs
        self.lock_factories = lock_factories
        self.held: Tuple[str, ...] = entry_held
        self.events: List[Event] = []

    # -- lock classification ---------------------------------------------------
    def _lock_of_item(self, expr: ast.expr) -> Optional[str]:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return self.effective_locks.get(expr.attr)
        if isinstance(expr, ast.Name):
            return self.mod.locks.get(expr.id)
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and isinstance(expr.func.value, ast.Name)
            and expr.func.value.id == "self"
        ):
            return self.lock_factories.get(expr.func.attr)
        return None

    # -- visitors --------------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with(node)

    def _with(self, node) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock = self._lock_of_item(item.context_expr)
            if lock is not None:
                self.events.append(Event("acquire", lock, node.lineno, self.held))
                # A factory item still *calls* the factory (it may take
                # other locks transiently while handing the lock out).
                if isinstance(item.context_expr, ast.Call):
                    self.visit(item.context_expr)
                acquired.append(lock)
                self.held = self.held + (lock,)
            else:
                self.visit(item.context_expr)
                if item.optional_vars is not None:
                    self.visit(item.optional_vars)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            self.held = self.held[: len(self.held) - len(acquired)]

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        handled = False
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base == "self":
                if attr in self.callback_attrs:
                    self.events.append(
                        Event("callback", attr, node.lineno, self.held)
                    )
                    handled = True
                elif attr in self.group_methods:
                    self.events.append(
                        Event("call_self", attr, node.lineno, self.held)
                    )
                    handled = True
        if (
            not handled
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            # self.<attr>.<method>(...) — resolved through attr types.
            self.events.append(
                Event(
                    "call_attr",
                    func.attr,
                    node.lineno,
                    self.held,
                    extra=func.value.attr,
                )
            )
            self._record_self_attr(
                func.value, is_store=func.attr in _MUTATOR_METHODS
            )
            handled = True
        if isinstance(func, ast.Name):
            self.events.append(Event("call_name", func.id, node.lineno, self.held))
            handled = True
        if not handled:
            self.visit(func)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def _record_self_attr(self, node: ast.Attribute, is_store: bool) -> None:
        attr = node.attr
        if (
            attr not in self.group_methods
            and attr not in self.group_props
            and attr not in self.effective_locks
            and attr not in self.callback_attrs
        ):
            self.events.append(
                Event("access", attr, node.lineno, self.held, is_store=is_store)
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            self._record_self_attr(
                node, is_store=isinstance(node.ctx, (ast.Store, ast.Del))
            )
            return
        self.visit(node.value)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ``self.x[k] = v`` / ``del self.x[k]`` mutate ``x`` even though the
        # attribute node itself carries a Load context.
        if (
            isinstance(node.ctx, (ast.Store, ast.Del))
            and isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id == "self"
        ):
            self._record_self_attr(node.value, is_store=True)
        else:
            self.visit(node.value)
        self.visit(node.slice)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in self.mod.mutable_globals:
            self.events.append(
                Event(
                    "access",
                    f"global:{node.id}",
                    node.lineno,
                    self.held,
                    is_store=isinstance(node.ctx, (ast.Store, ast.Del)),
                )
            )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # The target of ``x += 1`` is both read and written; record a store.
        self.visit(node.target)
        self.visit(node.value)

    # Nested defs run at another time, possibly without the lock — skip them.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return


def _collect_module(path_rel: str, module: str, tree: ast.Module) -> Tuple[ModuleInfo, List[ClassInfo]]:
    """Phase one over one file: locks, factories, callbacks, attr types."""
    short = module.rsplit(".", 1)[-1] if module else path_rel
    mod = ModuleInfo(module=short, path=path_rel)
    classes: List[ClassInfo] = []
    for node in tree.body:
        if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    mod.locks[target.id] = f"{short}.{target.id}"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mod.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            classes.append(_collect_class(node, short, path_rel))
    # Mutable module globals: Name-stored (or global-declared and augmented)
    # inside some function — those are shared state worth guarding.
    for fn in mod.functions.values():
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Global):
                mod.mutable_globals.update(sub.names)
    mod.mutable_globals &= _module_global_names(tree)
    return mod, classes


def _module_global_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _collect_class(node: ast.ClassDef, module_short: str, path_rel: str) -> ClassInfo:
    info = ClassInfo(
        name=node.name,
        module=module_short,
        path=path_rel,
        bases=[b.id for b in node.bases if isinstance(b, ast.Name)],
    )
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        info.methods[item.name] = item
        for deco in item.decorator_list:
            if isinstance(deco, ast.Name) and deco.id == "property":
                info.properties.add(item.name)
            if isinstance(deco, ast.Attribute) and deco.attr in ("setter", "deleter"):
                info.properties.add(item.name)
        returns = _annotation_names(item.returns)
        if _LOCK_CTORS & returns:
            info.lock_factories.add(item.name)
        # self.<attr> = threading.Lock()  (any method, usually __init__)
        for sub in ast.walk(item):
            if isinstance(sub, ast.Assign) and _is_lock_ctor(sub.value):
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        info.lock_attrs[target.attr] = f"{info.name}.{target.attr}"
    init = info.methods.get("__init__")
    if init is not None:
        param_ann = {
            a.arg: _annotation_names(a.annotation)
            for a in list(init.args.posonlyargs) + list(init.args.args) + list(init.args.kwonlyargs)
        }
        for sub in ast.walk(init):
            if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
                continue
            target = sub.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(sub.value, ast.Name)
            ):
                continue
            names = param_ann.get(sub.value.id, set())
            if "Callable" in names:
                info.callback_attrs.add(target.attr)
            else:
                info.attr_class[target.attr] = ""  # filled once all classes known
                info.attr_class[target.attr + "\0ann"] = ",".join(sorted(names))
    return info


class LockAnalyzer:
    """Run the lock-discipline pass over a set of parsed modules."""

    def __init__(self, config: LintConfig):
        self.config = config
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._events: Dict[Tuple[str, str], List[Event]] = {}
        self._entry: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        self._summaries: Dict[Tuple[str, str], Set[str]] = {}

    # -- phase one -------------------------------------------------------------
    def collect(self, path_rel: str, module: str, tree: ast.Module) -> None:
        """Register one parsed file."""
        mod, classes = _collect_module(path_rel, module, tree)
        self.modules[path_rel] = mod
        for cls in classes:
            self.classes[cls.name] = cls

    def _resolve_attr_types(self) -> None:
        for cls in self.classes.values():
            for attr in list(cls.attr_class):
                if attr.endswith("\0ann"):
                    continue
                ann = cls.attr_class.get(attr + "\0ann", "")
                hit = next(
                    (n for n in ann.split(",") if n in self.classes), ""
                )
                cls.attr_class[attr] = hit
            for key in [k for k in cls.attr_class if k.endswith("\0ann")]:
                del cls.attr_class[key]

    # -- class groups (inheritance-connected components) -----------------------
    def _group_of(self, cls: ClassInfo) -> List[ClassInfo]:
        chain: List[ClassInfo] = []
        seen: Set[str] = set()
        stack = [cls.name]
        while stack:
            name = stack.pop()
            if name in seen or name not in self.classes:
                continue
            seen.add(name)
            info = self.classes[name]
            chain.append(info)
            stack.extend(info.bases)
            # subclasses too: shared guarded-attr accounting
            stack.extend(
                c.name for c in self.classes.values() if name in c.bases
            )
        return chain

    def _class_context(self, cls: ClassInfo):
        chain = self._group_of(cls)
        effective_locks: Dict[str, str] = {}
        lock_factories: Dict[str, str] = {}
        methods: Set[str] = set()
        props: Set[str] = set()
        callbacks: Set[str] = set()
        for info in chain:
            for attr, lock_id in info.lock_attrs.items():
                effective_locks.setdefault(attr, lock_id)
            for factory in info.lock_factories:
                lock_factories.setdefault(factory, f"{info.name}.{factory}()")
            methods |= set(info.methods)
            props |= info.properties
            callbacks |= info.callback_attrs
        return chain, effective_locks, lock_factories, methods, props, callbacks

    # -- phase two -------------------------------------------------------------
    def analyze(self) -> Tuple[List[Finding], LockGraph]:
        """Walk every method/function to a fixpoint; emit findings + graph."""
        self._resolve_attr_types()
        self._walk_all()
        self._propagate_entry_held()
        self._build_summaries()
        findings = self._guarded_attr_findings() + self._external_call_findings()
        graph = self._lock_graph()
        for cycle in graph.cycles:
            findings.append(
                Finding(
                    rule="LOCK003",
                    path=self._edge_path(graph, cycle),
                    line=self._edge_line(graph, cycle),
                    message="lock-order cycle: " + " -> ".join(cycle),
                    hint="acquire locks in one fixed global order",
                )
            )
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return findings, graph

    def _walk_all(self) -> None:
        for cls in self.classes.values():
            _, locks, factories, methods, props, callbacks = self._class_context(cls)
            mod = self.modules.get(cls.path) or ModuleInfo(cls.module, cls.path)
            for name, fn in cls.methods.items():
                key = (cls.name, name)
                self._events[key] = self._walk(
                    cls, mod, locks, factories, methods, props, callbacks, fn,
                    self._entry.get(key, ()),
                )
        for mod in self.modules.values():
            for name, fn in mod.functions.items():
                key = (f"<module:{mod.path}>", name)
                self._events[key] = self._walk(
                    None, mod, {}, {}, set(mod.functions), set(), set(), fn, ()
                )

    def _walk(
        self, cls, mod, locks, factories, methods, props, callbacks, fn, entry
    ) -> List[Event]:
        walker = _MethodWalker(
            cls, mod, locks, methods, props, callbacks, factories, entry
        )
        for stmt in fn.body:
            walker.visit(stmt)
        return walker.events

    def _propagate_entry_held(self) -> None:
        """Private methods called only with a lock held inherit that held set."""
        for _ in range(6):
            call_sites: Dict[Tuple[str, str], List[Tuple[str, ...]]] = {}
            for (owner, _method), events in self._events.items():
                if owner.startswith("<module:"):
                    for ev in events:
                        if ev.kind == "call_name":
                            key = (owner, ev.name)
                            if key in self._events:
                                call_sites.setdefault(key, []).append(ev.held)
                    continue
                cls = self.classes[owner]
                chain = self._group_of(cls)
                for ev in events:
                    if ev.kind != "call_self":
                        continue
                    for info in chain:
                        if ev.name in info.methods:
                            call_sites.setdefault((info.name, ev.name), []).append(
                                ev.held
                            )
                            break
            changed = False
            for key, sites in call_sites.items():
                owner, method = key
                if not method.startswith("_") or method.startswith("__"):
                    continue
                common = set(sites[0])
                for held in sites[1:]:
                    common &= set(held)
                entry = tuple(sorted(common))
                if entry and self._entry.get(key, ()) != entry:
                    self._entry[key] = entry
                    changed = True
            if not changed:
                break
            self._walk_all()

    def _callee_key(self, owner: str, ev: Event) -> Optional[Tuple[str, str]]:
        if ev.kind == "call_self":
            cls = self.classes.get(owner)
            if cls is None:
                return None
            for info in self._group_of(cls):
                if ev.name in info.methods:
                    return (info.name, ev.name)
        elif ev.kind == "call_attr":
            cls = self.classes.get(owner)
            if cls is None:
                return None
            for info in self._group_of(cls):
                target = info.attr_class.get(ev.extra)
                if target:
                    callee_cls = self.classes.get(target)
                    if callee_cls is not None:
                        for cinfo in self._group_of(callee_cls):
                            if ev.name in cinfo.methods:
                                return (cinfo.name, ev.name)
        elif ev.kind == "call_name" and owner.startswith("<module:"):
            key = (owner, ev.name)
            if key in self._events:
                return key
        return None

    def _build_summaries(self) -> None:
        """Transitive ``locks acquired somewhere inside`` per method."""
        self._summaries = {key: set() for key in self._events}
        for _ in range(8):
            changed = False
            for key, events in self._events.items():
                acc = self._summaries[key]
                before = len(acc)
                for ev in events:
                    if ev.kind == "acquire":
                        acc.add(ev.name)
                    else:
                        callee = self._callee_key(key[0], ev)
                        if callee is not None:
                            acc |= self._summaries.get(callee, set())
                if len(acc) != before:
                    changed = True
            if not changed:
                break

    # -- LOCK001 ---------------------------------------------------------------
    def _guarded_attr_findings(self) -> List[Finding]:
        findings: List[Finding] = []
        stats: Dict[Tuple[str, str], Dict[str, object]] = {}
        group_root: Dict[str, str] = {}
        for cls in self.classes.values():
            root = min(info.name for info in self._group_of(cls))
            group_root[cls.name] = root
        for (owner, method), events in self._events.items():
            root = (
                owner if owner.startswith("<module:") else group_root.get(owner, owner)
            )
            in_init = method in ("__init__", "__post_init__")
            for ev in events:
                if ev.kind != "access":
                    continue
                entry = stats.setdefault(
                    (root, ev.name),
                    {"occ": [], "written_outside_init": False, "by_lock": {}},
                )
                if in_init:
                    continue
                if ev.is_store:
                    entry["written_outside_init"] = True
                entry["occ"].append((owner, method, ev))
                for lock in ev.held:
                    entry["by_lock"][lock] = entry["by_lock"].get(lock, 0) + 1
        for (root, attr), entry in stats.items():
            if not entry["written_outside_init"] or not entry["by_lock"]:
                continue
            guard, guarded = max(entry["by_lock"].items(), key=lambda kv: kv[1])
            total = len(entry["occ"])
            if guarded < self.config.min_guarded_accesses:
                continue
            if guarded / total < self.config.guarded_ratio:
                continue
            for owner, method, ev in entry["occ"]:
                if guard in ev.held:
                    continue
                path = (
                    owner[len("<module:"):-1]
                    if owner.startswith("<module:")
                    else self.classes[owner].path
                )
                kind = "write" if ev.is_store else "read"
                findings.append(
                    Finding(
                        rule="LOCK001",
                        path=path,
                        line=ev.line,
                        message=(
                            f"unguarded {kind} of '{ev.name.replace('global:', '')}' "
                            f"in {owner.split(':')[-1].rstrip('>')}.{method} — "
                            f"{guarded}/{total} accesses hold {guard}"
                        ),
                        hint=f"take {guard} around the access, or waive if a racy read is intended",
                    )
                )
        return findings

    # -- LOCK002 ---------------------------------------------------------------
    def _external_call_findings(self) -> List[Finding]:
        findings: List[Finding] = []
        for (owner, method), events in self._events.items():
            path = (
                owner[len("<module:"):-1]
                if owner.startswith("<module:")
                else self.classes[owner].path
            )
            for ev in events:
                if not ev.held:
                    continue
                external = (
                    ev.kind == "callback"
                    or (
                        ev.kind in ("call_name", "call_attr")
                        and ev.name in EXTERNAL_CALL_NAMES
                    )
                )
                if not external:
                    continue
                findings.append(
                    Finding(
                        rule="LOCK002",
                        path=path,
                        line=ev.line,
                        message=(
                            f"call to external/user code '{ev.name}' while holding "
                            + ", ".join(ev.held)
                        ),
                        hint="snapshot state under the lock, call outside it",
                    )
                )
        return findings

    # -- LOCK003 ---------------------------------------------------------------
    def _lock_graph(self) -> LockGraph:
        graph = LockGraph()
        nodes: Set[str] = set()
        for mod in self.modules.values():
            nodes |= set(mod.locks.values())
        for cls in self.classes.values():
            nodes |= set(cls.lock_attrs.values())
            for factory in cls.lock_factories:
                nodes.add(f"{cls.name}.{factory}()")
        edges: Set[Tuple[str, str, str, int]] = set()
        for (owner, _method), events in self._events.items():
            path = (
                owner[len("<module:"):-1]
                if owner.startswith("<module:")
                else self.classes[owner].path
            )
            for ev in events:
                acquired: Set[str] = set()
                if ev.kind == "acquire":
                    acquired = {ev.name}
                else:
                    callee = self._callee_key(owner, ev)
                    if callee is not None:
                        acquired = self._summaries.get(callee, set())
                for lock in acquired:
                    for holder in ev.held:
                        if holder != lock:
                            edges.add((holder, lock, path, ev.line))
        graph.nodes = sorted(nodes | {e[0] for e in edges} | {e[1] for e in edges})
        graph.edges = sorted(edges)
        graph.cycles = _find_cycles(graph.nodes, [(a, b) for a, b, _, _ in edges])
        return graph

    def _edge_path(self, graph: LockGraph, cycle: Sequence[str]) -> str:
        for a, b, path, _line in graph.edges:
            if a == cycle[0] and b == cycle[1]:
                return path
        return graph.edges[0][2] if graph.edges else "<unknown>"

    def _edge_line(self, graph: LockGraph, cycle: Sequence[str]) -> int:
        for a, b, _path, line in graph.edges:
            if a == cycle[0] and b == cycle[1]:
                return line
        return 1


def _find_cycles(nodes: Sequence[str], edges: Sequence[Tuple[str, str]]) -> List[List[str]]:
    """Minimal cycle enumeration by DFS; each cycle reported once."""
    adj: Dict[str, List[str]] = {}
    for a, b in edges:
        adj.setdefault(a, []).append(b)
    cycles: List[List[str]] = []
    seen_cycles: Set[Tuple[str, ...]] = set()

    def dfs(node: str, stack: List[str], on_stack: Set[str]) -> None:
        for nxt in adj.get(node, []):
            if nxt in on_stack:
                idx = stack.index(nxt)
                cycle = stack[idx:] + [nxt]
                canon = tuple(sorted(cycle[:-1]))
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    cycles.append(cycle)
            elif len(stack) < 32:
                stack.append(nxt)
                on_stack.add(nxt)
                dfs(nxt, stack, on_stack)
                on_stack.discard(nxt)
                stack.pop()

    for node in nodes:
        dfs(node, [node], {node})
    return cycles
