"""Report/glossary drift pass: DOC001.

Every report dataclass registered in
:data:`tools.reprolint.config.DEFAULT_GLOSSARY_CLASSES` must be mirrored by
a markdown table in ``docs/operations.md`` introduced by a marker comment::

    <!-- reprolint:glossary DispatchReport -->
    | Field | Meaning |
    | --- | --- |
    | `num_queries` | ... |

The pass extracts the dataclass's annotated fields plus its ``@property``
names from the AST and diffs them against the table's first-column code
tokens, both ways: a field with no doc row fails (missing), and a doc row
naming no field fails (stale).  Combined rows (`` `a` / `b` ``) list every
token in one cell.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Set, Tuple

from .config import LintConfig
from .model import Finding

MARKER_RE = re.compile(r"<!--\s*reprolint:glossary\s+(?P<cls>\w+)\s*-->")
TOKEN_RE = re.compile(r"`([A-Za-z_][A-Za-z0-9_]*)`")


def dataclass_fields(tree: ast.Module, class_name: str) -> Tuple[Set[str], int]:
    """Annotated fields + property names of ``class_name``; (names, def line)."""
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and node.name == class_name):
            continue
        names: Set[str] = set()
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                ann = ast.dump(item.annotation)
                if "ClassVar" in ann:
                    continue
                names.add(item.target.id)
            elif isinstance(item, ast.FunctionDef):
                if any(
                    isinstance(d, ast.Name) and d.id == "property"
                    for d in item.decorator_list
                ):
                    names.add(item.name)
        return names, node.lineno
    return set(), 0


def doc_tables(doc_text: str) -> Dict[str, Tuple[Dict[str, int], int]]:
    """Per marked class: ``{token: doc line}`` from the table after its marker."""
    lines = doc_text.splitlines()
    tables: Dict[str, Tuple[Dict[str, int], int]] = {}
    i = 0
    while i < len(lines):
        match = MARKER_RE.search(lines[i])
        if not match:
            i += 1
            continue
        cls = match.group("cls")
        marker_line = i + 1
        tokens: Dict[str, int] = {}
        j = i + 1
        in_table = False
        while j < len(lines):
            row = lines[j].strip()
            if row.startswith("|"):
                in_table = True
                cells = [c.strip() for c in row.strip("|").split("|")]
                first = cells[0] if cells else ""
                if first and not set(first) <= {"-", " ", ":"}:
                    for token in TOKEN_RE.findall(first):
                        tokens.setdefault(token, j + 1)
            elif in_table and row:
                break  # table ended
            elif in_table and not row:
                # blank line after the table body ends it too
                break
            j += 1
        tables[cls] = (tokens, marker_line)
        i = j
    return tables


class GlossaryPass:
    """Cross-check report dataclasses against the operations glossary."""

    def __init__(self, config: LintConfig):
        self.config = config

    def run(self, parsed: Dict[str, ast.Module]) -> List[Finding]:
        """``parsed`` maps repo-relative paths to their module ASTs."""
        findings: List[Finding] = []
        doc_path = self.config.root / self.config.glossary_doc
        if not doc_path.is_file():
            return [
                Finding(
                    rule="DOC001",
                    path=self.config.glossary_doc,
                    line=1,
                    message="glossary document missing",
                    hint="create it or adjust LintConfig.glossary_doc",
                )
            ]
        tables = doc_tables(doc_path.read_text())
        # Drop the 'Field' header token that a header row would contribute.
        for cls, (tokens, _marker) in tables.items():
            tokens.pop("Field", None)
        for cls, module_rel in sorted(self.config.glossary_classes.items()):
            src_path = self.config.root / module_rel
            tree = parsed.get(Path(module_rel).as_posix())
            if tree is None:
                if not src_path.is_file():
                    findings.append(
                        Finding(
                            rule="DOC001",
                            path=module_rel,
                            line=1,
                            message=f"glossary class {cls}: module not found",
                            hint="fix the path in LintConfig.glossary_classes",
                        )
                    )
                    continue
                tree = ast.parse(src_path.read_text())
            fields, def_line = dataclass_fields(tree, cls)
            if not fields:
                findings.append(
                    Finding(
                        rule="DOC001",
                        path=module_rel,
                        line=1,
                        message=f"glossary class {cls} not found in module",
                        hint="fix LintConfig.glossary_classes",
                    )
                )
                continue
            if cls not in tables:
                findings.append(
                    Finding(
                        rule="DOC001",
                        path=self.config.glossary_doc,
                        line=1,
                        message=f"no '<!-- reprolint:glossary {cls} -->' table",
                        hint="add the marker comment ahead of the class's table",
                    )
                )
                continue
            tokens, marker_line = tables[cls]
            for missing in sorted(fields - set(tokens)):
                findings.append(
                    Finding(
                        rule="DOC001",
                        path=module_rel,
                        line=def_line,
                        message=f"{cls}.{missing} has no row in the "
                        f"{self.config.glossary_doc} glossary",
                        hint=f"document `{missing}` in the {cls} table",
                    )
                )
            for stale in sorted(set(tokens) - fields):
                findings.append(
                    Finding(
                        rule="DOC001",
                        path=self.config.glossary_doc,
                        line=tokens[stale],
                        message=f"glossary row `{stale}` matches no field of {cls}",
                        hint="remove the stale row or rename it to the real field",
                    )
                )
        return findings
