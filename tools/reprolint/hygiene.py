"""Repo-hygiene pass: HYG001 — compiled artifacts tracked by git.

``__pycache__`` directories and ``.pyc``/``.pyo`` files are build output;
tracking them bloats diffs and goes stale against the sources.  The rule
lists ``git ls-files`` and fails per tracked artifact.  Outside a git
checkout (or with git unavailable) the pass is a no-op.
"""

from __future__ import annotations

import subprocess
from typing import List

from .config import LintConfig
from .model import Finding


def run_hygiene(config: LintConfig) -> List[Finding]:
    """Findings for tracked compiled artifacts under the scan root."""
    try:
        proc = subprocess.run(
            ["git", "-C", str(config.root), "ls-files"],
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return []
    if proc.returncode != 0:
        return []
    findings: List[Finding] = []
    for path in proc.stdout.splitlines():
        if path.endswith((".pyc", ".pyo")) or "__pycache__/" in path:
            findings.append(
                Finding(
                    rule="HYG001",
                    path=path,
                    line=1,
                    message="compiled artifact is tracked by git",
                    hint="git rm --cached it and cover it in .gitignore",
                )
            )
    return findings
