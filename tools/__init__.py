"""Repository tooling (reprolint, profilers, inspectors).

This package marker exists so ``python -m tools.reprolint`` works from the
repository root; the stand-alone scripts next to it (``check_links.py``,
``profile_hotpath.py``, ``inspect_spill.py``) are still run directly.
"""
