#!/usr/bin/env python3
"""One-command profile of the warm fused dispatch hot path.

Usage::

    PYTHONPATH=src python tools/profile_hotpath.py [--n 65536] [--batch 16]

Builds the ``hotfuse`` scenario — one batch whose ``k``\\ s share a single
Rule-4 ``alpha`` group, dispatched by a single worker with the result cache
disabled — dispatches it once cold (banking the plan, pooling the arena),
then profiles one **warm** replay two ways:

* the fusion path's own per-stage ``time.perf_counter`` wall-clocks
  (``first/gather/refine/second/fallback``), printed as a stage table with
  each stage's share of the measured dispatch wall; and
* ``cProfile`` over the same replay, printed as the top cumulative-time
  functions restricted to ``repro`` frames (pass ``--top 0`` to skip).

The full ``hotfuse`` experiment rows (the same schema the harness runner
and ``benchmarks/test_hotfuse.py`` emit) are written next to the benchmark
series — ``<out>/hotfuse_profile.csv`` / ``.txt`` — so profiles land next
to benchmarks, plus ``<out>/profile_hotpath.txt`` with the cProfile dump.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "results"


def stage_table(report, wall_ms: float) -> str:
    """The fused per-stage wall-clocks as a share-of-dispatch table."""
    lines = [f"{'stage':<12} {'ms':>10} {'% of dispatch':>14}"]
    for name, ms in sorted(report.fusion_stage_ms.items(), key=lambda kv: -kv[1]):
        share = 100.0 * ms / wall_ms if wall_ms else 0.0
        lines.append(f"{name:<12} {ms:>10.4f} {share:>13.1f}%")
    other = wall_ms - sum(report.fusion_stage_ms.values())
    lines.append(f"{'(other)':<12} {other:>10.4f} "
                 f"{100.0 * other / wall_ms if wall_ms else 0.0:>13.1f}%")
    lines.append(f"{'total':<12} {wall_ms:>10.4f} {'100.0%':>14}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=1 << 16, help="vector size")
    parser.add_argument("--batch", type=int, default=16, help="queries per batch")
    parser.add_argument("--warm-rounds", type=int, default=3,
                        help="warm replays per experiment row (min wall kept)")
    parser.add_argument("--dataset", default="UD", help="dataset distribution")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--top", type=int, default=15,
                        help="cProfile rows to print (0 disables cProfile)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="directory for the emitted rows and profile dump")
    args = parser.parse_args(argv)

    from repro.harness import experiments
    from repro.harness.reporting import format_table, rows_to_csv
    from repro.service.dispatcher import ServiceDispatcher

    # -- the harness rows: same schema as the runner / benchmark gate ------
    rows = experiments.hotfuse(
        n=args.n, batch=args.batch, dataset=args.dataset,
        seed=args.seed, warm_rounds=args.warm_rounds,
    )
    args.out.mkdir(parents=True, exist_ok=True)
    table = format_table(rows, title="hotfuse_profile")
    (args.out / "hotfuse_profile.txt").write_text(table + "\n", encoding="utf-8")
    (args.out / "hotfuse_profile.csv").write_text(
        rows_to_csv(rows), encoding="utf-8")
    print(table)
    print()

    # -- one instrumented warm replay: stage shares + cProfile -------------
    v = experiments._dataset_vector(args.dataset, args.n, args.seed)
    queries = [(100 + i, True) for i in range(args.batch)]
    with ServiceDispatcher(num_workers=1, result_cache_capacity=0) as d:
        d.dispatch(v, queries)  # cold: bank the plan, pool the arena
        profiler = cProfile.Profile()
        profiler.enable()
        start = time.perf_counter()
        d.dispatch(v, queries)
        wall_ms = (time.perf_counter() - start) * 1e3
        profiler.disable()
        report = d.last_report
    assert report is not None

    print(f"warm fused dispatch: {args.batch} queries, n={args.n}, "
          f"{report.selection_calls} selection pass(es), "
          f"arena hits {report.arena_hits} / misses {report.arena_misses}")
    print(stage_table(report, wall_ms))

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf).sort_stats("cumulative")
    stats.print_stats("repro")
    (args.out / "profile_hotpath.txt").write_text(buf.getvalue(), encoding="utf-8")
    if args.top:
        shown = 0
        for line in buf.getvalue().splitlines():
            print(line)
            if line.strip() and line.lstrip()[0].isdigit() and "/" not in line[:12]:
                shown += 1
            if shown >= args.top:
                break
    print(f"\nrows -> {args.out / 'hotfuse_profile.csv'}")
    print(f"profile -> {args.out / 'profile_hotpath.txt'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
