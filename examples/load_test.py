#!/usr/bin/env python3
"""Load test: a closed-loop run against a 3-name working set.

Demonstrates `repro.service.loadgen` end to end:

1. Admit three named vectors (a hot/warm/cold working set) into a
   ``ServiceDispatcher``, pre-warming the plan bank and result cache.
2. Run a **closed loop**: a handful of users, each with one outstanding
   request, drawing names with Zipfian popularity and a mixed ``k`` profile.
   Arrival times are virtual (seeded, deterministic); every request is
   executed for real and its dispatch wall-clock is the measured service
   time.
3. Print the per-route latency/queue-wait percentiles and the SLO table,
   then contrast with an **open-loop overload** burst where the admission
   policy degrades to result-cache answers instead of blocking.

Usage::

    python examples/load_test.py [log2_size] [users] [requests]
"""

import sys

from repro.datasets import uniform_distribution
from repro.harness.reporting import format_table
from repro.service import (
    LoadHarness,
    PoissonArrivals,
    RequestProfile,
    ServiceDispatcher,
)

PERCENTILE_COLUMNS = [
    "route", "requests", "ok", "shed", "degraded",
    "p50_ms", "p95_ms", "p99_ms", "queue_p50_ms", "queue_p99_ms",
    "slo_ms", "slo_attainment", "throughput_rps",
]


def main() -> int:
    log2_size = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    users = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    requests = int(sys.argv[3]) if len(sys.argv) > 3 else 80
    n = 1 << log2_size

    ks = (8, 16, 64)
    warm = [(k, True) for k in ks]
    with ServiceDispatcher(num_workers=4, queue_capacity=4) as dispatcher:
        print(f"admitting 3 named vectors with |V| = 2^{log2_size} = {n:,}")
        for i, name in enumerate(("hot", "warm", "cold")):
            dispatcher.admit(name, uniform_distribution(n, seed=100 + i), warm=warm)

        profiles = [
            RequestProfile(route="batched", names=("hot", "warm", "cold"), ks=ks),
        ]
        harness = LoadHarness(
            dispatcher, profiles, policy="degrade", slo_ms=50.0, seed=7
        )

        # --- closed loop: offered load self-regulates ------------------------
        report = harness.run_closed(
            concurrency=users, requests=requests, think_seconds=0.002
        )
        print(
            f"\nclosed loop: {users} users x 1 outstanding request, "
            f"{requests} requests, makespan {report.makespan_s:.3f} s (virtual), "
            f"peak in flight {report.max_in_flight} (bound {users})"
        )
        print()
        print(format_table(
            [{c: row[c] for c in PERCENTILE_COLUMNS} for row in report.to_rows()],
            title="closed-loop latency / SLO per route",
        ))

        # --- open-loop overload: admission control engages -------------------
        # Warm repeats are served from the result cache in tens of
        # microseconds, so saturating the queue takes a sub-microsecond
        # inter-arrival gap — far past any real capacity.
        burst = harness.run_open(PoissonArrivals(rate=2e6, seed=7), requests)
        print(
            f"\nopen-loop overload (Poisson 2M rps, policy=degrade): "
            f"{burst.route_stats('all').ok} served, {burst.degraded} degraded "
            f"to result-cache answers, {burst.shed} shed — "
            "the arrival loop never blocked"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
