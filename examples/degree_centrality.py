#!/usr/bin/env python3
"""Website degree centrality (the paper's CW workload).

Builds a scale-free web-graph surrogate, derives its degree vector and ranks
the k most connected pages with Dr. Top-k, then repeats the query on a much
larger synthetic power-law degree vector to show the workload reduction at
scale.

Usage::

    python examples/degree_centrality.py [num_pages] [k]
"""

import sys

import numpy as np

from repro.apps import top_degree_nodes
from repro.datasets import synthetic_power_law_degrees, webgraph_degree_vector


def main() -> int:
    num_pages = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 20

    print(f"building a Barabási–Albert web graph with {num_pages:,} pages")
    degrees = webgraph_degree_vector(num_pages, attachment=4, seed=3)
    result = top_degree_nodes(degrees, k)
    print(f"\ntop {k} pages by degree:")
    for rank, (page, degree) in enumerate(zip(result.indices, result.values)):
        print(f"  #{rank:<3} page {int(page):>8}  degree {int(degree):>6}")
    assert np.array_equal(np.sort(result.values), np.sort(degrees)[-k:])

    # The paper's ClueWeb09 vector has 2^30 entries; run a larger surrogate to
    # show how little of the vector the delegate machinery actually touches.
    big_n = 1 << 21
    print(f"\nranking a {big_n:,}-page synthetic power-law degree vector (k={k})")
    big_degrees = synthetic_power_law_degrees(big_n, seed=5)
    big_result = top_degree_nodes(big_degrees, k)
    stats = big_result.stats
    print(
        f"highest degree {int(big_result.values[0]):,}; "
        f"Dr. Top-k processed {stats.total_workload:,} elements "
        f"({stats.workload_fraction:.3%} of the vector)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
