#!/usr/bin/env python3
"""Quickstart: delegate-centric top-k on a synthetic vector.

Runs the full Dr. Top-k pipeline on a uniformly distributed input, checks the
answer against a plain sort, and prints the workload statistics and the
simulated-GPU time breakdown that the paper's Figures 6-15 report.

Usage::

    python examples/quickstart.py [log2_size] [k]
"""

import sys

import numpy as np

from repro import DrTopKConfig, drtopk, topk
from repro.datasets import uniform_distribution


def main() -> int:
    log2_size = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 1024
    n = 1 << log2_size

    print(f"generating a uniform vector with |V| = 2^{log2_size} = {n:,} and k = {k}")
    v = uniform_distribution(n, seed=7)

    # The one-call API: defaults follow the paper's final design
    # (beta = 2, Rule-2 filtering, Rule-3 pruning, flag-optimised radix).
    result = drtopk(v, k)
    expected = np.sort(v)[-k:]
    assert np.array_equal(np.sort(result.values), expected), "top-k mismatch!"
    print(f"top-{k} verified against a full sort; k-th value = {result.kth_value}")

    stats = result.stats
    print("\nworkload statistics (paper Section 6.2)")
    print(f"  subrange size 2^alpha      : {stats.subrange_size} (alpha={stats.alpha})")
    print(f"  delegate vector (1st top-k): {stats.delegate_vector_size:,} elements")
    print(f"  concatenated   (2nd top-k) : {stats.concatenated_size:,} elements")
    print(f"  total workload             : {stats.workload_fraction:.3%} of |V|")

    print("\nestimated time breakdown on a simulated V100S")
    for step, ms in stats.step_times_ms.items():
        print(f"  {step:<24} {ms:8.4f} ms")
    print(f"  {'total':<24} {stats.total_time_ms:8.4f} ms")

    # Compare against a stand-alone algorithm (what the paper calls the
    # state of the art) on the same input.
    base = topk(v, k, algorithm="radix")
    assert np.array_equal(np.sort(base.values), expected)
    print("\nthe same answer from the stand-alone radix top-k matches.")

    # Any configuration knob of the paper can be overridden.
    ablation = drtopk(v, k, config=DrTopKConfig(beta=1, use_filtering=False))
    print(
        "maximum-delegate-only ablation workload: "
        f"{ablation.stats.workload_fraction:.3%} of |V| "
        f"(vs {stats.workload_fraction:.3%} for the full design)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
