#!/usr/bin/env python3
"""Distributed Dr. Top-k over a simulated GPU fleet (paper Section 5.4 / Table 2).

Partitions an input vector over a configurable number of simulated GPUs,
runs the Figure 16 workflow (local Dr. Top-k per sub-vector, asynchronous
gather, final top-k on the primary GPU) and prints the Table 2 style report —
including the host-reload overhead that appears when the data does not fit on
the fleet — followed by the analytic model evaluated at the paper's scales.

Usage::

    python examples/multi_gpu_scaling.py [log2_size] [k]
"""

import sys

import numpy as np

from repro.datasets import uniform_distribution
from repro.distributed import MultiGpuDrTopK, estimate_scalability_row


def main() -> int:
    log2_size = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 128
    n = 1 << log2_size
    v = uniform_distribution(n, seed=17)
    expected = np.sort(v)[-k:]

    print(f"measured runs on real data (|V| = 2^{log2_size}, k = {k})")
    print(f"{'gpus':>5} {'comm ms':>10} {'reload ms':>10} {'total ms':>10} {'speedup':>8}")
    baseline = None
    # Cap each simulated GPU at a quarter of the vector so single-GPU runs
    # must reload sub-vectors from the host, as in the paper's Table 2.
    capacity = max(n // 4, k)
    for gpus in (1, 2, 4, 8):
        runner = MultiGpuDrTopK(num_gpus=gpus, capacity_elements=capacity)
        result = runner.topk(v, k)
        assert np.array_equal(np.sort(result.values), expected)
        report = runner.last_report
        baseline = baseline or report
        print(
            f"{gpus:>5} {report.communication_ms:>10.3f} {report.reload_ms:>10.3f} "
            f"{report.total_ms:>10.3f} {report.speedup_over(baseline):>7.1f}x"
        )

    print("\nanalytic model at the paper's scales (V100S fleet, k = 128)")
    print(f"{'|V|':>6} {'gpus':>5} {'comm ms':>10} {'reload ms':>12} {'total ms':>12} {'speedup':>8}")
    for exp in (30, 31, 32, 33):
        baseline = None
        for gpus in (1, 2, 4, 8, 16):
            report = estimate_scalability_row(1 << exp, 128, gpus)
            baseline = baseline or report
            print(
                f"2^{exp:<4} {gpus:>5} {report.communication_ms:>10.3f} "
                f"{report.reload_ms:>12.2f} {report.total_ms:>12.2f} "
                f"{report.speedup_over(baseline):>7.1f}x"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
