#!/usr/bin/env python3
"""COVID tweet ranking (the paper's TR workload).

Generates a fear-score vector shaped like the TwitterCOVID-19 dataset
(originals duplicated onto a much longer vector, exactly as the paper does)
and extracts both the k least fearful and the k most fearful tweets.

Usage::

    python examples/tweet_ranking.py [num_tweets] [k]
"""

import sys

import numpy as np

from repro.apps import least_fearful_tweets, most_fearful_tweets
from repro.datasets import covid_fear_scores


def main() -> int:
    num_tweets = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 50

    print(f"generating {num_tweets:,} COVID-fear scores (13.2% originals, duplicated)")
    scores = covid_fear_scores(num_tweets, seed=13)

    least = least_fearful_tweets(scores, k)
    most = most_fearful_tweets(scores, k)
    assert np.array_equal(np.sort(least.values), np.sort(scores)[:k])
    assert np.array_equal(np.sort(most.values), np.sort(scores)[-k:])

    print(f"\n{k} least fearful tweets: scores range "
          f"{int(least.values[0])} .. {int(least.values[-1])}")
    print(f"{k} most fearful tweets:  scores range "
          f"{int(most.values[-1])} .. {int(most.values[0])}")

    stats = least.stats
    print(
        f"\nDr. Top-k touched {stats.total_workload:,} of {num_tweets:,} scores "
        f"({stats.workload_fraction:.3%}), despite the heavy tie structure the "
        "duplication creates."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
