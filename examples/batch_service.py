#!/usr/bin/env python3
"""Batch service: many top-k queries over one shared vector.

Demonstrates the serving layer built on the Dr. Top-k engine:

1. ``BatchTopK`` answers a batch of ``(k, largest)`` queries while building
   the delegate vector once per (alpha, key-order) group — the recorded
   simulated traffic shows the amortisation against a naive per-query loop.
2. ``ServiceDispatcher`` routes the same batch across a simulated multi-GPU
   worker fleet: the ``Router`` groups and places queries, the
   ``ServiceExecutor`` overlaps the per-worker work units on a bounded-queue
   thread pool (measured wall-clock next to the modelled time), and repeated
   identical queries are served from the ``ResultCache`` without touching
   the pipeline.
3. ``StreamingTopK`` answers one query over the same data consumed in
   chunks; the dispatcher then runs the same chunked input across the whole
   fleet, one worker per chunk.

Usage::

    python examples/batch_service.py [log2_size] [batch]
"""

import sys

import numpy as np

from repro import DrTopK
from repro.datasets import uniform_distribution
from repro.harness.reporting import dispatch_rows, format_table, workload_rows
from repro.service import BatchTopK, ServiceDispatcher, StreamingTopK


def main() -> int:
    log2_size = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    n = 1 << log2_size

    print(f"generating a uniform vector with |V| = 2^{log2_size} = {n:,}")
    v = uniform_distribution(n, seed=7)
    queries = [(1 << 10, True)] * batch

    # --- batched serving: one construction for the whole batch --------------
    service = BatchTopK()
    results, report = service.run_with_report(v, queries)
    engine = DrTopK()
    loop_bytes = 0.0
    for k, largest in queries:
        solo = engine.topk(v, k, largest=largest)
        assert np.array_equal(solo.values, results[0].values)
        loop_bytes += engine.last_trace.total_counters().global_bytes

    print(f"\nbatch of {batch} identical top-{queries[0][0]} queries")
    print(f"  constructions              : {report.constructions} (loop pays {batch})")
    print(f"  simulated bytes, batched   : {report.total_bytes:,.0f}")
    print(f"  simulated bytes, naive loop: {loop_bytes:,.0f}")
    print(f"  traffic saved              : {1 - report.total_bytes / loop_bytes:.1%}")
    print(f"  bytes per query            : {report.bytes_per_query:,.0f}")

    # --- per-query workload rows render with the standard reporting --------
    mixed = [(64, True), (1 << 10, True), (1 << 14, False)]
    _, mixed_report = service.run_with_report(v, mixed)
    print()
    print(format_table(workload_rows(mixed_report.stats, labels=[str(q) for q in mixed]),
                       title="mixed batch workload"))

    # --- dispatching across the simulated fleet -----------------------------
    # The dispatcher is a thin wrapper over the unified execution core:
    # Router -> ServiceExecutor (bounded queue, backpressure) -> merge.
    dispatcher = ServiceDispatcher(num_workers=4, queue_capacity=8)
    dispatcher.dispatch(v, queries + mixed)
    dreport = dispatcher.last_report
    print(f"\ndispatched {dreport.num_queries} queries over {dreport.num_workers} workers")
    print(f"  route            : {dreport.route}")
    print(f"  constructions    : {dreport.constructions}")
    print(f"  compute (model)  : {dreport.compute_ms:.3f} ms")
    print(f"  wall (measured)  : {dreport.wall_ms:.3f} ms "
          f"(units sum {dreport.unit_wall_ms_sum:.3f} ms, "
          f"overlap x{dreport.measured_overlap_factor:.2f})")
    print(f"  gather           : {dreport.communication_ms:.3f} ms")
    print(f"  alpha cache      : {dreport.cache.hits} hits / {dreport.cache.misses} misses")
    print()
    print(format_table(dispatch_rows(dreport), title="per-worker dispatch accounting"))

    # Repeating the identical batch is served entirely from the result cache.
    dispatcher.dispatch(v, queries + mixed)
    rreport = dispatcher.last_report
    print(f"\nrepeat dispatch: route={rreport.route}, "
          f"{rreport.result_cache_hits} result-cache hits, "
          f"{rreport.constructions} constructions")

    # --- streaming: the same vector consumed in chunks ----------------------
    stream = StreamingTopK(1 << 10, chunk_elements=1 << 16)
    for start in range(0, n, 1 << 16):
        stream.push(v[start : start + (1 << 16)])
    streamed = stream.finalize()
    assert np.array_equal(streamed.values, engine.topk(v, 1 << 10).values)
    print(f"\nstreaming top-{1 << 10} over {stream.report.chunks} chunks "
          f"(pool peak {stream.report.pool_peak}) matches the one-shot answer")

    # The same chunked input routed across the fleet, one worker per chunk.
    chunks = (v[start : start + (1 << 16)] for start in range(0, n, 1 << 16))
    fleet_streamed = dispatcher.dispatch(chunks, [(1 << 10, True)])
    sreport = dispatcher.last_report
    assert np.array_equal(fleet_streamed[0].values, streamed.values)
    busy = sum(1 for w in sreport.workers if w.queries)
    print(f"fleet streaming: route={sreport.route}, {busy} workers shared the "
          f"chunks, gather {sreport.communication_ms:.3f} ms — same answer")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
