#!/usr/bin/env python3
"""k-nearest-neighbour search over SIFT-like descriptors (the paper's AN workload).

Generates a collection of 128-dimensional SIFT-like descriptors, computes the
distance vector from a query descriptor and extracts the k nearest neighbours
with the delegate-centric pipeline (a smallest-k query), comparing the
workload against the stand-alone algorithm.

Usage::

    python examples/knn_search.py [num_vectors] [k]
"""

import sys

import numpy as np

from repro.apps import KNNSearch
from repro.core.config import DrTopKConfig


def main() -> int:
    num_vectors = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 100

    print(f"building {num_vectors:,} SIFT-like descriptors (128-d uint8)")
    searcher = KNNSearch.from_random(num_vectors, seed=11, config=DrTopKConfig())

    # The paper uses the first vector of ANN_SIFT1B as the query.
    result = searcher.query(None, k)
    print(f"\n{k} nearest neighbours of descriptor #0 (squared L2 distances):")
    for rank, (idx, dist) in enumerate(zip(result.indices[:10], result.values[:10])):
        print(f"  #{rank:<3} descriptor {int(idx):>8}  distance {int(dist):>8}")
    if k > 10:
        print(f"  ... ({k - 10} more)")

    # Verify against brute force.
    distances = searcher.dataset.distances_from()
    expected = np.sort(distances)[:k]
    assert np.array_equal(np.sort(result.values), expected), "k-NN mismatch!"
    print("\nverified against a brute-force sort of the distance vector.")

    stats = result.stats
    print(
        f"delegate-centric selection touched {stats.total_workload:,} elements "
        f"({stats.workload_fraction:.2%} of the distance vector)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
