#!/usr/bin/env python3
"""Block-Max WAND document retrieval and the Figure 24 comparison.

Builds a small synthetic corpus, answers the paper's example query
("the search engine") with the Block-Max WAND searcher, and then contrasts
BMW's element-centric pruning with Dr. Top-k's subrange pruning on a plain
top-k vector, reproducing the Figure 24 workload-ratio experiment.

Usage::

    python examples/bmw_document_retrieval.py [num_documents] [k]
"""

import sys

from repro.bmw import BMWSearcher, bmw_vector_workload, build_corpus_index
from repro.core.drtopk import drtopk
from repro.datasets import normal_distribution, uniform_distribution


def main() -> int:
    num_documents = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 10

    terms = ["the", "search", "engine"]
    print(f"indexing {num_documents:,} documents for the query {' '.join(terms)!r}")
    index = build_corpus_index(num_documents, terms, density=0.35, seed=19)
    searcher = BMWSearcher(index)
    result = searcher.search(terms, k)

    print(f"\ntop {k} documents:")
    for rank, (doc, score) in enumerate(zip(result.doc_ids, result.scores)):
        print(f"  #{rank:<3} doc {doc:>8}  score {score:>6.1f}")
    c = result.counters
    print(
        f"\nBMW fully evaluated {c.fully_evaluated:,} documents, skipped "
        f"{c.wand_skipped:,} by WAND pivoting and {c.blockmax_skipped:,} by the "
        f"block-max check ({c.blocks_decompressed:,} blocks decompressed)."
    )

    # Figure 24: the same comparison the paper makes on plain top-k vectors.
    print("\nFigure 24 style comparison (vector top-k, k = 4096):")
    n, vec_k = 1 << 20, 4096
    for name, vector in (("UD", uniform_distribution(n, seed=23)),
                         ("ND", normal_distribution(n, seed=23))):
        stats = drtopk(vector, vec_k).stats
        bmw = bmw_vector_workload(vector, vec_k, block_size=stats.subrange_size)
        ratio = bmw.fully_evaluated / max(stats.total_workload, 1)
        print(
            f"  {name}: BMW fully evaluated {bmw.fully_evaluated:,} elements, "
            f"Dr. Top-k workload {stats.total_workload:,}  ->  ratio {ratio:.1f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
