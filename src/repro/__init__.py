"""Dr. Top-k: delegate-centric top-k — Python reproduction of Gaihre et al., SC'21.

The package is organised around the paper's system decomposition:

``repro.core``
    The delegate-centric top-k pipeline (the paper's primary contribution):
    subrange partitioning, maximum/β delegate vector construction, delegate
    top-k enabled filtering, concatenation and the two top-k passes.

``repro.algorithms``
    The top-k algorithm substrate the pipeline accelerates: priority-queue,
    sort-and-choose, bucket, radix (out-of-place, in-place, flag-optimised
    in-place) and bitonic top-k.

``repro.gpusim``
    A simulated GPU: device specifications (V100S, Titan Xp, A100), memory
    transaction / shuffle / atomic counters and the Section 5.2 analytic cost
    model used to convert counters into estimated kernel times.

``repro.distributed``
    Multi-GPU Dr. Top-k (Figure 16): sub-vector partitioning, a simulated GPU
    fleet with capacity + host-reload modelling and an MPI-like communicator.

``repro.bmw``
    The Block-Max WAND information-retrieval baseline used by Figure 24.

``repro.datasets``
    The paper's synthetic distributions (UD/ND/CD) and surrogates for its three
    real-world workloads (ANN_SIFT1B, ClueWeb09, TwitterCOVID-19).

``repro.apps``
    End-to-end applications (k-NN search, degree centrality, tweet ranking).

``repro.analysis``
    The Section 5.2 theory: per-step cost equations, convexity, optimal-α
    (Rule 4), oracle search and the auto-tuner.

``repro.harness``
    One experiment runner per paper figure/table.

``repro.service``
    The query-serving layer: batched top-k with amortised delegate
    construction, streaming/out-of-core top-k, and a dispatcher routing
    batches over the simulated multi-GPU fleet.

Quickstart
----------
>>> import numpy as np
>>> from repro import drtopk
>>> v = np.random.default_rng(0).integers(0, 2**32, size=1 << 18, dtype=np.uint32)
>>> result = drtopk(v, k=64)
>>> np.array_equal(np.sort(result.values), np.sort(v)[-64:])
True
"""

from repro._version import __version__
from repro.types import TopKResult, WorkloadStats
from repro.errors import ReproError, ConfigurationError, CapacityError
from repro.core.config import DrTopKConfig
from repro.core.drtopk import DrTopK, drtopk
from repro.algorithms import topk, kth_value, get_algorithm, available_algorithms
from repro.service import BatchTopK, StreamingTopK, ServiceDispatcher, batch_topk, streaming_topk

__all__ = [
    "__version__",
    "TopKResult",
    "WorkloadStats",
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "DrTopKConfig",
    "DrTopK",
    "drtopk",
    "topk",
    "kth_value",
    "get_algorithm",
    "available_algorithms",
    "BatchTopK",
    "StreamingTopK",
    "ServiceDispatcher",
    "batch_topk",
    "streaming_topk",
]
