"""Small shared helpers: validation, power-of-two math and RNG handling."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "as_rng",
    "check_k",
    "is_power_of_two",
    "next_power_of_two",
    "log2_int",
    "ceil_div",
    "ensure_1d",
]

RngLike = Union[None, int, np.random.Generator]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from ``None``/int/Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def ensure_1d(v: np.ndarray, name: str = "v") -> np.ndarray:
    """Validate that ``v`` is a non-empty one dimensional array."""
    arr = np.asarray(v)
    if arr.ndim != 1:
        raise ConfigurationError(f"{name} must be one dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ConfigurationError(f"{name} must not be empty")
    return arr


def check_k(k: int, n: int) -> int:
    """Validate a top-k parameter against an input length ``n``."""
    if not isinstance(k, (int, np.integer)):
        raise ConfigurationError(f"k must be an integer, got {type(k).__name__}")
    k = int(k)
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if k > n:
        raise ConfigurationError(f"k={k} exceeds the input length {n}")
    return k


def is_power_of_two(x: int) -> bool:
    """Return ``True`` when ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def next_power_of_two(x: int) -> int:
    """Smallest power of two ``>= x`` (``1`` for ``x <= 1``)."""
    if x <= 1:
        return 1
    return 1 << (int(x) - 1).bit_length()


def log2_int(x: int) -> int:
    """Exact integer ``log2`` of a power of two."""
    if not is_power_of_two(x):
        raise ConfigurationError(f"{x} is not a power of two")
    return int(x).bit_length() - 1


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division."""
    return -(-int(a) // int(b))
