"""Delegate-centric top-k: the paper's primary contribution.

The pipeline (Figure 3b) is::

    input vector V
      └─ 1. delegate-vector construction      (repro.core.delegate)
      └─ 2. first top-k on the delegate vector
      └─ 3. concatenation of qualified subranges,
            with delegate-top-k-enabled filtering  (repro.core.concatenate /
                                                    repro.core.filtering)
      └─ 4. second top-k on the concatenated vector
      → top-k of V

:class:`~repro.core.drtopk.DrTopK` orchestrates the four steps, records the
workload statistics of Section 6.2 and the simulated GPU time breakdown of
Figures 6-15, and returns a standard :class:`~repro.types.TopKResult`.
"""

from repro.core.config import DrTopKConfig, ConstructionStrategy
from repro.core.subrange import SubrangePartition
from repro.core.delegate import DelegateVector, build_delegate_vector
from repro.core.filtering import qualification_threshold, filter_by_threshold
from repro.core.concatenate import Concatenation, concatenate_subranges
from repro.core.plan import QueryPlan
from repro.core.drtopk import DrTopK, drtopk
from repro.core.workload import expected_workload, measure_workload

__all__ = [
    "DrTopKConfig",
    "ConstructionStrategy",
    "SubrangePartition",
    "DelegateVector",
    "build_delegate_vector",
    "qualification_threshold",
    "filter_by_threshold",
    "Concatenation",
    "concatenate_subranges",
    "QueryPlan",
    "DrTopK",
    "drtopk",
    "expected_workload",
    "measure_workload",
]
