"""Subrange partitioning of the input vector.

Dr. Top-k divides the input vector into subranges of ``2**alpha`` elements
(Section 5.1).  The partition is purely logical — no data is moved — but the
pipeline needs a uniform way to reason about subrange boundaries, the final
(possibly partial) subrange, and the mapping between a flattened
``(num_subranges, subrange_size)`` view and original element positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils import ceil_div

__all__ = ["SubrangePartition"]


@dataclass(frozen=True)
class SubrangePartition:
    """Logical partition of an ``n``-element vector into ``2**alpha`` blocks.

    Attributes
    ----------
    n:
        Input vector length.
    alpha:
        Subrange-size exponent; subranges hold ``2**alpha`` elements.
    """

    n: int
    alpha: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError("partition requires a non-empty vector")
        if self.alpha < 0:
            raise ConfigurationError("alpha must be non-negative")
        if self.subrange_size > self.n:
            raise ConfigurationError(
                f"subrange size 2**{self.alpha} exceeds the vector length {self.n}"
            )

    # -- geometry --------------------------------------------------------------
    @property
    def subrange_size(self) -> int:
        """Elements per (full) subrange."""
        return 1 << self.alpha

    @property
    def num_subranges(self) -> int:
        """Total number of subranges, counting the final partial one."""
        return ceil_div(self.n, self.subrange_size)

    @property
    def padded_length(self) -> int:
        """Length after padding to a whole number of subranges."""
        return self.num_subranges * self.subrange_size

    @property
    def pad(self) -> int:
        """Number of padding slots in the final subrange."""
        return self.padded_length - self.n

    @property
    def last_subrange_size(self) -> int:
        """Real (unpadded) size of the final subrange."""
        return self.n - (self.num_subranges - 1) * self.subrange_size

    # -- index mapping -----------------------------------------------------------
    def bounds(self, subrange_id: int) -> Tuple[int, int]:
        """``(start, stop)`` element positions of a subrange (clipped to ``n``)."""
        if not (0 <= subrange_id < self.num_subranges):
            raise ConfigurationError(
                f"subrange_id {subrange_id} out of range [0, {self.num_subranges})"
            )
        start = subrange_id * self.subrange_size
        return start, min(start + self.subrange_size, self.n)

    def subrange_of(self, index) -> np.ndarray:
        """Subrange id(s) containing element position(s) ``index``."""
        idx = np.asarray(index)
        if np.any(idx < 0) or np.any(idx >= self.n):
            raise ConfigurationError("element index out of range")
        return idx >> self.alpha

    def sizes(self) -> np.ndarray:
        """Real size of every subrange (all equal except possibly the last)."""
        sizes = np.full(self.num_subranges, self.subrange_size, dtype=np.int64)
        sizes[-1] = self.last_subrange_size
        return sizes

    def reshape_padded(self, keys: np.ndarray, pad_value) -> np.ndarray:
        """Return ``keys`` padded with ``pad_value`` and reshaped to the 2-D view."""
        keys = np.asarray(keys)
        if keys.shape[0] != self.n:
            raise ConfigurationError(
                f"expected a vector of length {self.n}, got {keys.shape[0]}"
            )
        if self.pad:
            padded = np.concatenate(
                [keys, np.full(self.pad, pad_value, dtype=keys.dtype)]
            )
        else:
            padded = keys
        return padded.reshape(self.num_subranges, self.subrange_size)
