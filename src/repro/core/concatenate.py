"""Concatenation of qualified subranges (Sections 4.1-4.3, 5.1).

After the first top-k has identified the qualified subranges, the
concatenation step copies their (optionally Rule-2 filtered) elements into a
new, much smaller vector on which the second top-k runs.  On the GPU this is a
warp-centric scatter whose output positions are claimed with atomic
operations because the number of surviving elements per subrange is unknown
in advance (Section 5.1); the simulated traffic accounting reflects that.

With β delegates (Rule 3) only the *fully taken* subranges are scanned; the
remaining candidates are delegates that already live in the delegate vector,
so they are appended without touching the input vector again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.algorithms.base import ExecutionTrace
from repro.core.delegate import DelegateVector
from repro.core.subrange import SubrangePartition
from repro.errors import ConfigurationError

__all__ = ["Concatenation", "concatenate_subranges"]


@dataclass
class Concatenation:
    """Result of the concatenation step.

    Attributes
    ----------
    keys:
        Concatenated candidate keys (the second top-k input).
    indices:
        Original element positions aligned with :attr:`keys`.
    scanned_elements:
        Number of input elements read while scanning the fully-qualified
        subranges (the concatenation read workload).
    filtered_out:
        Elements read but dropped by Rule-2 filtering.
    scanned_subranges:
        Number of subranges that were scanned.
    """

    keys: np.ndarray
    indices: np.ndarray
    scanned_elements: int
    filtered_out: int
    scanned_subranges: int

    @property
    def size(self) -> int:
        """Concatenated-vector length (the second top-k workload)."""
        return int(self.keys.shape[0])


def concatenate_subranges(
    keys: np.ndarray,
    delegates: DelegateVector,
    scan_mask: np.ndarray,
    threshold=None,
    extra_candidate_mask: Optional[np.ndarray] = None,
    trace: Optional[ExecutionTrace] = None,
    padded_view: Optional[np.ndarray] = None,
) -> Concatenation:
    """Build the concatenated vector.

    Parameters
    ----------
    keys:
        The full key vector.
    delegates:
        Delegate vector previously built from ``keys``.
    scan_mask:
        Boolean mask (one entry per subrange) of subranges that must be
        scanned in full.
    threshold:
        Rule-2 threshold; when ``None`` no filtering is applied and every
        element of a scanned subrange is copied.
    extra_candidate_mask:
        Boolean mask over the delegate vector's *valid* flat entries selecting
        delegates that must be added as candidates even though their subrange
        is not scanned (the partially-taken subranges of Rule 3).
    trace:
        Optional execution trace for the simulated GPU traffic.
    padded_view:
        Optional precomputed padded 2-D view of ``keys`` (a plan's memoised
        :meth:`~repro.core.plan.QueryPlan.padded_view`); without it each call
        re-materialises the O(n) padded copy.
    """
    keys = np.asarray(keys)
    partition: SubrangePartition = delegates.partition
    scan_mask = np.asarray(scan_mask, dtype=bool)
    if scan_mask.shape[0] != partition.num_subranges:
        raise ConfigurationError("scan_mask must have one entry per subrange")
    if padded_view is not None and padded_view.shape != (
        partition.num_subranges,
        partition.subrange_size,
    ):
        raise ConfigurationError("padded_view shape does not match the partition")

    scanned_ids = np.nonzero(scan_mask)[0]
    pieces_keys = []
    pieces_idx = []
    scanned_elements = 0
    filtered_out = 0

    if scanned_ids.shape[0]:
        # Gather the scanned subranges through the padded 2-D view, then strip
        # padding and apply the Rule-2 filter in one vectorised pass.
        if padded_view is not None:
            view = padded_view
        else:
            view = partition.reshape_padded(keys, pad_value=keys.dtype.type(0))
        block = view[scanned_ids]  # (s, subrange_size)
        positions = (scanned_ids[:, None] << partition.alpha) + np.arange(
            partition.subrange_size, dtype=np.int64
        )
        real = positions < partition.n
        scanned_elements = int(np.count_nonzero(real))
        if threshold is not None:
            keep = real & (block >= keys.dtype.type(threshold))
        else:
            keep = real
        filtered_out = scanned_elements - int(np.count_nonzero(keep))
        pieces_keys.append(block[keep])
        pieces_idx.append(positions[keep])

    if extra_candidate_mask is not None and np.any(extra_candidate_mask):
        extra_keys = delegates.flat_keys()[extra_candidate_mask]
        extra_idx = delegates.flat_indices()[extra_candidate_mask]
        pieces_keys.append(extra_keys)
        pieces_idx.append(extra_idx)

    if pieces_keys:
        out_keys = np.concatenate(pieces_keys)
        out_idx = np.concatenate(pieces_idx).astype(np.int64)
    else:
        out_keys = np.empty(0, dtype=keys.dtype)
        out_idx = np.empty(0, dtype=np.int64)

    if trace is not None:
        copied = float(out_keys.shape[0])
        trace.add(
            "concatenation",
            # Read the qualified-subrange id list plus the scanned elements.
            loads=float(scanned_ids.shape[0]) + float(scanned_elements),
            stores=2.0 * copied,  # key + original index
            atomics=copied,
            kernels=1,
        )

    return Concatenation(
        keys=out_keys,
        indices=out_idx,
        scanned_elements=scanned_elements,
        filtered_out=filtered_out,
        scanned_subranges=int(scanned_ids.shape[0]),
    )
