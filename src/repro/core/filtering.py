"""Delegate top-k enabled filtering (Rule 2, Section 4.2).

Rule 2: the k-th element of the delegate vector is the minimum possible value
of the final k-th element, i.e. ``min(topk(D)) <= min(topk(V))``.  Every
element strictly below that threshold can therefore be dropped during
concatenation.

This implementation uses *greater-or-equal* comparisons against the threshold
instead of membership in one particular top-k set: with duplicated values an
exact top-k of the delegate vector is ambiguous, and ``>=`` keeps a superset
of every valid choice, so ties can never prune a correct answer (the
test-suite's property tests exercise exactly this).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.types import TopKResult

__all__ = ["qualification_threshold", "filter_by_threshold", "qualify_subranges"]


def qualification_threshold(first_topk: TopKResult):
    """The Rule-2 threshold: the k-th value of the delegate-vector top-k."""
    return first_topk.kth_value


def filter_by_threshold(keys: np.ndarray, threshold) -> np.ndarray:
    """Boolean mask of elements that survive Rule-2 filtering (``key >= threshold``)."""
    keys = np.asarray(keys)
    return keys >= keys.dtype.type(threshold)


def qualify_subranges(
    maxima: np.ndarray,
    beta_th: np.ndarray,
    threshold,
    use_beta_rule: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """Classify subranges for the concatenation step.

    Parameters
    ----------
    maxima:
        Maximum delegate key of every subrange (Rule 1 input).
    beta_th:
        β-th delegate key of every subrange (Rule 3 input).
    threshold:
        Rule-2 threshold (k-th value of the delegate-vector top-k).
    use_beta_rule:
        When ``True`` a subrange must have *all* β delegates at or above the
        threshold to require scanning (Rule 3); when ``False`` the
        maximum-delegate criterion (Rule 1) is used.

    Returns
    -------
    (qualified, scan)
        ``qualified`` — subranges whose maximum delegate reaches the
        threshold (they may contribute elements to the answer).
        ``scan`` — subranges that must be scanned during concatenation.
        ``scan`` is always a subset of ``qualified``.
    """
    maxima = np.asarray(maxima)
    beta_th = np.asarray(beta_th)
    if maxima.shape != beta_th.shape:
        raise ConfigurationError("maxima and beta_th must have the same shape")
    t = maxima.dtype.type(threshold)
    qualified = maxima >= t
    if use_beta_rule:
        scan = beta_th >= t
    else:
        scan = qualified.copy()
    return qualified, scan
