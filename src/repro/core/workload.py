"""Workload accounting helpers (paper Section 6.2, Figures 20-22).

The paper defines the Dr. Top-k *workload* as the sizes of the vectors the two
top-k passes actually process: the delegate vector (first top-k) and the
concatenated vector (second top-k).  :func:`measure_workload` runs the real
pipeline and reports the measured sizes; :func:`expected_workload` evaluates
the closed-form expectation for a uniform input, which is what lets the
workload figures be reproduced at the paper's ``|V| = 2^30`` scale without
materialising the vector.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.alpha_tuning import optimal_alpha
from repro.core.config import DrTopKConfig
from repro.errors import ConfigurationError
from repro.types import WorkloadStats

__all__ = ["measure_workload", "expected_workload"]


def measure_workload(
    v: np.ndarray, k: int, config: Optional[DrTopKConfig] = None
) -> WorkloadStats:
    """Run the pipeline on ``v`` and return its measured workload statistics."""
    from repro.core.drtopk import DrTopK  # local import to avoid a cycle

    engine = DrTopK(config)
    result = engine.topk(v, k)
    assert result.stats is not None
    return result.stats


def expected_workload(
    n: int,
    k: int,
    alpha: Optional[int] = None,
    beta: int = 2,
    const: float = 3.0,
    use_filtering: bool = True,
) -> WorkloadStats:
    """Analytic expected workload for a uniformly distributed input.

    Model
    -----
    * The delegate vector holds ``beta`` delegates for each of the
      ``ceil(n / 2^alpha)`` subranges.
    * A subrange must be scanned when all of its ``beta`` delegates reach the
      Rule-2 threshold.  For i.i.d. uniform data the top-k delegate threshold
      is (in expectation) the value with ``k`` elements of the delegate vector
      above it; the probability that a given subrange contributes ``beta`` of
      those ``k`` delegates is well approximated by a balls-into-bins model:
      each of the ``k`` qualifying delegates lands in a uniformly random
      subrange, and a subrange is scanned when it receives ``>= beta`` of
      them.  The expected number of scanned subranges follows the binomial
      tail of ``Binomial(k, 1/num_subranges)``.
    * Rule-2 filtering keeps, from each scanned subrange, only elements above
      the threshold — in expectation ``k / num_subranges`` elements per
      subrange — plus the partially-taken delegates.

    The function mirrors the measured statistics closely for UD inputs (the
    workload tests assert agreement within a factor of two) and is used by
    the Figure 20/21 benchmarks to extend the measured curves to ``2^30``.
    """
    if n < 1 or k < 1 or k > n:
        raise ConfigurationError("invalid n/k for expected_workload")
    if beta < 1:
        raise ConfigurationError("beta must be >= 1")
    if alpha is None:
        alpha = optimal_alpha(n, k, const=const)
    alpha = int(np.clip(alpha, max(int(np.ceil(np.log2(beta))), 0), int(np.floor(np.log2(n)))))
    subrange = 1 << alpha
    num_subranges = -(-n // subrange)
    delegate_size = min(num_subranges * beta, n)

    stats = WorkloadStats(
        input_size=n,
        subrange_size=subrange,
        alpha=alpha,
        beta=beta,
        num_subranges=num_subranges,
        delegate_vector_size=delegate_size,
    )
    if delegate_size <= k:
        # Degenerate regime: the pipeline falls back to a plain top-k.
        stats.delegate_vector_size = 0
        stats.concatenated_size = n
        return stats

    # Balls-into-bins: the k threshold-qualifying delegates land uniformly
    # over the subranges.  p_scan = P[Binomial(k, 1/m) >= beta].
    m = num_subranges
    p = 1.0 / m
    from scipy import stats as sps

    p_scan = float(sps.binom.sf(beta - 1, k, p))
    expected_scanned = m * p_scan
    stats.fully_qualified_subranges = int(round(expected_scanned))
    stats.qualified_subranges = int(round(m * sps.binom.sf(0, k, p)))

    if use_filtering:
        # Elements above the threshold are ~k overall; those inside scanned
        # subranges survive the filter, the rest enter as bare delegates.
        expected_above_per_subrange = k / m
        concatenated = expected_scanned * max(expected_above_per_subrange, beta) + (
            k - expected_scanned * expected_above_per_subrange
        )
    else:
        concatenated = expected_scanned * subrange + k
    stats.concatenated_size = int(round(min(max(concatenated, 0.0), n)))
    return stats
