"""Delegate-vector construction (Sections 4.1, 4.3, 5.1 and 5.3).

Given a :class:`~repro.core.subrange.SubrangePartition` of the key vector, the
delegate vector holds, for every subrange, its top ``beta`` keys together with
the subrange id they came from (the (key, value) pair format the first top-k
requires, Section 5.1).  ``beta = 1`` is the paper's *maximum delegate*;
``beta >= 2`` is the *β delegate* extension.

The construction also models its GPU cost under the two kernel organisations
the paper describes:

* warp-centric (Section 5.1): near-peak bandwidth for large subranges, but
  lane under-utilisation and ``~31·β`` shuffles per subrange when subranges
  are small, and
* coalesced-load-to-shared-memory / strided-compute (Section 5.3): full lane
  utilisation with no shuffles, at the cost of staging traffic through shared
  memory — the optimisation that cuts construction from 31.4 ms to ~9.5 ms at
  ``k = 2^24``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.algorithms.base import ExecutionTrace
from repro.core.config import ConstructionStrategy
from repro.core.subrange import SubrangePartition
from repro.errors import ConfigurationError
from repro.gpusim.warp import WarpModel

__all__ = ["DelegateVector", "build_delegate_vector", "resolve_strategy"]

#: Subrange-size exponent at or below which the paper switches to the
#: coalesced/strided construction kernel ("this small subrange size problem
#: (alpha <= 5)", Section 5.3).
COALESCED_ALPHA_THRESHOLD = 5


@dataclass
class DelegateVector:
    """The delegate vector: per-subrange top-β keys plus provenance.

    Attributes
    ----------
    keys:
        ``(num_subranges, beta)`` array of delegate keys, column 0 holding the
        subrange maximum, column 1 the second largest, and so on.  Subranges
        with fewer than ``beta`` real elements repeat their minimum real key in
        the unused columns and mark them invalid in :attr:`valid`.
    indices:
        Global element positions of each delegate (same shape as :attr:`keys`).
    valid:
        Boolean mask of delegates that correspond to real (non-padded) input
        elements.
    partition:
        The subrange partition the delegates were extracted from.
    beta:
        Number of delegates per subrange.
    strategy:
        The construction strategy that was (simulated to be) used.

    The flat views (:meth:`flat_keys`, :meth:`flat_indices`,
    :meth:`flat_subrange_ids`) are memoised: a delegate vector is immutable
    once built and every :meth:`~repro.core.drtopk.DrTopK.topk_prepared` call
    needs all three, so the boolean-mask gathers run once per construction
    rather than once per query.  Callers must treat the returned arrays as
    read-only.
    """

    keys: np.ndarray
    indices: np.ndarray
    valid: np.ndarray
    partition: SubrangePartition
    beta: int
    strategy: ConstructionStrategy
    _flat_keys: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    _flat_indices: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    _flat_subrange_ids: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    @property
    def num_subranges(self) -> int:
        return self.partition.num_subranges

    @property
    def size(self) -> int:
        """Number of *valid* delegate entries (the first top-k workload)."""
        return int(np.count_nonzero(self.valid))

    def flat_keys(self) -> np.ndarray:
        """Valid delegate keys as a flat vector (first top-k input)."""
        if self._flat_keys is None:
            self._flat_keys = self.keys[self.valid]
        return self._flat_keys

    def flat_indices(self) -> np.ndarray:
        """Global positions of the valid delegates, aligned with :meth:`flat_keys`."""
        if self._flat_indices is None:
            self._flat_indices = self.indices[self.valid]
        return self._flat_indices

    def flat_subrange_ids(self) -> np.ndarray:
        """Subrange id of each valid delegate, aligned with :meth:`flat_keys`."""
        if self._flat_subrange_ids is None:
            ids = np.repeat(
                np.arange(self.num_subranges, dtype=np.int64)[:, None], self.beta, axis=1
            )
            self._flat_subrange_ids = ids[self.valid]
        return self._flat_subrange_ids

    def nbytes(self) -> int:
        """Approximate resident bytes of the delegate arrays and memoised views."""
        total = self.keys.nbytes + self.indices.nbytes + self.valid.nbytes
        for view in (self._flat_keys, self._flat_indices, self._flat_subrange_ids):
            if view is not None:
                total += view.nbytes
        return int(total)

    def maxima(self) -> np.ndarray:
        """Maximum key of every subrange (column 0)."""
        return self.keys[:, 0]

    def beta_th(self) -> np.ndarray:
        """The β-th (smallest retained) *valid* delegate key of every subrange.

        For subranges with fewer than ``beta`` real elements this is their
        smallest real key, which makes the Rule-3 test conservative (such a
        subrange is "fully taken" only when every real element qualifies, in
        which case scanning it adds nothing anyway).
        """
        masked = np.where(self.valid, self.keys, self.keys[:, :1])
        return masked.min(axis=1)


def resolve_strategy(strategy: ConstructionStrategy, alpha: int) -> ConstructionStrategy:
    """Resolve ``AUTO`` to a concrete kernel organisation for a given alpha."""
    if strategy is ConstructionStrategy.AUTO:
        if alpha <= COALESCED_ALPHA_THRESHOLD:
            return ConstructionStrategy.COALESCED_STRIDED
        return ConstructionStrategy.WARP_CENTRIC
    return strategy


def build_delegate_vector(
    keys: np.ndarray,
    partition: SubrangePartition,
    beta: int = 1,
    strategy: ConstructionStrategy = ConstructionStrategy.AUTO,
    trace: Optional[ExecutionTrace] = None,
    padded_view: Optional[np.ndarray] = None,
) -> DelegateVector:
    """Extract the top-``beta`` delegates of every subrange.

    Parameters
    ----------
    keys:
        Unsigned key vector (larger key = preferred element).
    partition:
        Subrange partition of ``keys``.
    beta:
        Delegates per subrange.
    strategy:
        Kernel organisation used for the simulated-GPU traffic accounting
        (the numerical result is identical for all strategies).
    trace:
        Optional execution trace receiving the construction's kernel step.
    padded_view:
        Optional precomputed ``partition.reshape_padded(keys, 0)`` result, so
        callers that keep the padded 2-D view around (query plans) avoid
        re-materialising the O(n) padded copy here.
    """
    if beta < 1:
        raise ConfigurationError("beta must be >= 1")
    if beta > partition.subrange_size:
        raise ConfigurationError(
            f"beta={beta} exceeds the subrange size {partition.subrange_size}"
        )
    keys = np.asarray(keys)
    if keys.shape[0] != partition.n:
        raise ConfigurationError("keys length does not match the partition")

    resolved = resolve_strategy(strategy, partition.alpha)
    if padded_view is not None:
        view = padded_view
        if view.shape != (partition.num_subranges, partition.subrange_size):
            raise ConfigurationError(
                f"padded_view shape {view.shape} does not match the partition"
            )
    else:
        view = partition.reshape_padded(keys, pad_value=keys.dtype.type(0))
    num_subranges, subrange_size = view.shape

    if beta == 1:
        local = np.argmax(view, axis=1)[:, None]
    else:
        # Top-beta per row: partial selection then an exact sort of the beta slots.
        part = np.argpartition(view, subrange_size - beta, axis=1)[:, -beta:]
        part_vals = np.take_along_axis(view, part, axis=1)
        order = np.argsort(part_vals, axis=1)[:, ::-1]
        local = np.take_along_axis(part, order, axis=1)
        if partition.pad:
            # Padded slots share the pad value with real zero keys, so the
            # tie-arbitrary selection above may pick padding in the final
            # subrange and silently lose real delegates.  Re-select that one
            # row within its real prefix; leftover columns point at padding
            # and are marked invalid below.
            real = partition.last_subrange_size
            row = view[-1, :real]
            bb = min(beta, real)
            if bb < real:
                top = np.argpartition(row, real - bb)[-bb:]
            else:
                top = np.arange(real)
            chosen = top[np.argsort(row[top], kind="stable")[::-1]]
            local[-1] = np.concatenate([chosen, np.arange(real, real + beta - bb)])
    delegate_keys = np.take_along_axis(view, local, axis=1)
    global_idx = local + (np.arange(num_subranges, dtype=np.int64)[:, None] << partition.alpha)

    # Delegates pointing at padded slots are invalid.
    valid = global_idx < partition.n
    global_idx = np.minimum(global_idx, partition.n - 1)

    if trace is not None:
        _record_construction(trace, partition, beta, resolved)

    return DelegateVector(
        keys=delegate_keys,
        indices=global_idx.astype(np.int64),
        valid=valid,
        partition=partition,
        beta=beta,
        strategy=resolved,
    )


def _record_construction(
    trace: ExecutionTrace,
    partition: SubrangePartition,
    beta: int,
    strategy: ConstructionStrategy,
) -> None:
    """Charge the simulated GPU traffic of the construction kernel."""
    n = partition.n
    num_subranges = partition.num_subranges
    subrange_size = partition.subrange_size
    stores = float(num_subranges * beta * 2)  # (key, subrange id) pairs
    warp = WarpModel()
    if strategy is ConstructionStrategy.WARP_CENTRIC:
        trace.add(
            "delegate_construction",
            loads=float(n),
            stores=stores,
            shuffles=float(num_subranges * warp.reduction_shuffles(subrange_size, beta)),
            utilization=warp.utilization_for_subrange(subrange_size),
            kernels=1,
        )
    else:
        # Coalesced stage-in plus per-lane strided reduction in shared memory.
        trace.add(
            "delegate_construction",
            loads=float(n),
            stores=stores,
            shared_loads=float(n) * beta,
            shared_stores=float(n),
            utilization=1.0,
            kernels=1,
        )
