"""Reusable query plans: amortising delegate construction across queries.

A single :meth:`repro.core.drtopk.DrTopK.topk` call spends most of its memory
traffic on step 1 — scanning the full input vector to build the delegate
vector.  That work depends only on the input vector, the key order
(``largest``) and the subrange geometry ``(alpha, beta)``; it is completely
independent of ``k`` once ``alpha`` is fixed.  A :class:`QueryPlan` captures
exactly that reusable state so a *batch* of queries against one shared vector
pays for construction once (the amortised hot-path win the service layer in
:mod:`repro.service` is built on):

* the unsigned key vector (``to_keys`` of the input for one ``largest`` flag),
* the :class:`~repro.core.subrange.SubrangePartition`,
* the constructed :class:`~repro.core.delegate.DelegateVector`, and
* the construction's simulated kernel steps, so callers can decide per query
  whether to charge the one-time construction traffic or account for it once
  at the batch level.

Plans also memoise their *views*: the padded 2-D reshape of the key vector
(:meth:`QueryPlan.padded_view`) that construction and concatenation both
need, held in a :class:`PlanViews` holder that survives
``dataclasses.replace`` clones (the sharded route re-offsets banked plans
that way), and — on the :class:`DelegateVector` itself — the
``flat_keys``/``flat_indices``/``flat_subrange_ids`` gathers.  Together they
make a steady-state :meth:`DrTopK.topk_prepared` call free of O(n) work.

Plans are produced by :meth:`DrTopK.prepare` / :meth:`DrTopK.prepare_with_alpha`
and consumed by :meth:`DrTopK.topk_prepared`; the service layer's
:class:`~repro.service.planbank.PlanBank` persists them across dispatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.delegate import DelegateVector
from repro.core.subrange import SubrangePartition
from repro.gpusim.device import DeviceSpec, V100S
from repro.gpusim.kernel import KernelStep
from repro.gpusim.memory import MemoryCounters

__all__ = ["PlanViews", "QueryPlan"]


@dataclass
class PlanViews:
    """Lazily materialised, shareable views of a plan's key vector.

    A separate (mutable) holder rather than plain plan fields so that
    ``dataclasses.replace(plan, offset=...)`` clones — used when a banked
    plan serves an identical-content shard at a different offset — keep
    sharing the memoised arrays instead of re-materialising them.
    """

    padded: Optional[np.ndarray] = None

    def nbytes(self) -> int:
        """Resident bytes of the materialised views."""
        return int(self.padded.nbytes) if self.padded is not None else 0


@dataclass
class QueryPlan:
    """Reusable preprocessing state for top-k queries over one vector.

    Attributes
    ----------
    v:
        The original input vector (needed to materialise result values).
    keys:
        Unsigned keys of ``v`` for the plan's ``largest`` flag.
    largest:
        Key order the plan was built for; a plan answers only queries with a
        matching ``largest`` flag.
    partition:
        The subrange partition (fixes ``alpha``).
    beta:
        Delegates per subrange, already clipped to the subrange size.
    delegates:
        The constructed delegate vector, or ``None`` when the plan was
        prepared for a degenerate regime (the delegate vector could not be
        smaller than the preparing query's ``k``) and construction was
        skipped.
    construction_steps:
        Simulated kernel steps of the one-time construction (empty when the
        plan is degenerate or tracing is disabled).
    offset:
        Position of ``v`` inside a larger sharded vector.  The distributed
        batch builds one plan per shard; query results carry shard-local
        indices that :meth:`global_indices` maps back to the full vector.
        Zero (the default) for unsharded plans.
    """

    v: np.ndarray
    keys: np.ndarray
    largest: bool
    partition: SubrangePartition
    beta: int
    delegates: Optional[DelegateVector] = None
    construction_steps: List[KernelStep] = field(default_factory=list)
    offset: int = 0
    views: PlanViews = field(default_factory=PlanViews, repr=False)

    @property
    def n(self) -> int:
        """Input vector length."""
        return int(self.keys.shape[0])

    def padded_view(self) -> np.ndarray:
        """Memoised padded 2-D ``(num_subranges, subrange_size)`` key view.

        The first call materialises ``partition.reshape_padded(keys, 0)``
        (a copy only when the final subrange is partial); subsequent queries
        against the plan reuse it, so the concatenation step never re-pads
        the O(n) key vector.  Treat the returned array as read-only.
        """
        if self.views.padded is None:
            self.views.padded = self.partition.reshape_padded(
                self.keys, pad_value=self.keys.dtype.type(0)
            )
        return self.views.padded

    def materialise_views(self) -> None:
        """Materialise every lazy view the steady-state query path uses.

        The plan bank calls this before sizing a plan so :meth:`nbytes`
        reflects the plan's full resident footprint — the flat delegate
        gathers would otherwise materialise *after* admission and silently
        grow the bank past its byte budget.
        """
        self.padded_view()
        if self.delegates is not None:
            self.delegates.flat_keys()
            self.delegates.flat_indices()
            self.delegates.flat_subrange_ids()

    def nbytes(self) -> int:
        """Approximate resident bytes of the plan (the bank's budget unit).

        Counts the input vector, the key vector, the delegate arrays with
        their memoised flat views, and any materialised padded view.  When
        the final subrange is full, ``padded_view`` is a zero-copy reshape of
        ``keys`` — counting it again would double-charge, so only a genuine
        padded copy contributes.
        """
        total = int(self.v.nbytes) + int(self.keys.nbytes)
        if self.delegates is not None:
            total += self.delegates.nbytes()
        if self.views.padded is not None and self.views.padded.base is not self.keys:
            total += int(self.views.padded.nbytes)
        return total

    @property
    def alpha(self) -> int:
        """Subrange-size exponent the plan was built with."""
        return self.partition.alpha

    @property
    def is_degenerate(self) -> bool:
        """Whether construction was skipped at preparation time."""
        return self.delegates is None

    def answers(self, k: int) -> bool:
        """Whether this plan can serve a query of ``k`` through the pipeline.

        A plan serves ``k`` when its delegate vector exists and is genuinely
        smaller than ``k`` — otherwise the delegate machinery cannot prune
        anything (and a partially filled final subrange can leave fewer valid
        delegates than the ``num_subranges * beta`` slots suggest).  Queries
        a plan cannot serve fall back to a plain top-k on the raw keys.
        """
        if self.delegates is None or self.partition.num_subranges * self.beta <= k:
            return False
        return self.delegates.size > k

    def global_indices(self, local_indices: np.ndarray) -> np.ndarray:
        """Map indices into this plan's (possibly sharded) vector to global ones."""
        if self.offset == 0:
            return np.asarray(local_indices, dtype=np.int64)
        return np.asarray(local_indices, dtype=np.int64) + np.int64(self.offset)

    # -- construction accounting -------------------------------------------------
    def construction_counters(self) -> MemoryCounters:
        """Aggregate simulated traffic of the one-time construction."""
        if not self.construction_steps:
            return MemoryCounters(itemsize=int(self.v.dtype.itemsize))
        return MemoryCounters.total(step.counters for step in self.construction_steps)

    @property
    def construction_bytes(self) -> float:
        """Simulated global-memory bytes moved by the construction."""
        return self.construction_counters().global_bytes

    def construction_ms(self, device: DeviceSpec = V100S) -> float:
        """Estimated construction time on ``device``."""
        from repro.gpusim.costmodel import CostModel

        model = CostModel(device)
        return float(
            sum(
                model.estimate_ms(step.counters, kernels=step.kernels)
                for step in self.construction_steps
            )
        )
