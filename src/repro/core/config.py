"""Configuration of the Dr. Top-k pipeline."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.gpusim.device import DeviceSpec, V100S

__all__ = ["DrTopKConfig", "ConstructionStrategy", "RULE4_CONST"]

#: The paper sets the Rule-4 constant to 3 "according to performance tuning"
#: (Section 5.2, Figure 14).
RULE4_CONST = 3.0


class ConstructionStrategy(str, enum.Enum):
    """How the delegate-vector construction kernel is organised (Section 5.1/5.3).

    ``WARP_CENTRIC``
        One warp per subrange; lanes scan stripes of the subrange and combine
        with ``__shfl_sync`` butterfly reductions.  Near peak bandwidth for
        large subranges but wastes lanes and floods the SM with shuffles when
        subranges are small.
    ``COALESCED_STRIDED``
        A warp stages 32 subranges into shared memory with coalesced loads and
        each lane then reduces one whole subrange privately — no shuffles,
        full lane utilisation.  The fix introduced in Section 5.3 for small
        subranges (alpha <= 5).
    ``AUTO``
        Pick ``COALESCED_STRIDED`` when the subrange is at most 32 elements
        (alpha <= 5), ``WARP_CENTRIC`` otherwise, which is the paper's final
        configuration.
    """

    WARP_CENTRIC = "warp_centric"
    COALESCED_STRIDED = "coalesced_strided"
    AUTO = "auto"


@dataclass(frozen=True)
class DrTopKConfig:
    """Tunable parameters of the delegate-centric pipeline.

    Attributes
    ----------
    alpha:
        Subrange-size exponent (subranges hold ``2**alpha`` elements).  When
        ``None`` the Rule-4 closed form selects it from ``|V|`` and ``k``.
    beta:
        Number of delegates extracted per subrange (Section 4.3).  ``beta=1``
        is the maximum-delegate design; the paper finds ``beta=2`` best.
    use_filtering:
        Enable delegate-top-k-enabled filtering (Rule 2, Section 4.2).
    use_beta_rule:
        Enable the β-delegate concatenation rule (Rule 3).  Only meaningful
        for ``beta >= 2``; disabling it with ``beta >= 2`` reproduces the
        "filtering only" ablation of Figure 22.
    first_algorithm / second_algorithm:
        Registered algorithm names used for the first and second top-k.
    construction:
        Delegate-vector construction strategy (see
        :class:`ConstructionStrategy`).
    device:
        Simulated device used to price the pipeline's kernel steps.
    rule4_const:
        The ``Const`` term of Rule 4.
    skip_second_when_possible:
        Return the first top-k directly when Rule 3 proves no subrange needs
        scanning (Figure 8b's shortcut).
    collect_trace:
        Record per-step simulated GPU traffic and estimated times.
    """

    alpha: Optional[int] = None
    beta: int = 2
    use_filtering: bool = True
    use_beta_rule: bool = True
    first_algorithm: str = "radix_flag"
    second_algorithm: str = "radix_flag"
    construction: ConstructionStrategy = ConstructionStrategy.AUTO
    device: DeviceSpec = field(default=V100S)
    rule4_const: float = RULE4_CONST
    skip_second_when_possible: bool = True
    collect_trace: bool = True

    def __post_init__(self) -> None:
        if self.alpha is not None and self.alpha < 0:
            raise ConfigurationError("alpha must be non-negative")
        if self.beta < 1:
            raise ConfigurationError("beta must be >= 1")
        if not isinstance(self.construction, ConstructionStrategy):
            object.__setattr__(
                self, "construction", ConstructionStrategy(str(self.construction))
            )

    def replace(self, **kwargs) -> "DrTopKConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    @property
    def maximum_delegate_only(self) -> bool:
        """True when running the plain Rule-1 design (beta = 1)."""
        return self.beta == 1
