"""The Dr. Top-k pipeline (Figure 3b).

:class:`DrTopK` glues the four stages together:

1. **Delegate-vector construction** — :mod:`repro.core.delegate`.
2. **First top-k** on the delegate vector, using any registered algorithm.
   The delegate vector is a (key, subrange-id) pair vector and the pass must
   produce the full top-k (not just the k-th value) because every qualified
   subrange is needed for concatenation (Section 5.1).
3. **Concatenation** of qualified subranges with Rule-2 filtering and the
   Rule-3 β-delegate pruning — :mod:`repro.core.concatenate`.
4. **Second top-k** on the concatenated vector.

The class records per-step simulated-GPU traffic (priced on the configured
device) and the workload statistics reported in the paper's Section 6.2.

Step 1 is the only stage that touches the full input vector, and it depends
solely on the vector, the key order and the subrange geometry — not on ``k``
once ``alpha`` is fixed.  :meth:`DrTopK.prepare` therefore factors it into a
reusable :class:`~repro.core.plan.QueryPlan` that
:meth:`DrTopK.topk_prepared` can answer many queries from, paying for
construction once; :meth:`DrTopK.topk` simply chains the two for the one-shot
case.  The batched/streaming service layer (:mod:`repro.service`) builds on
this split.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms import get_algorithm
from repro.algorithms.base import ExecutionTrace
from repro.algorithms.keys import to_keys
from repro.analysis.alpha_tuning import optimal_alpha
from repro.core.concatenate import concatenate_subranges
from repro.core.config import DrTopKConfig
from repro.core.delegate import build_delegate_vector
from repro.core.filtering import qualification_threshold, qualify_subranges
from repro.core.plan import PlanViews, QueryPlan
from repro.core.subrange import SubrangePartition
from repro.errors import ConfigurationError
from repro.gpusim.kernel import KernelStep
from repro.gpusim.memory import MemoryCounters
from repro.types import TopKResult, WorkloadStats
from repro.utils import check_k, ensure_1d

__all__ = ["DrTopK", "drtopk"]


class DrTopK:
    """Delegate-centric top-k engine.

    Parameters
    ----------
    config:
        Pipeline configuration; defaults to the paper's final design
        (``beta=2``, filtering on, Rule 3 on, flag-optimised in-place radix
        for both top-k passes, automatic construction strategy and automatic
        Rule-4 α).
    """

    def __init__(self, config: Optional[DrTopKConfig] = None):
        self.config = config or DrTopKConfig()
        # Fail fast on unknown algorithm names.
        get_algorithm(self.config.first_algorithm)
        get_algorithm(self.config.second_algorithm)

    # -- public API -----------------------------------------------------------
    def topk(self, v: np.ndarray, k: int, largest: bool = True) -> TopKResult:
        """Compute the top-``k`` of ``v`` with the delegate-centric pipeline."""
        v = ensure_1d(v)
        k = check_k(k, v.shape[0])
        plan = self.prepare(v, k, largest=largest)
        return self.topk_prepared(plan, k)

    def kth_value(self, v: np.ndarray, k: int, largest: bool = True):
        """k-selection: return only the k-th element."""
        return self.topk(v, k, largest=largest).kth_value

    def prepare(self, v: np.ndarray, k: int, largest: bool = True) -> QueryPlan:
        """Build a reusable :class:`QueryPlan` for queries over ``v``.

        ``k`` is used to resolve the Rule-4 ``alpha`` (and to skip
        construction entirely in the degenerate regime where the delegate
        vector could not beat a plain top-k); the returned plan then serves
        any ``k`` whose resolved ``alpha`` matches.
        """
        v = ensure_1d(v)
        k = check_k(k, v.shape[0])
        alpha = self._resolve_alpha(v.shape[0], k)
        return self.prepare_with_alpha(v, alpha, largest=largest, k=k)

    def prepare_with_alpha(
        self,
        v: np.ndarray,
        alpha: int,
        largest: bool = True,
        k: Optional[int] = None,
        offset: int = 0,
    ) -> QueryPlan:
        """Build a :class:`QueryPlan` for an explicitly chosen ``alpha``.

        When ``k`` is given and the partition's delegate vector could not be
        smaller than ``k`` (the degenerate regime), construction is skipped
        and the plan answers through the plain-top-k fallback.  ``offset``
        records ``v``'s position inside a larger sharded vector so plan
        consumers can map local result indices back to global ones.
        """
        v = ensure_1d(v)
        cfg = self.config
        keys = to_keys(v, largest=largest)
        partition = SubrangePartition(n=keys.shape[0], alpha=alpha)
        # Tiny inputs can leave subranges narrower than the configured beta;
        # extracting every element of such a subrange is the correct limit.
        beta = min(cfg.beta, partition.subrange_size)

        if k is not None and partition.num_subranges * beta <= k:
            return QueryPlan(
                v=v, keys=keys, largest=largest, partition=partition, beta=beta, offset=offset
            )

        trace = ExecutionTrace(itemsize=v.dtype.itemsize) if cfg.collect_trace else None
        # The padded 2-D view is needed by construction now and by every
        # query's concatenation later; materialise it once and keep it on the
        # plan so the steady-state query path never re-pads the O(n) vector.
        views = PlanViews(
            padded=partition.reshape_padded(keys, pad_value=keys.dtype.type(0))
        )
        delegates = build_delegate_vector(
            keys,
            partition,
            beta=beta,
            strategy=cfg.construction,
            trace=trace,
            padded_view=views.padded,
        )
        return QueryPlan(
            v=v,
            keys=keys,
            largest=largest,
            partition=partition,
            beta=beta,
            delegates=delegates,
            construction_steps=list(trace.steps) if trace is not None else [],
            offset=offset,
            views=views,
        )

    def topk_prepared(
        self, plan: QueryPlan, k: int, charge_construction: bool = True
    ) -> TopKResult:
        """Answer one query from a prebuilt :class:`QueryPlan`.

        Parameters
        ----------
        plan:
            Plan previously built over the query's input vector.
        k:
            Number of elements to select.
        charge_construction:
            When ``True`` (the one-shot default) the plan's construction
            traffic is included in this query's trace and step times.  Batch
            callers that amortise one construction across many queries pass
            ``False`` and account for the construction once at the batch
            level instead.
        """
        v = plan.v
        k = check_k(k, plan.n)
        cfg = self.config
        partition = plan.partition
        beta = plan.beta
        stats = WorkloadStats(
            input_size=plan.n,
            subrange_size=partition.subrange_size,
            alpha=partition.alpha,
            beta=beta,
            num_subranges=partition.num_subranges,
        )

        # Degenerate regime: the delegate vector would not be smaller than k,
        # so the delegate machinery cannot prune anything.  Fall back to the
        # second-top-k algorithm on the raw input (still a valid answer).  A
        # plan may carry a constructed delegate vector this query cannot use
        # (valid delegates <= k under padding); that construction work still
        # happened, so charge it to whoever owns it.
        if not plan.answers(k):
            prior = plan.construction_steps if charge_construction else None
            return self._degenerate(v, plan.keys, k, plan.largest, stats, prior_steps=prior)

        delegates = plan.delegates
        assert delegates is not None
        trace = ExecutionTrace(itemsize=v.dtype.itemsize) if cfg.collect_trace else None
        if trace is not None and charge_construction:
            trace.extend(list(plan.construction_steps))
        stats.delegate_vector_size = delegates.size

        # 2. First top-k on the delegate vector (keys are already unsigned).
        first_algo = get_algorithm(cfg.first_algorithm)
        first_trace = ExecutionTrace(itemsize=v.dtype.itemsize) if cfg.collect_trace else None
        flat_keys = delegates.flat_keys()
        first = first_algo.topk(flat_keys, k, largest=True, trace=first_trace)
        if trace is not None and first_trace is not None:
            trace.extend([_collapse_steps("first_topk", first_trace)])
        threshold = qualification_threshold(first)

        # 3. Qualification and concatenation.
        qualified, scan = qualify_subranges(
            delegates.maxima(),
            delegates.beta_th(),
            threshold,
            use_beta_rule=cfg.use_beta_rule and beta > 1,
        )
        stats.qualified_subranges = int(np.count_nonzero(qualified))
        stats.fully_qualified_subranges = int(np.count_nonzero(scan))

        flat_sub_ids = delegates.flat_subrange_ids()
        delegate_above = flat_keys >= flat_keys.dtype.type(threshold)
        extra_mask = delegate_above & ~scan[flat_sub_ids]

        if (
            cfg.skip_second_when_possible
            and not np.any(scan)
            and first.values.shape[0] == k
        ):
            # Figure 8(b): no subrange is fully taken, so the first top-k is
            # already the answer; map its indices back to the input vector.
            original_idx = delegates.flat_indices()[first.indices]
            stats.second_topk_skipped = True
            stats.concatenated_size = 0
            self._finalise_stats(stats, trace)
            result = TopKResult(
                values=v[original_idx],
                indices=original_idx,
                k=k,
                largest=plan.largest,
                stats=stats,
            )
            self.last_stats = stats
            return result

        concat = concatenate_subranges(
            plan.keys,
            delegates,
            scan_mask=scan,
            threshold=threshold if cfg.use_filtering else None,
            extra_candidate_mask=extra_mask,
            trace=trace,
            padded_view=plan.padded_view(),
        )
        stats.concatenated_size = concat.size
        stats.filtered_out = concat.filtered_out

        # 4. Second top-k on the concatenated vector.
        if concat.size < k:
            raise ConfigurationError(
                "internal error: concatenated vector smaller than k "
                f"({concat.size} < {k})"
            )
        second_algo = get_algorithm(cfg.second_algorithm)
        second_trace = ExecutionTrace(itemsize=v.dtype.itemsize) if cfg.collect_trace else None
        second = second_algo.topk(concat.keys, k, largest=True, trace=second_trace)
        if trace is not None and second_trace is not None:
            trace.extend([_collapse_steps("second_topk", second_trace)])

        original_idx = concat.indices[second.indices]
        self._finalise_stats(stats, trace)
        result = TopKResult(
            values=v[original_idx],
            indices=original_idx,
            k=k,
            largest=plan.largest,
            stats=stats,
        )
        self.last_stats = stats
        return result

    # -- internals --------------------------------------------------------------
    def _resolve_alpha(self, n: int, k: int) -> int:
        cfg = self.config
        if cfg.alpha is not None:
            alpha = int(cfg.alpha)
        else:
            alpha = optimal_alpha(n, k, const=cfg.rule4_const)
        # A subrange can never exceed the vector itself, and must hold >= beta
        # elements so that beta delegates exist.
        max_alpha = max(int(np.floor(np.log2(n))), 0)
        min_alpha = max(int(np.ceil(np.log2(max(cfg.beta, 1)))), 0)
        return int(np.clip(alpha, min_alpha, max_alpha))

    def _degenerate(
        self,
        v: np.ndarray,
        keys: np.ndarray,
        k: int,
        largest: bool,
        stats: WorkloadStats,
        prior_steps: Optional[list] = None,
    ) -> TopKResult:
        """Fallback when the delegate vector could not be smaller than k."""
        cfg = self.config
        trace = ExecutionTrace(itemsize=v.dtype.itemsize) if cfg.collect_trace else None
        if trace is not None and prior_steps:
            trace.extend(list(prior_steps))
        algo = get_algorithm(cfg.second_algorithm)
        base = algo.topk(keys, k, largest=True, trace=trace)
        stats.delegate_vector_size = 0
        stats.concatenated_size = stats.input_size
        self._finalise_stats(stats, trace)
        result = TopKResult(
            values=v[base.indices], indices=base.indices, k=k, largest=largest, stats=stats
        )
        self.last_stats = stats
        return result

    def _finalise_stats(self, stats: WorkloadStats, trace: Optional[ExecutionTrace]) -> None:
        if trace is None:
            return
        stats.step_times_ms = trace.step_times_ms(self.config.device)
        self.last_trace = trace


def _collapse_steps(name: str, trace: ExecutionTrace) -> KernelStep:
    """Collapse an algorithm's internal steps into a single named pipeline step."""
    counters = trace.total_counters()
    kernels = sum(step.kernels for step in trace.steps) or 1
    if not trace.steps:
        counters = MemoryCounters(itemsize=trace.itemsize)
    return KernelStep(name=name, counters=counters, kernels=kernels)


def drtopk(
    v: np.ndarray,
    k: int,
    largest: bool = True,
    config: Optional[DrTopKConfig] = None,
    **config_overrides,
) -> TopKResult:
    """Convenience wrapper: run Dr. Top-k with an optional configuration.

    Keyword overrides are applied on top of ``config`` (or the default
    configuration), e.g. ``drtopk(v, 100, beta=1, use_filtering=False)``.
    """
    cfg = config or DrTopKConfig()
    if config_overrides:
        cfg = cfg.replace(**config_overrides)
    return DrTopK(cfg).topk(v, k, largest=largest)
