"""End-to-end applications built on the public top-k API.

These mirror the three real-world uses the paper's benchmark targets
(Section 6.1, Table 1):

* :mod:`repro.apps.knn` — k-nearest-neighbour search over SIFT-like
  descriptors (ANN_SIFT1B's role),
* :mod:`repro.apps.degree_centrality` — top-k most connected vertices of a
  web graph (ClueWeb09's role),
* :mod:`repro.apps.tweet_ranking` — the k least fearful COVID tweets
  (TwitterCOVID-19's role).
"""

from repro.apps.knn import KNNSearch, knn_search
from repro.apps.degree_centrality import top_degree_nodes, degree_centrality_report
from repro.apps.tweet_ranking import least_fearful_tweets, most_fearful_tweets

__all__ = [
    "KNNSearch",
    "knn_search",
    "top_degree_nodes",
    "degree_centrality_report",
    "least_fearful_tweets",
    "most_fearful_tweets",
]
