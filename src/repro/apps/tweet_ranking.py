"""COVID tweet ranking application (paper Table 1, "TR").

The paper's TwitterCOVID-19 workload ranks tweets by a fear score and uses
top-k (smallest) to find the ``k`` *least fearful* tweets.  The functions here
accept any score vector — the surrogate generator in
:func:`repro.datasets.twitter.covid_fear_scores` or real scores — and run the
selection through the delegate-centric pipeline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import DrTopKConfig
from repro.core.drtopk import DrTopK
from repro.types import TopKResult

__all__ = ["least_fearful_tweets", "most_fearful_tweets"]


def least_fearful_tweets(
    scores: np.ndarray, k: int, config: Optional[DrTopKConfig] = None
) -> TopKResult:
    """The ``k`` tweets with the lowest fear scores (the paper's query)."""
    engine = DrTopK(config)
    return engine.topk(np.asarray(scores), k, largest=False)


def most_fearful_tweets(
    scores: np.ndarray, k: int, config: Optional[DrTopKConfig] = None
) -> TopKResult:
    """The ``k`` tweets with the highest fear scores (the complementary query)."""
    engine = DrTopK(config)
    return engine.topk(np.asarray(scores), k, largest=True)
