"""Website degree-centrality application (paper Table 1, "CW").

Rank graph vertices by degree and return the ``k`` most connected ones — the
paper's ClueWeb09 use case, where the degree vector of a 4.8-billion-page web
graph is the top-k input.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import networkx as nx
import numpy as np

from repro.core.config import DrTopKConfig
from repro.core.drtopk import DrTopK
from repro.errors import ConfigurationError
from repro.types import TopKResult

__all__ = ["top_degree_nodes", "degree_centrality_report"]

GraphLike = Union[nx.Graph, np.ndarray, Sequence[int]]


def _degree_vector(graph: GraphLike) -> np.ndarray:
    """Degree vector of a graph, or pass an explicit degree array through."""
    if isinstance(graph, nx.Graph):
        n = graph.number_of_nodes()
        if n == 0:
            raise ConfigurationError("graph has no nodes")
        degrees = np.zeros(n, dtype=np.uint32)
        for i, (_, d) in enumerate(graph.degree()):
            degrees[i] = d
        return degrees
    arr = np.asarray(graph)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError("degree input must be a non-empty 1-D array or a graph")
    return arr.astype(np.uint32, copy=False)


def top_degree_nodes(
    graph: GraphLike, k: int, config: Optional[DrTopKConfig] = None
) -> TopKResult:
    """The ``k`` highest-degree vertices.

    ``values`` are degrees (descending) and ``indices`` are vertex positions
    (for a :class:`networkx.Graph`, positions follow ``graph.degree()``
    iteration order, i.e. node insertion order).
    """
    degrees = _degree_vector(graph)
    engine = DrTopK(config)
    return engine.topk(degrees, k, largest=True)


def degree_centrality_report(
    graph: GraphLike, k: int, config: Optional[DrTopKConfig] = None
) -> Dict[int, int]:
    """Convenience mapping ``vertex position -> degree`` of the top-k vertices."""
    result = top_degree_nodes(graph, k, config=config)
    return {int(i): int(v) for i, v in zip(result.indices, result.values)}
