"""k-nearest-neighbour search application (paper Table 1, "AN").

The application computes the (squared) Euclidean distance from a query
descriptor to every descriptor in the collection and selects the ``k``
smallest distances with the delegate-centric pipeline — exactly the workload
the paper derives from ANN_SIFT1B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import DrTopKConfig
from repro.core.drtopk import DrTopK
from repro.datasets.ann import SiftLikeDataset
from repro.errors import ConfigurationError
from repro.types import TopKResult
from repro.utils import RngLike

__all__ = ["KNNSearch", "knn_search"]


@dataclass
class KNNSearch:
    """Nearest-neighbour searcher over a descriptor collection.

    Attributes
    ----------
    dataset:
        The descriptor collection.
    config:
        Dr. Top-k configuration used for the selection step.
    """

    dataset: SiftLikeDataset
    config: Optional[DrTopKConfig] = None

    @classmethod
    def from_random(cls, n: int, seed: RngLike = None, config: Optional[DrTopKConfig] = None):
        """Build a searcher over ``n`` synthetic SIFT-like descriptors."""
        return cls(dataset=SiftLikeDataset.generate(n, seed=seed), config=config)

    def query(self, query_vector: Optional[np.ndarray], k: int) -> TopKResult:
        """Return the ``k`` nearest descriptors to ``query_vector``.

        The result's ``values`` are squared distances in ascending order and
        ``indices`` identify the matching descriptors.
        """
        if k < 1 or k > len(self.dataset):
            raise ConfigurationError(f"k must be in [1, {len(self.dataset)}]")
        distances = self.dataset.distances_from(query_vector)
        engine = DrTopK(self.config)
        return engine.topk(distances, k, largest=False)


def knn_search(
    vectors: np.ndarray, query: np.ndarray, k: int, config: Optional[DrTopKConfig] = None
) -> TopKResult:
    """One-shot k-NN: ``vectors`` is ``(n, 128)`` uint8, ``query`` is ``(128,)``."""
    dataset = SiftLikeDataset(vectors=np.asarray(vectors))
    return KNNSearch(dataset=dataset, config=config).query(np.asarray(query), k)
