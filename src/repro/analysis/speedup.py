"""Speedup computation helpers (Figures 17-19).

The paper reports Dr. Top-k's benefit as the speedup of the Dr. Top-k-assisted
algorithm over the corresponding stand-alone algorithm.  In this reproduction
both quantities can be measured either as wall-clock time of the NumPy
implementations or as estimated time on a simulated device; the helpers here
take care of running both sides consistently and assembling the series the
benchmark harness prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.algorithms import get_algorithm
from repro.algorithms.base import ExecutionTrace
from repro.errors import ConfigurationError
from repro.gpusim.device import DeviceSpec, V100S

if False:  # pragma: no cover - type-checking only; a runtime import would be circular
    from repro.core.config import DrTopKConfig

__all__ = ["SpeedupPoint", "speedup_series", "wall_clock", "estimated_time_ms"]


@dataclass
class SpeedupPoint:
    """One point of a speedup curve."""

    k: int
    baseline_ms: float
    drtopk_ms: float

    @property
    def speedup(self) -> float:
        """Baseline time divided by Dr. Top-k time (> 1 means Dr. Top-k wins)."""
        if self.drtopk_ms <= 0:
            return float("inf")
        return self.baseline_ms / self.drtopk_ms


def wall_clock(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median wall-clock milliseconds of ``fn`` over ``repeats`` runs."""
    if repeats < 1:
        raise ConfigurationError("repeats must be >= 1")
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return float(np.median(samples))


def estimated_time_ms(
    v: np.ndarray,
    k: int,
    algorithm: str,
    device: DeviceSpec = V100S,
) -> float:
    """Estimated time of a stand-alone algorithm run on the simulated device."""
    trace = ExecutionTrace(itemsize=v.dtype.itemsize)
    get_algorithm(algorithm).topk(v, k, trace=trace)
    return trace.total_time_ms(device)


def speedup_series(
    v: np.ndarray,
    ks: Iterable[int],
    baseline_algorithm: str,
    config: Optional["DrTopKConfig"] = None,
    use_simulated_time: bool = True,
    repeats: int = 1,
    assisted_algorithm: Optional[str] = None,
) -> List[SpeedupPoint]:
    """Speedup of Dr. Top-k over ``baseline_algorithm`` for each ``k``.

    Parameters
    ----------
    v:
        The input vector (shared across all ``k`` values, as in the paper).
    ks:
        Values of k to sweep.
    baseline_algorithm:
        Stand-alone algorithm name; by default the Dr. Top-k configuration
        uses the same algorithm for its first/second top-k so the comparison
        isolates the delegate machinery (as the paper does).
    assisted_algorithm:
        Algorithm used *inside* the Dr. Top-k pipeline when it differs from
        the stand-alone baseline — e.g. the paper compares against the GGKS
        in-place radix baseline while Dr. Top-k runs its own flag-optimised
        in-place radix (Section 5.1).
    config:
        Base pipeline configuration; its first/second algorithms are replaced
        by ``baseline_algorithm``.
    use_simulated_time:
        ``True`` (default) compares estimated simulated-GPU times;
        ``False`` compares wall-clock times of the NumPy implementations.
    repeats:
        Wall-clock repetitions (ignored for simulated time).
    """
    # Imported here to avoid a circular dependency (core imports the analysis
    # package for Rule-4 alpha tuning).
    from repro.core.config import DrTopKConfig
    from repro.core.drtopk import DrTopK

    inner = assisted_algorithm or baseline_algorithm
    cfg = (config or DrTopKConfig()).replace(
        first_algorithm=inner, second_algorithm=inner
    )
    device = cfg.device
    points: List[SpeedupPoint] = []
    for k in ks:
        k = int(k)
        engine = DrTopK(cfg)
        if use_simulated_time:
            baseline_ms = estimated_time_ms(v, k, baseline_algorithm, device=device)
            result = engine.topk(v, k)
            assert result.stats is not None
            dr_ms = result.stats.total_time_ms
        else:
            baseline_ms = wall_clock(
                lambda: get_algorithm(baseline_algorithm).topk(v, k), repeats=repeats
            )
            dr_ms = wall_clock(lambda: engine.topk(v, k), repeats=repeats)
        points.append(SpeedupPoint(k=k, baseline_ms=baseline_ms, drtopk_ms=dr_ms))
    return points


def speedup_table(points: List[SpeedupPoint]) -> Dict[int, float]:
    """Convenience: map k -> speedup."""
    return {p.k: p.speedup for p in points}
