"""The Section 5.2 analytic cost model (Equations 1-6).

The paper models the time of each Dr. Top-k stage purely in terms of global
memory accesses (cost :math:`C_{global}` cycles each) and CUDA shuffle
instructions (cost :math:`C_{shfl}` cycles each):

.. math::

    T_{Delegate} &= (1 + 2^{-\\alpha})\\,|V|\\,C_{global}
                    + 31\\,|V|\\,2^{-\\alpha}\\,C_{shfl}          \\\\
    T_{FirstK}   &= 5\\,|V|\\,2^{-\\alpha}\\,C_{global} + 2 k C_{global} \\\\
    T_{Concat}   &= k\\,C_{global} + 2 k 2^{\\alpha} C_{global}   \\\\
    T_{SecondK}  &= 4 k 2^{\\alpha} C_{global}

and the total (Equation 6)

.. math::

    T = 31 |V| 2^{-\\alpha} C_{shfl}
        + (6 |V| 2^{-\\alpha} + 6 k 2^{\\alpha} + 2k + |V|)\\,C_{global}.

Times returned here are in *cycles* (the unit the paper's derivation uses);
only ratios and the location of the minimum matter, which is what Rule 4 and
the Figure 13/14 experiments rely on.  Device-specific millisecond estimates
come from :mod:`repro.gpusim.costmodel` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.device import DeviceSpec, V100S

__all__ = [
    "CostParameters",
    "t_delegate",
    "t_first_k",
    "t_concat",
    "t_second_k",
    "total_time",
]

#: Shuffle instructions per subrange reduction (sum_{i=1..5} 32 / 2^i).
SHUFFLES_PER_SUBRANGE = 31


@dataclass(frozen=True)
class CostParameters:
    """The two latency constants of the Section 5.2 model."""

    c_global: float = 400.0
    c_shfl: float = 30.0

    @classmethod
    def from_device(cls, device: DeviceSpec = V100S) -> "CostParameters":
        """Take the constants from a simulated device specification."""
        return cls(c_global=device.c_global, c_shfl=device.c_shfl)

    def __post_init__(self) -> None:
        if self.c_global <= 0 or self.c_shfl <= 0:
            raise ConfigurationError("latency constants must be positive")


def _validate(n: float, k: float, alpha: float) -> None:
    if n < 1 or k < 1:
        raise ConfigurationError("|V| and k must be >= 1")
    if alpha < 0:
        raise ConfigurationError("alpha must be non-negative")


def t_delegate(n: float, alpha: float, params: CostParameters = CostParameters()) -> float:
    """Equation 2: delegate-vector construction cost (cycles)."""
    _validate(n, 1, alpha)
    subranges = n / (2.0 ** alpha)
    return (n + subranges) * params.c_global + SHUFFLES_PER_SUBRANGE * subranges * params.c_shfl


def t_first_k(
    n: float, k: float, alpha: float, params: CostParameters = CostParameters()
) -> float:
    """Equation 3: first top-k cost (cycles)."""
    _validate(n, k, alpha)
    subranges = n / (2.0 ** alpha)
    return 5.0 * subranges * params.c_global + 2.0 * k * params.c_global


def t_concat(k: float, alpha: float, params: CostParameters = CostParameters()) -> float:
    """Equation 4: concatenation cost (cycles)."""
    _validate(1, k, alpha)
    return k * params.c_global + 2.0 * k * (2.0 ** alpha) * params.c_global


def t_second_k(k: float, alpha: float, params: CostParameters = CostParameters()) -> float:
    """Equation 5: second top-k cost (cycles)."""
    _validate(1, k, alpha)
    return 4.0 * k * (2.0 ** alpha) * params.c_global


def total_time(
    n: float, k: float, alpha: float, params: CostParameters = CostParameters()
) -> float:
    """Equation 6: total Dr. Top-k cost (cycles)."""
    return (
        t_delegate(n, alpha, params)
        + t_first_k(n, k, alpha, params)
        + t_concat(k, alpha, params)
        + t_second_k(k, alpha, params)
    )


def breakdown(
    n: float, k: float, alpha: float, params: CostParameters = CostParameters()
) -> dict:
    """All four stage costs plus the total, keyed by stage name."""
    parts = {
        "delegate_construction": t_delegate(n, alpha, params),
        "first_topk": t_first_k(n, k, alpha, params),
        "concatenation": t_concat(k, alpha, params),
        "second_topk": t_second_k(k, alpha, params),
    }
    parts["total"] = float(sum(parts.values()))
    return parts


def second_derivative_in_alpha(
    n: float, k: float, alpha: float, params: CostParameters = CostParameters()
) -> float:
    """Equation 8: the second derivative of the total cost w.r.t. alpha.

    Positive for every positive ``n``, ``k``, ``C_global`` and ``C_shfl``,
    which is the convexity argument behind Rule 4.
    """
    _validate(n, k, alpha)
    ln2sq = np.log(2.0) ** 2
    term_decreasing = (
        (SHUFFLES_PER_SUBRANGE * params.c_shfl + 6.0 * params.c_global)
        * n
        * ln2sq
        * 2.0 ** (-alpha)
    )
    term_increasing = 6.0 * k * params.c_global * ln2sq * 2.0 ** alpha
    return term_decreasing + term_increasing
