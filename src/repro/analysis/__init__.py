"""Theory and analysis tools (paper Section 5.2).

* :mod:`repro.analysis.theory` — the per-step cost Equations 2-6 and the total
  cost Equation 6, evaluated for arbitrary ``|V|``, ``k``, ``alpha`` and
  device constants.
* :mod:`repro.analysis.alpha_tuning` — Rule 4: the closed-form optimal
  subrange size, convexity verification, oracle grid search and the
  auto-tuner used by the pipeline.
* :mod:`repro.analysis.speedup` — helpers to build the speedup tables/series
  of Figures 17-19.
"""

from repro.analysis.theory import (
    CostParameters,
    t_delegate,
    t_first_k,
    t_concat,
    t_second_k,
    total_time,
)
from repro.analysis.alpha_tuning import (
    optimal_alpha,
    optimal_alpha_exact,
    rule4_const,
    oracle_alpha,
    alpha_sweep,
    is_convex_in_alpha,
)
from repro.analysis.speedup import speedup_series, SpeedupPoint

__all__ = [
    "CostParameters",
    "t_delegate",
    "t_first_k",
    "t_concat",
    "t_second_k",
    "total_time",
    "optimal_alpha",
    "optimal_alpha_exact",
    "rule4_const",
    "oracle_alpha",
    "alpha_sweep",
    "is_convex_in_alpha",
    "speedup_series",
    "SpeedupPoint",
]
