"""Rule 4: choosing the subrange size (Section 5.2, Figures 13-14).

The total cost (Equation 6) is convex in the subrange exponent ``alpha``; the
paper derives the optimum

.. math::

    \\alpha = \\tfrac{1}{2}\\left[\\log_2 |V| - \\log_2 k + Const\\right],
    \\qquad
    Const = \\log_2\\!\\big(6 C_{global} + 31 C_{shfl}\\big) - \\log_2\\!\\big(6 C_{global}\\big)
            \\;(+\\,\\Delta')

and sets ``Const = 3`` after performance tuning.  This module provides:

* :func:`optimal_alpha` — the Rule-4 closed form with the paper's constant,
* :func:`optimal_alpha_exact` — the same formula with ``Const`` computed from
  the device's latency constants (no empirical Δ′ correction),
* :func:`oracle_alpha` — grid search of the analytic cost model (or of a
  user-supplied measurement callable) over all feasible ``alpha``,
* :func:`alpha_sweep` / :func:`is_convex_in_alpha` — the Figure 13 sweep and
  its convexity check.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

import numpy as np

from repro.analysis.theory import CostParameters, total_time
from repro.errors import ConfigurationError

__all__ = [
    "rule4_const",
    "optimal_alpha",
    "optimal_alpha_exact",
    "oracle_alpha",
    "alpha_sweep",
    "is_convex_in_alpha",
]

#: The paper's empirically tuned Rule-4 constant.
PAPER_CONST = 3.0


def rule4_const(params: CostParameters = CostParameters()) -> float:
    """The analytic part of the Rule-4 constant (no Δ′ correction)."""
    return float(
        np.log2(6.0 * params.c_global + 31.0 * params.c_shfl) - np.log2(6.0 * params.c_global)
    )


def _check_nk(n: int, k: int) -> None:
    if n < 1 or k < 1:
        raise ConfigurationError("|V| and k must be >= 1")
    if k > n:
        raise ConfigurationError(f"k={k} must not exceed |V|={n}")


def optimal_alpha(n: int, k: int, const: float = PAPER_CONST) -> int:
    """Rule 4 with a given constant (default: the paper's tuned value 3).

    The result is rounded to the nearest integer and clipped to the feasible
    range ``[0, log2(n)]``.
    """
    _check_nk(n, k)
    raw = 0.5 * (np.log2(n) - np.log2(k) + const)
    hi = int(np.floor(np.log2(n)))
    return int(np.clip(int(round(raw)), 0, hi))


def optimal_alpha_exact(
    n: int, k: int, params: CostParameters = CostParameters()
) -> int:
    """Rule 4 with the constant derived from the device latency constants."""
    return optimal_alpha(n, k, const=rule4_const(params))


def alpha_sweep(
    n: int,
    k: int,
    alphas: Optional[Iterable[int]] = None,
    params: CostParameters = CostParameters(),
    evaluate: Optional[Callable[[int], float]] = None,
) -> Dict[int, float]:
    """Cost of every candidate ``alpha`` (Figure 13's x-axis sweep).

    ``evaluate`` may be supplied to measure real runs (e.g. wall-clock time of
    the pipeline at each alpha); by default the analytic Equation-6 cost is
    used.
    """
    _check_nk(n, k)
    if alphas is None:
        alphas = range(0, int(np.floor(np.log2(n))) + 1)
    fn = evaluate if evaluate is not None else (lambda a: total_time(n, k, a, params))
    return {int(a): float(fn(int(a))) for a in alphas}


def oracle_alpha(
    n: int,
    k: int,
    params: CostParameters = CostParameters(),
    evaluate: Optional[Callable[[int], float]] = None,
    alphas: Optional[Iterable[int]] = None,
) -> int:
    """The alpha with the lowest (analytic or measured) cost."""
    sweep = alpha_sweep(n, k, alphas=alphas, params=params, evaluate=evaluate)
    return min(sweep, key=sweep.get)


def is_convex_in_alpha(costs: Dict[int, float], tolerance: float = 1e-9) -> bool:
    """Check discrete convexity of an alpha → cost mapping.

    Convexity here means the successive differences are non-decreasing, which
    is the discrete analogue of the positive second derivative of Equation 8.
    """
    if len(costs) < 3:
        return True
    alphas = sorted(costs)
    values = [costs[a] for a in alphas]
    diffs = [
        (values[i + 1] - values[i]) / (alphas[i + 1] - alphas[i])
        for i in range(len(values) - 1)
    ]
    return all(diffs[i + 1] >= diffs[i] - tolerance for i in range(len(diffs) - 1))
