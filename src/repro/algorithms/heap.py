"""Priority-queue (min-heap) top-k.

The textbook approach the paper opens with: slide a size-``k`` min-heap over
the input, replacing the heap minimum whenever a larger element is met.  On a
single core this is the most efficient algorithm; on GPUs it parallelises
poorly because the many per-thread heaps must eventually be merged under
global synchronisation (Section 2.2), which is why pertinent GPU applications
use sort-and-choose or the partitioning algorithms instead.

Two variants are provided:

* :class:`HeapTopK` — a *blocked* streaming implementation that processes the
  input in chunks, keeping the running top-k with a partial selection per
  block.  This is the semantics of the priority-queue algorithm with NumPy
  acceleration so it is usable on multi-million element inputs.
* :meth:`HeapTopK.reference_topk` — the literal ``heapq`` loop, kept as an
  executable specification used by the test-suite oracle on small inputs.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.algorithms.base import ExecutionTrace, TopKAlgorithm

__all__ = ["HeapTopK"]


class HeapTopK(TopKAlgorithm):
    """Streaming priority-queue top-k (CPU baseline)."""

    name = "heap"
    distribution_stable = True

    def __init__(self, block_size: int = 1 << 20):
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.block_size = int(block_size)

    def _select(
        self, keys: np.ndarray, k: int, trace: Optional[ExecutionTrace]
    ) -> np.ndarray:
        n = keys.shape[0]
        # Running candidate pool: indices of the current top-k seen so far.
        pool_idx = np.empty(0, dtype=np.int64)
        blocks = 0
        for start in range(0, n, self.block_size):
            stop = min(start + self.block_size, n)
            block_idx = np.arange(start, stop, dtype=np.int64)
            cand_idx = np.concatenate([pool_idx, block_idx])
            cand_keys = keys[cand_idx]
            if cand_idx.shape[0] <= k:
                pool_idx = cand_idx
            else:
                part = np.argpartition(cand_keys, cand_idx.shape[0] - k)
                pool_idx = cand_idx[part[-k:]]
            blocks += 1
        if trace is not None:
            # The streaming pass reads every element once and keeps the heap
            # in fast (register/shared) storage; the final heap write-out is k
            # elements.  Heap maintenance is modelled as shared-memory traffic
            # proportional to n * log2(k) compare/swap operations.
            trace.add(
                "heap_topk",
                loads=n,
                stores=k,
                shared_loads=float(n) * max(np.log2(max(k, 2)), 1.0),
                kernels=blocks,
            )
        return pool_idx

    @staticmethod
    def reference_topk(values, k: int):
        """Literal min-heap top-k over a Python iterable (test oracle).

        Returns the top-``k`` largest values in descending order.
        """
        heap: list = []
        for x in values:
            if len(heap) < k:
                heapq.heappush(heap, x)
            elif x > heap[0]:
                heapq.heapreplace(heap, x)
        return sorted(heap, reverse=True)
