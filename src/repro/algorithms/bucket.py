"""Bucket top-k (Alabi et al. / GGKS style).

The algorithm repeatedly narrows a value range around the k-th element
(Section 2.2, Figure 1):

1. find the ``min``/``max`` of the current candidate set,
2. split that value range into ``num_buckets`` equal sub-ranges,
3. histogram the candidates into the buckets,
4. every element in a bucket strictly above the bucket containing the k-th
   element is *accepted* into the answer; the bucket containing the k-th
   element becomes the next candidate set,
5. repeat until the candidate range collapses or exactly enough candidates
   remain.

The number of iterations — and therefore the amount of data re-scanned — is
sensitive to the value distribution, which is why bucket top-k is unstable
across UD/ND/CD (Figure 4) and why the paper's CD dataset is constructed to
maximise its iteration count.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.algorithms.base import ExecutionTrace, TopKAlgorithm
from repro.errors import ConfigurationError

__all__ = ["BucketTopK"]

#: Hard iteration cap: a 64-bit value range divided by 256 buckets collapses in
#: at most ceil(64 / 8) = 8 iterations, so anything above this indicates a bug.
_MAX_ITERATIONS = 128


class BucketTopK(TopKAlgorithm):
    """Iterative equal-width bucket partitioning top-k."""

    name = "bucket"
    distribution_stable = False

    def __init__(self, num_buckets: int = 256):
        if num_buckets < 2:
            raise ConfigurationError("num_buckets must be at least 2")
        self.num_buckets = int(num_buckets)

    # -- internals -------------------------------------------------------------
    def _bucket_edges(self, lo: int, hi: int) -> np.ndarray:
        """Internal bucket boundaries (ascending, length ``num_buckets - 1``).

        Element with value ``v`` falls in bucket ``searchsorted(edges, v,
        'right')``; bucket ``num_buckets - 1`` therefore holds the largest
        values.  Edges are computed with Python integer arithmetic to stay
        exact for 64-bit keys.
        """
        span = int(hi) - int(lo) + 1
        edges = [
            int(lo) + (span * b) // self.num_buckets for b in range(1, self.num_buckets)
        ]
        return np.array(edges, dtype=np.uint64)

    def _select(
        self, keys: np.ndarray, k: int, trace: Optional[ExecutionTrace]
    ) -> np.ndarray:
        n = keys.shape[0]
        if k == 1:
            # The min/max pass already yields the answer (the paper notes
            # bucket top-k "performs fairly well when k = 1" for this reason).
            self.last_iterations = 1
            if trace is not None:
                trace.add("bucket_topk", loads=float(n), stores=1.0, kernels=1)
            return np.array([int(np.argmax(keys))], dtype=np.int64)
        candidates = np.arange(n, dtype=np.int64)
        accepted: List[np.ndarray] = []
        need = k
        self.last_iterations = 0

        for _ in range(_MAX_ITERATIONS):
            m = candidates.shape[0]
            vals = keys[candidates]
            if m <= need:
                accepted.append(candidates)
                need -= m
                break
            lo = int(vals.min())
            hi = int(vals.max())
            self.last_iterations += 1
            if lo == hi:
                if trace is not None:
                    trace.add("bucket_topk", loads=m, stores=need, kernels=1)
                accepted.append(candidates[:need])
                need = 0
                break
            edges = self._bucket_edges(lo, hi)
            bucket = np.searchsorted(edges, vals.astype(np.uint64), side="right")
            counts = np.bincount(bucket, minlength=self.num_buckets)
            # Elements in buckets >= b, for every b (non-increasing in b).
            from_top = np.cumsum(counts[::-1])[::-1]
            # Bucket of interest: the largest bucket index whose suffix count
            # still covers what we need.
            bucket_of_interest = int(np.max(np.nonzero(from_top >= need)[0]))
            above_mask = bucket > bucket_of_interest
            above_count = int(np.count_nonzero(above_mask))
            if trace is not None:
                # GGKS bucket select: a min/max + histogram pass, a pass that
                # scatters every candidate into its bucket bin (atomic counter
                # per bucket), and the compaction of the accepted elements and
                # of the bucket of interest.
                trace.add(
                    "bucket_topk",
                    loads=2.0 * m,
                    stores=float(m + above_count + int(counts[bucket_of_interest])),
                    atomics=float(m),
                    kernels=3,
                )
            if above_count:
                accepted.append(candidates[above_mask])
                need -= above_count
            candidates = candidates[bucket == bucket_of_interest]
            if need == 0:
                break
            if candidates.shape[0] == need:
                accepted.append(candidates)
                need = 0
                break
        else:  # pragma: no cover - defensive
            raise ConfigurationError("bucket top-k failed to converge")

        if need > 0:
            # Remaining candidates all share one value; take any `need` of them.
            accepted.append(candidates[:need])
        return np.concatenate(accepted) if accepted else np.empty(0, dtype=np.int64)
