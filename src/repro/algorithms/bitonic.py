"""Bitonic top-k (Shanbhag et al.).

The algorithm arranges the input into sorted runs of length ``k`` and then
repeatedly merges pairs of adjacent runs: the ``2k`` elements of a pair form a
bitonic sequence from which the top ``k`` survive, halving the vector at every
level until a single run of ``k`` elements remains (Section 2.2, Figure 2).

The workload reduction is therefore exactly 2x per level, independent of the
value distribution — bitonic top-k is the *stable* baseline of Figure 4 — but
the merge must keep the ``2k``-element working set in GPU shared memory to be
fast.  The original CUDA kernel overflows shared memory for ``k > 256``
(Section 6.1); this implementation models that limit by charging the merge's
intermediate traffic to global memory once the working set no longer fits,
which reproduces the dramatic slow-down of bitonic top-k for large ``k``
(Figures 4 and 18).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import ExecutionTrace, TopKAlgorithm
from repro.errors import ConfigurationError
from repro.utils import next_power_of_two

__all__ = ["BitonicTopK"]

#: Largest k for which the 2k-element merge working set (keys + payload
#: indices, double buffered) still fits in one SM's shared memory at a usable
#: occupancy.  The paper states the released kernel supports k <= 256.
SHARED_MEMORY_MAX_K = 256


class BitonicTopK(TopKAlgorithm):
    """Bitonic merge based top-k."""

    name = "bitonic"
    distribution_stable = True

    def __init__(self, shared_memory_max_k: int = SHARED_MEMORY_MAX_K):
        if shared_memory_max_k < 1:
            raise ConfigurationError("shared_memory_max_k must be positive")
        self.shared_memory_max_k = int(shared_memory_max_k)

    def _select(
        self, keys: np.ndarray, k: int, trace: Optional[ExecutionTrace]
    ) -> np.ndarray:
        n = keys.shape[0]
        run = next_power_of_two(k)
        # Pad the input to a power-of-two multiple of the run length with
        # minimal keys; padded slots carry index -1 and are repaired at the end.
        num_runs = next_power_of_two(max((n + run - 1) // run, 1))
        padded = num_runs * run
        pad = padded - n
        if pad:
            work_keys = np.concatenate([keys, np.zeros(pad, dtype=keys.dtype)])
            work_idx = np.concatenate(
                [np.arange(n, dtype=np.int64), np.full(pad, -1, dtype=np.int64)]
            )
        else:
            work_keys = keys.copy()
            work_idx = np.arange(n, dtype=np.int64)

        # Level 0: sort every run of `run` elements (ascending).
        mat_keys = work_keys.reshape(num_runs, run)
        mat_idx = work_idx.reshape(num_runs, run)
        order = np.argsort(mat_keys, axis=1, kind="stable")
        mat_keys = np.take_along_axis(mat_keys, order, axis=1)
        mat_idx = np.take_along_axis(mat_idx, order, axis=1)
        spill = run > self.shared_memory_max_k
        if trace is not None:
            self._trace_level(trace, "bitonic_local_sort", padded, run, spill)

        # Merge levels: pairs of runs -> top `run` of each 2*run bitonic block.
        while mat_keys.shape[0] > 1:
            rows = mat_keys.shape[0]
            merged_keys = np.concatenate(
                [mat_keys[0::2], mat_keys[1::2]], axis=1
            )  # (rows/2, 2*run)
            merged_idx = np.concatenate([mat_idx[0::2], mat_idx[1::2]], axis=1)
            part = np.argpartition(merged_keys, merged_keys.shape[1] - run, axis=1)
            top = part[:, -run:]
            mat_keys = np.take_along_axis(merged_keys, top, axis=1)
            mat_idx = np.take_along_axis(merged_idx, top, axis=1)
            # Keep rows sorted ascending so later merges remain bitonic.
            order = np.argsort(mat_keys, axis=1, kind="stable")
            mat_keys = np.take_along_axis(mat_keys, order, axis=1)
            mat_idx = np.take_along_axis(mat_idx, order, axis=1)
            if trace is not None:
                self._trace_level(trace, "bitonic_merge", rows * run, run, spill)

        final_keys = mat_keys[0]
        final_idx = mat_idx[0]
        # Take the k largest of the final run (run >= k by construction).
        take = np.argsort(final_keys, kind="stable")[-k:]
        selected = final_idx[take]
        selected_keys = final_keys[take]
        if np.any(selected == -1):
            selected = self._repair_padding(keys, selected, selected_keys)
        return selected.astype(np.int64)

    # -- helpers -------------------------------------------------------------
    def _trace_level(
        self,
        trace: ExecutionTrace,
        name: str,
        elements: int,
        run: int,
        spill: bool,
    ) -> None:
        """Charge the traffic of one merge/sort level.

        When the 2k working set fits in shared memory the level reads the
        participating elements once and writes half of them back; the
        log2(2k) bitonic stages happen in shared memory.  When it does not
        fit, every bitonic stage round-trips through global memory.
        """
        pairs = float(elements)
        stages = max(int(np.log2(max(2 * run, 2))), 1)
        if spill:
            trace.add(
                name,
                loads=pairs * stages,
                stores=pairs * stages / 2.0,
                kernels=stages,
            )
        else:
            trace.add(
                name,
                loads=pairs,
                stores=pairs / 2.0,
                shared_loads=pairs * stages,
                shared_stores=pairs * stages,
                kernels=1,
            )

    @staticmethod
    def _repair_padding(
        keys: np.ndarray, selected: np.ndarray, selected_keys: np.ndarray
    ) -> np.ndarray:
        """Replace padded slots (-1) by real, unselected elements of equal key.

        A padded slot can only displace a real element whose key equals the
        padding key (the dtype minimum), so equal-key replacements always
        exist while the input length is >= k.
        """
        pad_positions = np.nonzero(selected == -1)[0]
        needed = pad_positions.shape[0]
        pad_key = selected_keys[pad_positions[0]]
        candidates = np.nonzero(keys == pad_key)[0]
        already = set(selected[selected >= 0].tolist())
        replacements = [c for c in candidates.tolist() if c not in already][:needed]
        if len(replacements) < needed:
            raise ConfigurationError("bitonic padding repair failed (internal error)")
        repaired = selected.copy()
        repaired[pad_positions] = np.asarray(replacements, dtype=np.int64)
        return repaired
