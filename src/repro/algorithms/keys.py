"""Order-preserving key transforms.

The paper's algorithms (radix, bucket, the delegate pipeline) operate on
unsigned 32-bit integers.  To support arbitrary real dtypes — the kNN
application produces float distances, the degree-centrality application
produces int64 counts — inputs are mapped to unsigned integer *keys* whose
unsigned ordering matches the original total ordering:

* unsigned ints: identity,
* signed ints: flip the sign bit,
* IEEE-754 floats: flip the sign bit for non-negative values, flip every bit
  for negative values (the classic radix-sortable float encoding).

Smallest-k queries reuse largest-k machinery by complementing the key
(``~key``), which reverses the unsigned order.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["to_keys", "key_bits", "supported_dtype"]

_UINT_FOR_SIZE = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


def supported_dtype(dtype: np.dtype) -> bool:
    """Whether ``dtype`` can be converted to sortable unsigned keys."""
    dtype = np.dtype(dtype)
    return dtype.kind in "uif" and dtype.itemsize in _UINT_FOR_SIZE


def key_bits(dtype: np.dtype) -> int:
    """Number of key bits used for a given input dtype."""
    dtype = np.dtype(dtype)
    if not supported_dtype(dtype):
        raise ConfigurationError(f"unsupported dtype for top-k keys: {dtype}")
    return dtype.itemsize * 8


def to_keys(v: np.ndarray, largest: bool = True) -> np.ndarray:
    """Map ``v`` to unsigned keys whose ascending order ranks the query.

    The returned array ``key`` satisfies: element ``i`` is preferred over
    element ``j`` (i.e. ranks earlier in the top-k answer) exactly when
    ``key[i] > key[j]``, regardless of ``largest``.  NaNs are not supported
    and raise :class:`ConfigurationError` (the paper's inputs are integral).
    """
    v = np.asarray(v)
    dtype = v.dtype
    if not supported_dtype(dtype):
        raise ConfigurationError(f"unsupported dtype for top-k keys: {dtype}")
    utype = _UINT_FOR_SIZE[dtype.itemsize]
    nbits = dtype.itemsize * 8
    if dtype.kind == "u":
        keys = v.astype(utype, copy=True)
    elif dtype.kind == "i":
        keys = v.view(utype) ^ utype(1 << (nbits - 1))
    else:  # float
        if np.isnan(v).any():
            raise ConfigurationError("NaN values are not supported in top-k inputs")
        bits = v.view(utype)
        sign = utype(1 << (nbits - 1))
        # Negative floats: flip all bits.  Non-negative: set the sign bit.
        keys = np.where(bits & sign != 0, ~bits, bits | sign)
    if not largest:
        keys = ~keys
    return keys.astype(utype, copy=False)


def split_key_value(
    v: np.ndarray, largest: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(keys, original_indices)`` for a 1-D input vector."""
    keys = to_keys(v, largest=largest)
    return keys, np.arange(v.shape[0], dtype=np.int64)
