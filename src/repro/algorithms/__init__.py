"""Top-k algorithm substrate.

This package contains from-scratch implementations of every top-k /
k-selection algorithm the paper builds on or compares against:

================  ==========================================================
``heap``          textbook priority-queue top-k (CPU baseline, Section 1)
``sortchoose``    sort-and-choose (THRUST-style, Section 2.2)
``bucket``        bucket top-k / k-selection (Alabi et al., GGKS)
``radix``         MSD radix top-k: out-of-place, naive in-place (GGKS) and
                  the paper's flag-optimised in-place variant (Section 5.1)
``bitonic``       bitonic top-k (Shanbhag et al.) with the shared-memory
                  capacity limit modelled
================  ==========================================================

Every algorithm implements the :class:`~repro.algorithms.base.TopKAlgorithm`
interface, works on arbitrary real dtypes through the order-preserving key
transforms in :mod:`repro.algorithms.keys`, supports both largest- and
smallest-k queries, and can record its simulated GPU traffic into an
:class:`~repro.algorithms.base.ExecutionTrace`.

The module-level :func:`topk` / :func:`kth_value` helpers dispatch by
algorithm name through a registry, which is also how the Dr. Top-k pipeline
selects its first/second top-k algorithm.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.base import ExecutionTrace, TopKAlgorithm, register_algorithm
from repro.algorithms.heap import HeapTopK
from repro.algorithms.sort_choose import SortAndChooseTopK
from repro.algorithms.bucket import BucketTopK
from repro.algorithms.radix import RadixTopK, InPlaceRadixTopK, FlagRadixTopK
from repro.algorithms.bitonic import BitonicTopK
from repro.errors import ConfigurationError
from repro.types import TopKResult

__all__ = [
    "TopKAlgorithm",
    "ExecutionTrace",
    "HeapTopK",
    "SortAndChooseTopK",
    "BucketTopK",
    "RadixTopK",
    "InPlaceRadixTopK",
    "FlagRadixTopK",
    "BitonicTopK",
    "get_algorithm",
    "available_algorithms",
    "topk",
    "kth_value",
    "register_algorithm",
]

# Registry population: one canonical instance per algorithm name.
_DEFAULTS = (
    HeapTopK(),
    SortAndChooseTopK(),
    BucketTopK(),
    RadixTopK(),
    InPlaceRadixTopK(),
    FlagRadixTopK(),
    BitonicTopK(),
)
for _algo in _DEFAULTS:
    register_algorithm(_algo)


def available_algorithms() -> Tuple[str, ...]:
    """Names of every registered top-k algorithm."""
    from repro.algorithms.base import _REGISTRY

    return tuple(sorted(_REGISTRY))


def get_algorithm(name: str) -> TopKAlgorithm:
    """Look up a registered algorithm by name (case insensitive)."""
    from repro.algorithms.base import _REGISTRY

    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown top-k algorithm {name!r}; available: {', '.join(available_algorithms())}"
        ) from None


def topk(
    v: np.ndarray,
    k: int,
    largest: bool = True,
    algorithm: str = "radix",
    trace: Optional[ExecutionTrace] = None,
) -> TopKResult:
    """Find the top ``k`` elements of ``v`` with the named algorithm.

    Parameters
    ----------
    v:
        One dimensional input vector (any real dtype).
    k:
        Number of elements to select.
    largest:
        Select the largest (default) or smallest elements.
    algorithm:
        Registered algorithm name (see :func:`available_algorithms`).
    trace:
        Optional :class:`ExecutionTrace` that receives the simulated GPU
        kernel steps the algorithm performed.
    """
    return get_algorithm(algorithm).topk(v, k, largest=largest, trace=trace)


def kth_value(
    v: np.ndarray,
    k: int,
    largest: bool = True,
    algorithm: str = "radix",
    trace: Optional[ExecutionTrace] = None,
):
    """Return the k-th largest (or smallest) value of ``v`` (k-selection)."""
    return get_algorithm(algorithm).kth_value(v, k, largest=largest, trace=trace)
