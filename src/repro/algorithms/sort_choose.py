"""Sort-and-choose top-k (THRUST-style baseline).

Sort the whole input and take the last ``k`` elements.  This performs far more
work than necessary — there is no need to order the elements outside the top-k
range — which is exactly the inefficiency the partitioning top-k algorithms
(and Dr. Top-k) remove.  It is included because Figure 17 compares against it
and because it is the configuration real GPU applications most commonly ship.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import ExecutionTrace, TopKAlgorithm

__all__ = ["SortAndChooseTopK"]

#: A GPU radix sort of 32-bit keys performs this many full passes over the
#: data (8 bits per pass), each reading and writing every element.  Used for
#: the traffic model only.
RADIX_SORT_PASSES = 4


class SortAndChooseTopK(TopKAlgorithm):
    """Full sort followed by choosing the top ``k`` elements."""

    name = "sortchoose"
    distribution_stable = True
    # One stable full sort: the top-K suffix extends the top-k suffix, so tie
    # choices nest across k.
    prefix_consistent = True

    def _select(
        self, keys: np.ndarray, k: int, trace: Optional[ExecutionTrace]
    ) -> np.ndarray:
        n = keys.shape[0]
        order = np.argsort(keys, kind="stable")
        if trace is not None:
            # Model as an LSD radix sort of (key, index) pairs: every pass
            # streams the full array in and out, plus the final k-element gather.
            per_pass = float(n) * 2.0  # key + payload
            trace.add(
                "sort_and_choose",
                loads=per_pass * RADIX_SORT_PASSES + k,
                stores=per_pass * RADIX_SORT_PASSES + k,
                kernels=RADIX_SORT_PASSES + 1,
            )
        return order[-k:]
