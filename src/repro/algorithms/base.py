"""Common interface, execution tracing and registry for top-k algorithms.

Every algorithm solves the *canonical key problem*: given an array of unsigned
integer keys (produced by :mod:`repro.algorithms.keys`), return the indices of
``k`` keys such that no excluded key is strictly greater than an included one.
The public :meth:`TopKAlgorithm.topk` wrapper handles dtype conversion, the
largest/smallest criterion, result assembly and (optionally) simulated-GPU
traffic tracing, so concrete algorithms only implement
:meth:`TopKAlgorithm._select` on keys.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.keys import to_keys
from repro.errors import ConfigurationError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import DeviceSpec, V100S
from repro.gpusim.kernel import KernelStep
from repro.gpusim.memory import MemoryCounters
from repro.types import TopKResult
from repro.utils import check_k, ensure_1d

__all__ = ["ExecutionTrace", "TopKAlgorithm", "register_algorithm"]


@dataclass
class ExecutionTrace:
    """Accumulates the simulated GPU kernel steps an algorithm performed.

    Algorithms call :meth:`add` with element-granularity traffic counts; the
    trace converts them into :class:`~repro.gpusim.kernel.KernelStep` records
    which can later be priced on any device.
    """

    itemsize: int = 4
    steps: List[KernelStep] = field(default_factory=list)

    def add(
        self,
        name: str,
        *,
        loads: float = 0.0,
        stores: float = 0.0,
        shared_loads: float = 0.0,
        shared_stores: float = 0.0,
        shuffles: float = 0.0,
        atomics: float = 0.0,
        utilization: float = 1.0,
        kernels: int = 1,
    ) -> KernelStep:
        """Append one kernel step with the given traffic counts (in elements)."""
        counters = MemoryCounters(
            global_loads=float(loads),
            global_stores=float(stores),
            shared_loads=float(shared_loads),
            shared_stores=float(shared_stores),
            shuffles=float(shuffles),
            atomics=float(atomics),
            itemsize=self.itemsize,
            utilization=utilization,
        )
        step = KernelStep(name=name, counters=counters, kernels=kernels)
        self.steps.append(step)
        return step

    def extend(self, steps: List[KernelStep]) -> None:
        """Append already-built kernel steps."""
        self.steps.extend(steps)

    def total_counters(self) -> MemoryCounters:
        """Aggregate traffic over every recorded step."""
        return MemoryCounters.total(s.counters for s in self.steps)

    def step_times_ms(self, device: DeviceSpec = V100S) -> Dict[str, float]:
        """Estimated per-step-name milliseconds on ``device``."""
        model = CostModel(device)
        out: Dict[str, float] = {}
        for step in self.steps:
            out[step.name] = out.get(step.name, 0.0) + model.estimate_ms(
                step.counters, kernels=step.kernels
            )
        return out

    def total_time_ms(self, device: DeviceSpec = V100S) -> float:
        """Estimated total milliseconds on ``device``."""
        return float(sum(self.step_times_ms(device).values()))


#: Global algorithm registry, keyed by lower-case algorithm name.
_REGISTRY: Dict[str, "TopKAlgorithm"] = {}


def register_algorithm(algo: "TopKAlgorithm") -> "TopKAlgorithm":
    """Register ``algo`` under its :attr:`~TopKAlgorithm.name`."""
    if not algo.name:
        raise ConfigurationError("algorithm must define a non-empty name")
    _REGISTRY[algo.name.lower()] = algo
    return algo


class TopKAlgorithm(ABC):
    """Abstract base class for all top-k algorithms.

    Subclasses implement :meth:`_select`, which works purely on unsigned keys
    and returns the indices of a valid top-k set (largest keys win).  The base
    class provides the user-facing :meth:`topk` / :meth:`kth_value` API.
    """

    #: Registry name; subclasses must override.
    name: str = ""
    #: Whether the algorithm is stable under value-distribution changes
    #: (bitonic is; bucket and radix are not — Figure 4).
    distribution_stable: bool = False
    #: Whether ``topk(v, K).indices[:k] == topk(v, k).indices`` for every
    #: ``k <= K`` — i.e. the algorithm's tie choices nest, so one selection at
    #: the largest ``k`` serves every smaller ``k`` by slicing.  The fused
    #: group path (:mod:`repro.service.fusion`) relies on this attribute to
    #: decide when a shared selection may be sliced per query; algorithms that
    #: cannot guarantee it keep the exact per-query calls.
    prefix_consistent: bool = False

    # -- subclass contract ----------------------------------------------------
    @abstractmethod
    def _select(
        self, keys: np.ndarray, k: int, trace: Optional[ExecutionTrace]
    ) -> np.ndarray:
        """Return indices of ``k`` keys forming a valid top-k (largest) set."""

    # -- public API -----------------------------------------------------------
    def topk(
        self,
        v: np.ndarray,
        k: int,
        largest: bool = True,
        trace: Optional[ExecutionTrace] = None,
    ) -> TopKResult:
        """Select the top ``k`` elements of ``v``.

        The returned values are sorted by preference (most extreme first) and
        ``indices`` point into ``v``.
        """
        v = ensure_1d(v)
        k = check_k(k, v.shape[0])
        keys = to_keys(v, largest=largest)
        idx = np.asarray(self._select(keys, k, trace), dtype=np.int64)
        if idx.shape[0] != k:
            raise ConfigurationError(
                f"{self.name} returned {idx.shape[0]} indices for k={k}"
            )
        # Order the selected elements by preference (descending key).
        order = np.argsort(keys[idx], kind="stable")[::-1]
        idx = idx[order]
        return TopKResult(values=v[idx], indices=idx, k=k, largest=largest)

    def kth_value(
        self,
        v: np.ndarray,
        k: int,
        largest: bool = True,
        trace: Optional[ExecutionTrace] = None,
    ):
        """Return only the k-th element (k-selection)."""
        return self.topk(v, k, largest=largest, trace=trace).kth_value

    # -- helpers shared by subclasses -----------------------------------------
    @staticmethod
    def _complete_with_ties(
        keys: np.ndarray,
        above_idx: np.ndarray,
        tie_idx: np.ndarray,
        k: int,
    ) -> np.ndarray:
        """Combine indices strictly above the threshold with tie indices.

        ``above_idx`` are positions whose keys are strictly greater than the
        k-th key; ``tie_idx`` are positions equal to it.  The result keeps all
        of ``above_idx`` and fills the remainder from ``tie_idx``.
        """
        need = k - above_idx.shape[0]
        if need < 0:
            raise ConfigurationError("internal error: more than k elements above threshold")
        if need > tie_idx.shape[0]:
            raise ConfigurationError("internal error: not enough tie elements to fill top-k")
        return np.concatenate([above_idx, tie_idx[:need]])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
