"""Radix top-k: out-of-place, naive in-place (GGKS) and flag-optimised in-place.

Radix top-k walks the key's digits from the Most Significant Digit to the
Least Significant Digit, ``bits_per_pass`` (default 8) bits at a time
(Section 2.2).  At every pass it histograms the current candidates by digit,
accepts every element whose digit is larger than the digit of the k-th
element, and recurses into the digit bucket containing the k-th element.

Three variants are implemented because the paper distinguishes them:

``RadixTopK`` (out-of-place)
    Candidates for the next pass are compacted into a new, smaller array.
    Fast when the digit distribution spreads values out, but each pass pays a
    store of the surviving candidates.

``InPlaceRadixTopK`` (GGKS in-place)
    Never compacts.  Every pass re-scans the whole input and *overwrites*
    ineligible elements with a value outside the range of interest (zero).
    The scattered writes are the "excessive random memory accesses" the paper
    criticises; they are modelled as low-utilisation store traffic.

``FlagRadixTopK`` (Dr. Top-k's optimised in-place, Section 5.1)
    Keeps a single ``(flag, mask)`` pair describing the digits selected so
    far; each pass filters elements with ``(key & mask) == flag`` on the fly
    and never writes to the input.  Figure 12 reports this variant to be on
    average 10.7x faster than the GGKS in-place design.

All variants share the digit-selection logic in :class:`_RadixBase` and return
identical results; only their memory-traffic behaviour differs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.base import ExecutionTrace, TopKAlgorithm
from repro.errors import ConfigurationError

__all__ = ["RadixTopK", "InPlaceRadixTopK", "FlagRadixTopK"]


class _RadixBase(TopKAlgorithm):
    """Shared machinery for the radix top-k variants."""

    def __init__(self, bits_per_pass: int = 8):
        if bits_per_pass < 1 or bits_per_pass > 16:
            raise ConfigurationError("bits_per_pass must be in [1, 16]")
        self.bits_per_pass = int(bits_per_pass)

    # -- helpers ----------------------------------------------------------------
    def _shifts(self, keys: np.ndarray) -> List[int]:
        """MSD-to-LSD bit shifts for the key dtype."""
        total_bits = keys.dtype.itemsize * 8
        shifts = list(range(total_bits - self.bits_per_pass, -1, -self.bits_per_pass))
        if shifts and shifts[-1] != 0:
            shifts.append(0)
        return shifts

    def _digit_of_interest(
        self, digits: np.ndarray, need: int
    ) -> Tuple[int, int]:
        """Return ``(digit, count_above)`` for the digit holding the k-th element."""
        radix = 1 << self.bits_per_pass
        counts = np.bincount(digits, minlength=radix)
        from_top = np.cumsum(counts[::-1])[::-1]
        digit = int(np.max(np.nonzero(from_top >= need)[0]))
        count_above = int(from_top[digit + 1]) if digit + 1 < radix else 0
        return digit, count_above


class RadixTopK(_RadixBase):
    """Out-of-place MSD radix top-k (candidates compacted every pass)."""

    name = "radix"
    distribution_stable = False

    def _select(
        self, keys: np.ndarray, k: int, trace: Optional[ExecutionTrace]
    ) -> np.ndarray:
        candidates = np.arange(keys.shape[0], dtype=np.int64)
        accepted: List[np.ndarray] = []
        need = k
        self.last_iterations = 0
        mask_digit = (1 << self.bits_per_pass) - 1

        for shift in self._shifts(keys):
            m = candidates.shape[0]
            if m <= need:
                break
            self.last_iterations += 1
            digits = ((keys[candidates] >> shift) & mask_digit).astype(np.int64)
            digit, count_above = self._digit_of_interest(digits, need)
            above = candidates[digits > digit]
            nxt = candidates[digits == digit]
            if trace is not None:
                trace.add(
                    "radix_topk",
                    loads=float(m),
                    stores=float(above.shape[0] + nxt.shape[0]),
                    kernels=2,
                )
            if above.shape[0]:
                accepted.append(above)
                need -= above.shape[0]
            candidates = nxt
            if need == 0 or candidates.shape[0] == need:
                break

        if need > 0:
            accepted.append(candidates[:need])
        return np.concatenate(accepted) if accepted else np.empty(0, dtype=np.int64)


class InPlaceRadixTopK(_RadixBase):
    """GGKS-style in-place radix top-k (re-scans and overwrites ineligible data).

    The user's input is never actually modified (a working copy of the key
    array is used), but the traffic of zeroing out ineligible elements is
    charged exactly as the original kernel would incur it: one scattered store
    per newly-ineligible element at poor memory utilisation.
    """

    name = "radix_inplace"
    distribution_stable = False
    #: Effective bandwidth fraction for scattered single-element writes: a
    #: 4-byte random write moves a full 32-byte sector and, with ECC, becomes
    #: a read-modify-write, so the achieved bandwidth is a small fraction of
    #: the streaming rate (this is the "excessive random memory accesses"
    #: penalty behind Figure 12).
    scatter_utilization = 0.0625

    def _select(
        self, keys: np.ndarray, k: int, trace: Optional[ExecutionTrace]
    ) -> np.ndarray:
        n = keys.shape[0]
        work = keys.copy()
        indices = np.arange(n, dtype=np.int64)
        live = np.ones(n, dtype=bool)  # not yet zeroed out
        accepted: List[np.ndarray] = []
        need = k
        self.last_iterations = 0
        mask_digit = (1 << self.bits_per_pass) - 1

        for shift in self._shifts(keys):
            live_idx = indices[live]
            m = live_idx.shape[0]
            if m <= need:
                break
            self.last_iterations += 1
            digits = ((work[live_idx] >> shift) & mask_digit).astype(np.int64)
            digit, _ = self._digit_of_interest(digits, need)
            above_idx = live_idx[digits > digit]
            keep_idx = live_idx[digits == digit]
            drop_idx = live_idx[digits < digit]
            if above_idx.shape[0]:
                accepted.append(above_idx)
                need -= above_idx.shape[0]
            # "Modify the ineligible element ... into a value that is assured
            # to fall out of the value range of interest (e.g., zero)".
            work[drop_idx] = 0
            work[above_idx] = 0  # accepted elements also leave the range of interest
            live[drop_idx] = False
            live[above_idx] = False
            if trace is not None:
                # The kernel always streams the full input vector ...
                trace.add("radix_inplace_scan", loads=float(n), kernels=1)
                # ... and scatters zeros over the newly ineligible elements
                # (read-modify-write of the touched sectors).
                zeroed = float(drop_idx.shape[0] + above_idx.shape[0])
                trace.add(
                    "radix_inplace_zero",
                    loads=zeroed,
                    stores=zeroed,
                    utilization=self.scatter_utilization,
                    kernels=1,
                )
            if need == 0 or keep_idx.shape[0] == need:
                if keep_idx.shape[0] == need and need > 0:
                    accepted.append(keep_idx)
                    need = 0
                break

        if need > 0:
            remaining = indices[live][: need]
            accepted.append(remaining)
        return np.concatenate(accepted) if accepted else np.empty(0, dtype=np.int64)


class FlagRadixTopK(_RadixBase):
    """Dr. Top-k's flag-based in-place radix top-k (Section 5.1).

    A single ``(flag, mask)`` pair tracks the radix prefix of interest.  Every
    pass streams the input once and evaluates ``(key & mask) == flag`` to
    decide whether an element is still a candidate — no stores, no scattered
    writes.  A final pass extracts the top-k elements.
    """

    name = "radix_flag"
    distribution_stable = False
    # The (flag, mask) prefix narrows to the k-th key's radix prefix; elements
    # above the prefix are emitted in position order and ties inside it fill
    # stably, so selections at larger k extend smaller-k selections exactly.
    prefix_consistent = True

    def _select(
        self, keys: np.ndarray, k: int, trace: Optional[ExecutionTrace]
    ) -> np.ndarray:
        n = keys.shape[0]
        dtype = keys.dtype
        need_type = np.uint64  # wide enough for any supported key dtype
        flag = need_type(0)
        mask = need_type(0)
        accepted_count_by_value = 0
        self.last_iterations = 0
        mask_digit = (1 << self.bits_per_pass) - 1
        keys64 = keys.astype(need_type, copy=False)

        # The number of elements still needed from inside the current prefix.
        need = k
        for shift in self._shifts(keys):
            candidate_mask = (keys64 & mask) == flag
            cand = keys64[candidate_mask]
            m = cand.shape[0]
            if trace is not None:
                trace.add("radix_flag_scan", loads=float(n), kernels=1)
            if m <= need:
                break
            self.last_iterations += 1
            digits = ((cand >> need_type(shift)) & need_type(mask_digit)).astype(np.int64)
            digit, count_above = self._digit_of_interest(digits, need)
            need -= count_above
            accepted_count_by_value += count_above
            # Extend the prefix of interest by this pass's digit.
            mask = mask | (need_type(mask_digit) << need_type(shift))
            flag = flag | (need_type(digit) << need_type(shift))
            if need == 0:
                break

        # Final extraction pass: elements above the prefix's upper bound were
        # accepted "by value" during the digit passes; elements matching the
        # prefix fill the remaining `need` slots.
        threshold_mask = (keys64 & mask) == flag
        prefix_candidates = np.nonzero(threshold_mask)[0]
        if need > 0:
            order = np.argsort(keys64[prefix_candidates], kind="stable")
            inside = prefix_candidates[order[-need:]]
        else:
            inside = np.empty(0, dtype=np.int64)
        if int(mask):
            above_prefix = np.nonzero(keys64 > _prefix_upper_bound(flag, mask))[0]
        else:
            above_prefix = np.empty(0, dtype=np.int64)
        if trace is not None:
            trace.add("radix_flag_extract", loads=float(n), stores=float(k), kernels=1)
        result = np.concatenate([above_prefix, inside])
        if result.shape[0] != k:
            # Defensive fallback; should not happen but guarantees correctness.
            order_all = np.argsort(keys64, kind="stable")
            result = order_all[-k:]
        return result.astype(np.int64)


def _prefix_upper_bound(flag: np.uint64, mask: np.uint64) -> np.uint64:
    """Largest key value inside the prefix ``(flag, mask)``.

    Keys strictly greater than this bound were accepted "by value" in earlier
    passes (their digit exceeded the digit of interest).
    """
    full = np.uint64(np.iinfo(np.uint64).max)
    return np.uint64(flag | (~mask & full))
