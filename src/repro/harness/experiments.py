"""Experiment runners — one per figure/table of the paper's evaluation.

Every runner returns a list of dictionaries (rows) whose columns mirror the
quantities the paper plots or tabulates.  The defaults use laptop-scale inputs
(|V| around 2^18 - 2^20) for everything that executes real data, and the
paper's own scales (2^30 and up) wherever only the analytic cost model is
evaluated; callers (the benchmark suite, EXPERIMENTS.md generation) can pass
larger sizes explicitly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms import get_algorithm
from repro.algorithms.base import ExecutionTrace
from repro.analysis.alpha_tuning import optimal_alpha, oracle_alpha
from repro.analysis.speedup import estimated_time_ms, speedup_series
from repro.bmw.bmw import bmw_vector_workload
from repro.core.config import ConstructionStrategy, DrTopKConfig
from repro.core.drtopk import DrTopK
from repro.core.workload import expected_workload
from repro.datasets.registry import get_dataset
from repro.distributed.multigpu import MultiGpuDrTopK, estimate_scalability_row
from repro.errors import ConfigurationError
from repro.gpusim.device import DeviceSpec, V100S, get_device

__all__ = [
    "fig04_baseline_instability",
    "fig06_max_delegate_breakdown",
    "fig07_filtering_breakdown",
    "fig09_beta_sweep",
    "fig10_beta_breakdown",
    "fig12_inplace_radix_speedup",
    "fig13_alpha_convexity",
    "fig14_alpha_autotune",
    "fig15_construction_optimized_breakdown",
    "fig17_time_vs_input_size",
    "fig18_speedup_synthetic",
    "fig19_speedup_realworld",
    "fig20_workload_vs_size",
    "fig21_workload_vs_k",
    "fig22_filter_vs_beta",
    "fig23_device_comparison",
    "fig24_bmw_ratio",
    "table2_multigpu_scalability",
    "table3_memory_transactions",
    "service_throughput",
    "async_service",
    "hotpath_reuse",
    "multivector_serving",
    "splitgroup_dispatch",
    "hotfuse",
    "loadgen_slo",
    "spillwarm",
]

#: Default measured input size (kept modest so the full harness runs quickly).
DEFAULT_N = 1 << 18
#: Default seed for every experiment (the paper averages five runs; we fix one).
DEFAULT_SEED = 2021

#: The paper's stand-alone comparators are the GGKS implementations, whose
#: radix variant re-scans and rewrites the full vector every pass; inside
#: Dr. Top-k the radix passes use the flag-optimised in-place variant
#: (Section 5.1).  These maps translate the paper's algorithm family names to
#: the concrete implementations used on each side of a comparison.
BASELINE_IMPL = {
    "radix": "radix_inplace",
    "bucket": "bucket",
    "bitonic": "bitonic",
    "sortchoose": "sortchoose",
}
ASSISTED_IMPL = {
    "radix": "radix_flag",
    "bucket": "bucket",
    "bitonic": "bitonic",
    "sortchoose": "sortchoose",
}

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _dataset_vector(name: str, n: int, seed: int) -> np.ndarray:
    return get_dataset(name).generate(n, seed=seed)


def _drtopk_config(**overrides) -> DrTopKConfig:
    return DrTopKConfig().replace(**overrides) if overrides else DrTopKConfig()


def _breakdown_rows(
    v: np.ndarray, ks: Sequence[int], config: DrTopKConfig, label: str
) -> List[Dict]:
    """Per-k step-time breakdown rows shared by Figures 6, 7, 10 and 15."""
    rows: List[Dict] = []
    for k in ks:
        engine = DrTopK(config)
        result = engine.topk(v, int(k))
        stats = result.stats
        assert stats is not None
        row: Dict = {
            "variant": label,
            "k": int(k),
            "alpha": stats.alpha,
            "delegate_ms": stats.step_times_ms.get("delegate_construction", 0.0),
            "first_topk_ms": stats.step_times_ms.get("first_topk", 0.0),
            "concat_ms": stats.step_times_ms.get("concatenation", 0.0),
            "second_topk_ms": stats.step_times_ms.get("second_topk", 0.0),
            "total_ms": stats.total_time_ms,
            "workload_fraction": stats.workload_fraction,
        }
        rows.append(row)
    return rows


def _default_ks(n: int, count: int = 6) -> List[int]:
    """Geometrically spaced k values up to n / 16."""
    hi = max(int(np.log2(max(n // 16, 2))), 1)
    exps = np.unique(np.linspace(0, hi, count).round().astype(int))
    return [1 << int(e) for e in exps]


# ---------------------------------------------------------------------------
# Figure 4 — performance (in)stability of the baselines across distributions
# ---------------------------------------------------------------------------


def fig04_baseline_instability(
    n: int = DEFAULT_N,
    ks: Optional[Sequence[int]] = None,
    datasets: Sequence[str] = ("UD", "ND", "CD"),
    algorithms: Sequence[str] = ("radix", "bucket", "bitonic"),
    device: DeviceSpec = V100S,
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Estimated time of each baseline on each distribution, for a k sweep."""
    ks = list(ks) if ks is not None else _default_ks(n)
    rows: List[Dict] = []
    for name in datasets:
        v = _dataset_vector(name, n, seed)
        for algo in algorithms:
            impl = BASELINE_IMPL.get(algo, algo)
            for k in ks:
                ms = estimated_time_ms(v, int(k), impl, device=device)
                rows.append(
                    {"dataset": name, "algorithm": algo, "k": int(k), "time_ms": ms}
                )
    return rows


# ---------------------------------------------------------------------------
# Figures 6, 7, 10, 15 — Dr. Top-k time breakdown as the design is refined
# ---------------------------------------------------------------------------


def fig06_max_delegate_breakdown(
    n: int = DEFAULT_N, ks: Optional[Sequence[int]] = None, seed: int = DEFAULT_SEED
) -> List[Dict]:
    """Maximum delegate only (Rule 1), no filtering, warp-centric construction."""
    ks = list(ks) if ks is not None else _default_ks(n)
    v = _dataset_vector("UD", n, seed)
    cfg = _drtopk_config(
        beta=1, use_filtering=False, construction=ConstructionStrategy.WARP_CENTRIC
    )
    return _breakdown_rows(v, ks, cfg, label="max_delegate")


def fig07_filtering_breakdown(
    n: int = DEFAULT_N, ks: Optional[Sequence[int]] = None, seed: int = DEFAULT_SEED
) -> List[Dict]:
    """Maximum delegate plus delegate-top-k-enabled filtering (Rule 2)."""
    ks = list(ks) if ks is not None else _default_ks(n)
    v = _dataset_vector("UD", n, seed)
    cfg = _drtopk_config(
        beta=1, use_filtering=True, construction=ConstructionStrategy.WARP_CENTRIC
    )
    return _breakdown_rows(v, ks, cfg, label="filtering")


def fig10_beta_breakdown(
    n: int = DEFAULT_N, ks: Optional[Sequence[int]] = None, seed: int = DEFAULT_SEED
) -> List[Dict]:
    """β delegate + filtering, before the construction optimisation (Section 5.3)."""
    ks = list(ks) if ks is not None else _default_ks(n)
    v = _dataset_vector("UD", n, seed)
    cfg = _drtopk_config(
        beta=2, use_filtering=True, construction=ConstructionStrategy.WARP_CENTRIC
    )
    return _breakdown_rows(v, ks, cfg, label="beta_warp_centric")


def fig15_construction_optimized_breakdown(
    n: int = DEFAULT_N, ks: Optional[Sequence[int]] = None, seed: int = DEFAULT_SEED
) -> List[Dict]:
    """The final design: β delegate + filtering + coalesced/strided construction."""
    ks = list(ks) if ks is not None else _default_ks(n)
    v = _dataset_vector("UD", n, seed)
    cfg = _drtopk_config(
        beta=2, use_filtering=True, construction=ConstructionStrategy.AUTO
    )
    return _breakdown_rows(v, ks, cfg, label="beta_optimized")


# ---------------------------------------------------------------------------
# Figure 9 — β sweep
# ---------------------------------------------------------------------------


def fig09_beta_sweep(
    n: int = DEFAULT_N,
    ks: Optional[Sequence[int]] = None,
    betas: Sequence[int] = (1, 2, 3, 4),
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Performance of each β normalised to β = 1 (larger is better)."""
    ks = list(ks) if ks is not None else _default_ks(n, count=4)
    v = _dataset_vector("UD", n, seed)
    rows: List[Dict] = []
    for k in ks:
        baseline_ms = None
        for beta in betas:
            cfg = _drtopk_config(beta=int(beta))
            result = DrTopK(cfg).topk(v, int(k))
            assert result.stats is not None
            total = result.stats.total_time_ms
            if beta == betas[0]:
                baseline_ms = total
            rows.append(
                {
                    "k": int(k),
                    "beta": int(beta),
                    "total_ms": total,
                    "normalised_to_beta1": (baseline_ms / total) if total > 0 else float("inf"),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 12 — flag-optimised in-place radix vs GGKS in-place radix
# ---------------------------------------------------------------------------


def fig12_inplace_radix_speedup(
    n: int = 1 << 18,
    ks: Optional[Sequence[int]] = None,
    device: DeviceSpec = V100S,
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Estimated-time speedup of the flag-based in-place radix over GGKS in-place."""
    ks = list(ks) if ks is not None else _default_ks(n, count=8)
    v = _dataset_vector("UD", n, seed)
    rows: List[Dict] = []
    for k in ks:
        ggks_ms = estimated_time_ms(v, int(k), "radix_inplace", device=device)
        flag_ms = estimated_time_ms(v, int(k), "radix_flag", device=device)
        rows.append(
            {
                "k": int(k),
                "ggks_inplace_ms": ggks_ms,
                "flag_inplace_ms": flag_ms,
                "speedup": ggks_ms / flag_ms if flag_ms > 0 else float("inf"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 13 & 14 — α tuning
# ---------------------------------------------------------------------------


def fig13_alpha_convexity(
    n: int = DEFAULT_N,
    k: int = 1 << 10,
    alphas: Optional[Sequence[int]] = None,
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Measured step breakdown for every α (the measured analogue of Figure 13)."""
    v = _dataset_vector("UD", n, seed)
    if alphas is None:
        # Stay inside the non-degenerate regime: the delegate vector (beta=2
        # delegates per subrange) must remain larger than k for the delegate
        # machinery to be meaningful, i.e. 2 * n / 2^alpha > k.
        hi = max(int(np.log2(n)) - int(np.log2(max(k, 1))) + 1, 3)
        alphas = list(range(1, min(hi, int(np.log2(n)) - 1)))
    rows: List[Dict] = []
    for a in alphas:
        # Figure 13 predates the Section 5.3 construction optimisation, so the
        # sweep uses the warp-centric kernel throughout; the AUTO strategy
        # would otherwise switch kernels mid-sweep and mask the convex shape.
        cfg = _drtopk_config(alpha=int(a), construction=ConstructionStrategy.WARP_CENTRIC)
        result = DrTopK(cfg).topk(v, int(k))
        stats = result.stats
        assert stats is not None
        rows.append(
            {
                "alpha": int(a),
                "delegate_ms": stats.step_times_ms.get("delegate_construction", 0.0),
                "first_topk_ms": stats.step_times_ms.get("first_topk", 0.0),
                "concat_ms": stats.step_times_ms.get("concatenation", 0.0),
                "second_topk_ms": stats.step_times_ms.get("second_topk", 0.0),
                "total_ms": stats.total_time_ms,
            }
        )
    return rows


def fig14_alpha_autotune(
    n: int = DEFAULT_N,
    ks: Optional[Sequence[int]] = None,
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Auto-tuned (Rule 4) α versus the oracle α found by exhaustive search."""
    v = _dataset_vector("UD", n, seed)
    ks = list(ks) if ks is not None else _default_ks(n)
    rows: List[Dict] = []
    hi = int(np.log2(n))
    for k in ks:
        def measure(alpha: int) -> float:
            result = DrTopK(_drtopk_config(alpha=int(alpha))).topk(v, int(k))
            assert result.stats is not None
            return result.stats.total_time_ms

        tuned = optimal_alpha(n, int(k))
        tuned = int(np.clip(tuned, 1, hi - 1))
        # Keep the oracle search inside the non-degenerate regime (the
        # delegate vector must stay larger than k), as the paper's sweep does.
        max_alpha = int(np.log2(max(n * 2 // max(int(k), 1), 4))) - 1
        candidate_alphas = range(
            max(tuned - 3, 1), max(min(tuned + 4, hi - 1, max_alpha), max(tuned - 3, 1) + 1)
        )
        oracle = oracle_alpha(n, int(k), evaluate=measure, alphas=candidate_alphas)
        rows.append(
            {
                "k": int(k),
                "auto_alpha": tuned,
                "oracle_alpha": int(oracle),
                "auto_ms": measure(tuned),
                "oracle_ms": measure(int(oracle)),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 17 — time versus input size, k = 1024
# ---------------------------------------------------------------------------


def fig17_time_vs_input_size(
    sizes: Optional[Sequence[int]] = None,
    k: int = 1024,
    device: DeviceSpec = V100S,
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Baselines vs Dr. Top-k-assisted variants as |V| grows."""
    sizes = list(sizes) if sizes is not None else [1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20]
    rows: List[Dict] = []
    baselines = ("radix", "bucket", "bitonic", "sortchoose")
    for n in sizes:
        v = _dataset_vector("UD", int(n), seed)
        for algo in baselines:
            rows.append(
                {
                    "n": int(n),
                    "system": algo,
                    "time_ms": estimated_time_ms(
                        v, k, BASELINE_IMPL.get(algo, algo), device=device
                    ),
                }
            )
        for algo in ("radix", "bucket", "bitonic"):
            impl = ASSISTED_IMPL[algo]
            cfg = _drtopk_config(first_algorithm=impl, second_algorithm=impl)
            result = DrTopK(cfg).topk(v, k)
            assert result.stats is not None
            rows.append(
                {
                    "n": int(n),
                    "system": f"drtopk+{algo}",
                    "time_ms": result.stats.total_time_ms,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 18 & 19 — speedup over the state of the art
# ---------------------------------------------------------------------------


def fig18_speedup_synthetic(
    n: int = DEFAULT_N,
    ks: Optional[Sequence[int]] = None,
    datasets: Sequence[str] = ("UD", "ND", "CD"),
    algorithms: Sequence[str] = ("radix", "bucket", "bitonic"),
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Speedup of Dr. Top-k-assisted algorithms over the stand-alone algorithms."""
    ks = list(ks) if ks is not None else _default_ks(n)
    rows: List[Dict] = []
    for name in datasets:
        v = _dataset_vector(name, n, seed)
        for algo in algorithms:
            points = speedup_series(
                v,
                ks,
                BASELINE_IMPL.get(algo, algo),
                assisted_algorithm=ASSISTED_IMPL.get(algo, algo),
            )
            for point in points:
                rows.append(
                    {
                        "dataset": name,
                        "algorithm": algo,
                        "k": point.k,
                        "baseline_ms": point.baseline_ms,
                        "drtopk_ms": point.drtopk_ms,
                        "speedup": point.speedup,
                    }
                )
    return rows


def fig19_speedup_realworld(
    n: int = DEFAULT_N,
    ks: Optional[Sequence[int]] = None,
    datasets: Sequence[str] = ("AN", "CW", "TR"),
    algorithms: Sequence[str] = ("radix", "bucket", "bitonic"),
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Same as Figure 18 but on the real-world workload surrogates."""
    ks = list(ks) if ks is not None else _default_ks(n, count=4)
    rows: List[Dict] = []
    for name in datasets:
        spec = get_dataset(name)
        v = spec.generate(n, seed=seed)
        for algo in algorithms:
            points = speedup_series(
                v,
                ks,
                BASELINE_IMPL.get(algo, algo),
                assisted_algorithm=ASSISTED_IMPL.get(algo, algo),
            )
            for point in points:
                rows.append(
                    {
                        "dataset": name,
                        "algorithm": algo,
                        "k": point.k,
                        "speedup": point.speedup,
                        "largest": spec.largest,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Figures 20 & 21 — workload statistics
# ---------------------------------------------------------------------------


def fig20_workload_vs_size(
    sizes: Optional[Sequence[int]] = None,
    k: int = 1 << 12,
    include_paper_scale: bool = True,
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """First/second top-k workload (fraction of |V|) as |V| grows, fixed k."""
    sizes = list(sizes) if sizes is not None else [1 << e for e in range(16, 21)]
    rows: List[Dict] = []
    for n in sizes:
        v = _dataset_vector("UD", int(n), seed)
        result = DrTopK(_drtopk_config()).topk(v, min(k, int(n) // 4))
        stats = result.stats
        assert stats is not None
        rows.append(
            {
                "n": int(n),
                "mode": "measured",
                "first_fraction": stats.first_topk_workload / n,
                "second_fraction": stats.second_topk_workload / n,
                "total_fraction": stats.workload_fraction,
            }
        )
    if include_paper_scale:
        for exp in (22, 24, 26, 28, 30):
            n = 1 << exp
            est = expected_workload(n, k)
            rows.append(
                {
                    "n": n,
                    "mode": "model",
                    "first_fraction": est.first_topk_workload / n,
                    "second_fraction": est.second_topk_workload / n,
                    "total_fraction": est.workload_fraction,
                }
            )
    return rows


def fig21_workload_vs_k(
    n: int = DEFAULT_N,
    ks: Optional[Sequence[int]] = None,
    include_paper_scale: bool = True,
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """First/second top-k workload as k grows, fixed |V|."""
    ks = list(ks) if ks is not None else _default_ks(n)
    v = _dataset_vector("UD", n, seed)
    rows: List[Dict] = []
    for k in ks:
        result = DrTopK(_drtopk_config()).topk(v, int(k))
        stats = result.stats
        assert stats is not None
        rows.append(
            {
                "k": int(k),
                "mode": "measured",
                "first_fraction": stats.first_topk_workload / n,
                "second_fraction": stats.second_topk_workload / n,
                "total_fraction": stats.workload_fraction,
            }
        )
    if include_paper_scale:
        paper_n = 1 << 30
        for exp in (0, 4, 8, 12, 16, 20, 24):
            k = 1 << exp
            est = expected_workload(paper_n, k)
            rows.append(
                {
                    "k": k,
                    "mode": "model(|V|=2^30)",
                    "first_fraction": est.first_topk_workload / paper_n,
                    "second_fraction": est.second_topk_workload / paper_n,
                    "total_fraction": est.workload_fraction,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 22 — filtering vs β delegate vs both
# ---------------------------------------------------------------------------


def fig22_filter_vs_beta(
    n: int = DEFAULT_N, ks: Optional[Sequence[int]] = None, seed: int = DEFAULT_SEED
) -> List[Dict]:
    """Ablation of the two workload-reduction mechanisms (Section 4.2 vs 4.3)."""
    ks = list(ks) if ks is not None else _default_ks(n)
    v = _dataset_vector("UD", n, seed)
    variants = {
        "filtering_only": _drtopk_config(beta=2, use_filtering=True, use_beta_rule=False),
        "beta_only": _drtopk_config(beta=2, use_filtering=False, use_beta_rule=True),
        "combined": _drtopk_config(beta=2, use_filtering=True, use_beta_rule=True),
    }
    rows: List[Dict] = []
    for k in ks:
        for label, cfg in variants.items():
            result = DrTopK(cfg).topk(v, int(k))
            assert result.stats is not None
            rows.append(
                {
                    "k": int(k),
                    "variant": label,
                    "total_ms": result.stats.total_time_ms,
                    "concatenated": result.stats.concatenated_size,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 23 — device comparison
# ---------------------------------------------------------------------------


def fig23_device_comparison(
    n: int = DEFAULT_N,
    ks: Optional[Sequence[int]] = None,
    devices: Sequence[str] = ("V100S", "TitanXp"),
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Estimated Dr. Top-k time on different simulated GPUs."""
    ks = list(ks) if ks is not None else _default_ks(n)
    v = _dataset_vector("UD", n, seed)
    rows: List[Dict] = []
    for k in ks:
        per_device = {}
        for dev_name in devices:
            device = get_device(dev_name)
            cfg = _drtopk_config(device=device)
            result = DrTopK(cfg).topk(v, int(k))
            assert result.stats is not None
            per_device[dev_name] = result.stats.total_time_ms
            rows.append({"k": int(k), "device": dev_name, "total_ms": per_device[dev_name]})
        first, second = devices[0], devices[1]
        rows.append(
            {
                "k": int(k),
                "device": f"{second}/{first} ratio",
                "total_ms": per_device[second] / per_device[first]
                if per_device[first] > 0
                else float("inf"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 24 — BMW vs Dr. Top-k workload ratio
# ---------------------------------------------------------------------------


def fig24_bmw_ratio(
    n: int = DEFAULT_N,
    ks: Optional[Sequence[int]] = None,
    datasets: Sequence[str] = ("ND", "UD"),
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Ratio of BMW's fully-evaluated workload to Dr. Top-k's total workload."""
    ks = list(ks) if ks is not None else _default_ks(n, count=5)
    rows: List[Dict] = []
    for name in datasets:
        v = _dataset_vector(name, n, seed)
        for k in ks:
            engine = DrTopK(_drtopk_config())
            result = engine.topk(v, int(k))
            stats = result.stats
            assert stats is not None
            dr_workload = max(stats.total_workload, 1)
            block_size = stats.subrange_size if stats.subrange_size > 0 else 1 << optimal_alpha(n, int(k))
            bmw = bmw_vector_workload(v, int(k), block_size=block_size)
            rows.append(
                {
                    "dataset": name,
                    "k": int(k),
                    "bmw_workload": bmw.fully_evaluated,
                    "drtopk_workload": dr_workload,
                    "ratio": bmw.fully_evaluated / dr_workload,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Table 2 — multi-GPU scalability
# ---------------------------------------------------------------------------


def table2_multigpu_scalability(
    size_exponents: Sequence[int] = (30, 31, 32, 33),
    k: int = 128,
    gpu_counts: Sequence[int] = (1, 2, 4, 8, 16),
    measured_n: Optional[int] = None,
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """The Table 2 grid (analytic at paper scale, optionally measured at small scale).

    When ``measured_n`` is given, an additional set of rows runs the real
    distributed workflow on a vector of that size with a proportionally scaled
    per-GPU capacity, exercising the same reload/communication code paths.
    """
    rows: List[Dict] = []
    for exp in size_exponents:
        n = 1 << int(exp)
        baseline = None
        for g in gpu_counts:
            report = estimate_scalability_row(n, k, int(g))
            if baseline is None:
                baseline = report
            rows.append(
                {
                    "mode": "model",
                    "|V|": f"2^{exp}",
                    "gpus": int(g),
                    "communication_ms": report.communication_ms,
                    "reload_ms": report.reload_ms,
                    "total_ms": report.total_ms,
                    "speedup": report.speedup_over(baseline),
                }
            )
    if measured_n:
        v = get_dataset("UD").generate(int(measured_n), seed=seed)
        capacity = max(int(measured_n) // 4, k)
        baseline = None
        for g in gpu_counts:
            runner = MultiGpuDrTopK(num_gpus=int(g), capacity_elements=capacity)
            runner.topk(v, k)
            report = runner.last_report
            assert report is not None
            if baseline is None:
                baseline = report
            rows.append(
                {
                    "mode": "measured",
                    "|V|": int(measured_n),
                    "gpus": int(g),
                    "communication_ms": report.communication_ms,
                    "reload_ms": report.reload_ms,
                    "total_ms": report.total_ms,
                    "speedup": report.speedup_over(baseline),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Table 3 — global memory transactions
# ---------------------------------------------------------------------------


def table3_memory_transactions(
    n: int = DEFAULT_N, k: int = 1 << 7, seed: int = DEFAULT_SEED
) -> List[Dict]:
    """Global load/store transactions of stand-alone vs Dr. Top-k-assisted algorithms."""
    v = _dataset_vector("UD", n, seed)
    rows: List[Dict] = []
    for algo in ("radix", "bucket", "bitonic"):
        trace = ExecutionTrace(itemsize=v.dtype.itemsize)
        get_algorithm(BASELINE_IMPL[algo]).topk(v, k, trace=trace)
        counters = trace.total_counters()
        rows.append(
            {
                "system": algo,
                "load_transactions": counters.load_transactions,
                "store_transactions": counters.store_transactions,
            }
        )
        impl = ASSISTED_IMPL[algo]
        cfg = _drtopk_config(first_algorithm=impl, second_algorithm=impl)
        engine = DrTopK(cfg)
        engine.topk(v, k)
        dr_counters = engine.last_trace.total_counters()
        rows.append(
            {
                "system": f"drtopk+{algo}",
                "load_transactions": dr_counters.load_transactions,
                "store_transactions": dr_counters.store_transactions,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Service layer — batched serving traffic vs a naive per-query loop
# ---------------------------------------------------------------------------


def service_throughput(
    n: int = DEFAULT_N,
    batch: int = 16,
    k: int = 1 << 10,
    dataset: str = "UD",
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Simulated bytes moved per query: naive per-query loop vs one batch.

    Both modes answer the same ``batch`` identical ``(k, largest)`` queries
    over one shared vector.  The naive loop re-runs the full pipeline per
    query (including delegate construction); the batched mode builds the
    shared plan once.  The ``identical`` column records whether the batched
    results matched the loop element-wise (values *and* indices).
    """
    from repro.service.batch import BatchTopK  # local import to avoid a cycle

    v = _dataset_vector(dataset, n, seed)
    queries = [(int(k), True)] * int(batch)

    # Naive loop: one full pipeline run per query.
    engine = DrTopK()
    loop_results = []
    loop_bytes = 0.0
    loop_construction_bytes = 0.0
    loop_ms = 0.0
    for kk, largest in queries:
        result = engine.topk(v, kk, largest=largest)
        loop_results.append(result)
        assert result.stats is not None
        loop_ms += result.stats.total_time_ms
        counters = engine.last_trace.total_counters()
        loop_bytes += counters.global_bytes
        loop_construction_bytes += sum(
            step.counters.global_bytes
            for step in engine.last_trace.steps
            if step.name == "delegate_construction"
        )

    # Batched: the shared plan is constructed once for the whole batch.
    service = BatchTopK()
    batch_results = service.run(v, queries)
    report = service.last_report
    assert report is not None
    identical = all(
        np.array_equal(a.values, b.values) and np.array_equal(a.indices, b.indices)
        for a, b in zip(loop_results, batch_results)
    )

    return [
        {
            "mode": "naive_loop",
            "queries": len(queries),
            "constructions": len(queries),
            "construction_bytes": loop_construction_bytes,
            "total_bytes": loop_bytes,
            "bytes_per_query": loop_bytes / len(queries),
            "est_ms": loop_ms,
            "identical": True,
        },
        {
            "mode": "batched",
            "queries": len(queries),
            "constructions": report.constructions,
            "construction_bytes": report.construction_bytes,
            "total_bytes": report.total_bytes,
            "bytes_per_query": report.bytes_per_query,
            "est_ms": report.total_ms,
            "identical": identical,
        },
    ]


# ---------------------------------------------------------------------------
# Service layer — sequential vs overlapped dispatch through the executor
# ---------------------------------------------------------------------------


def async_service(
    n: int = DEFAULT_N,
    batch: int = 16,
    k: int = 1 << 10,
    num_workers: int = 4,
    dataset: str = "UD",
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Measured wall-clock of sequential vs overlapped dispatch, same batch.

    The batch mixes ``(k, largest)`` shapes so the router places several
    plan-sharing groups on different workers; the same queries then dispatch
    twice — once with the executor in ``sequential`` mode (the baseline: one
    work unit after another on the calling thread) and once in ``threads``
    mode (units overlap on the pool; NumPy releases the GIL).  Each row
    reports the *measured* wall-clock next to the modelled ``compute_ms``:

    * ``unit_wall_ms_sum`` — per-unit wall times summed, i.e. zero-overlap
      cost.  The sequential row's value is the "sum of per-worker sequential
      times" that overlapped dispatch must beat on multi-core hosts.
    * ``wall_ms`` — what the dispatch actually took end to end.
    * ``identical`` — whether the mode's results matched the sequential
      baseline element-wise (values *and* indices); overlap must never
      change answers.
    """
    from repro.service.dispatcher import ServiceDispatcher  # local import to avoid a cycle

    v = _dataset_vector(dataset, n, seed)
    # Four (k, largest) shapes with widely spaced k, so the Rule-4 alphas
    # differ and the router spreads four plan groups over the workers.
    k = max(int(k), 4)
    queries = [(k if i % 2 == 0 else max(k >> 6, 1), i % 4 < 2) for i in range(int(batch))]

    rows: List[Dict] = []
    baseline = None
    for mode in ("sequential", "threads"):
        dispatcher = ServiceDispatcher(
            num_workers=num_workers, execution=mode, result_cache_capacity=0
        )
        results = dispatcher.dispatch(v, queries)
        report = dispatcher.last_report
        assert report is not None
        if baseline is None:
            baseline = results
        identical = all(
            np.array_equal(a.values, b.values) and np.array_equal(a.indices, b.indices)
            for a, b in zip(baseline, results)
        )
        rows.append(
            {
                "mode": mode,
                "queries": len(queries),
                "workers_used": sum(1 for w in report.workers if w.queries),
                "wall_ms": report.wall_ms,
                "unit_wall_ms_sum": report.unit_wall_ms_sum,
                "overlap_factor": report.measured_overlap_factor,
                "modelled_compute_ms": report.compute_ms,
                "communication_ms": report.communication_ms,
                "constructions": report.constructions,
                "identical": identical,
            }
        )
        dispatcher.shutdown()
    return rows


# ---------------------------------------------------------------------------
# Service layer — zero-rescan steady state: plan bank and chunk memo
# ---------------------------------------------------------------------------


def _same_alpha_variant(engine, n: int, k: int) -> int:
    """A ``k' != k`` whose Rule-4 ``alpha`` over ``n`` matches ``k``'s.

    The warm replay must present genuinely *changed* queries that still key
    the same banked plan; searching outward from ``k`` keeps the variant as
    close as the alpha landscape allows.
    """
    alpha = engine._resolve_alpha(n, k)
    for delta in range(1, n):
        for candidate in (k + delta, k - delta):
            if 1 <= candidate <= n and candidate != k:
                if engine._resolve_alpha(n, candidate) == alpha:
                    return candidate
    raise ConfigurationError(f"no same-alpha variant of k={k} exists for n={n}")


def hotpath_reuse(
    n: int = DEFAULT_N,
    batch: int = 16,
    num_workers: int = 4,
    dataset: str = "UD",
    seed: int = DEFAULT_SEED,
    warm_rounds: int = 3,
) -> List[Dict]:
    """Cold-vs-warm serving cost on all three routes, same vector each time.

    The *cold* dispatch is the first ever over the vector: every plan-sharing
    group pays ``to_keys`` plus the delegate-construction scan.  The *warm*
    dispatch replays a **changed** 16-query mix — every ``k`` is replaced by
    a different ``k`` that resolves the same Rule-4 ``alpha`` — so the result
    cache cannot serve it (and is disabled anyway, to isolate the bank); only
    the :class:`~repro.service.planbank.PlanBank` (batched/sharded) or the
    :class:`~repro.service.planbank.ChunkMemo` (streaming, an exact chunk
    replay) can remove work.  A warm row records the **minimum** wall-clock
    over ``warm_rounds`` replays (noise can only slow a replay down), and
    ``identical`` certifies the warm answers element-wise against a fresh,
    bank-less dispatcher given the same queries.

    The small ``k`` mix (2 … 16 at the default size) keeps the per-query
    passes sublinear next to the O(n) construction — the regime the paper's
    Section 5.3 optimisation targets — so the bytes the warm path avoids are
    dominated by exactly the construction scan the plan bank eliminates.
    """
    import time

    from repro.service.dispatcher import ServiceDispatcher

    v = _dataset_vector(dataset, n, seed)
    base_ks = [2, 4, 8, 16]
    cold_queries = [(base_ks[i % len(base_ks)], True) for i in range(int(batch))]

    rows: List[Dict] = []

    def run_route(route: str, make_dispatcher, payload, warm_payload, reference):
        dispatcher = make_dispatcher()
        start = time.perf_counter()
        dispatcher.dispatch(payload, cold_queries)
        cold_wall = (time.perf_counter() - start) * 1e3
        cold = dispatcher.last_report
        assert cold is not None and cold.route == route

        warm_wall = float("inf")
        warm = None
        warm_results = None
        for _ in range(int(warm_rounds)):
            start = time.perf_counter()
            warm_results = dispatcher.dispatch(warm_payload[0], warm_payload[1])
            warm_wall = min(warm_wall, (time.perf_counter() - start) * 1e3)
            warm = dispatcher.last_report
        assert warm is not None and warm_results is not None
        identical = all(
            np.array_equal(a.values, b.values) and np.array_equal(a.indices, b.indices)
            for a, b in zip(reference, warm_results)
        )
        dispatcher.shutdown()
        for mode, report, wall in (("cold", cold, cold_wall), ("warm", warm, warm_wall)):
            rows.append(
                {
                    "route": route,
                    "mode": mode,
                    "queries": report.num_queries,
                    "wall_ms": wall,
                    "bytes_moved": report.bytes_moved,
                    "constructions": report.constructions,
                    "construction_bytes": report.construction_bytes,
                    "plan_bank_hits": report.plan_bank_hits,
                    "chunk_memo_hits": report.chunk_memo_hits,
                    "identical": mode == "cold" or identical,
                }
            )

    # The result cache is disabled throughout: warm queries differ anyway on
    # the batched/sharded routes, and the streaming route bypasses it — the
    # rows isolate what the plan bank / chunk memo alone remove.
    def reference_results(payload, queries, **kwargs):
        with ServiceDispatcher(
            num_workers=num_workers, result_cache_capacity=0, **kwargs
        ) as fresh:
            return fresh.dispatch(payload, queries)

    engine = DrTopK()
    warm_queries = [
        (_same_alpha_variant(engine, n, k), largest) for k, largest in cold_queries
    ]
    batched_reference = reference_results(v, warm_queries, plan_bank_bytes=0)
    run_route(
        "batched",
        lambda: ServiceDispatcher(num_workers=num_workers, result_cache_capacity=0),
        v,
        (v, warm_queries),
        batched_reference,
    )

    # Sharded: shrink the per-device capacity so the same vector exceeds it.
    capacity = max(n // num_workers, max(k for k, _ in cold_queries))
    shard_engine = DrTopK()
    shard_warm = [
        (_same_alpha_variant(shard_engine, capacity, k), largest)
        for k, largest in cold_queries
    ]
    sharded_reference = reference_results(
        v, shard_warm, capacity_elements=capacity, plan_bank_bytes=0
    )
    run_route(
        "sharded",
        lambda: ServiceDispatcher(
            num_workers=num_workers,
            capacity_elements=capacity,
            result_cache_capacity=0,
        ),
        v,
        (v, shard_warm),
        sharded_reference,
    )

    # Streaming: an exact replay of the same chunked input; the chunk memo
    # serves every chunk's candidates with zero pipeline work.
    chunk = max(n // (2 * num_workers), 1)
    chunks = [v[i : i + chunk] for i in range(0, n, chunk)]
    streaming_reference = reference_results(
        list(chunks), cold_queries, chunk_memo_bytes=0
    )
    run_route(
        "streaming",
        lambda: ServiceDispatcher(num_workers=num_workers, result_cache_capacity=0),
        list(chunks),
        (list(chunks), cold_queries),
        streaming_reference,
    )
    return rows


# ---------------------------------------------------------------------------
# Service layer — named multi-vector serving: admit / query / evict lifecycle
# ---------------------------------------------------------------------------


def multivector_serving(
    n: int = 1 << 16,
    names: int = 4,
    num_workers: int = 4,
    dataset: str = "UD",
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """The named-vector serving lifecycle over a working set of vectors.

    ``names`` distinct vectors are admitted under names (fingerprinted once,
    plans pre-warmed for a small ``k`` mix), then each name serves a *warm*
    round of **changed** queries — every ``k`` replaced by a same-``alpha``
    variant, so only the plan bank (keyed by the admission-pinned
    fingerprint) can remove work — and finally one name is evicted.  Three
    phases, one row each per name:

    * ``admit`` — fingerprint calls spent at admission (one per vector on
      the batched route) and the warm-up's construction traffic: the only
      O(n) work in the lifecycle.
    * ``warm_query`` — the steady state: ``constructions``,
      ``construction_bytes`` and ``fingerprint_calls`` must all be zero,
      every plan group a bank hit, and ``identical`` certifies the answers
      element-wise against a fresh bank-less dispatcher.
    * ``evict`` — ``released_bytes`` is the banked plan bytes the eviction
      cascade freed (observable as the drop in the bank's ``CacheInfo``).

    The result cache is disabled throughout to isolate the plan path (warm
    queries are changed, so it could not serve them anyway).
    """
    from repro.service.cache import fingerprint_call_count
    from repro.service.dispatcher import ServiceDispatcher

    if names < 1:
        raise ConfigurationError("names must be >= 1")
    engine = DrTopK()
    base_ks = [4, 16, 64, 256]
    warm_queries = [(int(k), True) for k in base_ks if k <= n]
    changed = [
        (_same_alpha_variant(engine, n, k), largest) for k, largest in warm_queries
    ]
    vectors = {
        f"vec{i}": _dataset_vector(dataset, n, seed + i) for i in range(int(names))
    }

    rows: List[Dict] = []

    def row(name: str, phase: str, **extra) -> None:
        base = {
            "name": name,
            "phase": phase,
            "queries": 0,
            "constructions": 0,
            "construction_bytes": 0.0,
            "plan_bank_hits": 0,
            "fingerprint_calls": 0,
            "plan_bank_bytes": 0,
            "released_bytes": 0,
            "identical": True,
        }
        base.update(extra)
        rows.append(base)

    # Bank-less reference answers for the warm round (content is identical,
    # so one fresh dispatcher per name keeps the comparison honest).
    references = {}
    for name, v in vectors.items():
        with ServiceDispatcher(
            num_workers=num_workers, result_cache_capacity=0, plan_bank_bytes=0
        ) as fresh:
            references[name] = fresh.dispatch(v.copy(), changed)

    with ServiceDispatcher(num_workers=num_workers, result_cache_capacity=0) as d:
        for name, v in vectors.items():
            before = fingerprint_call_count()
            d.admit(name, v, warm=warm_queries)
            warmup = d.last_report
            assert warmup is not None
            row(
                name,
                "admit",
                queries=len(warm_queries),
                constructions=warmup.constructions,
                construction_bytes=warmup.construction_bytes,
                fingerprint_calls=fingerprint_call_count() - before,
                plan_bank_bytes=warmup.plan_bank.bytes if warmup.plan_bank else 0,
            )

        for name in vectors:
            before = fingerprint_call_count()
            results = d.query(name, changed)
            report = d.last_report
            assert report is not None
            identical = all(
                np.array_equal(a.values, b.values)
                and np.array_equal(a.indices, b.indices)
                for a, b in zip(references[name], results)
            )
            row(
                name,
                "warm_query",
                queries=len(changed),
                constructions=report.constructions,
                construction_bytes=report.construction_bytes,
                plan_bank_hits=report.plan_bank_hits,
                fingerprint_calls=fingerprint_call_count() - before,
                plan_bank_bytes=report.plan_bank.bytes if report.plan_bank else 0,
                identical=identical,
            )

        victim = next(iter(vectors))
        assert d.plan_bank is not None
        bank_before = d.plan_bank.info().bytes
        d.evict(victim)
        bank_after = d.plan_bank.info().bytes
        row(
            victim,
            "evict",
            plan_bank_bytes=bank_after,
            released_bytes=bank_before - bank_after,
        )
    return rows


# ---------------------------------------------------------------------------
# Service layer — split-group dispatch: one dominant group across the fleet
# ---------------------------------------------------------------------------


def splitgroup_dispatch(
    n: int = 1 << 16,
    dominant: int = 12,
    minor: int = 2,
    num_workers: int = 4,
    dataset: str = "UD",
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Dominant-group splitting vs pinned single-worker dispatch.

    One batch with a **dominant** plan-sharing group (``dominant`` queries of
    one ``(k, largest)``) plus a small minor group runs through two
    dispatchers over the same fleet: ``unsplit`` pins every group whole to
    one worker (``split_threshold=None``, the pre-split behaviour) and
    ``split`` uses the default threshold, so the dominant group spreads with
    a shared-plan broadcast.  Each mode dispatches a *cold* round and a
    *warm* replay (every ``k`` replaced by a same-``alpha`` variant, result
    cache disabled — only the plan bank can remove work).  On the warm
    round the groups are bank hits, so modelled work is per-query only and
    the dominant group holds ``dominant / (dominant + minor)`` of it — the
    imbalance the split exists to fix.

    Row columns: ``balance_ratio`` is the worst worker's modelled load over
    the even share (1.0 = perfectly balanced, ``num_workers`` = one worker
    holds everything); ``busy_workers`` counts workers that received
    queries; ``dominant_share`` is the dominant group's fraction of the
    dispatch's modelled work; ``identical`` certifies the split rows
    element-wise (values and indices) against the unsplit dispatch of the
    same phase.  ``per_split_work`` is the modelled workload each split of
    the dominant group carried (0 on unsplit rows), and every row repeats
    the ``tuned_min_split_work`` recommendation
    :func:`~repro.service.router.tune_min_split_work` derives from this
    run's balance history — the feedback loop behind the router's
    ``min_split_work`` default.  No wall-clock column is gated — the
    quantities are modelled, so the rows are meaningful on any host.
    """
    import time

    from repro.service.dispatcher import ServiceDispatcher

    if dominant < 2:
        raise ConfigurationError("dominant must be >= 2 (a 1-query group cannot split)")
    if minor < 0:
        raise ConfigurationError("minor must be >= 0")
    if num_workers < 2:
        raise ConfigurationError("num_workers must be >= 2 to observe splitting")

    v = _dataset_vector(dataset, n, seed)
    k = 64
    engine = DrTopK()
    cold_queries = [(k, True)] * int(dominant) + [(k, False)] * int(minor)
    warm_k = _same_alpha_variant(engine, n, k)
    warm_queries = [(warm_k, True)] * int(dominant) + [(warm_k, False)] * int(minor)

    # The dominant group's share of the modelled work, per phase, from the
    # router's own work model (bank-cold on the cold round, bank-hit warm).
    alpha = engine._resolve_alpha(n, k)
    beta = engine.config.beta
    from repro.service.cache import PartitionCache
    from repro.service.router import Router

    model = Router(num_workers=num_workers, capacity_elements=n + 1, cache=PartitionCache())

    def dominant_share(bank_hit: bool) -> float:
        dom = model.expected_group_work(n, [k] * int(dominant), alpha, beta, bank_hit)
        rest = (
            model.expected_group_work(n, [k] * int(minor), alpha, beta, bank_hit)
            if minor
            else 0.0
        )
        return dom / (dom + rest)

    def per_split_work(use_k: int) -> float:
        # Splitting spreads only the per-query work (the broadcast pays the
        # construction once) over at most the fleet — the same quantity the
        # router's min_split_work floor gates on.
        per_query = model.expected_query_work(n, use_k, alpha, beta)
        return per_query * int(dominant) / min(num_workers, int(dominant))

    rows: List[Dict] = []
    reference: Dict[str, List] = {}
    for mode, threshold in (("unsplit", None), ("split", "default")):
        kwargs = {} if threshold == "default" else {"split_threshold": None}
        with ServiceDispatcher(
            num_workers=num_workers, result_cache_capacity=0, **kwargs
        ) as d:
            for phase, queries in (("cold", cold_queries), ("warm", warm_queries)):
                start = time.perf_counter()
                results = d.dispatch(v, queries)
                wall_ms = (time.perf_counter() - start) * 1e3
                report = d.last_report
                assert report is not None and report.route == "batched"
                if mode == "unsplit":
                    reference[phase] = results
                    identical = True
                else:
                    identical = all(
                        np.array_equal(a.values, b.values)
                        and np.array_equal(a.indices, b.indices)
                        for a, b in zip(reference[phase], results)
                    )
                rows.append(
                    {
                        "mode": mode,
                        "phase": phase,
                        "queries": report.num_queries,
                        "groups_split": report.groups_split,
                        "plan_broadcasts": report.plan_broadcasts,
                        "constructions": report.constructions,
                        "construction_bytes": report.construction_bytes,
                        "plan_bank_hits": report.plan_bank_hits,
                        "busy_workers": sum(1 for w in report.workers if w.queries),
                        "balance_ratio": report.balance_ratio,
                        "dominant_share": dominant_share(bank_hit=phase == "warm"),
                        "per_split_work": (
                            per_split_work(k if phase == "cold" else warm_k)
                            if report.groups_split
                            else 0.0
                        ),
                        "wall_ms": wall_ms,
                        "identical": identical,
                    }
                )
    from repro.service.router import tune_min_split_work

    tuned = tune_min_split_work(rows)
    for row in rows:
        row["tuned_min_split_work"] = tuned
    return rows


def loadgen_slo(
    n: int = 1 << 14,
    requests: int = 160,
    num_workers: int = 4,
    queue_capacity: int = 4,
    underload_rps: float = 2.0,
    overload_rps: float = 20000.0,
    dataset: str = "UD",
    seed: int = DEFAULT_SEED,
    export_dir: Optional[str] = None,
) -> List[Dict]:
    """Tail latency and admission control under production-shaped traffic.

    Drives one :class:`~repro.service.dispatcher.ServiceDispatcher` (three
    hot batched names, one sharded name, one streaming payload; Zipfian
    popularity, mixed ``k``) through three load phases with the
    :class:`~repro.service.loadgen.LoadHarness`:

    * ``underload`` — open-loop Poisson at ``underload_rps``: inter-arrival
      gaps are orders of magnitude above the millisecond-scale service
      times, so the bounded queue never fills and **no** request is shed or
      degraded.  The sanity phase: admission control must be invisible when
      there is headroom.
    * ``overload`` — open-loop Poisson at ``overload_rps``, far beyond the
      single server's capacity, under the ``degrade`` policy: the queue
      model saturates, batched/sharded arrivals fall back to warm
      result-cache answers and streaming arrivals (nothing cacheable) shed,
      so ``shed + degraded > 0`` while the arrival loop never blocks.
    * ``closed`` — ``num_workers`` closed-loop users with a small think
      time: offered load self-regulates, the gate the open-loop phases are
      contrasted against.

    Per-request latency is queue wait (FIFO model over the measured service
    times) plus the measured dispatch wall-clock; the per-unit executor
    measurements ride along in the samples.  One row per (phase, route)
    plus a per-phase ``all`` aggregate; ``export_dir`` (optional) addition-
    ally writes ``loadgen.prom`` / ``loadgen.csv`` with every phase's
    Prometheus series and rows.  No wall-clock column is gated — the
    shed/degrade counts and percentile *orderings* are deterministic per
    seed, the millisecond values are host-dependent.
    """
    from pathlib import Path

    from repro.service.dispatcher import ServiceDispatcher
    from repro.service.loadgen import LoadHarness, PoissonArrivals, RequestProfile

    if requests < 10:
        raise ConfigurationError("requests must be >= 10 for stable percentiles")

    rng = np.random.default_rng(seed)
    warm_mix = [(8, True), (16, True)]
    with ServiceDispatcher(
        num_workers=num_workers,
        capacity_elements=n,
        queue_capacity=queue_capacity,
    ) as dispatcher:
        for name in ("hot", "warm", "cold"):
            dispatcher.admit(name, _dataset_vector(dataset, n, seed), warm=warm_mix)
            seed += 1
        wide = np.concatenate([_dataset_vector(dataset, n, seed + i) for i in range(4)])
        dispatcher.admit("wide", wide, warm=warm_mix)
        streams = {"ticks": [rng.standard_normal(n // 4).astype(np.float32) for _ in range(4)]}
        profiles = [
            RequestProfile(route="batched", names=("hot", "warm", "cold"), ks=(8, 16), weight=3.0),
            RequestProfile(route="sharded", names=("wide",), ks=(8, 16)),
            RequestProfile(route="streaming", names=("ticks",), ks=(8,)),
        ]

        def harness(policy: str) -> LoadHarness:
            return LoadHarness(
                dispatcher,
                profiles,
                streams=streams,
                queue_capacity=queue_capacity,
                policy=policy,
                seed=seed,
            )

        underload = harness("shed").run_open(
            PoissonArrivals(underload_rps, seed=seed), requests // 4
        )
        overload = harness("degrade").run_open(
            PoissonArrivals(overload_rps, seed=seed), requests
        )
        closed = harness("shed").run_closed(
            concurrency=num_workers, requests=requests // 4, think_seconds=0.001
        )
        reports = [("underload", underload), ("overload", overload), ("closed", closed)]

    rows: List[Dict] = []
    for phase, report in reports:
        for row in report.to_rows():
            rows.append({"phase": phase, **row})

    if export_dir is not None:
        from repro.harness.reporting import rows_to_csv

        out = Path(export_dir)
        out.mkdir(parents=True, exist_ok=True)
        prom = "".join(r.to_prometheus(labels={"phase": phase}) for phase, r in reports)
        (out / "loadgen.prom").write_text(prom)
        (out / "loadgen.csv").write_text(rows_to_csv(rows) + "\n")
    return rows


# ---------------------------------------------------------------------------
# Service layer — fused group execution: one selection pass per plan group
# ---------------------------------------------------------------------------


def hotfuse(
    n: int = 1 << 16,
    batch: int = 16,
    dataset: str = "UD",
    seed: int = DEFAULT_SEED,
    warm_rounds: int = 3,
) -> List[Dict]:
    """Fused vs per-query selection on one plan-sharing group, cold and warm.

    One batch of ``batch`` queries whose ``k``\\ s all resolve the same
    Rule-4 ``alpha`` — a single ``(alpha, largest)`` group — dispatches
    through two single-worker dispatchers: ``unfused`` runs the pre-fusion
    per-query pipeline (one gather/filter/selection per query) and ``fused``
    routes the group through :func:`~repro.service.fusion.fused_group_topk`
    (one shared pass at ``max(k)``, per-query answers sliced and refined
    from the shared candidate set).  A single worker keeps the group whole —
    the dominant-group split would otherwise shear it into per-worker
    passes — and the result cache is disabled so the *warm* replay (the
    same queries, banked plan, minimum wall over ``warm_rounds``) actually
    dispatches instead of being served verbatim.

    The rows carry the fused hot path's own accounting: ``selection_calls``
    (the gate — one per group fused, one per query unfused),
    ``arena_hits``/``arena_misses`` (the scratch-buffer arena's per-dispatch
    deltas; warm fused dispatches must *hit*), the per-stage wall-clocks the
    fusion path measures (``stage_*_ms``, the lightweight profile hook), and
    ``identical`` — every row's answers certified element-wise (values
    *and* indices) against the stand-alone engine.

    A final ``process`` row round-trips the same queries through the
    sharded route under ``execution="process"``: the admitted vector
    crosses the process boundary once, into a shared-memory segment
    (``shared_memory_units`` shards gathered without pickling the vector),
    and ``identical`` certifies against a thread-mode dispatcher.  No
    wall-clock column is gated — walls are host-dependent; the counter
    columns are deterministic.
    """
    import time

    from repro.service.dispatcher import ServiceDispatcher
    from repro.service.fusion import reset_arenas

    if batch < 2:
        raise ConfigurationError("batch must be >= 2 (a 1-query group cannot fuse)")

    v = _dataset_vector(dataset, n, seed)
    queries = [(100 + i, True) for i in range(int(batch))]
    engine = DrTopK()
    reference = [engine.topk(v, k, largest=largest) for k, largest in queries]

    def certify(results) -> bool:
        return all(
            np.array_equal(a.values, b.values) and np.array_equal(a.indices, b.indices)
            for a, b in zip(reference, results)
        )

    stage_names = ("first_ms", "gather_ms", "refine_ms", "second_ms", "fallback_ms")
    rows: List[Dict] = []

    def row(mode: str, phase: str, report, wall_ms: float, identical: bool, **extra):
        base = {
            "mode": mode,
            "phase": phase,
            "route": report.route,
            "queries": report.num_queries,
            "selection_calls": report.selection_calls,
            "fused_groups": report.fused_groups,
            "fused_queries": report.fused_queries,
            "constructions": report.constructions,
            "construction_bytes": report.construction_bytes,
            "plan_bank_hits": report.plan_bank_hits,
            "arena_hits": report.arena_hits,
            "arena_misses": report.arena_misses,
            "process_units": report.process_units,
            "process_fallbacks": report.process_fallbacks,
            "shared_memory_units": report.shared_memory_units,
            "wall_ms": wall_ms,
            "identical": identical,
        }
        for name in stage_names:
            base[f"stage_{name}"] = report.fusion_stage_ms.get(name, 0.0)
        base.update(extra)
        rows.append(base)

    for mode, fused in (("unfused", False), ("fused", True)):
        reset_arenas()
        with ServiceDispatcher(
            num_workers=1, result_cache_capacity=0, fused=fused
        ) as d:
            start = time.perf_counter()
            cold_results = d.dispatch(v, queries)
            cold_wall = (time.perf_counter() - start) * 1e3
            cold = d.last_report
            assert cold is not None and cold.route == "batched"
            row(mode, "cold", cold, cold_wall, certify(cold_results))

            warm_wall = float("inf")
            warm = None
            warm_results = None
            for _ in range(int(warm_rounds)):
                start = time.perf_counter()
                warm_results = d.dispatch(v, queries)
                warm_wall = min(warm_wall, (time.perf_counter() - start) * 1e3)
                warm = d.last_report
            assert warm is not None and warm_results is not None
            row(mode, "warm", warm, warm_wall, certify(warm_results))

    # Process-mode sharding: same queries, vector admitted once into shared
    # memory, every shard gathered by a worker process.
    with ServiceDispatcher(
        num_workers=2, capacity_elements=n // 2, result_cache_capacity=0
    ) as threads:
        threads.admit("vec", v.copy())
        want = threads.query("vec", queries)
    with ServiceDispatcher(
        num_workers=2,
        capacity_elements=n // 2,
        result_cache_capacity=0,
        execution="process",
    ) as d:
        d.admit("vec", v.copy())
        start = time.perf_counter()
        got = d.query("vec", queries)
        wall = (time.perf_counter() - start) * 1e3
        report = d.last_report
        assert report is not None and report.route == "sharded"
        identical = all(
            np.array_equal(a.values, b.values) and np.array_equal(a.indices, b.indices)
            for a, b in zip(want, got)
        )
        row("process", "sharded", report, wall, identical)
    return rows


def spillwarm(
    n: int = 1 << 14,
    names: int = 8,
    num_workers: int = 2,
    dataset: str = "UD",
    seed: int = DEFAULT_SEED,
    spill_dir: Optional[str] = None,
) -> List[Dict]:
    """Out-of-core serving and warm restart through the durable spill tier.

    A working set of ``names`` vectors — **4x** the store's RAM byte budget —
    is admitted into a spill-backed dispatcher (plans pre-warmed with
    ``warm_mode="prepare"``, one fingerprint call per vector and none after),
    then five phases, one row each per name or per step:

    * ``admit`` — admission cost: ``fingerprint_calls`` must be exactly 1
      per vector; eviction pressure spills cold-and-large victims to disk
      instead of dropping them.
    * ``serve`` — every name answers the full ``k`` mix while only a quarter
      of the set fits in RAM.  ``identical`` certifies values *and* indices
      element-wise against an all-resident reference dispatcher;
      ``within_budget`` certifies the resident bytes never exceeded the
      budget; ``spill_serves`` counts answers served straight off read-only
      mmap views.
    * ``save`` — :meth:`ServiceDispatcher.save_state` persists the resident
      remainder and the plan bank's geometry into the manifest.
    * ``restart`` — a **new** dispatcher over the same directory:
      ``load_state`` re-attaches the manifest and rebuilds plans over the
      spill files' mmaps with **zero** ``fingerprint_array`` calls, then
      every name's first query must show zero constructions and zero
      construction bytes (``plan_bank_hits`` > 0) with identical answers.
    * ``readmit`` — ``admit(name)`` with no vector re-warms one spilled
      name from the manifest alone: zero fingerprint calls, zero
      constructions, identical answers.

    ``spill_dir=None`` uses a fresh temporary directory (removed at exit);
    the result cache is disabled throughout so only the spill tier and the
    plan bank can remove work.
    """
    import tempfile

    from repro.service.cache import fingerprint_call_count
    from repro.service.dispatcher import ServiceDispatcher

    if names < 4:
        raise ConfigurationError("names must be >= 4 (the budget is names/4)")
    ks = [8, 32, 128]
    queries = [(int(k), True) for k in ks if k <= n]
    vectors = {
        f"vec{i}": _dataset_vector(dataset, n, seed + i) for i in range(int(names))
    }
    one = next(iter(vectors.values())).nbytes
    # RAM budget: a quarter of the working set, so serving the full set is
    # necessarily out-of-core.
    budget = one * (int(names) // 4)

    rows: List[Dict] = []

    def row(name: str, phase: str, **extra) -> None:
        base = {
            "name": name,
            "phase": phase,
            "queries": 0,
            "constructions": 0,
            "construction_bytes": 0.0,
            "plan_bank_hits": 0,
            "fingerprint_calls": 0,
            "spill_serves": 0,
            "resident_bytes": 0,
            "spilled_bytes": 0,
            "budget_bytes": budget,
            "working_set_bytes": one * int(names),
            "within_budget": True,
            "identical": True,
        }
        base.update(extra)
        rows.append(base)

    # All-resident reference answers (budget covers the full set, no spill).
    references = {}
    with ServiceDispatcher(
        num_workers=num_workers,
        result_cache_capacity=0,
        store_bytes=one * int(names),
    ) as fresh:
        for name, v in vectors.items():
            fresh.admit(name, v.copy())
            references[name] = fresh.query(name, queries)

    with tempfile.TemporaryDirectory() as tmp:
        path = spill_dir or tmp
        with ServiceDispatcher(
            num_workers=num_workers,
            result_cache_capacity=0,
            store_bytes=budget,
            spill_dir=path,
        ) as d:
            for name, v in vectors.items():
                before = fingerprint_call_count()
                d.admit(name, v, warm=queries, warm_mode="prepare")
                warmup = d.last_report
                assert warmup is not None
                row(
                    name,
                    "admit",
                    queries=len(queries),
                    constructions=warmup.constructions,
                    construction_bytes=warmup.construction_bytes,
                    fingerprint_calls=fingerprint_call_count() - before,
                )

            assert d.store is not None
            for name in vectors:
                before = fingerprint_call_count()
                results = d.query(name, queries)
                report = d.last_report
                assert report is not None
                store_info = report.store
                assert store_info is not None
                row(
                    name,
                    "serve",
                    queries=len(results),
                    constructions=report.constructions,
                    construction_bytes=report.construction_bytes,
                    plan_bank_hits=report.plan_bank_hits,
                    fingerprint_calls=fingerprint_call_count() - before,
                    spill_serves=report.spill_serves,
                    resident_bytes=store_info.bytes,
                    spilled_bytes=store_info.spilled_bytes,
                    within_budget=store_info.bytes <= budget,
                    identical=all(
                        np.array_equal(a.values, b.values)
                        and np.array_equal(a.indices, b.indices)
                        for a, b in zip(references[name], results)
                    ),
                )

            save = d.save_state()
            row(
                "*",
                "save",
                queries=save.names_saved,
                plan_bank_hits=save.plan_rows,
                spilled_bytes=save.spilled_bytes,
            )

        # A brand-new process's dispatcher over the same directory: the warm
        # restart must re-hash and re-scan nothing.
        with ServiceDispatcher(
            num_workers=num_workers,
            result_cache_capacity=0,
            store_bytes=budget,
            spill_dir=path,
        ) as d2:
            before = fingerprint_call_count()
            restore = d2.load_state()
            row(
                "*",
                "load",
                queries=restore.names,
                plan_bank_hits=restore.plans_warmed,
                fingerprint_calls=fingerprint_call_count() - before,
                spilled_bytes=restore.spilled_bytes,
            )
            for name in vectors:
                before = fingerprint_call_count()
                results = d2.query(name, queries)
                report = d2.last_report
                assert report is not None
                row(
                    name,
                    "restart",
                    queries=len(results),
                    constructions=report.constructions,
                    construction_bytes=report.construction_bytes,
                    plan_bank_hits=report.plan_bank_hits,
                    fingerprint_calls=fingerprint_call_count() - before,
                    spill_serves=report.spill_serves,
                    identical=all(
                        np.array_equal(a.values, b.values)
                        and np.array_equal(a.indices, b.indices)
                        for a, b in zip(references[name], results)
                    ),
                )

            assert d2.store is not None
            target = next(
                name for name in vectors if name not in d2.store.names()
            )
            before = fingerprint_call_count()
            d2.admit(target)
            results = d2.query(target, queries)
            report = d2.last_report
            assert report is not None
            row(
                target,
                "readmit",
                queries=len(results),
                constructions=report.constructions,
                construction_bytes=report.construction_bytes,
                plan_bank_hits=report.plan_bank_hits,
                fingerprint_calls=fingerprint_call_count() - before,
                identical=all(
                    np.array_equal(a.values, b.values)
                    and np.array_equal(a.indices, b.indices)
                    for a, b in zip(references[target], results)
                ),
            )
    return rows


# ---------------------------------------------------------------------------
# Service layer — multi-tenant serving: fairness and the noisy-neighbour proof
# ---------------------------------------------------------------------------


def tenantfair(
    n: int = 1 << 13,
    requests: int = 200,
    num_workers: int = 2,
    queue_capacity: int = 10,
    hot_weight: float = 4.0,
    dataset: str = "UD",
    seed: int = DEFAULT_SEED,
) -> List[Dict]:
    """Noisy-neighbour isolation under weighted-fair multi-tenant serving.

    Two tenants share one dispatcher: ``hot`` (scheduling weight
    ``hot_weight``, its own byte budget) floods the service, ``quiet``
    (weight 1, its own byte budget, one **pinned** vector) offers a light
    trickle.  Three load phases plus two invariant probes, one row per
    (phase, tenant):

    * ``solo`` — the quiet tenant alone at a low open-loop rate: its
      baseline, and the calibration for the overload rates (arrival rates
      are derived from the *measured* mean service time, so "2x capacity"
      means 2x on any host).
    * ``contended`` — hot floods at ~2x capacity while quiet keeps its
      light trickle.  Gated: the quiet tenant sheds **nothing** (its
      weight-proportional carve of the queue is its own), hits no quota,
      and every quiet request is answered.
    * ``overload`` — both tenants flood at a combined ~2x capacity.  Gated:
      each tenant's ``attained_share`` of the answered work lands within
      0.15 of its ``configured_share`` (4:1 by default) — the
      deficit-round-robin weights bite exactly when both keep backlog.
    * ``pressure`` — after the phases, a burst of *new* hot admissions
      overflows hot's byte budget.  Gated: every eviction victim is hot's
      own (``cross_tenant_evictions == 0``) and quiet's pinned vector is
      still resident.
    * ``quota`` — a separate registry with an injected fake clock proves
      the QPS token bucket deterministically: burst-deep queries pass,
      the next is rejected with zero half-admitted state, and advancing
      the fake clock refills exactly ``rate x elapsed`` tokens.
    * ``differential`` — a single-tenant replay (cold + warm, batched and
      streaming routes) against an unconfigured dispatcher must be
      element-wise ``identical`` (values *and* indices): the default
      tenant pays zero behaviour change for the tenancy machinery.

    No raw-millisecond column is gated — shares, shed/quota counts,
    eviction counts and residency are deterministic per seed; the
    millisecond columns ride along for observability only.
    """
    from repro.errors import TenantQuotaError
    from repro.service.dispatcher import ServiceDispatcher
    from repro.service.loadgen import LoadHarness, PoissonArrivals, RequestProfile
    from repro.service.tenancy import TenantPolicy, TenantRegistry

    if requests < 40:
        raise ConfigurationError("requests must be >= 40 for stable shares")

    vectors = {f"hot-{i}": _dataset_vector(dataset, n, seed + i) for i in range(4)}
    quiet_vec = _dataset_vector(dataset, n, seed + 99)
    one = quiet_vec.nbytes
    registry = TenantRegistry(
        policies=[
            TenantPolicy(tenant="hot", weight=float(hot_weight), byte_budget=3 * one),
            TenantPolicy(tenant="quiet", weight=1.0, byte_budget=2 * one, max_pins=1),
        ]
    )
    rows: List[Dict] = []

    def row(phase: str, tenant: str, **extra) -> None:
        base = {
            "phase": phase,
            "tenant": tenant,
            "requests": 0,
            "ok": 0,
            "shed": 0,
            "quota": 0,
            "configured_share": 0.0,
            "attained_share": 0.0,
            "share_err": 0.0,
            "p95_queue_ms": 0.0,
            "mean_service_ms": 0.0,
            "bytes_held": 0,
            "cross_tenant_evictions": 0,
            "pinned_resident": True,
            "identical": True,
        }
        base.update(extra)
        rows.append(base)

    warm = [(8, True)]
    with ServiceDispatcher(
        num_workers=num_workers,
        capacity_elements=n,
        queue_capacity=queue_capacity,
        result_cache_capacity=0,
        store_bytes=8 * one,
        tenants=registry,
    ) as d:
        assert d.store is not None
        d.admit("quiet-pin", quiet_vec, tenant="quiet", pin=True, warm=warm)
        for name, v in vectors.items():
            d.admit(name, v, tenant="hot", warm=warm)
        hot_names = tuple(m for m in d.store.names() if m.startswith("hot-"))

        def tenant_rows(phase: str, report) -> None:
            mean_ms = report.route_stats("all").mean_service_ms
            for t in report.tenants:
                row(
                    phase,
                    t.tenant,
                    requests=t.requests,
                    ok=t.ok,
                    shed=t.shed,
                    quota=t.quota,
                    configured_share=t.configured_share,
                    attained_share=t.attained_share,
                    share_err=abs(t.attained_share - t.configured_share),
                    p95_queue_ms=_percentile_of(report, t.tenant),
                    mean_service_ms=mean_ms,
                    bytes_held=t.bytes_held,
                    cross_tenant_evictions=d.store.cross_tenant_evictions(),
                    pinned_resident="quiet-pin" in d.store.names(),
                )

        def _percentile_of(report, tenant: str) -> float:
            waits = [
                s.queue_wait_ms
                for s in report.samples
                if s.tenant == tenant and s.outcome == "ok"
            ]
            if not waits:
                return 0.0
            return float(np.percentile(np.asarray(waits), 95))

        quiet_profile = RequestProfile(
            route="batched", names=("quiet-pin",), ks=(8,), tenant="quiet"
        )
        # Hot takes 15/16 of arrivals in the contended phase, leaving quiet
        # ~0.125x capacity — safely below its 0.2 weighted share, so any
        # quiet shed there would be a genuine fairness failure.
        hot_profile = RequestProfile(
            route="batched", names=hot_names, ks=(8,), weight=15.0, tenant="hot"
        )

        # solo: the quiet baseline, and the service-time calibration.
        solo = LoadHarness(
            d, [quiet_profile], queue_capacity=queue_capacity, policy="shed", seed=seed
        ).run_open(PoissonArrivals(20.0, seed=seed), max(10, requests // 8))
        tenant_rows("solo", solo)
        mean_ms = solo.route_stats("all").mean_service_ms
        capacity_rps = 1e3 / mean_ms if mean_ms > 0 else 1e3

        # contended: hot floods ~2x capacity, quiet trickles below its share.
        contended = LoadHarness(
            d,
            [quiet_profile, hot_profile],
            queue_capacity=queue_capacity,
            policy="shed",
            seed=seed + 1,
        ).run_open(PoissonArrivals(2.0 * capacity_rps, seed=seed + 1), requests)
        tenant_rows("contended", contended)

        # overload: both flood; shares must converge to the weights.
        overload = LoadHarness(
            d,
            [
                RequestProfile(
                    route="batched",
                    names=("quiet-pin",),
                    ks=(8,),
                    weight=5.0,
                    tenant="quiet",
                ),
                hot_profile,
            ],
            queue_capacity=queue_capacity,
            policy="shed",
            seed=seed + 2,
        ).run_open(PoissonArrivals(2.0 * capacity_rps, seed=seed + 2), requests)
        tenant_rows("overload", overload)

        # pressure: fresh hot admissions overflow hot's budget; every victim
        # must be hot's own and the quiet pin must survive.
        for i in range(4, 8):
            d.admit(f"hot-{i}", _dataset_vector(dataset, n, seed + i), tenant="hot")
        ledger = d.store.tenant_bytes()
        row(
            "pressure",
            "hot",
            bytes_held=ledger.get("hot", 0),
            cross_tenant_evictions=d.store.cross_tenant_evictions(),
            pinned_resident="quiet-pin" in d.store.names(),
        )
        row(
            "pressure",
            "quiet",
            bytes_held=ledger.get("quiet", 0),
            cross_tenant_evictions=d.store.cross_tenant_evictions(),
            pinned_resident="quiet-pin" in d.store.names(),
        )

    # quota: deterministic token-bucket proof on an injected fake clock.
    clock_now = [0.0]
    quota_registry = TenantRegistry(
        policies=[TenantPolicy(tenant="hot", weight=1.0, qps=2.0, burst=2)],
        clock=lambda: clock_now[0],
    )
    with ServiceDispatcher(
        num_workers=1,
        capacity_elements=n,
        result_cache_capacity=0,
        store_bytes=4 * one,
        tenants=quota_registry,
    ) as q:
        q.admit("hq", quiet_vec.copy(), tenant="hot")
        outcomes = []
        for _ in range(4):  # burst of 2 passes, the next two reject
            try:
                q.query("hq", [8], tenant="hot")
                outcomes.append("ok")
            except TenantQuotaError:
                outcomes.append("quota")
        clock_now[0] = 1.0  # refill rate x 1s = 2 tokens
        refilled = 0
        for _ in range(2):
            try:
                q.query("hq", [8], tenant="hot")
                refilled += 1
            except TenantQuotaError:
                pass
        row(
            "quota",
            "hot",
            requests=len(outcomes) + 2,
            ok=outcomes.count("ok") + refilled,
            quota=outcomes.count("quota"),
            identical=(outcomes == ["ok", "ok", "quota", "quota"] and refilled == 2),
        )

    # differential: the default tenant must be bit-for-bit the pre-tenancy
    # dispatcher — values AND indices, cold and warm, batched and streaming.
    v = _dataset_vector(dataset, n, seed + 7)
    chunks = [v[i::4].copy() for i in range(4)]
    queries = [(8, True), (32, False)]
    identical = True
    with ServiceDispatcher(
        num_workers=num_workers, capacity_elements=n, store_bytes=4 * one
    ) as plain, ServiceDispatcher(
        num_workers=num_workers,
        capacity_elements=n,
        store_bytes=4 * one,
        tenants=TenantRegistry(),
    ) as tenanted:
        plain.admit("dv", v)
        tenanted.admit("dv", v)
        for _ in range(2):  # cold, then warm replay
            a = plain.query("dv", queries)
            b = tenanted.query("dv", queries)
            sa = plain.dispatch(list(chunks), queries)
            sb = tenanted.dispatch(list(chunks), queries)
            for x, y in list(zip(a, b)) + list(zip(sa, sb)):
                identical = (
                    identical
                    and bool(np.array_equal(x.values, y.values))
                    and bool(np.array_equal(x.indices, y.indices))
                )
    row("differential", "default", requests=len(queries) * 4, identical=identical)
    return rows
