"""Command line / programmatic entry point for the experiment harness.

Usage::

    python -m repro.harness.runner fig18
    python -m repro.harness.runner table2 --csv out.csv

or programmatically::

    from repro.harness import run_experiment
    rows = run_experiment("fig20")
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.harness import experiments
from repro.harness.reporting import format_table, rows_to_csv

__all__ = ["available_experiments", "run_experiment", "main"]

_EXPERIMENTS: Dict[str, Tuple[Callable[..., List[dict]], str]] = {
    "fig04": (experiments.fig04_baseline_instability, "baseline instability across UD/ND/CD"),
    "fig06": (experiments.fig06_max_delegate_breakdown, "max-delegate breakdown vs k"),
    "fig07": (experiments.fig07_filtering_breakdown, "filtering breakdown vs k"),
    "fig09": (experiments.fig09_beta_sweep, "beta sweep"),
    "fig10": (experiments.fig10_beta_breakdown, "beta-delegate breakdown vs k"),
    "fig12": (experiments.fig12_inplace_radix_speedup, "flag vs GGKS in-place radix"),
    "fig13": (experiments.fig13_alpha_convexity, "runtime vs alpha (convexity)"),
    "fig14": (experiments.fig14_alpha_autotune, "oracle vs auto-tuned alpha"),
    "fig15": (experiments.fig15_construction_optimized_breakdown, "optimised construction breakdown"),
    "fig17": (experiments.fig17_time_vs_input_size, "time vs |V|"),
    "fig18": (experiments.fig18_speedup_synthetic, "speedup on synthetic datasets"),
    "fig19": (experiments.fig19_speedup_realworld, "speedup on real-world surrogates"),
    "fig20": (experiments.fig20_workload_vs_size, "workload vs |V|"),
    "fig21": (experiments.fig21_workload_vs_k, "workload vs k"),
    "fig22": (experiments.fig22_filter_vs_beta, "filtering vs beta ablation"),
    "fig23": (experiments.fig23_device_comparison, "V100S vs Titan Xp"),
    "fig24": (experiments.fig24_bmw_ratio, "BMW vs Dr. Top-k workload ratio"),
    "table2": (experiments.table2_multigpu_scalability, "multi-GPU scalability"),
    "table3": (experiments.table3_memory_transactions, "global memory transactions"),
    "service": (experiments.service_throughput, "batched vs naive serving traffic"),
    "async": (experiments.async_service, "sequential vs overlapped dispatch wall-clock"),
    "hotpath": (experiments.hotpath_reuse, "cold vs plan-bank-warm serving cost per route"),
    "multivector": (
        experiments.multivector_serving,
        "named-vector admit/query/evict lifecycle over a working set",
    ),
    "splitgroup": (
        experiments.splitgroup_dispatch,
        "dominant-group splitting vs pinned single-worker dispatch",
    ),
    "hotfuse": (
        experiments.hotfuse,
        "fused vs per-query group selection, cold and warm, plus process-mode sharding",
    ),
    "loadgen": (
        experiments.loadgen_slo,
        "tail latency, queue wait and admission control under generated load",
    ),
    "spillwarm": (
        experiments.spillwarm,
        "out-of-core serving over the spill tier and zero-rescan warm restart",
    ),
    "tenantfair": (
        experiments.tenantfair,
        "multi-tenant fairness, quota enforcement and noisy-neighbour isolation",
    ),
}


def available_experiments() -> Dict[str, str]:
    """Mapping of experiment id -> one-line description."""
    return {name: desc for name, (_, desc) in sorted(_EXPERIMENTS.items())}


def run_experiment(name: str, **kwargs) -> List[dict]:
    """Run one experiment by id and return its rows."""
    try:
        fn, _ = _EXPERIMENTS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(_EXPERIMENTS))}"
        ) from None
    return fn(**kwargs)


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="Dr. Top-k reproduction experiments")
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (fig04..fig24, table2, table3); omit to list all",
    )
    parser.add_argument("--csv", help="write the rows to this CSV file", default=None)
    args = parser.parse_args(argv)

    if not args.experiment:
        for name, desc in available_experiments().items():
            print(f"{name:8s} {desc}")
        return 0

    rows = run_experiment(args.experiment)
    print(format_table(rows, title=args.experiment))
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(rows_to_csv(rows))
        print(f"wrote {len(rows)} rows to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
