"""Experiment harness: one runner per paper figure/table.

Every function in :mod:`repro.harness.experiments` regenerates the data behind
one figure or table of the paper's evaluation section, at a configurable scale
(the paper's |V| = 2^30 runs are reproduced by the analytic cost model, the
measured runs default to laptop-friendly sizes).  The benchmark suite under
``benchmarks/`` is a thin wrapper that executes these runners under
pytest-benchmark; :mod:`repro.harness.runner` exposes them for direct use
(``python -m repro.harness.runner fig18``).
"""

from repro.harness.reporting import dispatch_rows, format_table, rows_to_csv
from repro.harness import experiments
from repro.harness.runner import run_experiment, available_experiments

__all__ = [
    "format_table",
    "rows_to_csv",
    "dispatch_rows",
    "experiments",
    "run_experiment",
    "available_experiments",
]
