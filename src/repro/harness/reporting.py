"""Plain-text and CSV rendering of experiment results.

Experiment runners return lists of dictionaries (one per table row / plotted
point).  These helpers render them for the terminal and for EXPERIMENTS.md.

The service layer's batch reports reuse the same row shape:
:func:`workload_rows` flattens a sequence of per-query
:class:`~repro.types.WorkloadStats` into table rows and
:func:`summarize_workloads` aggregates them into one summary row, so batched
runs render with the same :func:`format_table` / :func:`rows_to_csv` pipeline
as the paper experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.dispatcher import DispatchReport
    from repro.types import WorkloadStats

__all__ = [
    "format_table",
    "rows_to_csv",
    "format_value",
    "workload_rows",
    "summarize_workloads",
    "dispatch_rows",
]


def format_value(value) -> str:
    """Compact human-readable rendering of one cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns)))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as CSV text (used to persist experiment outputs)."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(str(c) for c in columns)]
    for row in rows:
        lines.append(",".join(str(row.get(col, "")) for col in columns))
    return "\n".join(lines)


def workload_rows(
    stats: Sequence[WorkloadStats], labels: Optional[Sequence] = None
) -> List[Dict]:
    """One table row per :class:`~repro.types.WorkloadStats` (per query).

    ``labels`` optionally names each row (defaults to the query position);
    render the result with :func:`format_table` or :func:`rows_to_csv`.
    """
    rows: List[Dict] = []
    for i, s in enumerate(stats):
        label = labels[i] if labels is not None else i
        rows.append(
            {
                "query": label,
                "input_size": s.input_size,
                "alpha": s.alpha,
                "beta": s.beta,
                "delegate_vector_size": s.delegate_vector_size,
                "concatenated_size": s.concatenated_size,
                "total_workload": s.total_workload,
                "workload_fraction": s.workload_fraction,
                "second_topk_skipped": s.second_topk_skipped,
                "total_time_ms": s.total_time_ms,
            }
        )
    return rows


def dispatch_rows(report: "DispatchReport") -> List[Dict]:
    """One table row per worker of a :class:`DispatchReport`, plus a total.

    Renders the unified execution core's accounting — modelled compute next
    to measured wall-clock per worker — with the same
    :func:`format_table` / :func:`rows_to_csv` pipeline as the experiments.
    """
    rows: List[Dict] = []
    for w in report.workers:
        rows.append(
            {
                "worker": w.worker,
                "queries": w.queries,
                "groups": w.groups,
                "constructions": w.constructions,
                "compute_ms": w.compute_ms,
                "wall_ms": w.wall_ms,
                "bytes_moved": w.bytes_moved,
            }
        )
    rows.append(
        {
            "worker": f"total ({report.route})",
            "queries": report.num_queries,
            "groups": sum(w.groups for w in report.workers),
            "constructions": report.constructions,
            "compute_ms": report.compute_ms,
            "wall_ms": report.wall_ms,
            "bytes_moved": report.bytes_moved,
        }
    )
    return rows


def summarize_workloads(stats: Sequence[WorkloadStats]) -> Dict:
    """Aggregate a sequence of per-query workload statistics into one row.

    Used by the service layer's batch reports: totals are summed over the
    queries, fractions are averaged, and the merged per-step time map sums
    the estimated milliseconds of equally named steps.
    """
    stats = list(stats)
    count = len(stats)
    step_times: Dict[str, float] = {}
    for s in stats:
        for name, ms in s.step_times_ms.items():
            step_times[name] = step_times.get(name, 0.0) + ms
    row: Dict = {
        "queries": count,
        "total_input": sum(s.input_size for s in stats),
        "total_delegate": sum(s.delegate_vector_size for s in stats),
        "total_concatenated": sum(s.concatenated_size for s in stats),
        "total_workload": sum(s.total_workload for s in stats),
        "mean_workload_fraction": (
            sum(s.workload_fraction for s in stats) / count if count else 0.0
        ),
        "second_topk_skipped": sum(1 for s in stats if s.second_topk_skipped),
        "total_time_ms": sum(s.total_time_ms for s in stats),
    }
    for name, ms in step_times.items():
        row[f"time_ms[{name}]"] = ms
    return row
