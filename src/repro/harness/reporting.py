"""Plain-text and CSV rendering of experiment results.

Experiment runners return lists of dictionaries (one per table row / plotted
point).  These helpers render them for the terminal and for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "rows_to_csv", "format_value"]


def format_value(value) -> str:
    """Compact human-readable rendering of one cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns)))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as CSV text (used to persist experiment outputs)."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(str(c) for c in columns)]
    for row in rows:
        lines.append(",".join(str(row.get(col, "")) for col in columns))
    return "\n".join(lines)
