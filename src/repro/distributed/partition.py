"""Sub-vector partitioning and GPU assignment (Section 5.4).

The paper's rules:

* sub-vectors are no longer than ``2^30`` elements (the largest vector that
  fits comfortably in a 32 GB V100's memory next to the pipeline's scratch
  buffers);
* when ``#GPUs x 2^30 >= |V|`` the vector is split into ``#GPUs`` equal
  sub-vectors, one per GPU;
* otherwise the vector is split into ``|V| / 2^30`` sub-vectors and GPUs own
  more than one, loading the extra sub-vectors from the host during
  computation (the *reload overhead* column of Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.utils import ceil_div

__all__ = ["PartitionPlan", "plan_partition", "MAX_SUBVECTOR_ELEMENTS"]

#: The paper's per-GPU sub-vector cap (2^30 unsigned integers).
MAX_SUBVECTOR_ELEMENTS = 1 << 30


@dataclass(frozen=True)
class PartitionPlan:
    """Assignment of sub-vectors to GPUs.

    Attributes
    ----------
    total_elements:
        Input vector length.
    num_gpus:
        Number of participating GPUs.
    subvector_bounds:
        ``(start, stop)`` element ranges of every sub-vector, in order.
    assignments:
        For every GPU, the list of sub-vector indices it processes (in
        processing order; the first is resident, later ones must be reloaded).
    """

    total_elements: int
    num_gpus: int
    subvector_bounds: Tuple[Tuple[int, int], ...]
    assignments: Tuple[Tuple[int, ...], ...]

    @property
    def num_subvectors(self) -> int:
        return len(self.subvector_bounds)

    def reloads_per_gpu(self) -> List[int]:
        """Number of host reloads each GPU performs (sub-vectors beyond the first)."""
        return [max(len(a) - 1, 0) for a in self.assignments]

    def reload_elements(self) -> int:
        """Total elements loaded from the host after the initial placement."""
        total = 0
        for gpu_subs in self.assignments:
            for sub in gpu_subs[1:]:
                start, stop = self.subvector_bounds[sub]
                total += stop - start
        return total

    def elements_per_gpu(self) -> List[int]:
        """Total elements each GPU processes across all of its sub-vectors."""
        out = []
        for gpu_subs in self.assignments:
            out.append(
                sum(self.subvector_bounds[s][1] - self.subvector_bounds[s][0] for s in gpu_subs)
            )
        return out


def plan_partition(
    total_elements: int,
    num_gpus: int,
    capacity_elements: int = MAX_SUBVECTOR_ELEMENTS,
) -> PartitionPlan:
    """Build the Section 5.4 partition plan.

    Parameters
    ----------
    total_elements:
        Input vector length ``|V|``.
    num_gpus:
        Participating GPUs.
    capacity_elements:
        Per-sub-vector cap (defaults to the paper's 2^30; tests use smaller
        values so the reload path is exercised on laptop-size data).
    """
    if total_elements < 1:
        raise ConfigurationError("total_elements must be positive")
    if num_gpus < 1:
        raise ConfigurationError("num_gpus must be positive")
    if capacity_elements < 1:
        raise ConfigurationError("capacity_elements must be positive")

    if num_gpus * capacity_elements >= total_elements:
        # One sub-vector per GPU (possibly fewer sub-vectors than GPUs for
        # tiny inputs: never create empty sub-vectors).
        num_subvectors = min(num_gpus, total_elements)
    else:
        num_subvectors = ceil_div(total_elements, capacity_elements)

    bounds = []
    base = total_elements // num_subvectors
    extra = total_elements % num_subvectors
    start = 0
    for i in range(num_subvectors):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size

    # Round-robin assignment: sub-vector i goes to GPU i % num_gpus, so every
    # GPU's first sub-vector is resident and later ones require reloads.
    assignments: List[List[int]] = [[] for _ in range(num_gpus)]
    for i in range(num_subvectors):
        assignments[i % num_gpus].append(i)

    return PartitionPlan(
        total_elements=total_elements,
        num_gpus=num_gpus,
        subvector_bounds=tuple(bounds),
        assignments=tuple(tuple(a) for a in assignments),
    )
