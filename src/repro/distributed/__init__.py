"""Distributed (multi-GPU) Dr. Top-k (Section 5.4, Figure 16, Table 2).

The paper scales Dr. Top-k across up to 16 V100 GPUs with MPI: the input
vector is split into sub-vectors of at most 2^30 elements, every GPU computes
the top-k of its sub-vectors (reloading additional sub-vectors from the host
when the data does not fit on the fleet), the local top-k's are gathered on
the primary GPU asynchronously, and the primary computes the final top-k.

No GPUs or MPI are available here, so the fleet is simulated:

* :mod:`repro.distributed.comm` — an in-process MPI-like communicator that
  both moves the data and charges a latency/bandwidth cost per message.
* :mod:`repro.distributed.partition` — sub-vector partitioning with the 2^30
  capacity cap and GPU assignment.
* :mod:`repro.distributed.multigpu` — the Figure 16 workflow over real data
  plus an analytic estimator that reproduces Table 2 at the paper's scales.
"""

from repro.distributed.comm import SimulatedComm, CommCost
from repro.distributed.partition import PartitionPlan, plan_partition
from repro.distributed.multigpu import (
    MultiGpuDrTopK,
    MultiGpuReport,
    MultiGpuBatchReport,
    ShardBatchOutcome,
    estimate_scalability_row,
)

__all__ = [
    "SimulatedComm",
    "CommCost",
    "PartitionPlan",
    "plan_partition",
    "MultiGpuDrTopK",
    "MultiGpuReport",
    "MultiGpuBatchReport",
    "ShardBatchOutcome",
    "estimate_scalability_row",
]
