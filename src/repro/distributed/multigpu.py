"""Multi-GPU Dr. Top-k workflow (Figure 16) and the Table 2 scalability model.

Two entry points:

* :class:`MultiGpuDrTopK` — runs the full distributed workflow on real data
  with simulated GPUs: partition, per-GPU Dr. Top-k over its sub-vectors
  (with host-reload accounting for sub-vectors beyond the first), an
  asynchronous gather of the local top-k results to the primary GPU, and the
  final top-k on the primary.  Produces a correct :class:`TopKResult` plus a
  :class:`MultiGpuReport` with the same columns as Table 2.
* :func:`estimate_scalability_row` — the analytic version of one Table 2 cell
  at the paper's |V| = 2^30 … 2^33 scales, where materialising the data is
  impossible; it uses the Section 5.2 cost structure for per-GPU compute, the
  PCIe bandwidth for reload overhead and the communicator's cost model for
  the gather.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config import DrTopKConfig
from repro.core.drtopk import DrTopK
from repro.core.workload import expected_workload
from repro.distributed.comm import CommCost, SimulatedComm
from repro.distributed.partition import MAX_SUBVECTOR_ELEMENTS, PartitionPlan, plan_partition
from repro.errors import ConfigurationError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import DeviceSpec, V100S
from repro.types import TopKResult
from repro.utils import check_k, ensure_1d

__all__ = ["MultiGpuDrTopK", "MultiGpuReport", "estimate_scalability_row"]


@dataclass
class MultiGpuReport:
    """Timing breakdown of one distributed run (Table 2 columns)."""

    num_gpus: int
    total_elements: int
    k: int
    communication_ms: float
    reload_ms: float
    compute_ms: float
    final_topk_ms: float

    @property
    def total_ms(self) -> float:
        """End-to-end estimated time."""
        return self.compute_ms + self.reload_ms + self.communication_ms + self.final_topk_ms

    def speedup_over(self, single_gpu: "MultiGpuReport") -> float:
        """Speedup relative to a single-GPU report (Table 2's parenthesised column)."""
        if self.total_ms <= 0:
            return float("inf")
        return single_gpu.total_ms / self.total_ms


@dataclass
class MultiGpuDrTopK:
    """Distributed Dr. Top-k over a simulated GPU fleet.

    Parameters
    ----------
    num_gpus:
        Fleet size.
    config:
        Per-GPU pipeline configuration (defaults to the paper's final design).
    capacity_elements:
        Per-sub-vector cap; lower it in tests to exercise the reload path on
        small data.
    gpus_per_node:
        GPUs per compute node (4 on the paper's platform), which decides
        whether gather transfers are intra- or inter-node.
    comm_cost:
        Interconnect cost model.
    """

    num_gpus: int
    config: Optional[DrTopKConfig] = None
    capacity_elements: int = MAX_SUBVECTOR_ELEMENTS
    gpus_per_node: int = 4
    comm_cost: CommCost = field(default_factory=CommCost)
    use_hierarchical_reduction: bool = False

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigurationError("num_gpus must be positive")
        self.config = self.config or DrTopKConfig()
        self.last_report: Optional[MultiGpuReport] = None
        self.last_plan: Optional[PartitionPlan] = None

    # -- execution ------------------------------------------------------------------
    def topk(self, v: np.ndarray, k: int, largest: bool = True) -> TopKResult:
        """Run the Figure 16 workflow on ``v`` and return the global top-k."""
        v = ensure_1d(v)
        k = check_k(k, v.shape[0])
        plan = plan_partition(v.shape[0], self.num_gpus, self.capacity_elements)
        self.last_plan = plan
        device = self.config.device
        model = CostModel(device)
        comm = SimulatedComm(
            num_ranks=self.num_gpus, gpus_per_node=self.gpus_per_node, cost=self.comm_cost
        )

        per_gpu_compute: List[float] = []
        per_gpu_reload: List[float] = []
        local_values: List[np.ndarray] = []
        local_indices: List[np.ndarray] = []

        for gpu, sub_ids in enumerate(plan.assignments):
            compute_ms = 0.0
            reload_ms = 0.0
            gpu_vals: List[np.ndarray] = []
            gpu_idx: List[np.ndarray] = []
            for order, sub in enumerate(sub_ids):
                start, stop = plan.subvector_bounds[sub]
                sub_v = v[start:stop]
                if stop - start < k:
                    # A sub-vector smaller than k cannot answer a local top-k
                    # on its own; contribute every element instead.
                    gpu_vals.append(sub_v)
                    gpu_idx.append(np.arange(start, stop, dtype=np.int64))
                    continue
                engine = DrTopK(self.config)
                local = engine.topk(sub_v, k, largest=largest)
                assert local.stats is not None
                compute_ms += local.stats.total_time_ms
                if order > 0:
                    reload_ms += model.host_transfer_ms(stop - start, v.dtype.itemsize)
                gpu_vals.append(local.values)
                gpu_idx.append(local.indices + start)
            if gpu_vals:
                local_values.append(np.concatenate(gpu_vals))
                local_indices.append(np.concatenate(gpu_idx))
            else:
                local_values.append(np.empty(0, dtype=v.dtype))
                local_indices.append(np.empty(0, dtype=np.int64))
            per_gpu_compute.append(compute_ms)
            per_gpu_reload.append(reload_ms)

        # Gather the local top-k's (values and positions) on the primary GPU.
        # With hierarchical reduction (Section 5.4's multi-node variant) the
        # gather happens in two stages: GPUs of each node combine onto their
        # node leader over NVLink, then only the leaders talk to the primary.
        if self.use_hierarchical_reduction and self.num_gpus > self.gpus_per_node:
            all_values, all_indices = self._hierarchical_gather(
                comm, local_values, local_indices
            )
        else:
            gathered_values = comm.gather(local_values, root=0, asynchronous=True)
            gathered_indices = comm.gather(local_indices, root=0, asynchronous=True)
            all_values = np.concatenate(gathered_values)
            all_indices = np.concatenate(gathered_indices)

        # Final top-k on the primary GPU.
        final_engine = DrTopK(self.config)
        final = final_engine.topk(all_values, k, largest=largest)
        assert final.stats is not None
        final_ms = final.stats.total_time_ms
        global_indices = all_indices[final.indices]

        report = MultiGpuReport(
            num_gpus=self.num_gpus,
            total_elements=v.shape[0],
            k=k,
            communication_ms=comm.total_comm_ms,
            reload_ms=float(max(per_gpu_reload) if per_gpu_reload else 0.0),
            compute_ms=float(max(per_gpu_compute) if per_gpu_compute else 0.0),
            final_topk_ms=final_ms,
        )
        self.last_report = report
        return TopKResult(
            values=v[global_indices],
            indices=global_indices,
            k=k,
            largest=largest,
            stats=final.stats,
        )

    def _hierarchical_gather(self, comm, local_values, local_indices):
        """Two-stage (node-leader) gather of the per-GPU top-k candidates.

        Each node's GPUs first combine onto the node's first rank over the
        fast intra-node links; only the node leaders then send to the primary
        GPU, so the number of cross-node messages drops from ``num_gpus - 1``
        to ``num_nodes - 1``.
        """
        num_nodes = -(-self.num_gpus // self.gpus_per_node)
        leader_values = []
        leader_indices = []
        for node in range(num_nodes):
            ranks = range(
                node * self.gpus_per_node,
                min((node + 1) * self.gpus_per_node, self.num_gpus),
            )
            vals = [local_values[r] for r in ranks]
            idxs = [local_indices[r] for r in ranks]
            # Intra-node stage: every member sends to the node leader.
            for member, (rank, v_arr) in enumerate(zip(ranks, vals)):
                if member:
                    comm.send(v_arr, src=rank, dst=ranks[0])
                    comm.send(idxs[member], src=rank, dst=ranks[0])
            leader_values.append(np.concatenate(vals) if vals else np.empty(0))
            leader_indices.append(
                np.concatenate(idxs) if idxs else np.empty(0, dtype=np.int64)
            )
        # Inter-node stage: node leaders send their combined candidates to rank 0.
        for node in range(1, num_nodes):
            comm.send(leader_values[node], src=node * self.gpus_per_node, dst=0)
            comm.send(leader_indices[node], src=node * self.gpus_per_node, dst=0)
        return np.concatenate(leader_values), np.concatenate(leader_indices)


# -- analytic Table 2 model -------------------------------------------------------


def _single_gpu_pipeline_ms(
    n: int, k: int, device: DeviceSpec, beta: int = 2, const: float = 3.0
) -> float:
    """Estimated Dr. Top-k time on one GPU for an ``n``-element sub-vector.

    Uses the expected workload model for the delegate / concatenated vector
    sizes and the device cost model for the traffic of the four stages
    (the same accounting the real pipeline records, evaluated analytically).
    """
    stats = expected_workload(n, k, beta=beta, const=const)
    model = CostModel(device)
    m = stats.delegate_vector_size
    if m == 0:
        return model.streaming_scan_ms(n) * 5.0  # degenerate fallback: plain radix top-k
    scanned = stats.fully_qualified_subranges * stats.subrange_size
    construction = model.streaming_scan_ms(n) + model.streaming_scan_ms(2 * m)
    first = model.streaming_scan_ms(5 * m + 2 * k)
    concat = model.streaming_scan_ms(k + scanned + 2 * stats.concatenated_size)
    second = model.streaming_scan_ms(5 * stats.concatenated_size + k)
    launch = 4 * model.launch_overhead_ms
    return construction + first + concat + second + launch


def estimate_scalability_row(
    total_elements: int,
    k: int,
    num_gpus: int,
    device: DeviceSpec = V100S,
    capacity_elements: int = MAX_SUBVECTOR_ELEMENTS,
    gpus_per_node: int = 4,
    comm_cost: Optional[CommCost] = None,
    beta: int = 2,
) -> MultiGpuReport:
    """One cell of Table 2, evaluated analytically at paper scale."""
    if total_elements < 1 or num_gpus < 1:
        raise ConfigurationError("total_elements and num_gpus must be positive")
    plan = plan_partition(total_elements, num_gpus, capacity_elements)
    model = CostModel(device)
    comm_cost = comm_cost or CommCost()

    per_gpu_compute = []
    per_gpu_reload = []
    for sub_ids in plan.assignments:
        compute = 0.0
        reload = 0.0
        for order, sub in enumerate(sub_ids):
            start, stop = plan.subvector_bounds[sub]
            size = stop - start
            compute += _single_gpu_pipeline_ms(size, min(k, size), device, beta=beta)
            if order > 0:
                reload += model.host_transfer_ms(size)
        per_gpu_compute.append(compute)
        per_gpu_reload.append(reload)

    # Asynchronous gather of k (key, index) pairs from every secondary GPU.
    message_bytes = float(k) * 8.0
    transfers = []
    for rank in range(1, num_gpus):
        inter = (rank // gpus_per_node) != 0
        transfers.append(comm_cost.transfer_ms(message_bytes, inter_node=inter))
    communication = (
        max(transfers) + comm_cost.latency_ms * (len(transfers) - 1) if transfers else 0.0
    )
    final_ms = model.streaming_scan_ms(5 * num_gpus * k) + model.launch_overhead_ms

    return MultiGpuReport(
        num_gpus=num_gpus,
        total_elements=total_elements,
        k=k,
        communication_ms=communication,
        reload_ms=float(max(per_gpu_reload)),
        compute_ms=float(max(per_gpu_compute)),
        final_topk_ms=final_ms,
    )
