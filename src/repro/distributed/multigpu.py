"""Multi-GPU Dr. Top-k workflow (Figure 16) and the Table 2 scalability model.

Two entry points:

* :class:`MultiGpuDrTopK` — runs the full distributed workflow on real data
  with simulated GPUs: partition, per-GPU Dr. Top-k over its sub-vectors
  (with host-reload accounting for sub-vectors beyond the first), an
  asynchronous gather of the local top-k results to the primary GPU, and the
  final top-k on the primary.  Produces a correct :class:`TopKResult` plus a
  :class:`MultiGpuReport` with the same columns as Table 2.
* :func:`estimate_scalability_row` — the analytic version of one Table 2 cell
  at the paper's |V| = 2^30 … 2^33 scales, where materialising the data is
  impossible; it uses the Section 5.2 cost structure for per-GPU compute, the
  PCIe bandwidth for reload overhead and the communicator's cost model for
  the gather.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.core.config import DrTopKConfig
from repro.core.drtopk import DrTopK
from repro.core.workload import expected_workload
from repro.distributed.comm import CommCost, SimulatedComm
from repro.distributed.partition import MAX_SUBVECTOR_ELEMENTS, PartitionPlan, plan_partition
from repro.errors import ConfigurationError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import DeviceSpec, V100S
from repro.types import TopKResult
from repro.utils import check_k, ensure_1d

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a service import cycle
    from repro.service.cache import PartitionCache
    from repro.service.executor import ServiceExecutor
    from repro.service.planbank import PlanBank

__all__ = [
    "MultiGpuDrTopK",
    "MultiGpuReport",
    "MultiGpuBatchReport",
    "ShardBatchOutcome",
    "estimate_scalability_row",
]


@dataclass
class MultiGpuReport:
    """Timing breakdown of one distributed run (Table 2 columns)."""

    num_gpus: int
    total_elements: int
    k: int
    communication_ms: float
    reload_ms: float
    compute_ms: float
    final_topk_ms: float

    @property
    def total_ms(self) -> float:
        """End-to-end estimated time."""
        return self.compute_ms + self.reload_ms + self.communication_ms + self.final_topk_ms

    def speedup_over(self, single_gpu: "MultiGpuReport") -> float:
        """Speedup relative to a single-GPU report (Table 2's parenthesised column)."""
        if self.total_ms <= 0:
            return float("inf")
        return single_gpu.total_ms / self.total_ms


@dataclass
class ShardBatchOutcome:
    """One GPU's share of a sharded batch: candidates plus accounting.

    ``values``/``indices`` are aligned with the batch's queries — entry ``i``
    holds this GPU's local candidates for query ``i``, concatenated across
    the GPU's assigned sub-vectors, with indices already global.
    """

    gpu: int
    values: List[np.ndarray] = field(default_factory=list)
    indices: List[np.ndarray] = field(default_factory=list)
    compute_ms: float = 0.0
    reload_ms: float = 0.0
    groups: int = 0
    constructions: int = 0
    construction_bytes: float = 0.0
    query_bytes: float = 0.0
    plan_bank_hits: int = 0
    wall_ms: float = 0.0
    #: Full selection passes this GPU executed (one per group when fused).
    selection_calls: int = 0
    #: Per-shard groups answered through the fused selection path.
    fused_groups: int = 0
    #: Queries this GPU served through the fused path (across its groups).
    fused_queries: int = 0
    #: True when the unit ran in a worker process reading the admitted vector
    #: through a shared-memory view instead of a pickled copy.
    via_shared_memory: bool = False


@dataclass
class MultiGpuBatchReport:
    """Fleet-level accounting of one :meth:`MultiGpuDrTopK.topk_batch` call.

    The Table 2 timing columns plus the amortisation quantities the service
    layer reports: per-shard delegate construction happens once per
    ``(alpha, largest)`` group of the batch (``constructions``), and the
    result gather moves ``gather_bytes`` of candidates to the primary.
    """

    num_gpus: int
    total_elements: int
    num_queries: int
    communication_ms: float = 0.0
    reload_ms: float = 0.0
    compute_ms: float = 0.0
    final_topk_ms: float = 0.0
    constructions: int = 0
    construction_bytes: float = 0.0
    query_bytes: float = 0.0
    gather_bytes: float = 0.0
    plan_bank_hits: int = 0
    #: Full selection passes summed over the fleet (fused groups count once).
    selection_calls: int = 0
    #: Per-shard groups served by the fused selection path, fleet-wide.
    fused_groups: int = 0
    #: Query-shard fused servings summed over the fleet (a query served
    #: fused on every one of ``G`` GPUs counts ``G`` times).
    fused_queries: int = 0
    #: Shard units that gathered through a shared-memory view of the admitted
    #: vector (process executor mode) instead of a pickled copy.
    shared_memory_units: int = 0
    per_gpu: List[ShardBatchOutcome] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        """End-to-end estimated time of the whole batch."""
        return self.compute_ms + self.reload_ms + self.communication_ms + self.final_topk_ms


@dataclass
class MultiGpuDrTopK:
    """Distributed Dr. Top-k over a simulated GPU fleet.

    Parameters
    ----------
    num_gpus:
        Fleet size.
    config:
        Per-GPU pipeline configuration (defaults to the paper's final design).
    capacity_elements:
        Per-sub-vector cap; lower it in tests to exercise the reload path on
        small data.
    gpus_per_node:
        GPUs per compute node (4 on the paper's platform), which decides
        whether gather transfers are intra- or inter-node.
    comm_cost:
        Interconnect cost model.
    fused:
        Serve each per-shard ``(alpha, largest)`` group through
        :func:`~repro.service.fusion.fused_group_topk` (one shared selection
        at the group's ``max(k)``) instead of one ``topk_prepared`` call per
        query; per-query identical results either way.
    """

    num_gpus: int
    config: Optional[DrTopKConfig] = None
    capacity_elements: int = MAX_SUBVECTOR_ELEMENTS
    gpus_per_node: int = 4
    comm_cost: CommCost = field(default_factory=CommCost)
    use_hierarchical_reduction: bool = False
    fused: bool = True

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigurationError("num_gpus must be positive")
        self.config = self.config or DrTopKConfig()
        self.last_report: Optional[MultiGpuReport] = None
        self.last_batch_report: Optional[MultiGpuBatchReport] = None
        self.last_plan: Optional[PartitionPlan] = None

    # -- execution ------------------------------------------------------------------
    def topk(self, v: np.ndarray, k: int, largest: bool = True) -> TopKResult:
        """Run the Figure 16 workflow on ``v`` and return the global top-k."""
        v = ensure_1d(v)
        k = check_k(k, v.shape[0])
        plan = plan_partition(v.shape[0], self.num_gpus, self.capacity_elements)
        self.last_plan = plan
        device = self.config.device
        model = CostModel(device)
        comm = SimulatedComm(
            num_ranks=self.num_gpus, gpus_per_node=self.gpus_per_node, cost=self.comm_cost
        )

        per_gpu_compute: List[float] = []
        per_gpu_reload: List[float] = []
        local_values: List[np.ndarray] = []
        local_indices: List[np.ndarray] = []

        for gpu, sub_ids in enumerate(plan.assignments):
            compute_ms = 0.0
            reload_ms = 0.0
            gpu_vals: List[np.ndarray] = []
            gpu_idx: List[np.ndarray] = []
            for order, sub in enumerate(sub_ids):
                start, stop = plan.subvector_bounds[sub]
                sub_v = v[start:stop]
                if stop - start < k:
                    # A sub-vector smaller than k cannot answer a local top-k
                    # on its own; contribute every element instead.
                    gpu_vals.append(sub_v)
                    gpu_idx.append(np.arange(start, stop, dtype=np.int64))
                    continue
                engine = DrTopK(self.config)
                local = engine.topk(sub_v, k, largest=largest)
                assert local.stats is not None
                compute_ms += local.stats.total_time_ms
                if order > 0:
                    reload_ms += model.host_transfer_ms(stop - start, v.dtype.itemsize)
                gpu_vals.append(local.values)
                gpu_idx.append(local.indices + start)
            if gpu_vals:
                local_values.append(np.concatenate(gpu_vals))
                local_indices.append(np.concatenate(gpu_idx))
            else:
                local_values.append(np.empty(0, dtype=v.dtype))
                local_indices.append(np.empty(0, dtype=np.int64))
            per_gpu_compute.append(compute_ms)
            per_gpu_reload.append(reload_ms)

        # Gather the local top-k's (values and positions) on the primary GPU.
        # With hierarchical reduction (Section 5.4's multi-node variant) the
        # gather happens in two stages: GPUs of each node combine onto their
        # node leader over NVLink, then only the leaders talk to the primary.
        if self.use_hierarchical_reduction and self.num_gpus > self.gpus_per_node:
            all_values, all_indices = self._hierarchical_gather(
                comm, local_values, local_indices
            )
        else:
            gathered_values = comm.gather(local_values, root=0, asynchronous=True)
            gathered_indices = comm.gather(local_indices, root=0, asynchronous=True)
            all_values = np.concatenate(gathered_values)
            all_indices = np.concatenate(gathered_indices)

        # Final top-k on the primary GPU.
        final_engine = DrTopK(self.config)
        final = final_engine.topk(all_values, k, largest=largest)
        assert final.stats is not None
        final_ms = final.stats.total_time_ms
        global_indices = all_indices[final.indices]

        report = MultiGpuReport(
            num_gpus=self.num_gpus,
            total_elements=v.shape[0],
            k=k,
            communication_ms=comm.total_comm_ms,
            reload_ms=float(max(per_gpu_reload) if per_gpu_reload else 0.0),
            compute_ms=float(max(per_gpu_compute) if per_gpu_compute else 0.0),
            final_topk_ms=final_ms,
        )
        self.last_report = report
        return TopKResult(
            values=v[global_indices],
            indices=global_indices,
            k=k,
            largest=largest,
            stats=final.stats,
        )

    def _hierarchical_gather(self, comm, local_values, local_indices):
        """Two-stage (node-leader) gather of the per-GPU top-k candidates.

        Each node's GPUs first combine onto the node's first rank over the
        fast intra-node links; only the node leaders then send to the primary
        GPU, so the number of cross-node messages drops from ``num_gpus - 1``
        to ``num_nodes - 1``.
        """
        num_nodes = -(-self.num_gpus // self.gpus_per_node)
        leader_values = []
        leader_indices = []
        for node in range(num_nodes):
            ranks = range(
                node * self.gpus_per_node,
                min((node + 1) * self.gpus_per_node, self.num_gpus),
            )
            vals = [local_values[r] for r in ranks]
            idxs = [local_indices[r] for r in ranks]
            # Intra-node stage: every member sends to the node leader.
            for member, (rank, v_arr) in enumerate(zip(ranks, vals)):
                if member:
                    comm.send(v_arr, src=rank, dst=ranks[0])
                    comm.send(idxs[member], src=rank, dst=ranks[0])
            # Defensive guard only (every node has >= 1 rank, so vals is
            # never empty today): preserve the input dtype like the
            # flat-gather path — a bare np.empty(0) is float64 and would
            # silently upcast the whole gather.
            leader_values.append(
                np.concatenate(vals) if vals else np.empty(0, dtype=local_values[0].dtype)  # reprolint: waive[HOT001] leader buffers escape through comm.send; the service arena is not available in the distributed layer
            )
            leader_indices.append(
                np.concatenate(idxs) if idxs else np.empty(0, dtype=np.int64)  # reprolint: waive[HOT001] leader buffers escape through comm.send; the service arena is not available in the distributed layer
            )
        # Inter-node stage: node leaders send their combined candidates to rank 0.
        for node in range(1, num_nodes):
            comm.send(leader_values[node], src=node * self.gpus_per_node, dst=0)
            comm.send(leader_indices[node], src=node * self.gpus_per_node, dst=0)
        return np.concatenate(leader_values), np.concatenate(leader_indices)  # reprolint: waive[HOT001] gathered result is returned to the caller, not a scoped temporary

    # -- batched execution (cross-query plan reuse) ----------------------------------
    def topk_batch(
        self,
        v: np.ndarray,
        queries: Sequence,
        cache: Optional["PartitionCache"] = None,
        executor: Optional["ServiceExecutor"] = None,
        plan_bank: Optional["PlanBank"] = None,
        shard_fingerprints: Optional[dict] = None,
        shared_ref=None,
    ):
        """Answer a batch of queries over one sharded vector with plan reuse.

        The single-query :meth:`topk` rebuilds every shard's delegate vector
        for every query; this batch entry point mirrors
        :meth:`~repro.service.batch.BatchTopK.run` instead: on each shard the
        queries are grouped by ``(alpha, largest)`` and one
        :class:`~repro.core.plan.QueryPlan` serves the whole group, so a
        homogeneous batch pays one construction scan *per shard* rather than
        one per shard per query.  Host reloads are likewise charged once per
        extra shard for the batch.

        Parameters
        ----------
        v:
            The full (oversized) input vector.
        queries:
            Any :class:`~repro.service.batch.TopKQuery`-coercible sequence.
        cache:
            Optional shared :class:`~repro.service.cache.PartitionCache`
            memoising the per-shard ``(n, k) → alpha`` resolution.
        executor:
            Optional :class:`~repro.service.executor.ServiceExecutor`; when
            given, each GPU's shard work runs as one work unit so the fleet
            genuinely overlaps.  ``None`` runs GPUs sequentially in-process.
        plan_bank:
            Optional :class:`~repro.service.planbank.PlanBank` keyed by
            *per-shard* fingerprints: a later batch over the same vector
            (or any vector sharing shard content) skips those shards'
            ``to_keys`` + construction entirely and charges zero
            construction traffic for them.
        shard_fingerprints:
            Optional ``(start, stop) → fingerprint`` map precomputed at
            admission by the named-vector store; shards found in it skip
            the per-dispatch :func:`~repro.service.cache.fingerprint_array`
            call (named warm queries must do zero fingerprint work).
        shared_ref:
            Optional :class:`~repro.service.sharedmem.SharedArrayRef` to a
            shared-memory copy of ``v`` created at admission.  With a
            process-mode executor each shard unit then carries a picklable
            task that attaches the shared block in the worker process and
            gathers without the vector ever crossing a pipe; without it (or
            on a thread/sequential executor) the closure path runs unchanged.
            Worker processes see no shared plan bank or partition cache, so
            process-mode shard units always construct locally.

        Returns
        -------
        (results, report):
            Results aligned with ``queries`` and a
            :class:`MultiGpuBatchReport` (also stored on
            ``self.last_batch_report``).
        """
        from repro.service.batch import TopKQuery  # runtime import: service builds on this module

        v = ensure_1d(v)
        parsed = [TopKQuery.of(q) for q in queries]
        report = MultiGpuBatchReport(
            num_gpus=self.num_gpus, total_elements=v.shape[0], num_queries=len(parsed)
        )
        if not parsed:
            self.last_batch_report = report
            return [], report
        for q in parsed:
            check_k(q.k, v.shape[0])
        plan = plan_partition(v.shape[0], self.num_gpus, self.capacity_elements)
        self.last_plan = plan

        def shard_fn(gpu: int):
            return lambda: self._run_shard_batch(
                v, parsed, plan, gpu, cache, plan_bank, shard_fingerprints
            )

        if executor is not None:
            from repro.service.executor import ProcessTask, WorkUnit  # runtime import, see above

            def shard_task(gpu: int) -> Optional[ProcessTask]:
                if shared_ref is None:
                    return None
                return ProcessTask(
                    fn=_shard_batch_process_task,
                    args=(shared_ref, parsed, plan, gpu, self.config, self.fused),
                )

            units = [
                WorkUnit(
                    fn=shard_fn(gpu),
                    worker=gpu,
                    route="sharded",
                    label=f"gpu{gpu}",
                    task=shard_task(gpu),
                )
                for gpu in range(self.num_gpus)
            ]
            outcomes = []
            for res in executor.run(units):
                res.value.wall_ms = res.wall_ms
                outcomes.append(res.value)
        else:
            outcomes = [shard_fn(gpu)() for gpu in range(self.num_gpus)]

        results = self._merge_batch(v, parsed, outcomes, report)
        self.last_batch_report = report
        return results, report

    def _run_shard_batch(
        self,
        v: np.ndarray,
        parsed: List,
        plan: PartitionPlan,
        gpu: int,
        cache: Optional["PartitionCache"],
        plan_bank: Optional["PlanBank"] = None,
        shard_fingerprints: Optional[dict] = None,
    ) -> ShardBatchOutcome:
        """One GPU's work unit: grouped local top-k over its assigned shards."""
        return _shard_batch_worker(
            self.config, v, parsed, plan, gpu, cache, plan_bank, shard_fingerprints, self.fused
        )

    def _merge_batch(
        self,
        v: np.ndarray,
        parsed: List,
        outcomes: List[ShardBatchOutcome],
        report: MultiGpuBatchReport,
    ) -> List[TopKResult]:
        """Primary-GPU side: gather candidates, final top-k per query."""
        config = self.config
        comm = SimulatedComm(
            num_ranks=self.num_gpus, gpus_per_node=self.gpus_per_node, cost=self.comm_cost
        )
        # Each GPU sends every query's candidates in one concatenated message
        # (the Figure 16 asynchronous result collection, batched).
        blob_values = [np.concatenate(o.values) for o in outcomes]
        blob_indices = [np.concatenate(o.indices) for o in outcomes]
        if self.use_hierarchical_reduction and self.num_gpus > self.gpus_per_node:
            self._hierarchical_gather(comm, blob_values, blob_indices)
        else:
            comm.gather(blob_values, root=0, asynchronous=True)
            comm.gather(blob_indices, root=0, asynchronous=True)
        report.gather_bytes = float(
            sum(
                blob_values[rank].nbytes + blob_indices[rank].nbytes
                for rank in range(1, self.num_gpus)
            )
        )

        final_engine = DrTopK(config)
        results: List[TopKResult] = []
        for pos, q in enumerate(parsed):
            all_values = np.concatenate([o.values[pos] for o in outcomes])
            all_indices = np.concatenate([o.indices[pos] for o in outcomes])
            final = final_engine.topk(all_values, q.k, largest=q.largest)
            assert final.stats is not None
            report.final_topk_ms += final.stats.total_time_ms
            global_indices = all_indices[final.indices]
            results.append(
                TopKResult(
                    values=v[global_indices],
                    indices=global_indices,
                    k=q.k,
                    largest=q.largest,
                    stats=final.stats,
                )
            )

        report.communication_ms = comm.total_comm_ms
        report.reload_ms = float(max((o.reload_ms for o in outcomes), default=0.0))
        report.compute_ms = float(max((o.compute_ms for o in outcomes), default=0.0))
        report.constructions = sum(o.constructions for o in outcomes)
        report.construction_bytes = float(sum(o.construction_bytes for o in outcomes))
        report.query_bytes = float(sum(o.query_bytes for o in outcomes))
        report.plan_bank_hits = sum(o.plan_bank_hits for o in outcomes)
        report.selection_calls = sum(o.selection_calls for o in outcomes)
        report.fused_groups = sum(o.fused_groups for o in outcomes)
        report.fused_queries = sum(o.fused_queries for o in outcomes)
        report.shared_memory_units = sum(1 for o in outcomes if o.via_shared_memory)
        report.per_gpu = list(outcomes)
        return results


# -- shard workers (shared by in-process units and the process executor) ----------


def _shard_batch_worker(
    config: DrTopKConfig,
    v: np.ndarray,
    parsed: List,
    plan: PartitionPlan,
    gpu: int,
    cache: Optional["PartitionCache"],
    plan_bank: Optional["PlanBank"],
    shard_fingerprints: Optional[dict],
    fused: bool,
) -> ShardBatchOutcome:
    """Grouped local top-k over one GPU's assigned shards.

    Module-level (not a method) so the process executor can run it inside a
    worker process against a shared-memory view of ``v``; the in-process
    thread path calls it with the dispatcher's shared cache and plan bank.
    """
    from repro.service.batch import group_queries_by_plan  # runtime import: service builds on this module
    from repro.service.cache import fingerprint_array  # runtime import, see above
    from repro.service.fusion import fused_group_topk  # runtime import, see above

    model = CostModel(config.device)
    engine = DrTopK(config)
    out = ShardBatchOutcome(gpu=gpu)
    vals: List[List[np.ndarray]] = [[] for _ in parsed]
    idxs: List[List[np.ndarray]] = [[] for _ in parsed]

    for order, sub in enumerate(plan.assignments[gpu]):
        start, stop = plan.subvector_bounds[sub]
        sub_v = v[start:stop]
        sub_n = stop - start
        if order > 0:
            # The shard is reloaded from the host once for the whole
            # batch, not once per query — reuse starts at the transfer.
            out.reload_ms += model.host_transfer_ms(sub_n, v.dtype.itemsize)

        # A sub-vector smaller than k cannot answer a local top-k on its
        # own; such queries take every element of the shard.
        whole = [pos for pos, q in enumerate(parsed) if sub_n < q.k]
        for pos in whole:
            vals[pos].append(sub_v)
            idxs[pos].append(np.arange(start, stop, dtype=np.int64))
        served = [pos for pos, q in enumerate(parsed) if sub_n >= q.k]
        if not served:
            continue

        shard_fp = None
        if plan_bank is not None:
            # Admission-time fingerprints (named vectors) win; anonymous
            # dispatches still hash each shard once per batch.
            shard_fp = (shard_fingerprints or {}).get((start, stop))
            if shard_fp is None:
                shard_fp = fingerprint_array(sub_v)
        # Bank-aware snapping keyed by the *shard's* fingerprint: a served
        # shard regroups near-miss exponents onto its banked plans too.
        groups = group_queries_by_plan(
            [parsed[p] for p in served],
            sub_n,
            cache,
            engine,
            plan_bank=plan_bank,
            fingerprint=shard_fp,
        )
        for (alpha, largest), members in groups.items():
            positions = [served[m] for m in members]
            min_k = min(parsed[p].k for p in positions)
            qplan = None
            bank_hit = False
            if shard_fp is not None:
                banked = plan_bank.get(shard_fp, alpha, largest, beta=config.beta)
                if banked is not None:
                    if banked.offset != start:
                        # Same shard content at a different position
                        # (identical-content shards, or a re-partitioned
                        # vector): reuse all arrays, re-anchor the offset.
                        banked = replace(banked, offset=start)
                    qplan = banked
                    bank_hit = True
                    out.plan_bank_hits += 1
            if qplan is None:
                qplan = engine.prepare_with_alpha(
                    sub_v, alpha, largest=largest, k=min_k, offset=start
                )
                if shard_fp is not None:
                    plan_bank.put(shard_fp, qplan)
            out.groups += 1
            if not qplan.is_degenerate and not bank_hit:
                out.constructions += 1
                out.construction_bytes += qplan.construction_bytes
                out.compute_ms += qplan.construction_ms(config.device)
            if fused:
                fused_out = fused_group_topk(
                    engine, qplan, [parsed[p].k for p in positions]
                )
                out.selection_calls += fused_out.selection_calls
                if fused_out.fused_queries:
                    out.fused_groups += 1
                out.fused_queries += fused_out.fused_queries
                out.compute_ms += fused_out.shared_ms
                if config.collect_trace:
                    out.query_bytes += fused_out.shared_bytes + sum(fused_out.query_bytes)
                for pos, local in zip(positions, fused_out.results):
                    assert local.stats is not None
                    out.compute_ms += local.stats.total_time_ms
                    vals[pos].append(local.values)
                    idxs[pos].append(qplan.global_indices(local.indices))
            else:
                for pos in positions:
                    q = parsed[pos]
                    local = engine.topk_prepared(qplan, q.k, charge_construction=False)
                    out.selection_calls += 1
                    assert local.stats is not None
                    out.compute_ms += local.stats.total_time_ms
                    if config.collect_trace:
                        out.query_bytes += engine.last_trace.total_counters().global_bytes
                    vals[pos].append(local.values)
                    idxs[pos].append(qplan.global_indices(local.indices))

    for pos in range(len(parsed)):
        if vals[pos]:
            # np.concatenate always copies, so the outcome never aliases a
            # shard view of ``v`` (or of a shared-memory block).
            out.values.append(np.concatenate(vals[pos]))
            out.indices.append(np.concatenate(idxs[pos]))
        else:
            out.values.append(np.empty(0, dtype=v.dtype))
            out.indices.append(np.empty(0, dtype=np.int64))
    return out


def _shard_batch_process_task(
    shared_ref, parsed: List, plan: PartitionPlan, gpu: int, config: DrTopKConfig, fused: bool
) -> ShardBatchOutcome:
    """Process-executor entry point for one GPU's shard work.

    Attaches the admitted vector's shared-memory block in the worker process
    — the vector itself never crosses the process boundary — and runs the
    same shard worker the thread path uses.  Worker processes see no shared
    plan bank or partition cache (cross-process bank sharing is out of
    scope), so accounting shows local constructions instead of bank hits.
    """
    from repro.service.sharedmem import attached  # runtime import, see above

    with attached(shared_ref) as v:
        out = _shard_batch_worker(config, v, parsed, plan, gpu, None, None, None, fused)
    out.via_shared_memory = True
    return out


# -- analytic Table 2 model -------------------------------------------------------


def _single_gpu_pipeline_ms(
    n: int, k: int, device: DeviceSpec, beta: int = 2, const: float = 3.0
) -> float:
    """Estimated Dr. Top-k time on one GPU for an ``n``-element sub-vector.

    Uses the expected workload model for the delegate / concatenated vector
    sizes and the device cost model for the traffic of the four stages
    (the same accounting the real pipeline records, evaluated analytically).
    """
    stats = expected_workload(n, k, beta=beta, const=const)
    model = CostModel(device)
    m = stats.delegate_vector_size
    if m == 0:
        return model.streaming_scan_ms(n) * 5.0  # degenerate fallback: plain radix top-k
    scanned = stats.fully_qualified_subranges * stats.subrange_size
    construction = model.streaming_scan_ms(n) + model.streaming_scan_ms(2 * m)
    first = model.streaming_scan_ms(5 * m + 2 * k)
    concat = model.streaming_scan_ms(k + scanned + 2 * stats.concatenated_size)
    second = model.streaming_scan_ms(5 * stats.concatenated_size + k)
    launch = 4 * model.launch_overhead_ms
    return construction + first + concat + second + launch


def estimate_scalability_row(
    total_elements: int,
    k: int,
    num_gpus: int,
    device: DeviceSpec = V100S,
    capacity_elements: int = MAX_SUBVECTOR_ELEMENTS,
    gpus_per_node: int = 4,
    comm_cost: Optional[CommCost] = None,
    beta: int = 2,
) -> MultiGpuReport:
    """One cell of Table 2, evaluated analytically at paper scale."""
    if total_elements < 1 or num_gpus < 1:
        raise ConfigurationError("total_elements and num_gpus must be positive")
    plan = plan_partition(total_elements, num_gpus, capacity_elements)
    model = CostModel(device)
    comm_cost = comm_cost or CommCost()

    per_gpu_compute = []
    per_gpu_reload = []
    for sub_ids in plan.assignments:
        compute = 0.0
        reload = 0.0
        for order, sub in enumerate(sub_ids):
            start, stop = plan.subvector_bounds[sub]
            size = stop - start
            compute += _single_gpu_pipeline_ms(size, min(k, size), device, beta=beta)
            if order > 0:
                reload += model.host_transfer_ms(size)
        per_gpu_compute.append(compute)
        per_gpu_reload.append(reload)

    # Asynchronous gather of k (key, index) pairs from every secondary GPU.
    message_bytes = float(k) * 8.0
    transfers = []
    for rank in range(1, num_gpus):
        inter = (rank // gpus_per_node) != 0
        transfers.append(comm_cost.transfer_ms(message_bytes, inter_node=inter))
    communication = (
        max(transfers) + comm_cost.latency_ms * (len(transfers) - 1) if transfers else 0.0
    )
    final_ms = model.streaming_scan_ms(5 * num_gpus * k) + model.launch_overhead_ms

    return MultiGpuReport(
        num_gpus=num_gpus,
        total_elements=total_elements,
        k=k,
        communication_ms=communication,
        reload_ms=float(max(per_gpu_reload)),
        compute_ms=float(max(per_gpu_compute)),
        final_topk_ms=final_ms,
    )
