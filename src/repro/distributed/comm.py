"""Simulated MPI-like communication between GPUs.

The communicator moves NumPy arrays between simulated ranks in process (so the
distributed pipeline produces real results) while charging each message the
latency + bandwidth cost an MPI transfer over NVLink/PCIe + InfiniBand would
incur.  Asynchronous gathers — the mode the paper uses to collect local top-k
results on the primary GPU — overlap across senders, so their modelled cost is
the maximum of the individual transfers plus a per-participant latency, which
is how Table 2's communication column stays in the low milliseconds even at 16
GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import CommunicationError, ConfigurationError

__all__ = ["CommCost", "SimulatedComm"]


@dataclass(frozen=True)
class CommCost:
    """Latency/bandwidth model of one interconnect hop."""

    latency_ms: float = 0.01
    bandwidth_gbps: float = 32.0  # NVLink-class intra-node bandwidth
    inter_node_latency_ms: float = 0.12
    inter_node_bandwidth_gbps: float = 12.0  # InfiniBand-class inter-node bandwidth

    def transfer_ms(self, nbytes: float, inter_node: bool = False) -> float:
        """Time to move ``nbytes`` over one hop."""
        if nbytes < 0:
            raise ConfigurationError("message size must be non-negative")
        if inter_node:
            return self.inter_node_latency_ms + nbytes / (self.inter_node_bandwidth_gbps * 1e9) * 1e3
        return self.latency_ms + nbytes / (self.bandwidth_gbps * 1e9) * 1e3


@dataclass
class SimulatedComm:
    """An in-process stand-in for an MPI communicator over ``num_ranks`` GPUs.

    ``gpus_per_node`` controls which transfers are intra-node (NVLink) versus
    inter-node (network), matching the paper's 4-GPUs-per-node platform.
    """

    num_ranks: int
    gpus_per_node: int = 4
    cost: CommCost = field(default_factory=CommCost)
    total_comm_ms: float = 0.0
    messages: List[Dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise ConfigurationError("num_ranks must be positive")
        if self.gpus_per_node < 1:
            raise ConfigurationError("gpus_per_node must be positive")

    # -- helpers -----------------------------------------------------------------
    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.num_ranks):
            raise CommunicationError(f"rank {rank} out of range [0, {self.num_ranks})")

    def _record(self, kind: str, src: int, dst: int, nbytes: float, ms: float) -> None:
        self.messages.append(
            {"kind": kind, "src": src, "dst": dst, "bytes": float(nbytes), "ms": float(ms)}
        )

    # -- point to point ------------------------------------------------------------
    def send(self, array: np.ndarray, src: int, dst: int) -> np.ndarray:
        """Synchronous send: returns the received array and charges its cost."""
        self._check_rank(src)
        self._check_rank(dst)
        nbytes = float(np.asarray(array).nbytes)
        inter = self.node_of(src) != self.node_of(dst)
        ms = self.cost.transfer_ms(nbytes, inter_node=inter) if src != dst else 0.0
        self.total_comm_ms += ms
        self._record("send", src, dst, nbytes, ms)
        return np.array(array, copy=True)

    # -- collectives -----------------------------------------------------------------
    def gather(
        self, arrays: Sequence[np.ndarray], root: int = 0, asynchronous: bool = True
    ) -> List[np.ndarray]:
        """Gather one array from every rank onto ``root``.

        ``asynchronous=True`` models the paper's overlapped asynchronous MPI
        gathers: the charged time is the slowest single transfer (plus per
        sender latency), not the sum.
        """
        if len(arrays) != self.num_ranks:
            raise CommunicationError(
                f"gather needs one array per rank ({self.num_ranks}), got {len(arrays)}"
            )
        self._check_rank(root)
        per_transfer = []
        for rank, arr in enumerate(arrays):
            if rank == root:
                continue
            nbytes = float(np.asarray(arr).nbytes)
            inter = self.node_of(rank) != self.node_of(root)
            ms = self.cost.transfer_ms(nbytes, inter_node=inter)
            per_transfer.append(ms)
            self._record("gather", rank, root, nbytes, ms)
        if per_transfer:
            if asynchronous:
                charged = max(per_transfer) + self.cost.latency_ms * (len(per_transfer) - 1)
            else:
                charged = float(sum(per_transfer))
            self.total_comm_ms += charged
        return [np.array(a, copy=True) for a in arrays]

    def bcast(self, array: np.ndarray, root: int = 0) -> List[np.ndarray]:
        """Broadcast ``array`` from ``root`` to every rank (tree-structured cost)."""
        self._check_rank(root)
        nbytes = float(np.asarray(array).nbytes)
        rounds = int(np.ceil(np.log2(max(self.num_ranks, 2))))
        ms = rounds * self.cost.transfer_ms(nbytes, inter_node=self.num_ranks > self.gpus_per_node)
        self.total_comm_ms += ms
        self._record("bcast", root, -1, nbytes, ms)
        return [np.array(array, copy=True) for _ in range(self.num_ranks)]

    def allreduce_max(self, values: Sequence[float]) -> float:
        """All-reduce (max) of one scalar per rank — the k-th element exchange
        the paper evaluates and ultimately disables (Section 5.4)."""
        if len(values) != self.num_ranks:
            raise CommunicationError("allreduce needs one value per rank")
        rounds = int(np.ceil(np.log2(max(self.num_ranks, 2))))
        ms = rounds * self.cost.transfer_ms(8.0, inter_node=self.num_ranks > self.gpus_per_node)
        self.total_comm_ms += ms
        self._record("allreduce", -1, -1, 8.0 * self.num_ranks, ms)
        return float(max(values))
