"""Posting lists, blocks and the inverted index substrate for BMW.

The model follows Figure 11: every query term owns a posting list of
``(document id, score)`` pairs sorted by document id; the list is partitioned
into fixed-size blocks, and each block stores the maximum score it contains
(the *block max*).  The searcher uses the per-term maximum score for WAND
pivoting and the block maxima for the BMW refinement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils import as_rng, RngLike

__all__ = ["Posting", "Block", "PostingList", "InvertedIndex", "build_corpus_index"]


@dataclass(frozen=True)
class Posting:
    """One ``(document, score)`` entry of a posting list."""

    doc_id: int
    score: float


@dataclass(frozen=True)
class Block:
    """A contiguous run of postings with its maximum score (the block max)."""

    start: int          # index of the first posting within the list
    stop: int           # one past the last posting
    max_score: float
    first_doc: int
    last_doc: int

    def __len__(self) -> int:
        return self.stop - self.start


class PostingList:
    """Postings of one term, sorted by document id and split into blocks."""

    def __init__(self, doc_ids: Sequence[int], scores: Sequence[float], block_size: int = 64):
        doc_ids = np.asarray(doc_ids, dtype=np.int64)
        scores = np.asarray(scores, dtype=np.float64)
        if doc_ids.shape != scores.shape:
            raise ConfigurationError("doc_ids and scores must have the same length")
        if doc_ids.shape[0] == 0:
            raise ConfigurationError("a posting list must not be empty")
        if block_size < 1:
            raise ConfigurationError("block_size must be positive")
        order = np.argsort(doc_ids, kind="stable")
        self.doc_ids = doc_ids[order]
        self.scores = scores[order]
        if np.any(np.diff(self.doc_ids) == 0):
            raise ConfigurationError("duplicate document ids in a posting list")
        self.block_size = int(block_size)
        self.blocks: List[Block] = self._build_blocks()

    def _build_blocks(self) -> List[Block]:
        blocks = []
        n = self.doc_ids.shape[0]
        for start in range(0, n, self.block_size):
            stop = min(start + self.block_size, n)
            blocks.append(
                Block(
                    start=start,
                    stop=stop,
                    max_score=float(self.scores[start:stop].max()),
                    first_doc=int(self.doc_ids[start]),
                    last_doc=int(self.doc_ids[stop - 1]),
                )
            )
        return blocks

    def __len__(self) -> int:
        return int(self.doc_ids.shape[0])

    @property
    def max_score(self) -> float:
        """Term-wide maximum score (the WAND upper bound)."""
        return float(self.scores.max())

    def block_of(self, position: int) -> Block:
        """Block containing the posting at ``position``."""
        if not (0 <= position < len(self)):
            raise ConfigurationError("posting position out of range")
        return self.blocks[position // self.block_size]

    def seek(self, position: int, doc_id: int) -> int:
        """Smallest posting position ``>= position`` whose document id is ``>= doc_id``."""
        return int(position + np.searchsorted(self.doc_ids[position:], doc_id, side="left"))

    def score_at(self, position: int) -> float:
        return float(self.scores[position])

    def doc_at(self, position: int) -> int:
        return int(self.doc_ids[position])


class InvertedIndex:
    """Term → posting-list mapping with shared block size."""

    def __init__(self, postings: Mapping[str, PostingList]):
        if not postings:
            raise ConfigurationError("an inverted index needs at least one term")
        self.postings: Dict[str, PostingList] = dict(postings)

    def __contains__(self, term: str) -> bool:
        return term in self.postings

    def __getitem__(self, term: str) -> PostingList:
        try:
            return self.postings[term]
        except KeyError:
            raise ConfigurationError(f"unknown term {term!r}") from None

    def terms(self) -> Tuple[str, ...]:
        return tuple(sorted(self.postings))

    @property
    def num_documents(self) -> int:
        """Highest document id referenced plus one."""
        return int(max(pl.doc_ids.max() for pl in self.postings.values()) + 1)


def build_corpus_index(
    num_documents: int,
    terms: Iterable[str],
    block_size: int = 64,
    density: float = 0.3,
    max_occurrences: int = 20,
    seed: RngLike = None,
) -> InvertedIndex:
    """Generate a synthetic corpus index.

    Each term appears in a random ``density`` fraction of the documents with a
    score equal to its occurrence count (the scoring used in the paper's
    Figure 11 example).  Used by the IR example application and the BMW tests.
    """
    if num_documents < 1:
        raise ConfigurationError("num_documents must be positive")
    if not (0.0 < density <= 1.0):
        raise ConfigurationError("density must be in (0, 1]")
    rng = as_rng(seed)
    postings: Dict[str, PostingList] = {}
    for term in terms:
        count = max(int(round(num_documents * density)), 1)
        doc_ids = rng.choice(num_documents, size=count, replace=False)
        scores = rng.integers(1, max_occurrences + 1, size=count).astype(np.float64)
        postings[str(term)] = PostingList(doc_ids, scores, block_size=block_size)
    if not postings:
        raise ConfigurationError("at least one term is required")
    return InvertedIndex(postings)
