"""WAND / Block-Max WAND query evaluation and workload counting.

:class:`BMWSearcher` implements the two-level pruning of Ding & Suel's BMW on
top of the posting-list substrate:

1. **WAND pivoting** — terms are ordered by their current document id; the
   pivot is the first document at which the sum of the *term-wide* maximum
   scores could exceed the current top-k threshold λ.
2. **Block-max check** — before fully evaluating the pivot document, the sum
   of the *block* maxima of the blocks containing it must exceed λ; otherwise
   the searcher skips ahead (Figure 11's pseudo code).

The searcher counts how many documents were fully evaluated, how many were
skipped by each level and how many postings were touched — the quantities the
Figure 24 comparison uses.  :func:`bmw_vector_workload` adapts the same
block-max skipping to a plain top-k input vector (a single-term query whose
scores are the vector values), which is how the paper compares BMW's workload
with Dr. Top-k's on the UD/ND datasets.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.bmw.postings import InvertedIndex, PostingList
from repro.errors import ConfigurationError
from repro.utils import check_k, ensure_1d

__all__ = ["EvaluationCounters", "QueryResult", "BMWSearcher", "bmw_vector_workload"]


@dataclass
class EvaluationCounters:
    """Workload counters of one query evaluation."""

    fully_evaluated: int = 0
    wand_skipped: int = 0
    blockmax_skipped: int = 0
    postings_touched: int = 0
    blocks_decompressed: int = 0

    @property
    def total_considered(self) -> int:
        """Documents that reached either pruning stage or full evaluation."""
        return self.fully_evaluated + self.wand_skipped + self.blockmax_skipped


@dataclass
class QueryResult:
    """Top-k documents for a query plus the evaluation workload."""

    doc_ids: List[int]
    scores: List[float]
    counters: EvaluationCounters

    def __len__(self) -> int:
        return len(self.doc_ids)


class BMWSearcher:
    """Block-Max WAND top-k document retrieval over an :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex):
        self.index = index

    def search(self, terms: Sequence[str], k: int) -> QueryResult:
        """Return the top-``k`` documents for a bag-of-words query.

        The document score is the sum of its per-term scores (as in the
        paper's example, where a term's score is its occurrence count).
        """
        if not terms:
            raise ConfigurationError("query must contain at least one term")
        lists: List[PostingList] = [self.index[t] for t in terms]
        k = check_k(k, self.index.num_documents)
        counters = EvaluationCounters()

        # Per-term cursor (posting position); exhausted lists get position == len.
        positions = [0] * len(lists)
        heap: List[Tuple[float, int]] = []  # (score, doc_id) min-heap of current top-k

        def threshold() -> float:
            return heap[0][0] if len(heap) >= k else float("-inf")

        while True:
            # Order live terms by their current document id (WAND).
            live = [i for i, pos in enumerate(positions) if pos < len(lists[i])]
            if not live:
                break
            live.sort(key=lambda i: lists[i].doc_at(positions[i]))

            # Find the pivot term: the first prefix whose summed term maxima
            # could beat the threshold.
            upper = 0.0
            pivot_term = None
            for i in live:
                upper += lists[i].max_score
                if upper > threshold():
                    pivot_term = i
                    break
            if pivot_term is None:
                # No remaining document can enter the top-k.
                counters.wand_skipped += sum(len(lists[i]) - positions[i] for i in live)
                break
            pivot_doc = lists[pivot_term].doc_at(positions[pivot_term])

            first_doc = lists[live[0]].doc_at(positions[live[0]])
            if first_doc == pivot_doc:
                # Block-max refinement: sum the block maxima of the blocks
                # containing the pivot document across the query terms.
                block_upper = 0.0
                involved = []
                for i in live:
                    pos = lists[i].seek(positions[i], pivot_doc)
                    if pos < len(lists[i]) and lists[i].doc_at(pos) == pivot_doc:
                        involved.append((i, pos))
                        block_upper += lists[i].block_of(pos).max_score
                if block_upper > threshold():
                    # Full evaluation (decompress blocks, sum exact scores).
                    counters.fully_evaluated += 1
                    counters.blocks_decompressed += len(involved)
                    score = 0.0
                    for i, pos in involved:
                        score += lists[i].score_at(pos)
                        counters.postings_touched += 1
                    if len(heap) < k:
                        heapq.heappush(heap, (score, pivot_doc))
                    elif score > heap[0][0]:
                        heapq.heapreplace(heap, (score, pivot_doc))
                else:
                    counters.blockmax_skipped += 1
                # Advance every term positioned at the pivot document.
                for i in live:
                    if lists[i].doc_at(positions[i]) == pivot_doc:
                        positions[i] += 1
            else:
                # Terms before the pivot cannot contribute a winning document
                # on their own; skip them forward to the pivot document.
                for i in live:
                    if lists[i].doc_at(positions[i]) < pivot_doc:
                        new_pos = lists[i].seek(positions[i], pivot_doc)
                        counters.wand_skipped += new_pos - positions[i]
                        positions[i] = new_pos

        ranked = sorted(heap, key=lambda sd: (-sd[0], sd[1]))
        return QueryResult(
            doc_ids=[doc for _, doc in ranked],
            scores=[score for score, _ in ranked],
            counters=counters,
        )


def bmw_vector_workload(v: np.ndarray, k: int, block_size: int) -> EvaluationCounters:
    """BMW-style workload for a plain top-k input vector (Figure 24).

    The vector is treated as the postings of a single query term in document
    id order, partitioned into blocks of ``block_size`` (the same subrange
    size Dr. Top-k would use).  BMW scans documents in order, maintaining the
    current top-k threshold λ; a block whose block max falls strictly below λ
    is skipped wholesale, otherwise every document in it is fully evaluated —
    this is the element-centric behaviour the paper contrasts with Dr. Top-k's
    subrange skipping.

    The skip test is *strict* (``block max < λ``): when the block maximum ties
    with λ the block must still be examined, because with duplicated values a
    tied document can belong to a valid top-k answer.  This is exactly why BMW
    degenerates on the paper's narrow ND distribution (Figure 24): nearly
    every block maximum equals the threshold, so almost nothing is skipped,
    while Dr. Top-k's workload is value-distribution independent.
    """
    v = ensure_1d(v)
    k = check_k(k, v.shape[0])
    if block_size < 1:
        raise ConfigurationError("block_size must be positive")
    counters = EvaluationCounters()
    n = v.shape[0]
    values = v.astype(np.float64, copy=False)
    running: np.ndarray = np.empty(0, dtype=np.float64)  # current top-k values
    lam = float("-inf")
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block = values[start:stop]
        block_max = float(block.max())
        if block_max < lam:
            counters.blockmax_skipped += stop - start
            continue
        counters.blocks_decompressed += 1
        counters.fully_evaluated += stop - start
        counters.postings_touched += stop - start
        # Update the running top-k threshold λ with the block's contents.
        candidates = np.concatenate([running, block])
        if candidates.shape[0] > k:
            candidates = np.partition(candidates, candidates.shape[0] - k)[-k:]
        running = candidates
        if running.shape[0] >= k:
            lam = float(running.min())
    return counters
