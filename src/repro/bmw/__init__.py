"""Block-Max WAND (BMW) information-retrieval baseline (Section 4.4, Figure 24).

BMW answers top-k *document* queries over an inverted index: posting lists are
split into blocks carrying the maximum score of the block, and a document is
fully evaluated only when the sum of the block maxima of the blocks containing
it can exceed the current top-k threshold.

The paper contrasts BMW's element-centric skipping with Dr. Top-k's
delegate-centric subrange skipping and reports (Figure 24) how much more data
BMW still fully evaluates.  This package provides:

* a posting-list / block-max substrate (:mod:`repro.bmw.postings`),
* WAND and Block-Max WAND query evaluation with full workload counters
  (:mod:`repro.bmw.bmw`), and
* the single-term vector adaptation used for the Figure 24 comparison
  (:func:`repro.bmw.bmw.bmw_vector_workload`).
"""

from repro.bmw.postings import Posting, Block, PostingList, InvertedIndex, build_corpus_index
from repro.bmw.bmw import (
    BMWSearcher,
    QueryResult,
    EvaluationCounters,
    bmw_vector_workload,
)

__all__ = [
    "Posting",
    "Block",
    "PostingList",
    "InvertedIndex",
    "build_corpus_index",
    "BMWSearcher",
    "QueryResult",
    "EvaluationCounters",
    "bmw_vector_workload",
]
