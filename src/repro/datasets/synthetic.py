"""Synthetic input-vector distributions (paper Section 6).

All generators return one dimensional ``uint32`` vectors (the paper's default
element type) and accept a seed or :class:`numpy.random.Generator` for
reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils import as_rng, RngLike

__all__ = [
    "uniform_distribution",
    "normal_distribution",
    "customized_distribution",
    "UINT32_MAX",
]

#: Upper bound of the paper's uniform distribution: values span [0, 2^32 - 1].
UINT32_MAX = np.uint32(0xFFFFFFFF)


def uniform_distribution(n: int, seed: RngLike = None) -> np.ndarray:
    """UD: ``n`` values drawn uniformly from ``[0, 2^32 - 1]``."""
    if n < 1:
        raise ConfigurationError("n must be positive")
    rng = as_rng(seed)
    return rng.integers(0, int(UINT32_MAX) + 1, size=n, dtype=np.uint32)


def normal_distribution(
    n: int, mean: float = 1e8, std: float = 10.0, seed: RngLike = None
) -> np.ndarray:
    """ND: ``n`` values from N(mean, std), rounded and clipped to uint32.

    With the paper's parameters (mean ``1e8``, std ``10``) the values collapse
    onto a few dozen distinct integers, which is what makes the radix/bucket
    partitioning algorithms carry most elements from one iteration to the
    next.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    if std < 0:
        raise ConfigurationError("std must be non-negative")
    rng = as_rng(seed)
    vals = rng.normal(loc=mean, scale=std, size=n)
    vals = np.clip(np.rint(vals), 0, float(UINT32_MAX))
    return vals.astype(np.uint32)


def customized_distribution(
    n: int,
    num_buckets: int = 256,
    levels: int = 4,
    seed: RngLike = None,
) -> np.ndarray:
    """CD: adversarial distribution for bucket top-k (paper Section 6).

    The construction follows the paper's description: at every refinement
    level, "every bucket other than the bucket containing the k-th element
    will always have at least one element ... and the majority of the
    elements is present in the bucket with the k-th element".  The generator
    therefore plants one element in each of the ``num_buckets - 1`` lower
    buckets of the current value range and recurses into the top bucket with
    the remaining elements, for ``levels`` levels (matching the number of
    iterations a 32-bit key needs with 8-bit buckets).

    Parameters
    ----------
    n:
        Total number of elements; must allow at least one element per lower
        bucket per level plus a non-empty core.
    num_buckets:
        Buckets per iteration of the attacked bucket top-k (256 matches both
        the paper's bucket count and one radix digit).
    levels:
        Number of nested refinement levels to poison.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    if num_buckets < 2:
        raise ConfigurationError("num_buckets must be at least 2")
    if levels < 1:
        raise ConfigurationError("levels must be at least 1")
    planted_per_level = num_buckets - 1
    if n <= planted_per_level * levels:
        raise ConfigurationError(
            f"n={n} too small for {levels} levels of {planted_per_level} planted elements"
        )
    rng = as_rng(seed)
    pieces = []
    lo = 0
    hi = int(UINT32_MAX)
    remaining = n
    for _ in range(levels):
        width = (hi - lo + 1) // num_buckets
        if width < num_buckets:
            # Stop refining before the core range collapses onto a handful of
            # distinct values: the paper's CD stresses bucket top-k's iteration
            # count, it does not degenerate into a single repeated value.
            break
        # One random element inside each of the lower (non-interesting) buckets.
        base = lo + width * np.arange(planted_per_level, dtype=np.int64)
        jitter = rng.integers(0, width, size=planted_per_level, dtype=np.int64)
        pieces.append((base + jitter).astype(np.uint32))
        remaining -= planted_per_level
        lo = lo + width * planted_per_level  # recurse into the top bucket
    core = rng.integers(lo, hi + 1, size=remaining, dtype=np.int64).astype(np.uint32)
    pieces.append(core)
    out = np.concatenate(pieces)
    rng.shuffle(out)
    return out
