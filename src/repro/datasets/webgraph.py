"""ClueWeb09 surrogate: web-graph degree vectors.

The paper's CW workload ranks webpages by degree: the input vector for top-k
is the degree of every vertex of the ClueWeb09 webgraph (4.8 B pages).  The
graph itself is unavailable offline, so two surrogates are provided:

* :func:`synthetic_power_law_degrees` — draw degrees directly from a
  discrete power-law (Zipf) distribution, the well established model for web
  in-degree, at any requested size.  This is what the benchmarks use.
* :func:`webgraph_degree_vector` — build an actual scale-free graph with
  :mod:`networkx` (Barabási–Albert preferential attachment) and return its
  degree sequence.  This exercises a real graph substrate end to end and is
  used by the degree-centrality application and its tests at moderate sizes.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.errors import ConfigurationError
from repro.utils import as_rng, RngLike

__all__ = ["synthetic_power_law_degrees", "webgraph_degree_vector"]


def synthetic_power_law_degrees(
    n: int, exponent: float = 2.1, max_degree: int = 10_000_000, seed: RngLike = None
) -> np.ndarray:
    """Draw ``n`` vertex degrees from a Zipf(power-law) distribution.

    ``exponent`` ~2.1 matches measured web-graph in-degree exponents.  Values
    are clipped to ``max_degree`` and returned as ``uint32``.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    if exponent <= 1.0:
        raise ConfigurationError("power-law exponent must be > 1")
    rng = as_rng(seed)
    degrees = rng.zipf(a=exponent, size=n)
    return np.clip(degrees, 1, max_degree).astype(np.uint32)


def webgraph_degree_vector(
    num_nodes: int, attachment: int = 4, seed: RngLike = None
) -> np.ndarray:
    """Degree sequence of a Barabási–Albert scale-free graph.

    Parameters
    ----------
    num_nodes:
        Number of vertices in the generated graph (keep moderate: the graph
        is materialised in memory).
    attachment:
        Number of edges each new vertex attaches with (the BA ``m``).
    """
    if num_nodes <= attachment:
        raise ConfigurationError("num_nodes must exceed the attachment parameter")
    rng = as_rng(seed)
    graph = nx.barabasi_albert_graph(num_nodes, attachment, seed=int(rng.integers(0, 2**31)))
    degrees = np.fromiter((d for _, d in graph.degree()), dtype=np.uint32, count=num_nodes)
    return degrees
