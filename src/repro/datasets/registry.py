"""Name-based dataset registry used by the benchmark harness.

The harness refers to workloads by the paper's abbreviations — ``UD``, ``ND``,
``CD`` for the synthetic distributions and ``AN``, ``CW``, ``TR`` for the
real-world surrogates (Table 1) — and instantiates them at a configurable
size so the same experiment code can run at laptop scale or at the paper's
2^30 scale when only the analytic cost model is exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.datasets.ann import knn_distance_vector
from repro.datasets.synthetic import (
    customized_distribution,
    normal_distribution,
    uniform_distribution,
)
from repro.datasets.twitter import covid_fear_scores
from repro.datasets.webgraph import synthetic_power_law_degrees
from repro.errors import ConfigurationError
from repro.utils import RngLike

__all__ = ["DatasetSpec", "get_dataset", "available_datasets", "register_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """A named workload generator.

    Attributes
    ----------
    name:
        Paper abbreviation (``UD``, ``ND``, ``CD``, ``AN``, ``CW``, ``TR``).
    description:
        One-line description (reported by the harness).
    generator:
        Callable ``(n, seed) -> np.ndarray`` producing the top-k input vector.
    largest:
        Whether the associated application asks for the largest (default) or
        smallest elements: k-NN and tweet ranking are smallest-k queries.
    """

    name: str
    description: str
    generator: Callable[[int, RngLike], np.ndarray]
    largest: bool = True

    def generate(self, n: int, seed: RngLike = None) -> np.ndarray:
        """Materialise the workload at size ``n``."""
        return self.generator(n, seed)


_REGISTRY: Dict[str, DatasetSpec] = {}


def register_dataset(spec: DatasetSpec) -> DatasetSpec:
    """Register a dataset spec under its (case-insensitive) name."""
    _REGISTRY[spec.name.lower()] = spec
    return spec


register_dataset(
    DatasetSpec(
        name="UD",
        description="uniform distribution over [0, 2^32 - 1]",
        generator=lambda n, seed=None: uniform_distribution(n, seed=seed),
    )
)
register_dataset(
    DatasetSpec(
        name="ND",
        description="normal distribution N(1e8, 10)",
        generator=lambda n, seed=None: normal_distribution(n, seed=seed),
    )
)
register_dataset(
    DatasetSpec(
        name="CD",
        description="customised adversarial distribution for bucket top-k",
        generator=lambda n, seed=None: customized_distribution(n, seed=seed),
    )
)
register_dataset(
    DatasetSpec(
        name="AN",
        description="ANN_SIFT1B surrogate: k-NN distance vector",
        generator=lambda n, seed=None: knn_distance_vector(n, seed=seed),
        largest=False,
    )
)
register_dataset(
    DatasetSpec(
        name="CW",
        description="ClueWeb09 surrogate: power-law web-graph degrees",
        generator=lambda n, seed=None: synthetic_power_law_degrees(n, seed=seed),
    )
)
register_dataset(
    DatasetSpec(
        name="TR",
        description="TwitterCOVID-19 surrogate: fear scores",
        generator=lambda n, seed=None: covid_fear_scores(n, seed=seed),
        largest=False,
    )
)


def available_datasets() -> Tuple[str, ...]:
    """Registered dataset abbreviations."""
    return tuple(sorted(spec.name for spec in _REGISTRY.values()))


def get_dataset(name: str) -> DatasetSpec:
    """Look a dataset up by abbreviation (case insensitive)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        ) from None
