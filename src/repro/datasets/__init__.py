"""Dataset generators for the paper's evaluation workloads.

Synthetic distributions (Section 6):

* **UD** — uniform over ``[0, 2^32 - 1]`` unsigned integers,
* **ND** — normal with mean ``1e8`` and standard deviation ``10`` (a very
  narrow value range, which stresses the value-partitioning algorithms),
* **CD** — a customised adversarial distribution that maximises the number of
  bucket top-k iterations (every non-interesting bucket keeps at least one
  element at every refinement level while the bulk of the data stays in the
  bucket of the k-th element).

Real-world workload surrogates (Table 1): the paper's datasets are multi-GB
downloads (ANN_SIFT1B, ClueWeb09, TwitterCOVID-19) that are unavailable
offline, so each is replaced by a generator that reproduces the property that
matters for top-k — the value distribution of the derived input vector — as
documented in DESIGN.md.
"""

from repro.datasets.synthetic import (
    uniform_distribution,
    normal_distribution,
    customized_distribution,
)
from repro.datasets.ann import SiftLikeDataset, knn_distance_vector
from repro.datasets.webgraph import webgraph_degree_vector, synthetic_power_law_degrees
from repro.datasets.twitter import covid_fear_scores
from repro.datasets.registry import get_dataset, available_datasets, DatasetSpec

__all__ = [
    "uniform_distribution",
    "normal_distribution",
    "customized_distribution",
    "SiftLikeDataset",
    "knn_distance_vector",
    "webgraph_degree_vector",
    "synthetic_power_law_degrees",
    "covid_fear_scores",
    "get_dataset",
    "available_datasets",
    "DatasetSpec",
]
