"""TwitterCOVID-19 surrogate: fear-score vectors.

The paper's TR workload consists of COVID-fear scores for ~132 million tweets,
duplicated onto a one-billion-element vector; top-k (smallest) extracts the k
*least fearful* tweets.  The labelled dataset is not redistributable here, so
this generator produces a bounded, right-skewed score distribution (a beta
mixture: most tweets mildly fearful, a minority highly fearful, a small spike
of zero-fear tweets) quantised to integer scores, and replicates a base block
of "original" tweets to the requested length exactly as the paper does.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils import as_rng, RngLike

__all__ = ["covid_fear_scores"]

#: Score resolution: scores are quantised to this many discrete levels,
#: mimicking a bounded sentiment/emotion intensity score.
SCORE_LEVELS = 100_000


def covid_fear_scores(
    n: int,
    original_fraction: float = 0.132,
    seed: RngLike = None,
) -> np.ndarray:
    """Generate ``n`` COVID-fear-like scores as ``uint32``.

    Parameters
    ----------
    n:
        Output vector length.
    original_fraction:
        Fraction of ``n`` that is generated as "original" tweets before
        duplication (the paper duplicates 132 M originals onto a 1 B vector,
        i.e. ~13.2%).  The duplication preserves the value distribution while
        creating the heavy tie structure a replicated corpus has.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    if not (0.0 < original_fraction <= 1.0):
        raise ConfigurationError("original_fraction must be in (0, 1]")
    rng = as_rng(seed)
    base_n = max(int(round(n * original_fraction)), 1)
    # Mixture: 70% mild fear (beta skewed low), 25% strong fear, 5% zero fear.
    mild = rng.beta(2.0, 6.0, size=base_n)
    strong = rng.beta(6.0, 2.0, size=base_n)
    component = rng.uniform(size=base_n)
    scores = np.where(component < 0.70, mild, strong)
    scores[component >= 0.95] = 0.0
    base = np.rint(scores * (SCORE_LEVELS - 1)).astype(np.uint32)
    # Duplicate the originals to reach n elements, then shuffle.
    reps = -(-n // base_n)
    out = np.tile(base, reps)[:n]
    rng.shuffle(out)
    return out
