"""ANN_SIFT1B surrogate: SIFT-like descriptors and k-NN distance vectors.

The paper's AN workload takes the first vector of the ANN_SIFT1B dataset,
computes the Euclidean distance from it to the other one billion 128-d SIFT
descriptors, and feeds the distance array into top-k (k nearest neighbours =
smallest-k).  The dataset itself is a multi-hundred-GB download, so this
module generates *SIFT-like* descriptors instead: 128-dimensional unsigned
8-bit vectors whose per-dimension means/spreads mimic real SIFT gradient
histograms (non-negative, heavily skewed toward small bin values with a few
dominant bins).  What the top-k algorithms observe is only the derived
distance array, whose shape — a unimodal, chi-like distribution with a long
upper tail — this surrogate matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.utils import as_rng, RngLike

__all__ = ["SiftLikeDataset", "knn_distance_vector", "SIFT_DIM"]

#: Dimensionality of SIFT descriptors.
SIFT_DIM = 128


@dataclass
class SiftLikeDataset:
    """A collection of synthetic SIFT-like descriptors.

    Attributes
    ----------
    vectors:
        ``(n, 128)`` uint8 array of descriptors.
    """

    vectors: np.ndarray

    def __post_init__(self) -> None:
        self.vectors = np.asarray(self.vectors)
        if self.vectors.ndim != 2 or self.vectors.shape[1] != SIFT_DIM:
            raise ConfigurationError(
                f"SIFT-like vectors must have shape (n, {SIFT_DIM}), got {self.vectors.shape}"
            )

    def __len__(self) -> int:
        return self.vectors.shape[0]

    @classmethod
    def generate(cls, n: int, seed: RngLike = None) -> "SiftLikeDataset":
        """Generate ``n`` SIFT-like descriptors.

        Each descriptor is drawn from a gamma-shaped per-bin magnitude model
        (most bins small, a few large), clipped to the SIFT convention of a
        maximum bin value of 255 after normalisation.
        """
        if n < 1:
            raise ConfigurationError("n must be positive")
        rng = as_rng(seed)
        raw = rng.gamma(shape=1.2, scale=22.0, size=(n, SIFT_DIM))
        # A handful of dominant orientations per descriptor, as in real SIFT.
        dominant = rng.integers(0, SIFT_DIM, size=(n, 4))
        rows = np.arange(n)[:, None]
        raw[rows, dominant] *= rng.uniform(2.0, 5.0, size=(n, 4))
        vectors = np.clip(raw, 0, 255).astype(np.uint8)
        return cls(vectors=vectors)

    def distances_from(self, query: Optional[np.ndarray] = None) -> np.ndarray:
        """Squared Euclidean distances from ``query`` to every descriptor.

        ``query`` defaults to the first descriptor, mirroring the paper's
        setup ("we use the first vector from the ANN_SIFT1B dataset").
        Squared distance preserves the nearest-neighbour ordering and keeps
        the values integral, matching the paper's unsigned-integer input
        vectors.
        """
        if query is None:
            query = self.vectors[0]
        query = np.asarray(query, dtype=np.int64)
        if query.shape != (SIFT_DIM,):
            raise ConfigurationError(f"query must have shape ({SIFT_DIM},)")
        diffs = self.vectors.astype(np.int64) - query[None, :]
        return np.einsum("ij,ij->i", diffs, diffs).astype(np.uint32)


def knn_distance_vector(n: int, seed: RngLike = None) -> np.ndarray:
    """Convenience: generate descriptors and return the distance top-k input.

    This is the "AN" input vector of Table 1 at a configurable size.
    """
    dataset = SiftLikeDataset.generate(n, seed=seed)
    return dataset.distances_from()
