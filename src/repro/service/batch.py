"""Batched top-k: many queries over one shared vector, one construction.

A naive serving loop runs the full Dr. Top-k pipeline per query, re-scanning
the input vector to rebuild the delegate vector every time even though the
vector has not changed.  :class:`BatchTopK` answers a batch of ``(k, largest)``
queries by grouping them by resolved subrange geometry — queries share a
:class:`~repro.core.plan.QueryPlan` whenever their Rule-4 ``alpha`` and key
order agree — and building the delegate vector **once per group**.  For the
common case of a homogeneous batch this turns ``B`` full-vector construction
scans into one, which is the dominant per-query traffic at serving time (the
delegate and concatenated vectors are orders of magnitude smaller than the
input, Section 6.2).

Selection is amortised across a group too, not just construction: by default
(``fused=True``) each group's queries run through
:func:`repro.service.fusion.fused_group_topk` — **one** shared first top-k
over the delegate vector at the group's ``max(k)`` plus one shared
gather/filter, with every query's answer derived from the shared candidate
set (``BatchReport.selection_calls`` counts the win: one call per group
instead of one per query).

Results are element-wise identical to looping
:meth:`repro.core.drtopk.DrTopK.topk`, fused or not: the grouped plan
resolves exactly the same ``alpha`` per query (through the shared
:class:`~repro.service.cache.PartitionCache`) and the fused path derives
each query's exact threshold (the ``k``-th shared delegate key) and exact
concatenation, so values *and* indices match the per-query pipeline — only
the construction and selection accounting moves from per-query to
per-batch.

With a :class:`~repro.service.planbank.PlanBank` attached, amortisation also
crosses dispatches: a group whose ``(vector fingerprint, alpha, largest)``
key is banked skips ``to_keys`` and construction entirely and records zero
construction traffic for the batch — the steady-state zero-rescan path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import DrTopKConfig
from repro.core.drtopk import DrTopK
from repro.errors import ConfigurationError
from repro.core.plan import QueryPlan
from repro.harness.reporting import summarize_workloads
from repro.service.cache import PartitionCache, fingerprint_array
from repro.service.fusion import fused_group_topk
from repro.service.planbank import PlanBank
from repro.types import TopKResult, WorkloadStats
from repro.utils import check_k, ensure_1d

__all__ = [
    "TopKQuery",
    "BatchReport",
    "BatchTopK",
    "batch_topk",
    "group_queries_by_plan",
    "modelled_query_cost",
    "DEFAULT_ALPHA_SNAP_TOLERANCE",
]

#: Accepted query spellings: ``k``, ``(k,)``, ``(k, largest)`` or TopKQuery.
QueryLike = Union[int, Tuple, "TopKQuery"]

#: Bank-aware alpha snapping: a query whose resolved Rule-4 ``alpha`` is a
#: bank miss may be regrouped under a *banked* neighbouring exponent when the
#: modelled per-query cost grows by at most this fraction.  ``alpha`` only
#: tunes performance — any valid exponent returns exact answers — so a snap
#: trades a bounded amount of modelled work for skipping an O(n) rebuild.
DEFAULT_ALPHA_SNAP_TOLERANCE = 0.25


@dataclass(frozen=True)
class TopKQuery:
    """One top-k request against the batch's shared vector."""

    k: int
    largest: bool = True

    @classmethod
    def of(cls, query: QueryLike) -> "TopKQuery":
        """Coerce ``k`` / ``(k, largest)`` / :class:`TopKQuery` to a query."""
        if isinstance(query, TopKQuery):
            return query
        if isinstance(query, (int, np.integer)):
            return cls(k=int(query))
        if isinstance(query, tuple) and 1 <= len(query) <= 2:
            k = query[0]
            largest = bool(query[1]) if len(query) == 2 else True
            if isinstance(k, (int, np.integer)):
                return cls(k=int(k), largest=largest)
        raise ConfigurationError(
            f"cannot interpret {query!r} as a top-k query; "
            "expected k, (k, largest) or TopKQuery"
        )


def modelled_query_cost(n: int, k: int, alpha: int, beta: int) -> float:
    """Modelled per-query serving cost at a given subrange exponent.

    The concatenated second-pass vector holds ``min(num_subranges * beta, n)``
    elements and selection work scales with ``k`` — the same first-order
    model Rule 4 optimises and the router's placement weights use.  Only
    *relative* costs matter (the alpha snap compares two exponents).
    """
    subrange = 1 << int(alpha)
    num_subranges = -(-int(n) // subrange)
    m = min(num_subranges * min(int(beta), subrange), int(n))
    return float(m + 4 * int(k))


def _snap_alpha(
    n: int,
    k: int,
    alpha: int,
    beta: int,
    candidates: Sequence[QueryPlan],
    tolerance: float,
) -> int:
    """Resolved exponent, possibly snapped to a banked neighbour.

    Keeps ``alpha`` when it is already banked, when no compatible candidate
    answers ``k`` exactly, or when every candidate's modelled cost exceeds
    ``(1 + tolerance)`` times the resolved exponent's.  Deterministic:
    ties prefer the cheapest candidate, then the nearest exponent.
    """
    if not candidates:
        return alpha
    for plan in candidates:
        if int(plan.alpha) == alpha:
            return alpha  # exact bank hit; nothing to snap
    budget = (1.0 + tolerance) * modelled_query_cost(n, k, alpha, beta)
    best: Optional[Tuple[Tuple[float, int, int], int]] = None
    for plan in candidates:
        if int(plan.n) != int(n):
            continue
        if plan.beta != min(int(beta), plan.partition.subrange_size):
            continue  # banked under an incompatible configuration
        if not plan.answers(k):
            continue  # would force the exact-fallback path: not a warm hit
        cand = int(plan.alpha)
        cost = modelled_query_cost(n, k, cand, beta)
        if cost > budget:
            continue
        rank = (cost, abs(cand - alpha), cand)
        if best is None or rank < best[0]:
            best = (rank, cand)
    return alpha if best is None else best[1]


def group_queries_by_plan(
    parsed: Sequence["TopKQuery"],
    n: int,
    cache: Optional[PartitionCache],
    engine: DrTopK,
    plan_bank: Optional[PlanBank] = None,
    fingerprint: Optional[str] = None,
    snap_tolerance: Optional[float] = DEFAULT_ALPHA_SNAP_TOLERANCE,
) -> Dict[Tuple[int, bool], List[int]]:
    """Group query positions by the plan they can share.

    Two queries share a :class:`~repro.core.plan.QueryPlan` exactly when their
    resolved Rule-4 ``alpha`` and key order agree, so the group key is
    ``(alpha, largest)``.  This single definition of plan compatibility is
    used by :class:`BatchTopK`, the router's worker placement and the sharded
    multi-GPU batch — keeping "what can be amortised" identical across every
    route.  ``cache`` (when given) memoises the ``(n, k) → alpha`` resolution.

    With ``plan_bank`` and ``fingerprint`` both given, bank-aware snapping
    applies on top: a query whose resolved exponent is *not* banked regroups
    under a banked neighbouring exponent whenever the modelled cost gap stays
    within ``snap_tolerance`` (and the banked plan answers the query's ``k``
    exactly) — a near-miss becomes a warm hit instead of an O(n) rebuild.
    Snapping never changes answers, only which exact plan serves them.
    """
    groups: Dict[Tuple[int, bool], List[int]] = {}
    snapping = (
        plan_bank is not None
        and fingerprint is not None
        and snap_tolerance is not None
        and snap_tolerance > 0
    )
    banked: Optional[Dict[bool, List[QueryPlan]]] = None
    beta = engine.config.beta
    for pos, q in enumerate(parsed):
        if cache is not None:
            alpha = cache.resolve(n, q.k, engine)
        else:
            alpha = engine._resolve_alpha(int(n), q.k)
        if snapping:
            if banked is None:  # one bank walk per call, not per query
                banked = {}
                for plan in plan_bank.banked_plans(fingerprint):
                    banked.setdefault(bool(plan.largest), []).append(plan)
            alpha = _snap_alpha(
                n, q.k, alpha, beta, banked.get(q.largest, ()), snap_tolerance
            )
        groups.setdefault((alpha, q.largest), []).append(pos)
    return groups


@dataclass
class BatchReport:
    """Amortisation accounting of one :meth:`BatchTopK.run` call.

    All byte quantities are simulated global-memory traffic (zero when the
    engine runs with ``collect_trace=False``).  ``naive_bytes`` is what the
    same queries would have moved through a per-query loop: every query that
    went through the delegate pipeline re-charges its group's construction.
    """

    num_queries: int = 0
    num_groups: int = 0
    constructions: int = 0
    construction_bytes: float = 0.0
    query_bytes: float = 0.0
    naive_bytes: float = 0.0
    construction_ms: float = 0.0
    query_ms: float = 0.0
    #: Groups served from the cross-dispatch plan bank (zero construction
    #: traffic charged this batch).
    plan_bank_hits: int = 0
    #: Groups served from a caller-provided shared plan handle (split-group
    #: broadcast); the construction was charged once by the broadcaster, so
    #: this batch records zero construction traffic for them.
    shared_plan_groups: int = 0
    #: Full selection passes executed: one per query on the per-query loop,
    #: one per group (plus exact fallbacks) on the fused path.
    selection_calls: int = 0
    #: Groups answered through :func:`~repro.service.fusion.fused_group_topk`.
    fused_groups: int = 0
    #: Queries served by a shared fused selection (fallbacks excluded).
    fused_queries: int = 0
    #: Measured wall-clock per fused stage, summed over the batch's groups.
    fusion_stage_ms: Dict[str, float] = field(default_factory=dict)
    stats: List[WorkloadStats] = field(default_factory=list)

    @property
    def total_bytes(self) -> float:
        """Simulated bytes the batch actually moved."""
        return self.construction_bytes + self.query_bytes

    @property
    def bytes_per_query(self) -> float:
        """Amortised traffic per query."""
        if self.num_queries == 0:
            return 0.0
        return self.total_bytes / self.num_queries

    @property
    def naive_bytes_per_query(self) -> float:
        """Traffic per query of the equivalent per-query loop."""
        if self.num_queries == 0:
            return 0.0
        return self.naive_bytes / self.num_queries

    @property
    def traffic_saved_fraction(self) -> float:
        """Fraction of the naive loop's traffic the batch avoided."""
        if self.naive_bytes <= 0:
            return 0.0
        return 1.0 - self.total_bytes / self.naive_bytes

    @property
    def total_ms(self) -> float:
        """Estimated batch time (one construction per group plus queries)."""
        return self.construction_ms + self.query_ms

    def summary(self) -> Dict:
        """Aggregate row combining workload and amortisation quantities."""
        row = summarize_workloads(self.stats)
        row.update(
            {
                "num_groups": self.num_groups,
                "constructions": self.constructions,
                "plan_bank_hits": self.plan_bank_hits,
                "shared_plan_groups": self.shared_plan_groups,
                "selection_calls": self.selection_calls,
                "fused_groups": self.fused_groups,
                "fused_queries": self.fused_queries,
                "construction_bytes": self.construction_bytes,
                "query_bytes": self.query_bytes,
                "total_bytes": self.total_bytes,
                "naive_bytes": self.naive_bytes,
                "bytes_per_query": self.bytes_per_query,
                "traffic_saved_fraction": self.traffic_saved_fraction,
                "total_ms": self.total_ms,
            }
        )
        return row


class BatchTopK:
    """Answer batches of top-k queries with amortised delegate construction.

    Parameters
    ----------
    config:
        Pipeline configuration shared by every query (defaults to the
        paper's final design).
    cache:
        Optional shared :class:`PartitionCache`; the dispatcher passes one
        cache to all of its workers.
    plan_bank:
        Optional shared :class:`~repro.service.planbank.PlanBank` persisting
        query plans across dispatches.  A bank must only be shared among
        engines with one pipeline configuration.
    fused:
        When ``True`` (the default) each group's queries are answered through
        :func:`~repro.service.fusion.fused_group_topk` — one shared selection
        at the group's ``max(k)`` instead of one ``topk_prepared`` call per
        query, with per-query-identical results.  ``False`` keeps the
        per-query loop (the differential baseline).
    snap_tolerance:
        Modelled-cost headroom for bank-aware alpha snapping (see
        :func:`group_queries_by_plan`); ``None`` or ``0`` disables snapping.
    """

    def __init__(
        self,
        config: Optional[DrTopKConfig] = None,
        cache: Optional[PartitionCache] = None,
        plan_bank: Optional[PlanBank] = None,
        fused: bool = True,
        snap_tolerance: Optional[float] = DEFAULT_ALPHA_SNAP_TOLERANCE,
    ) -> None:
        self.engine = DrTopK(config)
        # Not `cache or ...`: an empty cache is falsy (it has __len__ == 0)
        # but must still be shared.
        self.cache = cache if cache is not None else PartitionCache()
        self.plan_bank = plan_bank
        self.fused = bool(fused)
        self.snap_tolerance = snap_tolerance
        self.last_report: Optional[BatchReport] = None

    @property
    def config(self) -> DrTopKConfig:
        """The engine's pipeline configuration (shared, read it, don't mutate)."""
        return self.engine.config

    def _banked_plan(
        self, fingerprint: Optional[str], alpha: int, largest: bool
    ) -> Optional[QueryPlan]:
        """Usable banked plan for the group key, or ``None``.

        The bank itself enforces ``beta`` compatibility (a bank shared
        across configurations must never serve foreign plans).
        """
        if self.plan_bank is None or fingerprint is None:
            return None
        return self.plan_bank.get(fingerprint, alpha, largest, beta=self.config.beta)

    def run(
        self,
        v: np.ndarray,
        queries: Sequence[QueryLike],
        fingerprint: Optional[str] = None,
        shared_plans: Optional[Dict[Tuple[int, bool], QueryPlan]] = None,
    ) -> List[TopKResult]:
        """Answer every query against ``v``; results align with ``queries``.

        The shared vector is scanned for delegate construction once per
        ``(alpha, largest)`` group rather than once per query; everything
        else matches a loop of :meth:`DrTopK.topk` exactly.  With a plan
        bank attached, groups whose plan is already banked skip construction
        entirely; ``fingerprint`` (when the caller — typically the
        dispatcher — has already fingerprinted ``v``) avoids hashing twice.

        ``shared_plans`` maps ``(alpha, largest)`` group keys to broadcast
        :class:`QueryPlan` handles (split-group dispatch): a group whose key
        is present is served from the handle, read-only, with zero
        construction charged here — the broadcaster charged it once for all
        splits.  The handles must have been built over exactly ``v`` with
        this engine's configuration.
        """
        parsed = [TopKQuery.of(q) for q in queries]
        report = BatchReport(num_queries=len(parsed))
        if not parsed:
            self.last_report = report
            return []

        v = ensure_1d(v)
        n = v.shape[0]
        for q in parsed:
            check_k(q.k, n)

        # Resolve the fingerprint *before* grouping: bank-aware alpha
        # snapping needs to see the banked exponents for this content.
        if self.plan_bank is not None and fingerprint is None:
            fingerprint = fingerprint_array(v)

        # Group queries sharing a plan: same resolved alpha, same key order
        # — with near-miss exponents snapped onto banked neighbours.
        groups = group_queries_by_plan(
            parsed,
            n,
            self.cache,
            self.engine,
            plan_bank=self.plan_bank,
            fingerprint=fingerprint,
            snap_tolerance=self.snap_tolerance,
        )

        results: List[Optional[TopKResult]] = [None] * len(parsed)
        report.num_groups = len(groups)
        collect = self.config.collect_trace

        for (alpha, largest), positions in groups.items():
            # The construction *gate* stays at min(k): the plan is built
            # whenever at least one query in the group clears the degenerate
            # regime (num_subranges * beta > k holds for the smallest k iff it
            # holds for any).  The fused *selection* below then runs once at
            # the group's max(k) and serves every smaller k from it.
            min_k = min(parsed[p].k for p in positions)
            plan = shared_plans.get((alpha, largest)) if shared_plans else None
            shared_hit = plan is not None
            bank_hit = False
            if plan is None:
                plan = self._banked_plan(fingerprint, alpha, largest)
                bank_hit = plan is not None
            if plan is None:
                plan = self.engine.prepare_with_alpha(v, alpha, largest=largest, k=min_k)
                if self.plan_bank is not None and fingerprint is not None:
                    self.plan_bank.put(fingerprint, plan)
            if shared_hit:
                # A broadcast handle: the split-group dispatcher charged the
                # construction once for every split, not per worker.
                report.shared_plan_groups += 1
            elif bank_hit:
                # The banked construction happened in an earlier dispatch;
                # this batch moves no construction traffic for the group.
                report.plan_bank_hits += 1
            elif not plan.is_degenerate:
                report.constructions += 1
                report.construction_bytes += plan.construction_bytes
                report.construction_ms += plan.construction_ms(self.config.device)
            if self.fused:
                outcome = fused_group_topk(
                    self.engine, plan, [parsed[p].k for p in positions]
                )
                report.selection_calls += outcome.selection_calls
                if outcome.fused_queries:
                    report.fused_groups += 1
                report.fused_queries += outcome.fused_queries
                report.query_ms += outcome.shared_ms
                for name, ms in outcome.stage_ms.items():
                    report.fusion_stage_ms[name] = (
                        report.fusion_stage_ms.get(name, 0.0) + ms
                    )
                for pos, result in zip(positions, outcome.results):
                    results[pos] = result
                    assert result.stats is not None
                    report.query_ms += result.stats.total_time_ms
                if collect:
                    report.query_bytes += outcome.shared_bytes + sum(outcome.query_bytes)
                    report.naive_bytes += sum(outcome.naive_bytes)
            else:
                for pos in positions:
                    q = parsed[pos]
                    result = self.engine.topk_prepared(plan, q.k, charge_construction=False)
                    results[pos] = result
                    report.selection_calls += 1
                    assert result.stats is not None
                    report.query_ms += result.stats.total_time_ms
                    if collect:
                        q_bytes = self.engine.last_trace.total_counters().global_bytes
                        report.query_bytes += q_bytes
                        report.naive_bytes += q_bytes
            if collect:
                # Either path: a per-query loop would have re-charged the
                # group's construction for every query whose one-shot
                # pre-construction check (num_subranges * beta > k) would
                # have built delegates — including gap-regime queries that
                # then fall back.
                for pos in positions:
                    q = parsed[pos]
                    if (
                        not plan.is_degenerate
                        and plan.partition.num_subranges * plan.beta > q.k
                    ):
                        report.naive_bytes += plan.construction_bytes

        # Align the collected stats with the input query order.
        report.stats = [r.stats for r in results if r is not None and r.stats is not None]
        self.last_report = report
        return [r for r in results if r is not None]

    def run_with_report(
        self,
        v: np.ndarray,
        queries: Sequence[QueryLike],
        fingerprint: Optional[str] = None,
        shared_plans: Optional[Dict[Tuple[int, bool], QueryPlan]] = None,
    ) -> Tuple[List[TopKResult], BatchReport]:
        """Like :meth:`run`, also returning the batch's :class:`BatchReport`."""
        results = self.run(v, queries, fingerprint=fingerprint, shared_plans=shared_plans)
        assert self.last_report is not None
        return results, self.last_report


def batch_topk(
    v: np.ndarray,
    queries: Sequence[QueryLike],
    config: Optional[DrTopKConfig] = None,
) -> List[TopKResult]:
    """One-call convenience wrapper around :class:`BatchTopK`."""
    return BatchTopK(config).run(v, queries)
