"""Dispatching query batches across the simulated multi-GPU fleet.

:class:`ServiceDispatcher` is the serving front end that ties the service
layer to :mod:`repro.distributed`:

* **Batched route** — when the shared vector fits one device's sub-vector
  capacity, queries are grouped exactly like :class:`~repro.service.batch.BatchTopK`
  (shared ``(alpha, largest)`` plans) and whole groups are placed on workers
  with a greedy least-loaded assignment, so plan reuse is never split across
  workers.  Workers run in parallel in the modelled fleet: the dispatch's
  compute time is the *maximum* worker time, and the per-worker results are
  gathered to the primary through the
  :class:`~repro.distributed.comm.SimulatedComm` cost model.
* **Sharded route** — when the vector exceeds the capacity, each query runs
  the Figure 16 multi-GPU workflow
  (:class:`~repro.distributed.multigpu.MultiGpuDrTopK`) over the whole fleet.

Both routes share one :class:`~repro.service.cache.PartitionCache`, so the
Rule-4 ``(n, k) → alpha`` resolution is computed once per query shape across
the fleet's lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DrTopKConfig
from repro.distributed.comm import CommCost, SimulatedComm
from repro.distributed.multigpu import MultiGpuDrTopK
from repro.distributed.partition import MAX_SUBVECTOR_ELEMENTS
from repro.errors import ConfigurationError
from repro.service.batch import BatchTopK, QueryLike, TopKQuery
from repro.service.cache import CacheInfo, PartitionCache
from repro.types import TopKResult
from repro.utils import check_k, ensure_1d

__all__ = ["ServiceDispatcher", "DispatchReport", "WorkerReport", "dispatch_topk"]


@dataclass
class WorkerReport:
    """One worker's share of a dispatched batch."""

    worker: int
    queries: int = 0
    groups: int = 0
    constructions: int = 0
    compute_ms: float = 0.0
    bytes_moved: float = 0.0


@dataclass
class DispatchReport:
    """Fleet-level accounting of one :meth:`ServiceDispatcher.dispatch` call."""

    num_queries: int = 0
    num_workers: int = 0
    route: str = "batched"
    workers: List[WorkerReport] = field(default_factory=list)
    communication_ms: float = 0.0
    constructions: int = 0
    bytes_moved: float = 0.0
    cache: Optional[CacheInfo] = None

    @property
    def compute_ms(self) -> float:
        """Modelled compute time: workers run in parallel, so the maximum."""
        return max((w.compute_ms for w in self.workers), default=0.0)

    @property
    def total_ms(self) -> float:
        """End-to-end modelled time (parallel compute plus the gather)."""
        return self.compute_ms + self.communication_ms


class ServiceDispatcher:
    """Route top-k query batches over a simulated multi-GPU worker fleet.

    Parameters
    ----------
    num_workers:
        Fleet size (one :class:`BatchTopK` engine per worker).
    config:
        Pipeline configuration shared by the fleet.
    capacity_elements:
        Per-device sub-vector capacity; inputs above it take the sharded
        multi-GPU route (defaults to the paper's 2^30 cap — lower it in
        tests to exercise sharding on small data).
    cache_capacity:
        Entries of the shared LRU ``(n, k) → alpha`` partition cache.
    gpus_per_node / comm_cost:
        Interconnect topology and cost model for the result gather.
    """

    def __init__(
        self,
        num_workers: int = 4,
        config: Optional[DrTopKConfig] = None,
        capacity_elements: int = MAX_SUBVECTOR_ELEMENTS,
        cache_capacity: int = 128,
        gpus_per_node: int = 4,
        comm_cost: Optional[CommCost] = None,
    ):
        if num_workers < 1:
            raise ConfigurationError("num_workers must be positive")
        if capacity_elements < 1:
            raise ConfigurationError("capacity_elements must be positive")
        self.num_workers = int(num_workers)
        self.config = config or DrTopKConfig()
        self.capacity_elements = int(capacity_elements)
        self.gpus_per_node = int(gpus_per_node)
        self.comm_cost = comm_cost or CommCost()
        self.cache = PartitionCache(cache_capacity)
        self.workers = [
            BatchTopK(self.config, cache=self.cache) for _ in range(self.num_workers)
        ]
        self.last_report: Optional[DispatchReport] = None

    # -- public API -----------------------------------------------------------
    def dispatch(self, v: np.ndarray, queries: Sequence[QueryLike]) -> List[TopKResult]:
        """Answer every query against ``v``; results align with ``queries``."""
        parsed = [TopKQuery.of(q) for q in queries]
        report = DispatchReport(num_queries=len(parsed), num_workers=self.num_workers)
        if not parsed:
            report.cache = self.cache.info()
            self.last_report = report
            return []

        v = ensure_1d(v)
        n = v.shape[0]
        for q in parsed:
            check_k(q.k, n)

        if n > self.capacity_elements:
            results = self._dispatch_sharded(v, parsed, report)
        else:
            results = self._dispatch_batched(v, parsed, report)
        report.cache = self.cache.info()
        self.last_report = report
        return results

    # -- batched route ------------------------------------------------------------
    def _dispatch_batched(
        self, v: np.ndarray, parsed: List[TopKQuery], report: DispatchReport
    ) -> List[TopKResult]:
        report.route = "batched"
        n = v.shape[0]
        # Same grouping as BatchTopK: a group shares one plan, so it must
        # stay on one worker.
        groups: dict = {}
        for pos, q in enumerate(parsed):
            alpha = self.cache.resolve(n, q.k, self.workers[0].engine)
            groups.setdefault((alpha, q.largest), []).append(pos)

        # Greedy least-loaded placement of whole groups (largest first).
        load = [0] * self.num_workers
        placement: List[List[int]] = [[] for _ in range(self.num_workers)]
        for positions in sorted(groups.values(), key=len, reverse=True):
            target = min(range(self.num_workers), key=load.__getitem__)
            placement[target].extend(positions)
            load[target] += len(positions)

        results: List[Optional[TopKResult]] = [None] * len(parsed)
        worker_values: List[np.ndarray] = []
        worker_indices: List[np.ndarray] = []
        for w, positions in enumerate(placement):
            wreport = WorkerReport(worker=w, queries=len(positions))
            if positions:
                worker = self.workers[w]
                sub_queries = [parsed[p] for p in positions]
                sub_results, batch_report = worker.run_with_report(v, sub_queries)
                for pos, res in zip(positions, sub_results):
                    results[pos] = res
                wreport.groups = batch_report.num_groups
                wreport.constructions = batch_report.constructions
                wreport.compute_ms = batch_report.total_ms
                wreport.bytes_moved = batch_report.total_bytes
                worker_values.append(np.concatenate([r.values for r in sub_results]))
                worker_indices.append(np.concatenate([r.indices for r in sub_results]))
            else:
                worker_values.append(np.empty(0, dtype=v.dtype))
                worker_indices.append(np.empty(0, dtype=np.int64))
            report.workers.append(wreport)
            report.constructions += wreport.constructions
            report.bytes_moved += wreport.bytes_moved

        # Gather every worker's answers on the primary (asynchronous, like
        # the Figure 16 result collection).
        comm = SimulatedComm(
            num_ranks=self.num_workers,
            gpus_per_node=self.gpus_per_node,
            cost=self.comm_cost,
        )
        comm.gather(worker_values, root=0, asynchronous=True)
        comm.gather(worker_indices, root=0, asynchronous=True)
        report.communication_ms = comm.total_comm_ms

        final = [r for r in results if r is not None]
        if len(final) != len(parsed):
            raise ConfigurationError("internal error: dispatcher lost queries")
        return final

    # -- sharded route ------------------------------------------------------------
    def _dispatch_sharded(
        self, v: np.ndarray, parsed: List[TopKQuery], report: DispatchReport
    ) -> List[TopKResult]:
        report.route = "sharded"
        fleet = MultiGpuDrTopK(
            num_gpus=self.num_workers,
            config=self.config,
            capacity_elements=self.capacity_elements,
            gpus_per_node=self.gpus_per_node,
            comm_cost=self.comm_cost,
        )
        per_worker_ms = [0.0] * self.num_workers
        results: List[TopKResult] = []
        for q in parsed:
            results.append(fleet.topk(v, q.k, largest=q.largest))
            assert fleet.last_report is not None
            run = fleet.last_report
            report.communication_ms += run.communication_ms
            # The fleet model reports the critical-path worker; fold each
            # query's compute + reload into every worker's budget since all
            # ranks participate in a sharded run.
            for w in range(self.num_workers):
                per_worker_ms[w] += run.compute_ms + run.reload_ms
            per_worker_ms[0] += run.final_topk_ms
        for w in range(self.num_workers):
            report.workers.append(
                WorkerReport(
                    worker=w,
                    queries=len(parsed),
                    compute_ms=per_worker_ms[w],
                )
            )
        return results


def dispatch_topk(
    v: np.ndarray,
    queries: Sequence[QueryLike],
    num_workers: int = 4,
    config: Optional[DrTopKConfig] = None,
    **kwargs,
) -> Tuple[List[TopKResult], DispatchReport]:
    """One-call convenience: dispatch a batch and return results + report."""
    dispatcher = ServiceDispatcher(num_workers=num_workers, config=config, **kwargs)
    results = dispatcher.dispatch(v, queries)
    assert dispatcher.last_report is not None
    return results, dispatcher.last_report
