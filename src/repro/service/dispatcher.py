"""Dispatching query batches across the simulated multi-GPU fleet.

:class:`ServiceDispatcher` is the serving front end.  Since the unified
execution core landed it is a thin submit/collect wrapper: the
:class:`~repro.service.router.Router` classifies each request and emits
per-worker :class:`~repro.service.executor.WorkUnit`\\ s, the shared
:class:`~repro.service.executor.ServiceExecutor` runs them concurrently on a
bounded-queue thread pool (real wall-clock overlap, measured next to the
modelled ``compute_ms``), and the dispatcher merges the outcomes into results
and a :class:`DispatchReport`.

Three routes run through the core:

* **Batched** — the shared vector fits one device's sub-vector capacity.
  Queries are grouped exactly like :class:`~repro.service.batch.BatchTopK`
  (shared ``(alpha, largest)`` plans) and groups are placed on workers with
  a greedy least-loaded assignment.  A group normally stays whole on one
  worker so plan reuse is never paid twice; a **dominant** group (above the
  router's ``split_threshold`` of the dispatch's modelled work) is split
  across workers instead, its single :class:`~repro.core.plan.QueryPlan`
  broadcast to every split as a shared read-only handle — constructed or
  bank-fetched exactly once (``DispatchReport.groups_split`` /
  ``plan_broadcasts`` account for it, ``balance_ratio`` shows the win).
  Per-worker results are gathered to the primary through the
  :class:`~repro.distributed.comm.SimulatedComm` cost model.
* **Sharded** — the vector exceeds the capacity.  The batch runs the Figure
  16 workflow via :meth:`~repro.distributed.multigpu.MultiGpuDrTopK.topk_batch`
  with one work unit per GPU: per-shard delegate vectors are built once per
  ``(alpha, largest)`` group of the batch, and the report carries the real
  gather traffic and construction counts.
* **Streaming** — the input is an iterable of chunks rather than a vector.
  Each chunk becomes one work unit on the next worker round-robin; chunk
  candidates merge into per-query pools on the primary and a final pass
  orders each answer — the fleet-routed version of
  :class:`~repro.service.streaming.StreamingTopK`.

Four shared caches sit in front of the routes: the Rule-4
:class:`~repro.service.cache.PartitionCache` (``(n, k) → alpha``), the
:class:`~repro.service.cache.ResultCache`
(``(vector fingerprint, k, largest) → TopKResult``) so a repeated identical
query skips the pipeline entirely, the
:class:`~repro.service.planbank.PlanBank`
(``(vector fingerprint, alpha, largest) → QueryPlan``) so a *changed* query
(new ``k``) over an *unchanged* vector still skips key conversion and
delegate construction — on the batched route (whole-vector plans) and the
sharded route (per-shard fingerprints) alike — and the streaming route's
:class:`~repro.service.planbank.ChunkMemo`, which memoises each chunk's
candidate pool by content fingerprint so replayed streams run zero per-chunk
pipeline work.  Together they make the steady-state serving path zero-rescan:
only a genuinely new vector (or a new ``alpha``) pays an O(n) scan.

On top of the anonymous :meth:`ServiceDispatcher.dispatch` sits the **named
front end**: :meth:`~ServiceDispatcher.admit` places a vector into the
byte-budgeted :class:`~repro.service.store.VectorStore` working set —
fingerprinted once (whole vector, and per shard above the device capacity),
made read-only, plans optionally pre-warmed — and
:meth:`~ServiceDispatcher.query` serves it by name with the pinned
fingerprint, so warm named traffic does zero fingerprint work on top of its
zero-rescan plan reuse.  :meth:`~ServiceDispatcher.evict` (and byte-budget
eviction) cascades into the plan bank and result cache, releasing the
content's banked bytes unless another admitted name aliases it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import DrTopKConfig
from repro.core.plan import QueryPlan
from repro.distributed.comm import CommCost, SimulatedComm
from repro.distributed.multigpu import MultiGpuDrTopK
from repro.distributed.partition import MAX_SUBVECTOR_ELEMENTS
from repro.errors import ConfigurationError, TenantQuotaError
from repro.service.batch import (
    DEFAULT_ALPHA_SNAP_TOLERANCE,
    BatchTopK,
    QueryLike,
    TopKQuery,
    group_queries_by_plan,
)
from repro.service.cache import CacheInfo, PartitionCache, ResultCache, fingerprint_array
from repro.service.executor import ServiceExecutor, UnitResult
from repro.service.fusion import ArenaInfo, arena_info
from repro.service.planbank import (
    DEFAULT_CHUNK_MEMO_BYTES,
    DEFAULT_PLAN_BANK_BYTES,
    ChunkMemo,
    PlanBank,
)
from repro.service.router import (
    DEFAULT_MIN_SPLIT_WORK,
    DEFAULT_SPLIT_THRESHOLD,
    Router,
)
from repro.service.sharedmem import SharedArray
from repro.service.spill import SpillDirectory
from repro.service.store import (
    DEFAULT_PROMOTE_AFTER,
    DEFAULT_STORE_BYTES,
    StoredVector,
    VectorStore,
)
from repro.service.streaming import (
    DEFAULT_CHUNK_ELEMENTS,
    merge_candidate_pool,
    order_candidate_pool,
)
from repro.service.tenancy import DEFAULT_TENANT, TenantRegistry
from repro.types import TopKResult
from repro.utils import check_k, ensure_1d

__all__ = [
    "ServiceDispatcher",
    "DispatchReport",
    "WorkerReport",
    "SaveReport",
    "RestoreReport",
    "dispatch_topk",
]


@dataclass
class WorkerReport:
    """One worker's share of a dispatched batch."""

    worker: int
    queries: int = 0
    groups: int = 0
    constructions: int = 0
    compute_ms: float = 0.0
    bytes_moved: float = 0.0
    wall_ms: float = 0.0
    #: Modelled element workload the router's placement put on this worker
    #: (zero on routes that do not place by weight).
    load: float = 0.0


@dataclass
class DispatchReport:
    """Fleet-level accounting of one :meth:`ServiceDispatcher.dispatch` call.

    ``compute_ms`` is the *modelled* parallel compute time (workers overlap,
    so the maximum); ``wall_ms`` is the *measured* wall-clock of the unit
    execution and ``unit_wall_ms_sum`` what the same units measured end to
    end — their gap is the executor's real overlap.
    """

    num_queries: int = 0
    num_workers: int = 0
    route: str = "batched"
    workers: List[WorkerReport] = field(default_factory=list)
    communication_ms: float = 0.0
    constructions: int = 0
    #: Simulated traffic of this dispatch's delegate constructions alone;
    #: zero when every group was served from the plan bank (or memo).
    construction_bytes: float = 0.0
    #: Simulated traffic with one definition on every route: the workers'
    #: pipeline bytes (construction + query passes; zero when tracing is
    #: off) plus the result-gather bytes moved to the primary.
    bytes_moved: float = 0.0
    cache: Optional[CacheInfo] = None
    result_cache: Optional[CacheInfo] = None
    result_cache_hits: int = 0
    #: Plan-bank statistics and this dispatch's bank-hit group count; a
    #: bank-hit group contributed zero construction traffic to bytes_moved.
    plan_bank: Optional[CacheInfo] = None
    plan_bank_hits: int = 0
    #: Plan-sharing groups the batched route split across >= 2 workers
    #: (dominant groups above the router's ``split_threshold``).
    groups_split: int = 0
    #: Shared plan handles handed to split-group work units; the broadcast
    #: plan behind them was fetched or constructed exactly once per group.
    plan_broadcasts: int = 0
    #: Streaming chunk-memo statistics and this dispatch's memoised-chunk
    #: serve count (per key order, per chunk).
    chunk_memo: Optional[CacheInfo] = None
    chunk_memo_hits: int = 0
    #: Named-vector working-set statistics (``None`` when the store is
    #: disabled); ``bytes`` is the resident vectors, not their cached plans.
    store: Optional[CacheInfo] = None
    executor_mode: str = ""
    #: Fused-selection accounting (see :mod:`repro.service.fusion`):
    #: ``selection_calls`` counts first/second top-k algorithm invocations
    #: the dispatch actually ran — a fused group pays one shared call plus
    #: one per exact-fallback query instead of one per query;
    #: ``fused_groups`` / ``fused_queries`` count groups and queries served
    #: through the shared pass, and ``fusion_stage_ms`` breaks the fused
    #: path's wall time into its pipeline stages.
    selection_calls: int = 0
    fused_groups: int = 0
    fused_queries: int = 0
    fusion_stage_ms: Dict[str, float] = field(default_factory=dict)
    #: Scratch-arena deltas of this dispatch (hits mean a gather/filter
    #: temporary was served from a pooled buffer instead of a fresh
    #: allocation) plus the cumulative cross-thread snapshot.
    arena_hits: int = 0
    arena_misses: int = 0
    arena_resizes: int = 0
    arena: Optional[ArenaInfo] = None
    #: Process-executor accounting: units that actually ran in worker
    #: processes, runs that fell back to threads for lack of a picklable
    #: task, and shard units that gathered from shared memory.
    process_units: int = 0
    process_fallbacks: int = 0
    shared_memory_units: int = 0
    wall_ms: float = 0.0
    unit_wall_ms_sum: float = 0.0
    #: Measured submit-to-start queue waits of this dispatch's work units —
    #: the sum over units and the single worst unit.  Non-zero waits mean the
    #: executor's bounded queue (or its pool) delayed work; the load harness
    #: samples these next to its own arrival-queue waits.
    unit_queue_ms_sum: float = 0.0
    max_unit_queue_ms: float = 0.0
    backpressure_waits: int = 0
    #: Queries this dispatch served over a spill-tier mmap view (the named
    #: vector was not resident in RAM; zero without a spill directory).
    spill_serves: int = 0
    #: Tenant identity the dispatch ran under; the default tenant for every
    #: anonymous or untenanted call, so single-tenant reports are unchanged.
    tenant: str = DEFAULT_TENANT

    @property
    def compute_ms(self) -> float:
        """Modelled compute time: workers run in parallel, so the maximum."""
        return max((w.compute_ms for w in self.workers), default=0.0)

    @property
    def total_ms(self) -> float:
        """End-to-end modelled time (parallel compute plus the gather)."""
        return self.compute_ms + self.communication_ms

    @property
    def measured_overlap_factor(self) -> float:
        """Measured busy unit-time packed into each wall-clock unit of time."""
        if self.wall_ms <= 0.0:
            return 1.0
        return self.unit_wall_ms_sum / self.wall_ms

    @property
    def balance_ratio(self) -> float:
        """Worst-worker modelled load over the perfectly even share.

        ``1.0`` is a perfectly balanced fleet, ``num_workers`` is one worker
        holding everything; ``1.0`` also when the route reports no loads.
        """
        loads = [w.load for w in self.workers]
        total = sum(loads)
        if not loads or total <= 0.0:
            return 1.0
        return max(loads) * len(loads) / total


@dataclass(frozen=True)
class SaveReport:
    """Outcome of one :meth:`ServiceDispatcher.save_state` call."""

    #: Resident vectors persisted to the spill directory this call.
    names_saved: int = 0
    #: Plan-geometry rows now recorded in the manifest (cumulative).
    plan_rows: int = 0
    #: Total bytes of vector data the spill directory references.
    spilled_bytes: int = 0


@dataclass(frozen=True)
class RestoreReport:
    """Outcome of one :meth:`ServiceDispatcher.load_state` call.

    ``plans_warmed`` counts manifest geometry rows now live in the plan bank
    (rebuilt over the spill files' mmap views, or already banked); a warmed
    row means the *serving path* records zero constructions and zero
    construction bytes for that key.  The rebuild itself runs off the
    serving path, at load time, and never re-fingerprints anything.
    """

    #: Spilled names the manifest restored (all serveable immediately).
    names: int = 0
    #: Bytes of spilled vector data backing them.
    spilled_bytes: int = 0
    #: Plan-geometry rows now banked (warm for the first dispatch).
    plans_warmed: int = 0
    #: Manifest rows skipped (unknown fingerprint, stale geometry, or an
    #: unreadable spill file) — the restore degrades, never crashes.
    plans_skipped: int = 0
    #: Query-history counts replayed into the router.
    queries_restored: int = 0


class ServiceDispatcher:
    """Route top-k query batches over a simulated multi-GPU worker fleet.

    Parameters
    ----------
    num_workers:
        Fleet size (one :class:`BatchTopK` engine per worker, one thread per
        worker in the executor pool).
    config:
        Pipeline configuration shared by the fleet.
    capacity_elements:
        Per-device sub-vector capacity; inputs above it take the sharded
        multi-GPU route (defaults to the paper's 2^30 cap — lower it in
        tests to exercise sharding on small data).
    cache_capacity:
        Entries of the shared LRU ``(n, k) → alpha`` partition cache.
    result_cache_capacity:
        Entries of the LRU result cache; ``0`` disables result caching.
    plan_bank_bytes:
        Byte budget of the cross-dispatch :class:`PlanBank`; ``0`` disables
        plan banking (every dispatch reconstructs).
    chunk_memo_bytes:
        Byte budget of the streaming :class:`ChunkMemo`; ``0`` disables
        chunk memoisation.
    store_bytes:
        Byte budget of the named-vector :class:`VectorStore` behind
        :meth:`admit` / :meth:`query`; ``0`` disables the named front end
        (anonymous :meth:`dispatch` is unaffected).
    gpus_per_node / comm_cost:
        Interconnect topology and cost model for the result gather.
    execution:
        ``"threads"`` (default) overlaps work units on the executor's pool;
        ``"sequential"`` runs them inline — the measured baseline;
        ``"process"`` runs picklable units on a process pool, gathering
        admitted vectors through ``multiprocessing.shared_memory`` views
        (see :meth:`admit`) — units without a picklable task fall back to
        threads for that run, recorded as ``process_fallbacks``.
    queue_capacity:
        Bound on in-flight work units (backpressure); defaults to
        ``2 * num_workers``.
    chunk_elements:
        Slice size for the streaming route when the input arrives as chunks.
    split_threshold:
        Fraction of a batched dispatch's total modelled work above which one
        plan-sharing group is split across workers with a shared-plan
        broadcast (see :class:`~repro.service.router.Router`).  ``None``
        pins every group whole to one worker — the pre-split behaviour and
        the baseline the ``splitgroup`` experiment compares against.
    min_split_work:
        Absolute floor on the modelled per-split workload below which a
        dominant group stays whole (see
        :class:`~repro.service.router.Router`); ``0`` disables the floor.
    fused:
        Serve each plan-sharing group through the fused group selection of
        :mod:`repro.service.fusion` (one shared first top-k at the group's
        ``max(k)`` instead of one per query) on every route.  ``False``
        restores the per-query path — the differential baseline the fused
        path is certified against.
    spill_dir:
        Optional path of a durable :class:`~repro.service.spill.SpillDirectory`.
        With one attached, store eviction *spills* instead of drops (victims
        chosen cold-and-large first), queries over spilled names serve
        directly from read-only mmap views, and
        :meth:`save_state` / :meth:`load_state` persist and re-warm the whole
        working set (vectors, fingerprints, query history and banked plan
        geometry) across restarts.  Requires the named store
        (``store_bytes > 0``).
    promote_after:
        Spill hits after which a spilled name is promoted back into RAM
        (``0`` keeps serving over the mmap view forever).
    snap_tolerance:
        Modelled-cost headroom for bank-aware alpha snapping (see
        :func:`~repro.service.batch.group_queries_by_plan`); ``None``/``0``
        disables snapping.
    tenants:
        Optional :class:`~repro.service.tenancy.TenantRegistry` turning the
        serving core multi-tenant: the store partitions its working set into
        per-tenant byte ledgers (eviction victims only from the requesting
        tenant's slice), the executor schedules by weighted
        deficit-round-robin, :meth:`query` charges each tenant's QPS token
        bucket, and :meth:`evict`/:meth:`pin`/:meth:`unpin` enforce
        ownership for non-default tenants.  ``None`` (default) keeps the
        single-tenant behaviour bit-for-bit.
    """

    def __init__(
        self,
        num_workers: int = 4,
        config: Optional[DrTopKConfig] = None,
        capacity_elements: int = MAX_SUBVECTOR_ELEMENTS,
        cache_capacity: int = 128,
        result_cache_capacity: int = 256,
        plan_bank_bytes: int = DEFAULT_PLAN_BANK_BYTES,
        chunk_memo_bytes: int = DEFAULT_CHUNK_MEMO_BYTES,
        store_bytes: int = DEFAULT_STORE_BYTES,
        gpus_per_node: int = 4,
        comm_cost: Optional[CommCost] = None,
        execution: str = "threads",
        queue_capacity: Optional[int] = None,
        chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
        split_threshold: Optional[float] = DEFAULT_SPLIT_THRESHOLD,
        min_split_work: float = DEFAULT_MIN_SPLIT_WORK,
        fused: bool = True,
        spill_dir: Optional[str] = None,
        promote_after: int = DEFAULT_PROMOTE_AFTER,
        snap_tolerance: Optional[float] = DEFAULT_ALPHA_SNAP_TOLERANCE,
        tenants: Optional[TenantRegistry] = None,
    ) -> None:
        if num_workers < 1:
            raise ConfigurationError("num_workers must be positive")
        if capacity_elements < 1:
            raise ConfigurationError("capacity_elements must be positive")
        if result_cache_capacity < 0:
            raise ConfigurationError("result_cache_capacity must be >= 0")
        if plan_bank_bytes < 0:
            raise ConfigurationError("plan_bank_bytes must be >= 0")
        if chunk_memo_bytes < 0:
            raise ConfigurationError("chunk_memo_bytes must be >= 0")
        if store_bytes < 0:
            raise ConfigurationError("store_bytes must be >= 0")
        if chunk_elements < 1:
            raise ConfigurationError("chunk_elements must be >= 1")
        self.num_workers = int(num_workers)
        self.config = config or DrTopKConfig()
        self.capacity_elements = int(capacity_elements)
        self.gpus_per_node = int(gpus_per_node)
        self.comm_cost = comm_cost or CommCost()
        self.chunk_elements = int(chunk_elements)
        self.cache = PartitionCache(cache_capacity)
        self.results_cache: Optional[ResultCache] = (
            ResultCache(result_cache_capacity) if result_cache_capacity else None
        )
        self.plan_bank: Optional[PlanBank] = (
            PlanBank(plan_bank_bytes) if plan_bank_bytes else None
        )
        self.chunk_memo: Optional[ChunkMemo] = (
            ChunkMemo(chunk_memo_bytes) if chunk_memo_bytes else None
        )
        if spill_dir is not None and not store_bytes:
            raise ConfigurationError(
                "spill_dir requires the named-vector store (store_bytes > 0)"
            )
        self._spill: Optional[SpillDirectory] = (
            SpillDirectory(spill_dir) if spill_dir is not None else None
        )
        self._snap_tolerance = snap_tolerance
        self.tenants = tenants
        self.store: Optional[VectorStore] = (
            VectorStore(
                store_bytes,
                on_evict=self._release_vector,
                spill=self._spill,
                promote_after=promote_after,
                # Bound late: the router is created a few lines below, and
                # the hook only runs at eviction time.
                query_history=lambda fp: self.router.query_history(fp),
                tenants=tenants,
            )
            if store_bytes
            else None
        )
        self.fused = bool(fused)
        self.workers = [
            BatchTopK(
                self.config,
                cache=self.cache,
                plan_bank=self.plan_bank,
                fused=self.fused,
                snap_tolerance=snap_tolerance,
            )
            for _ in range(self.num_workers)
        ]
        self.executor = ServiceExecutor(
            max_workers=self.num_workers,
            queue_capacity=queue_capacity,
            mode=execution,
            tenants=tenants,
        )
        self.router = Router(
            num_workers=self.num_workers,
            capacity_elements=self.capacity_elements,
            cache=self.cache,
            plan_bank=self.plan_bank,
            split_threshold=split_threshold,
            min_split_work=min_split_work,
            snap_tolerance=snap_tolerance,
        )
        # Shared-memory copies of admitted sharded vectors (process mode),
        # keyed by content fingerprint; owned here, destroyed on evict or
        # shutdown.
        self._shared: Dict[str, SharedArray] = {}
        self.last_report: Optional[DispatchReport] = None

    # -- public API -----------------------------------------------------------
    def dispatch(
        self,
        v: np.ndarray,
        queries: Sequence[QueryLike],
        fingerprint: Optional[str] = None,
        shard_fingerprints: Optional[Dict[Tuple[int, int], str]] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> List[TopKResult]:
        """Answer every query against ``v``; results align with ``queries``.

        ``v`` is either a 1-D vector (batched or sharded route, by size) or
        any iterable of 1-D chunk arrays (streaming route).  ``fingerprint``
        and ``shard_fingerprints`` (when the caller already fingerprinted
        ``v`` — the named-vector :meth:`query` path) are trusted as-is and
        suppress the per-dispatch hashing; pass them only for content they
        actually describe.  ``tenant`` labels the report and, with a
        :class:`~repro.service.tenancy.TenantRegistry` configured, schedules
        the dispatch's work units under that tenant's fair-share weight; no
        quota is charged here (:meth:`query` charges QPS before dispatching).
        """
        parsed = [TopKQuery.of(q) for q in queries]
        report = DispatchReport(
            num_queries=len(parsed),
            num_workers=self.num_workers,
            executor_mode=self.executor.mode,
            tenant=tenant,
        )
        arena_before = arena_info()
        if not parsed:
            self._finish(report, ran_units=False, arena_before=arena_before)
            return []

        # Plain Python sequences of numbers are a vector spelled as a list
        # (ensure_1d has always coerced them); sequences of *arrays* — of
        # any, possibly ragged, lengths — mean a chunk stream.  Generators
        # and other lazy iterables are never materialised here and always
        # stream.
        if isinstance(v, (list, tuple)) and not any(isinstance(c, np.ndarray) for c in v):
            try:
                coerced = np.asarray(v)
            except ValueError:  # ragged nested sequence
                coerced = None
            if coerced is not None and coerced.ndim == 1 and coerced.dtype != object:
                v = coerced

        route = self.router.classify(v)
        if route == "streaming":
            # tenant_context (not a tenant= plumb-through): route internals
            # hand units to the executor via code that predates tenancy
            # (e.g. the fleet's topk_batch), so identity rides a thread-local.
            with self.executor.tenant_context(tenant):
                results = self._dispatch_streaming(v, parsed, report)
            self._finish(report, ran_units=True, arena_before=arena_before)
            return results

        v = ensure_1d(v)
        n = v.shape[0]
        for q in parsed:
            check_k(q.k, n)

        # One fingerprint serves both whole-result reuse and plan banking; a
        # caller-pinned fingerprint (named vectors) skips the hash entirely.
        results: List[Optional[TopKResult]] = [None] * len(parsed)
        if fingerprint is None and (
            self.results_cache is not None or self.plan_bank is not None
        ):
            fingerprint = fingerprint_array(v)
        pending = list(range(len(parsed)))
        if self.results_cache is not None and fingerprint is not None:
            pending = []
            for pos, q in enumerate(parsed):
                hit = self.results_cache.get(fingerprint, q.k, q.largest)
                if hit is not None:
                    results[pos] = hit
                    report.result_cache_hits += 1
                else:
                    pending.append(pos)

        if pending:
            sub_parsed = [parsed[p] for p in pending]
            with self.executor.tenant_context(tenant):
                if route == "sharded":
                    sub_results = self._dispatch_sharded(
                        v, sub_parsed, report, shard_fingerprints, fingerprint
                    )
                else:
                    sub_results = self._dispatch_batched(
                        v, sub_parsed, report, fingerprint
                    )
            for pos, res in zip(pending, sub_results):
                results[pos] = res
                if self.results_cache is not None and fingerprint is not None:
                    self.results_cache.put(fingerprint, parsed[pos].k, parsed[pos].largest, res)
        else:
            report.route = "cached"

        self._finish(report, ran_units=bool(pending), arena_before=arena_before)
        final = [r for r in results if r is not None]
        if len(final) != len(parsed):
            raise ConfigurationError("internal error: dispatcher lost queries")
        return final

    # -- named-vector front end ------------------------------------------------
    def admit(
        self,
        name: str,
        vector: Optional[np.ndarray] = None,
        pin: bool = False,
        warm: Optional[Sequence[QueryLike]] = None,
        warm_mode: str = "dispatch",
        tenant: str = DEFAULT_TENANT,
    ) -> StoredVector:
        """Admit one named vector into the serving working set.

        The vector is made read-only (the fingerprint's immutability caveat,
        enforced) and fingerprinted **once** — the whole vector, plus one
        fingerprint per shard when it exceeds the device capacity — so no
        later :meth:`query` ever re-hashes it.  ``warm`` (optional) names
        queries to serve immediately at admission: their plans land in the
        :class:`PlanBank`, so even the *first* external query with any
        same-``alpha`` ``k`` is zero-rescan.  Warm queries are an internal
        admission cost, so they never charge the tenant's QPS bucket.
        ``tenant`` records ownership in the store's per-tenant byte ledger;
        re-admitting a spilled name with the default tenant inherits the
        tenant recorded in the spill manifest.  ``warm_mode`` picks how:
        ``"dispatch"`` (default) serves the warm queries end to end,
        ``"prepare"`` only *constructs and banks* their plans — per shard on
        the sharded route — without routing, executing, or producing results
        (cheaper, and available before the executor has ever spun up).
        Re-admitting a name with changed content replaces the entry and
        releases the old content's cached plans/results.

        With a spill directory attached, ``vector=None`` re-admits a
        previously spilled ``name`` from disk: content, fingerprints, and
        query history come from the manifest, and any plan geometry recorded
        for the content is rebuilt — zero ``fingerprint_array`` calls.
        """
        if self.store is None:
            raise ConfigurationError(
                "the named-vector store is disabled (store_bytes=0)"
            )
        if warm_mode not in ("dispatch", "prepare"):
            raise ConfigurationError(
                f"warm_mode must be 'dispatch' or 'prepare', got {warm_mode!r}"
            )
        if vector is None:
            entry = self.store.admit(name, pin=pin, tenant=tenant)
            self._rewarm_plans(entry)
        else:
            vector = ensure_1d(vector)
            shard_fps: Optional[Dict[Tuple[int, int], str]] = None
            if vector.shape[0] > self.capacity_elements:
                # The sharded route banks plans per shard, keyed by the
                # shard's own fingerprint — precompute them against the exact
                # partition topk_batch will use, so warm sharded queries hash
                # nothing.
                from repro.distributed.partition import plan_partition

                plan = plan_partition(
                    vector.shape[0], self.num_workers, self.capacity_elements
                )
                shard_fps = {
                    (start, stop): fingerprint_array(vector[start:stop])
                    for start, stop in plan.subvector_bounds
                }
            entry = self.store.admit(
                name, vector, shard_fingerprints=shard_fps, pin=pin, tenant=tenant
            )
        # Process mode: give sharded dispatches of this vector a
        # shared-memory copy (the one copy), so every shard unit's process
        # task gathers from shared pages instead of pickling the vector.
        if (
            self.executor.mode == "process"
            and entry.shard_fingerprints is not None
            and entry.fingerprint not in self._shared
        ):
            self._shared[entry.fingerprint] = SharedArray.create(entry.vector)
        if warm:
            if warm_mode == "prepare":
                self._warm_prepare(entry, [TopKQuery.of(q) for q in warm])
            else:
                # Internal serve path: same accounting as query(), minus the
                # QPS charge — warming is an admission cost, not tenant load.
                self._serve_named(name, list(warm), tenant)
        return entry

    def query(
        self,
        name: str,
        queries: Sequence[QueryLike],
        tenant: str = DEFAULT_TENANT,
    ) -> List[TopKResult]:
        """Answer queries against an admitted vector, zero re-fingerprinting.

        ``queries`` is a sequence of :class:`~repro.service.batch.TopKQuery`
        coercibles, or a single one (a bare ``k``, a ``(k, largest)`` tuple,
        or a :class:`TopKQuery`) which is wrapped; the return value is always
        a list aligned with the (wrapped) queries.  The admitted entry's
        pinned fingerprint(s) route the dispatch, so a warm query does zero
        fingerprint work on top of its zero-rescan plan reuse; per-name hit
        history feeds the router's placement affinity.

        With a :class:`~repro.service.tenancy.TenantRegistry` configured,
        ``tenant`` is charged one QPS token per query *before* any dispatch
        work starts — a rejected burst raises
        :class:`~repro.errors.TenantQuotaError` with zero half-served state —
        and the dispatch's work units are scheduled under the tenant's
        fair-share weight.
        """
        if isinstance(queries, (int, np.integer, tuple, TopKQuery)):
            queries = [queries]
        queries = list(queries)
        if self.tenants is not None:
            self.tenants.acquire(tenant, tokens=float(len(queries)))
        return self._serve_named(name, queries, tenant)

    def _serve_named(
        self, name: str, queries: List[QueryLike], tenant: str
    ) -> List[TopKResult]:
        """Serve an admitted name end to end — shared by query() and warming.

        Quota-free: the caller decides whether the QPS bucket is charged
        (:meth:`query` does, admission warming does not).  Everything else —
        store hit accounting, spill-serve surfacing, router affinity — is
        identical on both paths.
        """
        entry = self._stored(name)
        results = self.dispatch(
            entry.vector,
            queries,
            fingerprint=entry.fingerprint,
            shard_fingerprints=entry.shard_fingerprints,
            tenant=tenant,
        )
        assert self.store is not None
        if not entry.resident and self.last_report is not None:
            # Served straight off the read-only mmap view of the spill tier —
            # surfaced so callers can watch the out-of-core fraction.
            self.last_report.spill_serves = len(results)
        self.store.note_queries(name, len(results))
        self.router.note_queries(entry.fingerprint, len(results), tenant=tenant)
        return results

    def query_cached(self, name: str, queries: Sequence[QueryLike]) -> List[Optional[TopKResult]]:
        """Result-cache-only answers for an admitted name — the degrade path.

        Unlike :meth:`query`, nothing is dispatched: each query is looked up
        in the :class:`~repro.service.cache.ResultCache` under the admitted
        entry's pinned fingerprint and the answer is returned as-is, or
        ``None`` on a miss (every position is ``None`` when the result cache
        is disabled).  The call never touches the router or the executor, so
        it stays cheap and non-blocking even while the serving queue is
        saturated — exactly what an admission policy needs to *degrade* a
        request instead of shedding it outright.  Returned results are the
        cached objects themselves; treat them as read-only.
        """
        entry = self._stored(name)
        if isinstance(queries, (int, np.integer, tuple, TopKQuery)):
            queries = [queries]
        parsed = [TopKQuery.of(q) for q in queries]
        if self.results_cache is None:
            return [None] * len(parsed)
        return [self.results_cache.get(entry.fingerprint, q.k, q.largest) for q in parsed]

    def evict(
        self, name: str, spill: Optional[bool] = None, tenant: str = DEFAULT_TENANT
    ) -> bool:
        """Remove one named vector; its banked plans/results are released.

        Returns whether the name was known.  The release is observable: the
        :class:`PlanBank`'s ``CacheInfo.bytes`` drops by the invalidated
        plans' sizes (unless another admitted name shares the content).
        ``spill`` picks the tier semantics when a spill directory is
        attached: ``None`` (default) demotes to the spill tier, ``True``
        requires it, ``False`` hard-drops the name from RAM *and* disk.
        With a tenant registry, a non-default ``tenant`` may only evict its
        own names (the default tenant is the operator identity and may evict
        anything).
        """
        if self.store is None:
            raise ConfigurationError(
                "the named-vector store is disabled (store_bytes=0)"
            )
        self._assert_owner(name, tenant, "evict")
        return self.store.evict(name, spill=spill) is not None

    def pin(self, name: str, tenant: str = DEFAULT_TENANT) -> None:
        """Exempt a named vector from the store's byte-budget eviction.

        Deliberately not a :meth:`_stored` lookup: pinning is not a query,
        so it must neither promote the entry in the LRU nor count as a
        store hit (the store raises its own error for unknown names).
        A non-default ``tenant`` may only pin its own names, and only up to
        its policy's pin allowance.
        """
        if self.store is None:
            raise ConfigurationError(
                "the named-vector store is disabled (store_bytes=0)"
            )
        self._assert_owner(name, tenant, "pin")
        self.store.pin(name)

    def unpin(self, name: str, tenant: str = DEFAULT_TENANT) -> None:
        """Return a named vector to normal LRU eviction."""
        if self.store is None:
            raise ConfigurationError(
                "the named-vector store is disabled (store_bytes=0)"
            )
        self._assert_owner(name, tenant, "unpin")
        self.store.unpin(name)

    def _assert_owner(self, name: str, tenant: str, action: str) -> None:
        """Reject a non-default tenant acting on a name it does not own.

        Active only when a tenant registry is configured *and* the caller
        identified as a non-default tenant: the default tenant doubles as
        the operator identity (and is the identity of every pre-tenancy
        caller), so it retains full reach.  Unknown names fall through to
        the store's own, richer error.
        """
        if self.tenants is None or tenant == DEFAULT_TENANT:
            return
        assert self.store is not None
        owner = self.store.owner(name)
        if owner is not None and owner != tenant:
            self.tenants.note_rejection(tenant)
            raise TenantQuotaError(
                f"tenant {tenant!r} may not {action} {name!r}: "
                f"it is owned by tenant {owner!r}"
            )

    def _stored(self, name: str) -> StoredVector:
        """The admitted entry for ``name``, or a descriptive error."""
        if self.store is None:
            raise ConfigurationError(
                "the named-vector store is disabled (store_bytes=0)"
            )
        entry = self.store.get(name)
        if entry is None:
            raise ConfigurationError(
                f"no vector named {name!r} is admitted (admit() it first, "
                "or it was evicted)"
            )
        return entry

    def _release_vector(self, entry: StoredVector) -> None:
        """Store-eviction cascade: drop the content's cached serving state.

        Skips fingerprints still served by another resident name (aliased
        admissions of identical content keep their shared plans).  When the
        evicted content was just demoted to the spill tier, the plans'
        *geometry* (alpha/largest/beta) is recorded in the spill manifest
        first, so a later re-admission rebuilds them without re-tuning.
        """
        if self._spill is not None and self.plan_bank is not None:
            spilled = self._spill.get(entry.name)
            if spilled is not None and spilled.fingerprint == entry.fingerprint:
                rows = self.plan_bank.manifest_rows(entry.fingerprints())
                if rows:
                    self._spill.record_plans(rows)
        live = self.store.live_fingerprints() if self.store is not None else set()
        for fp in entry.fingerprints():
            if fp in live:
                continue
            if self.plan_bank is not None:
                self.plan_bank.invalidate(fp)
            if self.results_cache is not None:
                self.results_cache.invalidate(fp)
            self.router.forget(fp)
            shared = self._shared.pop(fp, None)
            if shared is not None:
                shared.destroy()

    # -- spill tier: admission warming and warm restart ------------------------
    def _warm_prepare(
        self, entry: StoredVector, parsed: List[TopKQuery]
    ) -> None:
        """Bank the warm queries' plans at admission without dispatching.

        The ``warm_mode="prepare"`` counterpart of a full warm dispatch:
        plans are constructed (or found banked) per plan-sharing group — per
        shard on the sharded route, keyed by the exact shard fingerprints a
        later dispatch will use — but nothing is routed, executed, or
        returned.  Accounting lands in ``last_report`` under the
        ``"admit-warm"`` route so the warm cost stays observable.
        """
        if self.plan_bank is None:
            raise ConfigurationError(
                "warm_mode='prepare' requires the plan bank "
                "(plan_bank_bytes > 0)"
            )
        report = DispatchReport(
            num_queries=len(parsed),
            num_workers=self.num_workers,
            route="admit-warm",
            executor_mode=self.executor.mode,
        )
        engine = self.workers[0].engine
        if entry.shard_fingerprints:
            shards = sorted(entry.shard_fingerprints.items())
        else:
            shards = [((0, int(entry.vector.shape[0])), entry.fingerprint)]
        for (start, stop), fp in shards:
            view = entry.vector[start:stop]
            groups = group_queries_by_plan(
                parsed,
                int(stop - start),
                self.cache,
                engine,
                plan_bank=self.plan_bank,
                fingerprint=fp,
                snap_tolerance=self._snap_tolerance,
            )
            offset = start if entry.shard_fingerprints else 0
            for (alpha, largest), positions in groups.items():
                min_k = min(parsed[p].k for p in positions)
                self._warm_one(fp, view, alpha, largest, min_k, offset, report)
        self._finish(report, ran_units=False)

    def _warm_one(
        self,
        fingerprint: str,
        view: np.ndarray,
        alpha: int,
        largest: bool,
        min_k: int,
        offset: int,
        report: DispatchReport,
    ) -> None:
        """Fetch-or-build one ``(fingerprint, alpha, largest)`` banked plan."""
        assert self.plan_bank is not None
        engine = self.workers[0].engine

        def build() -> QueryPlan:
            return engine.prepare_with_alpha(
                view, alpha, largest=largest, k=min_k, offset=offset
            )

        plan, constructed = self.plan_bank.shared(
            fingerprint, alpha, largest, engine.config.beta, build
        )
        if constructed and not plan.is_degenerate:
            report.constructions += 1
            report.construction_bytes += plan.construction_bytes
        elif not constructed:
            report.plan_bank_hits += 1

    def _rewarm_plans(self, entry: StoredVector) -> Tuple[int, int]:
        """Rebuild the manifest's plan geometry for one re-admitted entry.

        Returns ``(warmed, skipped)``.  Rebuilding goes through the same
        :meth:`PlanBank.shared` broadcast primitive a dispatch uses, with
        ``k=None`` (never degenerate), so the first query after re-admission
        is a plan-bank hit with zero construction bytes.
        """
        if self._spill is None or self.plan_bank is None:
            return (0, 0)
        rows = self._spill.plans_for(entry.fingerprints())
        if not rows:
            return (0, 0)
        sources: Dict[str, Tuple[np.ndarray, int]] = {
            entry.fingerprint: (entry.vector, 0)
        }
        if entry.shard_fingerprints:
            for (start, stop), fp in entry.shard_fingerprints.items():
                sources[fp] = (entry.vector[start:stop], int(start))
        return self._rebuild_plan_rows(rows, sources)

    def _rebuild_plan_rows(
        self,
        rows: List[dict],
        sources: Dict[str, Tuple[np.ndarray, int]],
    ) -> Tuple[int, int]:
        """Rebuild manifest plan rows over the given content views.

        A row is *skipped* (never fatal) when its fingerprint has no source
        view, its recorded geometry disagrees with the view (length, offset)
        or with the current configuration's ``beta``, or the rebuild itself
        refuses — manifest rows written by a different configuration must
        not poison the bank.
        """
        assert self.plan_bank is not None
        engine = self.workers[0].engine
        warmed = skipped = 0
        for row in rows:
            fp = str(row.get("fingerprint", ""))
            source = sources.get(fp)
            if source is None:
                skipped += 1
                continue
            view, view_offset = source
            try:
                alpha = int(row["alpha"])
                largest = bool(row["largest"])
                beta = int(row["beta"])
                n = int(row["n"])
                offset = int(row["offset"])
            except (KeyError, TypeError, ValueError):
                skipped += 1
                continue
            if (
                alpha < 0
                or n != int(view.shape[0])
                or offset != int(view_offset)
                or beta != min(int(engine.config.beta), 1 << alpha)
            ):
                skipped += 1
                continue

            def build(
                view: np.ndarray = view,
                alpha: int = alpha,
                largest: bool = largest,
                offset: int = offset,
            ) -> QueryPlan:
                return engine.prepare_with_alpha(
                    view, alpha, largest=largest, offset=offset
                )

            try:
                self.plan_bank.shared(
                    fp, alpha, largest, engine.config.beta, build
                )
            except (ConfigurationError, ValueError):
                skipped += 1
                continue
            warmed += 1
        return (warmed, skipped)

    def save_state(self) -> SaveReport:
        """Persist the resident working set into the spill directory.

        Every resident entry is written (content-addressed, so unchanged
        content already on disk is not rewritten) with its fingerprints and
        accumulated query history, and the plan bank's live geometry for the
        spilled content is recorded in the manifest.  After this call a new
        process pointed at the same ``spill_dir`` can :meth:`load_state` and
        serve its first dispatch with zero ``fingerprint_array`` calls and
        zero construction bytes.
        """
        if self.store is None or self._spill is None:
            raise ConfigurationError(
                "save_state() requires a spill directory (spill_dir=...)"
            )
        names = 0
        for entry in self.store.snapshot():
            self._spill.store(
                entry.name,
                np.asarray(entry.vector),
                entry.fingerprint,
                shard_fingerprints=entry.shard_fingerprints,
                queries=max(
                    int(entry.queries),
                    int(self.router.query_history(entry.fingerprint)),
                ),
                tenant=entry.tenant,
            )
            names += 1
        plan_rows = 0
        if self.plan_bank is not None:
            known: set = set()
            for se in self._spill.entries().values():
                known.update(se.fingerprints())
            plan_rows = self._spill.record_plans(
                self.plan_bank.manifest_rows(known)
            )
        info = self._spill.info()
        return SaveReport(
            names_saved=names,
            plan_rows=plan_rows,
            spilled_bytes=info.spilled_bytes,
        )

    def load_state(self, warm_plans: bool = True) -> RestoreReport:
        """Warm-restart from the spill directory — zero re-fingerprinting.

        Re-reads the manifest, restores each spilled name's query history
        into the router's placement affinity, and (``warm_plans``) rebuilds
        the recorded plan geometry over the spill files' read-only mmap
        views, hottest content first.  Nothing is copied into RAM and
        nothing is hashed: fingerprints come from the manifest, plans from
        :func:`~repro.core.drtopk.DrTopK.prepare_with_alpha` over the mmap.
        Spilled names are immediately queryable (served over mmap, promoted
        on hotness) or re-admittable via ``admit(name)``.
        """
        if self.store is None or self._spill is None:
            raise ConfigurationError(
                "load_state() requires a spill directory (spill_dir=...)"
            )
        self._spill.reload()
        entries = sorted(
            self._spill.entries().values(), key=lambda e: (-e.queries, e.name)
        )
        restored = 0
        for se in entries:
            if se.queries:
                self.router.note_queries(se.fingerprint, int(se.queries))
                restored += int(se.queries)
        warmed = skipped = 0
        if warm_plans and self.plan_bank is not None:
            for se in entries:
                rows = self._spill.plans_for(se.fingerprints())
                if not rows:
                    continue
                loaded = self._spill.load(se.name)
                if loaded is None:
                    skipped += len(rows)
                    continue
                se, view = loaded
                sources: Dict[str, Tuple[np.ndarray, int]] = {
                    se.fingerprint: (view, 0)
                }
                if se.shard_fingerprints:
                    for (start, stop), fp in se.shard_fingerprints.items():
                        sources[fp] = (view[start:stop], int(start))
                w, s = self._rebuild_plan_rows(rows, sources)
                warmed += w
                skipped += s
        info = self._spill.info()
        return RestoreReport(
            names=info.entries,
            spilled_bytes=info.spilled_bytes,
            plans_warmed=warmed,
            plans_skipped=skipped,
            queries_restored=restored,
        )

    @property
    def spill(self) -> Optional[SpillDirectory]:
        """The attached spill directory, or ``None``."""
        return self._spill

    def shutdown(self) -> None:
        """Stop the executor's workers and release shared-memory segments.

        The dispatcher stays usable afterwards (pools re-spawn on demand);
        admitted vectors keep serving, but a process-mode sharded dispatch
        after shutdown re-pickles until the vector is re-admitted.
        """
        self.executor.shutdown()
        for shared in self._shared.values():
            shared.destroy()
        self._shared.clear()

    def __enter__(self) -> "ServiceDispatcher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # -- shared bookkeeping ----------------------------------------------------
    def _finish(
        self,
        report: DispatchReport,
        ran_units: bool,
        arena_before: Optional[ArenaInfo] = None,
    ) -> None:
        """Attach cache and measured-executor statistics, publish the report."""
        exec_report = self.executor.last_report
        if exec_report is not None and ran_units:
            report.wall_ms = exec_report.wall_ms
            report.unit_wall_ms_sum = exec_report.unit_wall_ms_sum
            report.unit_queue_ms_sum = exec_report.unit_queue_ms_sum
            report.max_unit_queue_ms = exec_report.max_unit_queue_ms
            report.backpressure_waits = exec_report.backpressure_waits
            report.process_units = exec_report.process_units
            report.process_fallbacks = exec_report.process_fallbacks
        report.arena = arena_after = arena_info()
        if arena_before is not None:
            # Deltas cover this process's arenas only — process-mode workers
            # pool in their own address spaces, invisible to this snapshot.
            report.arena_hits = arena_after.hits - arena_before.hits
            report.arena_misses = arena_after.misses - arena_before.misses
            report.arena_resizes = arena_after.resizes - arena_before.resizes
        report.cache = self.cache.info()
        if self.results_cache is not None:
            report.result_cache = self.results_cache.info()
        if self.plan_bank is not None:
            report.plan_bank = self.plan_bank.info()
        if self.chunk_memo is not None:
            report.chunk_memo = self.chunk_memo.info()
        if self.store is not None:
            report.store = self.store.info()
        self.last_report = report

    # -- batched route ------------------------------------------------------------
    def _dispatch_batched(
        self,
        v: np.ndarray,
        parsed: List[TopKQuery],
        report: DispatchReport,
        fingerprint: Optional[str] = None,
    ) -> List[TopKResult]:
        report.route = "batched"
        units, bplan = self.router.batched_units(
            v, parsed, self.workers, fingerprint=fingerprint
        )
        # Split-group broadcast accounting: every split group's plan was
        # fetched or built exactly once (on this, the primary's, thread)
        # before the units ran; charge the construction to the primary
        # worker's report so the modelled compute time still covers it.
        report.groups_split = bplan.groups_split
        report.plan_broadcasts = bplan.plan_broadcasts
        report.plan_bank_hits += bplan.broadcast_bank_hits
        report.construction_bytes += bplan.broadcast_construction_bytes
        outcomes = self.executor.run(units)

        results: List[Optional[TopKResult]] = [None] * len(parsed)
        by_worker: Dict[int, UnitResult] = {o.unit.worker: o for o in outcomes}
        worker_values: List[np.ndarray] = []
        worker_indices: List[np.ndarray] = []
        for w, positions in enumerate(bplan.placement):
            wreport = WorkerReport(worker=w, queries=len(positions), load=bplan.loads[w])
            if w == 0:
                wreport.constructions += bplan.broadcast_constructions
                wreport.compute_ms += bplan.broadcast_construction_ms
                wreport.bytes_moved += bplan.broadcast_construction_bytes
            outcome = by_worker.get(w)
            if outcome is not None:
                positions, sub_results, batch_report = outcome.value
                for pos, res in zip(positions, sub_results):
                    results[pos] = res
                wreport.groups = batch_report.num_groups
                wreport.constructions += batch_report.constructions
                wreport.compute_ms += batch_report.total_ms
                wreport.bytes_moved += batch_report.total_bytes
                wreport.wall_ms = outcome.wall_ms
                report.plan_bank_hits += batch_report.plan_bank_hits
                report.construction_bytes += batch_report.construction_bytes
                report.selection_calls += batch_report.selection_calls
                report.fused_groups += batch_report.fused_groups
                report.fused_queries += batch_report.fused_queries
                for name, ms in batch_report.fusion_stage_ms.items():
                    report.fusion_stage_ms[name] = (
                        report.fusion_stage_ms.get(name, 0.0) + ms
                    )
                worker_values.append(np.concatenate([r.values for r in sub_results]))
                worker_indices.append(np.concatenate([r.indices for r in sub_results]))
            else:
                worker_values.append(np.empty(0, dtype=v.dtype))
                worker_indices.append(np.empty(0, dtype=np.int64))
            report.workers.append(wreport)
            report.constructions += wreport.constructions
            report.bytes_moved += wreport.bytes_moved

        # Gather every worker's answers on the primary (asynchronous, like
        # the Figure 16 result collection).
        comm = SimulatedComm(
            num_ranks=self.num_workers,
            gpus_per_node=self.gpus_per_node,
            cost=self.comm_cost,
        )
        comm.gather(worker_values, root=0, asynchronous=True)
        comm.gather(worker_indices, root=0, asynchronous=True)
        report.communication_ms = comm.total_comm_ms
        report.bytes_moved += float(
            sum(
                worker_values[w].nbytes + worker_indices[w].nbytes
                for w in range(1, self.num_workers)
            )
        )

        final = [r for r in results if r is not None]
        if len(final) != len(parsed):
            raise ConfigurationError("internal error: dispatcher lost queries")
        return final

    # -- sharded route ------------------------------------------------------------
    def _dispatch_sharded(
        self,
        v: np.ndarray,
        parsed: List[TopKQuery],
        report: DispatchReport,
        shard_fingerprints: Optional[Dict[Tuple[int, int], str]] = None,
        fingerprint: Optional[str] = None,
    ) -> List[TopKResult]:
        report.route = "sharded"
        fleet = MultiGpuDrTopK(
            num_gpus=self.num_workers,
            config=self.config,
            capacity_elements=self.capacity_elements,
            gpus_per_node=self.gpus_per_node,
            comm_cost=self.comm_cost,
            fused=self.fused,
        )
        # An admitted vector with a shared-memory copy (process mode) hands
        # the fleet its picklable ref, so shard units carry process tasks
        # that gather without the vector crossing a pipe.
        shared = self._shared.get(fingerprint) if fingerprint is not None else None
        results, mreport = fleet.topk_batch(
            v,
            parsed,
            cache=self.cache,
            executor=self.executor,
            plan_bank=self.plan_bank,
            shard_fingerprints=shard_fingerprints,
            shared_ref=shared.ref if shared is not None else None,
        )
        report.communication_ms = mreport.communication_ms
        report.constructions = mreport.constructions
        report.construction_bytes = mreport.construction_bytes
        report.plan_bank_hits += mreport.plan_bank_hits
        report.selection_calls += mreport.selection_calls
        report.fused_groups += mreport.fused_groups
        report.fused_queries += mreport.fused_queries
        report.shared_memory_units = mreport.shared_memory_units
        # A sharded dispatch moves real traffic: the per-shard pipeline bytes
        # (construction + query passes) plus the candidate gather.
        report.bytes_moved = (
            mreport.construction_bytes + mreport.query_bytes + mreport.gather_bytes
        )
        for outcome in mreport.per_gpu:
            wreport = WorkerReport(
                worker=outcome.gpu,
                queries=len(parsed),
                groups=outcome.groups,
                constructions=outcome.constructions,
                compute_ms=outcome.compute_ms + outcome.reload_ms,
                bytes_moved=outcome.construction_bytes + outcome.query_bytes,
                wall_ms=outcome.wall_ms,
            )
            if outcome.gpu == 0:
                # The primary also runs every query's final top-k.
                wreport.compute_ms += mreport.final_topk_ms
            report.workers.append(wreport)
        return results

    # -- streaming route ----------------------------------------------------------
    def _dispatch_streaming(
        self,
        chunks: Union[np.ndarray, Iterable[np.ndarray]],
        parsed: List[TopKQuery],
        report: DispatchReport,
    ) -> List[TopKResult]:
        report.route = "streaming"

        def make_engine() -> BatchTopK:
            # Units for one worker may overlap in the pool, so each unit gets
            # a fresh engine; the alpha cache is the shared state.
            return BatchTopK(self.config, cache=self.cache, fused=self.fused)

        units = self.router.streaming_units(
            chunks, parsed, self.chunk_elements, make_engine, chunk_memo=self.chunk_memo
        )
        outcomes = self.executor.run(units)

        worker_reports = [WorkerReport(worker=w) for w in range(self.num_workers)]
        comm = SimulatedComm(
            num_ranks=self.num_workers,
            gpus_per_node=self.gpus_per_node,
            cost=self.comm_cost,
        )
        pools: List[Tuple[Optional[np.ndarray], np.ndarray]] = [
            (None, np.empty(0, dtype=np.int64)) for _ in parsed
        ]
        total_elements = 0
        for outcome in outcomes:
            offset, length, by_largest, chunk_report, memo_hits = outcome.value
            total_elements += length
            w = outcome.unit.worker
            wrep = worker_reports[w]
            wrep.queries += 1  # one chunk unit
            wrep.wall_ms += outcome.wall_ms
            report.chunk_memo_hits += memo_hits
            # A fully memoised chunk ran no pipeline at all: no report, no
            # constructions, zero bytes — the streaming zero-rescan path.
            if chunk_report is not None:
                wrep.groups += chunk_report.num_groups
                wrep.constructions += chunk_report.constructions
                wrep.compute_ms += chunk_report.total_ms
                wrep.bytes_moved += chunk_report.total_bytes
                report.construction_bytes += chunk_report.construction_bytes
                report.selection_calls += chunk_report.selection_calls
                report.fused_groups += chunk_report.fused_groups
                report.fused_queries += chunk_report.fused_queries
                for name, ms in chunk_report.fusion_stage_ms.items():
                    report.fusion_stage_ms[name] = (
                        report.fusion_stage_ms.get(name, 0.0) + ms
                    )
            # The chunk's candidates travel from its worker to the primary.
            for local in by_largest.values():
                if w != 0:
                    comm.send(local.values, src=w, dst=0)
                    comm.send(local.indices, src=w, dst=0)
                    report.bytes_moved += float(local.values.nbytes + local.indices.nbytes)
            # Merge into each query's candidate pool on the primary.
            for pos, q in enumerate(parsed):
                local = by_largest[q.largest]
                pool_v, pool_i = pools[pos]
                pools[pos] = merge_candidate_pool(
                    pool_v, pool_i, local.values, local.indices + offset, q.k, q.largest
                )

        if total_elements == 0:
            raise ConfigurationError("streaming dispatch received no data")
        for q in parsed:
            if q.k > total_elements:
                raise ConfigurationError(
                    f"k={q.k} exceeds the {total_elements} elements streamed"
                )

        results: List[TopKResult] = []
        for pos, q in enumerate(parsed):
            pool_v, pool_i = pools[pos]
            assert pool_v is not None
            values, global_idx, finalize_bytes = order_candidate_pool(
                pool_v, pool_i, q.k, q.largest, self.config
            )
            report.bytes_moved += finalize_bytes
            results.append(
                TopKResult(values=values, indices=global_idx, k=q.k, largest=q.largest)
            )

        for wrep in worker_reports:
            report.workers.append(wrep)
            report.constructions += wrep.constructions
            report.bytes_moved += wrep.bytes_moved
        report.communication_ms = comm.total_comm_ms
        return results


def dispatch_topk(
    v: np.ndarray,
    queries: Sequence[QueryLike],
    num_workers: int = 4,
    config: Optional[DrTopKConfig] = None,
    **kwargs: Any,
) -> Tuple[List[TopKResult], DispatchReport]:
    """One-call convenience: dispatch a batch and return results + report."""
    dispatcher = ServiceDispatcher(num_workers=num_workers, config=config, **kwargs)
    results = dispatcher.dispatch(v, queries)
    assert dispatcher.last_report is not None
    return results, dispatcher.last_report
