"""Query-serving layer: one async execution core under three routes.

The core engine answers one ``topk(v, k)`` call at a time; this package turns
it into a serving substrate for heavy query traffic.  Every request runs
through the same pipeline —

``Router`` (classify + emit per-worker ``WorkUnit``\\ s) →
``ServiceExecutor`` (bounded-queue thread pool with backpressure) →
route-specific merge on the primary —

so batched, sharded and streaming serving share scheduling, plan reuse and
caching instead of owning private loops:

* :class:`~repro.service.batch.BatchTopK` — a batch of ``(k, largest)``
  queries over one shared vector, building the delegate vector and subrange
  partition once per ``(alpha, largest)`` group (amortised construction).
* :class:`~repro.service.streaming.StreamingTopK` — chunked / out-of-core
  top-k on a single engine; the dispatcher's streaming route runs the same
  candidate-pool algorithm with one worker per chunk.
* :class:`~repro.service.dispatcher.ServiceDispatcher` — the serving front
  end over the simulated multi-GPU fleet of :mod:`repro.distributed`, with a
  shared LRU ``(n, k) → alpha`` :class:`~repro.service.cache.PartitionCache`,
  an LRU ``(vector fingerprint, k, largest)``
  :class:`~repro.service.cache.ResultCache` that lets repeated identical
  queries skip the pipeline entirely, a byte-budgeted
  :class:`~repro.service.planbank.PlanBank` that persists query plans across
  dispatches (a *changed* ``k`` over an *unchanged* vector skips delegate
  construction on every route), and a
  :class:`~repro.service.planbank.ChunkMemo` that memoises streaming chunk
  candidates by content fingerprint.
* :class:`~repro.service.store.VectorStore` — the named-vector working set
  behind ``dispatcher.admit(name, v)`` / ``dispatcher.query(name, k)``: each
  vector is fingerprinted once at admission (whole vector and, above the
  device capacity, per shard), made read-only, and served with zero
  re-fingerprinting; a byte-budgeted LRU with pin/unpin whose evictions
  cascade into the plan bank and result cache.
* :class:`~repro.service.spill.SpillDirectory` — the durable second tier
  behind ``ServiceDispatcher(spill_dir=...)``: store eviction *spills*
  vectors to content-addressed mmap-backed files (victims chosen
  cold-and-large first from query history × resident bytes) instead of
  dropping them, spilled names keep serving over read-only mmap views
  (promoted back to RAM on hotness), and an atomic, lock-guarded JSON
  manifest persists fingerprints, query history and banked plan geometry —
  so ``save_state()`` / ``load_state()`` give a warm restart whose first
  dispatch re-hashes and re-scans nothing.
* :class:`~repro.service.executor.ServiceExecutor` /
  :class:`~repro.service.router.Router` — the execution core itself, usable
  directly by new routes.  ``mode="process"`` runs picklable work units on
  a process pool, reading admitted vectors through
  :mod:`repro.service.sharedmem` views instead of pickled copies.
* :mod:`~repro.service.fusion` — fused group execution: all queries of one
  plan-sharing group are served by **one** shared first top-k at the
  group's ``max(k)`` plus one shared gather/filter, with per-query answers
  derived exactly (values *and* indices identical to the per-query path);
  its thread-local :class:`~repro.service.fusion.ScratchArena` pools the
  hot path's gather/filter temporaries across dispatches.
* :class:`~repro.service.loadgen.LoadHarness` — production-shaped traffic
  against the dispatcher: seeded open-loop arrival processes
  (:class:`~repro.service.loadgen.PoissonArrivals` /
  :class:`~repro.service.loadgen.BurstyArrivals` /
  :class:`~repro.service.loadgen.DiurnalArrivals`) and closed-loop users,
  Zipfian popularity over admitted names, per-request latency and
  queue-wait percentiles with SLO attainment in a
  :class:`~repro.service.loadgen.LoadReport`, and shed/degrade admission
  control that keeps the arrival loop non-blocking at saturation.
* :mod:`~repro.service.tenancy` — multi-tenant serving:
  :class:`~repro.service.tenancy.TenantRegistry` holds per-tenant
  :class:`~repro.service.tenancy.TenantPolicy` rows (byte budget, QPS
  quota via a seeded :class:`~repro.service.tenancy.TokenBucket`,
  scheduling weight, pin allowance) and threads through the whole core:
  the store partitions its byte budget into per-tenant ledgers (eviction
  victims come only from the requesting tenant's slice), the executor
  schedules units by weighted deficit-round-robin
  (:class:`~repro.service.tenancy.WeightedFairQueue`), and the dispatcher
  charges QPS and enforces ownership.  An unconfigured dispatcher keeps
  the single-tenant behaviour bit-for-bit.
* :class:`~repro.service.scrubber.SpillScrubber` — continuous bit-rot
  detection for the spill tier: re-hashes every unique data file against
  its admission fingerprint (the ``inspect_spill --verify`` check, as a
  daemon), quarantines corrupt files aside and removes their names so
  loads degrade to clean cold misses instead of wrong answers.
"""

from repro.service.batch import (
    BatchReport,
    BatchTopK,
    TopKQuery,
    batch_topk,
    group_queries_by_plan,
)
from repro.service.cache import (
    CacheInfo,
    PartitionCache,
    ResultCache,
    fingerprint_array,
    fingerprint_call_count,
)
from repro.service.executor import (
    ExecutorReport,
    ProcessTask,
    ServiceExecutor,
    UnitResult,
    WorkUnit,
)
from repro.service.fusion import (
    ArenaInfo,
    FusedGroupOutcome,
    ScratchArena,
    arena_info,
    fused_group_topk,
    reset_arenas,
    thread_arena,
)
from repro.service.loadgen import (
    BurstyArrivals,
    DiurnalArrivals,
    LoadHarness,
    LoadReport,
    LoadSample,
    PoissonArrivals,
    RequestProfile,
    RouteStats,
    TenantStats,
    ZipfPopularity,
)
from repro.service.planbank import ChunkMemo, PlanBank
from repro.service.scrubber import ScrubReport, SpillScrubber
from repro.service.tenancy import (
    DEFAULT_TENANT,
    TenantPolicy,
    TenantRegistry,
    TokenBucket,
    WeightedFairQueue,
)
from repro.service.router import BatchedPlan, GroupShare, Router, tune_min_split_work
from repro.service.sharedmem import SharedArray, SharedArrayRef, attached
from repro.service.spill import SpillDirectory, SpillEntry, SpillInfo
from repro.service.store import StoredVector, VectorStore
from repro.service.dispatcher import (
    DispatchReport,
    RestoreReport,
    SaveReport,
    ServiceDispatcher,
    WorkerReport,
    dispatch_topk,
)
from repro.service.streaming import (
    StreamingTopK,
    StreamReport,
    merge_candidate_pool,
    order_candidate_pool,
    streaming_topk,
)

__all__ = [
    "TopKQuery",
    "BatchTopK",
    "BatchReport",
    "batch_topk",
    "group_queries_by_plan",
    "StreamingTopK",
    "StreamReport",
    "streaming_topk",
    "merge_candidate_pool",
    "order_candidate_pool",
    "ServiceDispatcher",
    "DispatchReport",
    "WorkerReport",
    "SaveReport",
    "RestoreReport",
    "dispatch_topk",
    "SpillDirectory",
    "SpillEntry",
    "SpillInfo",
    "PartitionCache",
    "ResultCache",
    "PlanBank",
    "ChunkMemo",
    "CacheInfo",
    "VectorStore",
    "StoredVector",
    "fingerprint_array",
    "fingerprint_call_count",
    "ServiceExecutor",
    "ExecutorReport",
    "WorkUnit",
    "UnitResult",
    "ProcessTask",
    "Router",
    "BatchedPlan",
    "GroupShare",
    "tune_min_split_work",
    "fused_group_topk",
    "FusedGroupOutcome",
    "ScratchArena",
    "ArenaInfo",
    "thread_arena",
    "arena_info",
    "reset_arenas",
    "SharedArray",
    "SharedArrayRef",
    "attached",
    "LoadHarness",
    "LoadReport",
    "LoadSample",
    "RouteStats",
    "TenantStats",
    "RequestProfile",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "ZipfPopularity",
    "DEFAULT_TENANT",
    "TenantPolicy",
    "TenantRegistry",
    "TokenBucket",
    "WeightedFairQueue",
    "SpillScrubber",
    "ScrubReport",
]
