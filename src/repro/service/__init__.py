"""Query-serving layer: batched, streaming and dispatched top-k.

The core engine answers one ``topk(v, k)`` call at a time; this package turns
it into a serving substrate for heavy query traffic:

* :class:`~repro.service.batch.BatchTopK` — a batch of ``(k, largest)``
  queries over one shared vector, building the delegate vector and subrange
  partition once per ``(alpha, largest)`` group and reusing them across
  queries (amortised construction).
* :class:`~repro.service.streaming.StreamingTopK` — chunked / out-of-core
  top-k over inputs larger than the paper's 2^30 single-device scale, with a
  running candidate pool and a final second pass.
* :class:`~repro.service.dispatcher.ServiceDispatcher` — routes batches
  across the simulated multi-GPU workers of :mod:`repro.distributed`, with a
  shared LRU cache of resolved ``(n, k) → alpha`` partitions
  (:class:`~repro.service.cache.PartitionCache`).
"""

from repro.service.batch import BatchReport, BatchTopK, TopKQuery, batch_topk
from repro.service.cache import CacheInfo, PartitionCache
from repro.service.dispatcher import (
    DispatchReport,
    ServiceDispatcher,
    WorkerReport,
    dispatch_topk,
)
from repro.service.streaming import StreamingTopK, StreamReport, streaming_topk

__all__ = [
    "TopKQuery",
    "BatchTopK",
    "BatchReport",
    "batch_topk",
    "StreamingTopK",
    "StreamReport",
    "streaming_topk",
    "ServiceDispatcher",
    "DispatchReport",
    "WorkerReport",
    "dispatch_topk",
    "PartitionCache",
    "CacheInfo",
]
