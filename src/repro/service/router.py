"""Request classification and per-worker work-unit emission.

The :class:`Router` is the decision layer of the unified execution core: it
looks at one request (a vector or a chunk stream, plus its queries) and
decides which route serves it —

* **batched** — the vector fits one device's sub-vector capacity; queries are
  grouped by the plan they can share (same resolved ``alpha`` and key order,
  the :func:`~repro.service.batch.group_queries_by_plan` definition) and whole
  groups are placed on workers with a greedy least-loaded assignment, so plan
  reuse is never split across workers;
* **sharded** — the vector exceeds the capacity; every worker becomes one GPU
  of the Figure 16 multi-GPU workflow and the batch runs with per-shard plan
  reuse through :meth:`~repro.distributed.multigpu.MultiGpuDrTopK.topk_batch`;
* **streaming** — the input is not an in-memory vector but an iterable of
  chunks; each chunk becomes one work unit on the next worker round-robin and
  the candidate pools merge on the primary.

The router only *describes* work (as :class:`~repro.service.executor.WorkUnit`
closures); the :class:`~repro.service.executor.ServiceExecutor` runs it and
:class:`~repro.service.dispatcher.ServiceDispatcher` merges the outcomes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.service.batch import BatchTopK, TopKQuery, group_queries_by_plan
from repro.service.cache import PartitionCache
from repro.service.executor import WorkUnit

__all__ = ["Router"]

#: Route names emitted by :meth:`Router.classify`.
ROUTES = ("batched", "sharded", "streaming")


class Router:
    """Classify requests and emit per-worker :class:`WorkUnit`\\ s.

    Parameters
    ----------
    num_workers:
        Fleet size placements are computed for.
    capacity_elements:
        Per-device sub-vector capacity separating the batched and sharded
        routes.
    cache:
        Shared :class:`PartitionCache` used for the grouping's ``alpha``
        resolution (so routing warms the same cache the engines use).
    """

    def __init__(
        self,
        num_workers: int,
        capacity_elements: int,
        cache: PartitionCache,
    ):
        if num_workers < 1:
            raise ConfigurationError("num_workers must be positive")
        if capacity_elements < 1:
            raise ConfigurationError("capacity_elements must be positive")
        self.num_workers = int(num_workers)
        self.capacity_elements = int(capacity_elements)
        self.cache = cache

    # -- classification --------------------------------------------------------
    def classify(self, v) -> str:
        """Name the route serving ``v``: batched, sharded or streaming.

        In-memory 1-D vectors route by size against the device capacity;
        anything else iterable (a generator of chunks, a list of arrays) is a
        chunked input and takes the streaming route.
        """
        if isinstance(v, np.ndarray):
            if v.ndim != 1:
                raise ConfigurationError(
                    f"expected a 1-D vector or an iterable of chunks, got shape {v.shape}"
                )
            if v.shape[0] > self.capacity_elements:
                return "sharded"
            return "batched"
        if hasattr(v, "__iter__") or hasattr(v, "__next__"):
            return "streaming"
        raise ConfigurationError(
            f"cannot route input of type {type(v).__name__}; "
            "expected a numpy vector or an iterable of chunks"
        )

    # -- batched-route emission ------------------------------------------------
    def place_groups(self, v: np.ndarray, parsed: Sequence[TopKQuery], engine) -> List[List[int]]:
        """Greedy least-loaded placement of whole plan-sharing groups.

        Queries sharing a plan must stay on one worker (splitting a group
        would re-run its construction); groups are placed largest first onto
        the least-loaded worker.  Returns one list of query positions per
        worker (possibly empty).
        """
        groups = group_queries_by_plan(parsed, v.shape[0], self.cache, engine)
        load = [0] * self.num_workers
        placement: List[List[int]] = [[] for _ in range(self.num_workers)]
        for positions in sorted(groups.values(), key=len, reverse=True):
            target = min(range(self.num_workers), key=load.__getitem__)
            placement[target].extend(positions)
            load[target] += len(positions)
        return placement

    def batched_units(
        self,
        v: np.ndarray,
        parsed: Sequence[TopKQuery],
        workers: Sequence[BatchTopK],
    ) -> Tuple[List[WorkUnit], List[List[int]]]:
        """Emit one :class:`WorkUnit` per worker that received queries.

        Each unit runs its worker's :meth:`BatchTopK.run_with_report` over the
        worker's share and returns ``(positions, results, batch_report)`` for
        the dispatcher to merge.
        """
        placement = self.place_groups(v, parsed, workers[0].engine)

        def unit_fn(worker: BatchTopK, positions: List[int]):
            sub_queries = [parsed[p] for p in positions]
            return lambda: (positions, *worker.run_with_report(v, sub_queries))

        units = [
            WorkUnit(
                fn=unit_fn(workers[w], positions),
                worker=w,
                route="batched",
                label=f"worker{w}:{len(positions)}q",
            )
            for w, positions in enumerate(placement)
            if positions
        ]
        return units, placement

    # -- streaming-route emission ----------------------------------------------
    def streaming_units(
        self,
        chunks,
        parsed: Sequence[TopKQuery],
        chunk_elements: int,
        make_engine,
    ):
        """Lazily emit one :class:`WorkUnit` per stream chunk, round-robin.

        ``chunks`` may be a single array (sliced transparently) or any
        iterable of 1-D arrays; oversized arrays are split to
        ``chunk_elements``.  Each unit distils its chunk into at most
        ``max(k)`` candidates per key order present in the batch — one local
        pipeline run per key order, shared by every query — and returns
        ``(offset, length, {largest: TopKResult}, BatchReport)``.  Units are
        yielded lazily so the executor's bounded queue also bounds
        read-ahead.

        ``make_engine`` builds a fresh per-unit :class:`BatchTopK` (units for
        one worker may overlap in the pool, so they cannot share an engine).
        """
        kmax: dict = {}
        for q in parsed:
            kmax[q.largest] = max(kmax.get(q.largest, 0), q.k)

        if isinstance(chunks, np.ndarray):
            chunks = [chunks]

        def chunk_fn(piece: np.ndarray, offset: int):
            local_queries = [
                (min(k, piece.shape[0]), largest) for largest, k in sorted(kmax.items())
            ]

            def run():
                engine = make_engine()
                results = engine.run(piece, local_queries)
                by_largest = {q[1]: r for q, r in zip(local_queries, results)}
                return offset, piece.shape[0], by_largest, engine.last_report

            return run

        def generate():
            offset = 0
            index = 0
            for chunk in chunks:
                chunk = np.asarray(chunk)
                if chunk.ndim != 1:
                    raise ConfigurationError(
                        f"stream chunks must be one dimensional, got shape {chunk.shape}"
                    )
                for start in range(0, chunk.shape[0], chunk_elements):
                    piece = chunk[start : start + chunk_elements]
                    if not piece.shape[0]:
                        continue
                    worker = index % self.num_workers
                    yield WorkUnit(
                        fn=chunk_fn(piece, offset),
                        worker=worker,
                        route="streaming",
                        label=f"chunk{index}@worker{worker}",
                    )
                    offset += piece.shape[0]
                    index += 1

        return generate()
