"""Request classification and per-worker work-unit emission.

The :class:`Router` is the decision layer of the unified execution core: it
looks at one request (a vector or a chunk stream, plus its queries) and
decides which route serves it —

* **batched** — the vector fits one device's sub-vector capacity; queries are
  grouped by the plan they can share (same resolved ``alpha`` and key order,
  the :func:`~repro.service.batch.group_queries_by_plan` definition) and
  groups are placed on workers with a greedy least-loaded assignment.
  Placement is **work-weighted**, not query-counted: a group's weight is its
  expected element workload from ``k``, ``alpha`` and the plan-bank hit state
  (a bank-hit group costs its queries only; a cold group additionally pays
  the O(n) construction scan), so one cold group no longer lands on the same
  worker as a pile of cheap bank-hit groups just because the query counts
  matched.  A group normally stays whole on one worker (splitting it naively
  would re-run its construction per worker) — but a **dominant** group, one
  whose weight exceeds :attr:`Router.split_threshold` of the dispatch's
  total, is *split*: its queries spread over several workers and the
  dispatcher broadcasts the group's single :class:`~repro.core.plan.QueryPlan`
  to every split (built or bank-fetched exactly once, handed out as a shared
  read-only handle), so the fleet no longer serializes behind one hot
  vector's one worker;
* **sharded** — the vector exceeds the capacity; every worker becomes one GPU
  of the Figure 16 multi-GPU workflow and the batch runs with per-shard plan
  reuse through :meth:`~repro.distributed.multigpu.MultiGpuDrTopK.topk_batch`;
* **streaming** — the input is not an in-memory vector but an iterable of
  chunks; each chunk becomes one work unit on the next worker round-robin and
  the candidate pools merge on the primary.

The router only *describes* work (as :class:`~repro.service.executor.WorkUnit`
closures); the :class:`~repro.service.executor.ServiceExecutor` runs it and
:class:`~repro.service.dispatcher.ServiceDispatcher` merges the outcomes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.plan import QueryPlan
from repro.errors import ConfigurationError
from repro.service.batch import (
    DEFAULT_ALPHA_SNAP_TOLERANCE,
    BatchTopK,
    TopKQuery,
    group_queries_by_plan,
)
from repro.service.cache import PartitionCache, fingerprint_array
from repro.service.executor import WorkUnit
from repro.service.planbank import ChunkMemo, PlanBank
from repro.service.tenancy import DEFAULT_TENANT
from repro.types import TopKResult
from repro.utils import ceil_div

__all__ = ["Router", "GroupShare", "BatchedPlan", "tune_min_split_work"]

#: Route names emitted by :meth:`Router.classify`.
ROUTES = ("batched", "sharded", "streaming")

#: What one streaming work unit returns: ``(offset, length, {largest: result},
#: engine report or None, memo hits)``.
_ChunkOutcome = Tuple[int, int, Dict[bool, TopKResult], Any, int]

#: Default fraction of a dispatch's total modelled work above which one
#: plan-sharing group is split across workers (``None`` pins groups whole).
DEFAULT_SPLIT_THRESHOLD = 0.5

#: Default floor on the modelled per-split element workload below which a
#: dominant group is *not* split.  Splitting buys balance but costs a plan
#: broadcast and per-worker merge overhead; on tiny groups the overhead
#: dominates, so a group only splits when each resulting share still
#: carries at least this much modelled work (in input elements).  The
#: default is deliberately conservative — it only vetoes splits too small
#: to cover even one broadcast handle; derive a workload-fitted floor from
#: the ``splitgroup`` experiment's balance history with
#: :func:`tune_min_split_work`.
DEFAULT_MIN_SPLIT_WORK = 64.0

#: Load slack (as a fraction of the dispatch's total weight) within which
#: placement prefers a repeat vector's remembered worker over the strictly
#: least-loaded one.
AFFINITY_SLACK = 0.25

#: Upper bound on remembered per-fingerprint affinity entries (anonymous
#: dispatches record affinity too; without a cap a long-running service
#: would accrete one entry per distinct vector ever dispatched).
_AFFINITY_CAP = 4096


@dataclass(frozen=True)
class GroupShare:
    """One plan-sharing group's share of queries on one worker.

    The placement provenance of the batched route: an unsplit group is a
    single share (``split_total == 1``); a split group appears as one share
    per worker it landed on, all carrying the same ``group`` key, so the
    dispatcher (and anyone reading :attr:`WorkUnit.shares`) can identify the
    splits of one group and attribute the broadcast plan's single
    construction to all of them.
    """

    #: The plan-compatibility key, ``(alpha, largest)``.
    group: Tuple[int, bool]
    worker: int
    #: Query positions (into the dispatch's parsed queries) of this share.
    positions: Tuple[int, ...]
    #: 0-based index of this share among its group's shares (worker order).
    split_index: int = 0
    #: How many workers serve the group; > 1 means the group was split.
    split_total: int = 1
    #: Modelled element workload this share contributes to its worker.
    weight: float = 0.0


@dataclass
class BatchedPlan:
    """Placement plan of one batched dispatch, with split provenance.

    Produced by :meth:`Router.plan_batched` (placement and split decisions)
    and completed by :meth:`Router.batched_units` (the broadcast accounting
    fields, filled when shared plan handles are actually fetched or built).
    """

    #: Query positions per worker (the merge contract: every position
    #: appears exactly once, on exactly one worker).
    placement: List[List[int]]
    #: One record per (group, worker) pair that received queries.
    shares: List[GroupShare]
    #: Modelled per-worker load the placement produced.
    loads: List[float]
    total_weight: float = 0.0
    #: Split groups to broadcast — group key → the group-wide minimum ``k``
    #: the shared plan must be prepared with (only groups that actually
    #: landed on >= 2 workers; a split candidate that fit one worker is
    #: served through the normal per-worker path).
    split_min_k: Dict[Tuple[int, bool], int] = field(default_factory=dict)
    #: Shared read-only plan handles, one per split group (broadcast once).
    shared_plans: Dict[Tuple[int, bool], QueryPlan] = field(default_factory=dict)
    #: Shared-plan handles handed to units (one per split group share).
    plan_broadcasts: int = 0
    #: Constructions the broadcast ran (at most one per split group; zero on
    #: the warm path, where every broadcast is a bank hit).
    broadcast_constructions: int = 0
    broadcast_construction_bytes: float = 0.0
    broadcast_construction_ms: float = 0.0
    #: Broadcasts served from the plan bank without construction.
    broadcast_bank_hits: int = 0

    @property
    def groups_split(self) -> int:
        """Plan-sharing groups whose queries landed on >= 2 workers."""
        return len({s.group for s in self.shares if s.split_total > 1})


def tune_min_split_work(
    rows: Sequence[Dict], default: float = DEFAULT_MIN_SPLIT_WORK
) -> float:
    """Recommend a ``min_split_work`` floor from ``splitgroup`` history rows.

    ``rows`` are the ``splitgroup`` experiment's records: ``unsplit`` rows
    give each phase's baseline ``balance_ratio`` and ``split`` rows carry the
    modelled ``per_split_work`` the split actually produced.  The
    recommendation is the smallest per-split workload that *demonstrably*
    improved balance (split ``balance_ratio`` strictly below the same
    phase's unsplit baseline) — the measured point where splitting starts
    paying for itself.  With no improving observation the ``default`` floor
    stands: history that never shows a win is no licence to lower the gate.
    """
    baseline: Dict[Optional[str], float] = {}
    for row in rows:
        if row.get("mode") == "unsplit":
            baseline[row.get("phase")] = float(row["balance_ratio"])
    improved = [
        float(row["per_split_work"])
        for row in rows
        if row.get("mode") == "split"
        and float(row.get("per_split_work", 0.0)) > 0.0
        and row.get("groups_split")
        and row.get("phase") in baseline
        and float(row["balance_ratio"]) < baseline[row.get("phase")]
    ]
    if not improved:
        return float(default)
    return min(improved)


class Router:
    """Classify requests and emit per-worker :class:`WorkUnit`\\ s.

    Parameters
    ----------
    num_workers:
        Fleet size placements are computed for.
    capacity_elements:
        Per-device sub-vector capacity separating the batched and sharded
        routes.
    cache:
        Shared :class:`PartitionCache` used for the grouping's ``alpha``
        resolution (so routing warms the same cache the engines use).
    plan_bank:
        Optional shared :class:`PlanBank`; when given, placement peeks at
        each group's bank hit state (without perturbing the LRU) and weighs
        bank-hit groups without their construction scan.
    split_threshold:
        Fraction of a dispatch's total modelled work above which one
        plan-sharing group (of >= 2 queries, on a fleet of >= 2 workers) is
        split across workers with a shared-plan broadcast.  ``None``
        disables splitting — every group pins whole to one worker, the
        pre-split behaviour and the differential baseline.
    min_split_work:
        Absolute floor on the modelled per-split workload (in input
        elements): a dominant group whose per-query work spread over the
        fleet would leave each split below this floor stays whole — tiny
        groups never split, however dominant they look relatively.  ``0``
        disables the floor (every relative-dominant group splits, the
        pre-floor behaviour).
    snap_tolerance:
        Modelled-cost headroom for bank-aware alpha snapping in the
        placement grouping (must match the workers' tolerance so placement
        and execution agree on the groups); ``None``/``0`` disables it.
    """

    def __init__(
        self,
        num_workers: int,
        capacity_elements: int,
        cache: PartitionCache,
        plan_bank: Optional[PlanBank] = None,
        split_threshold: Optional[float] = DEFAULT_SPLIT_THRESHOLD,
        min_split_work: float = DEFAULT_MIN_SPLIT_WORK,
        snap_tolerance: Optional[float] = DEFAULT_ALPHA_SNAP_TOLERANCE,
    ) -> None:
        if num_workers < 1:
            raise ConfigurationError("num_workers must be positive")
        if capacity_elements < 1:
            raise ConfigurationError("capacity_elements must be positive")
        if split_threshold is not None and not 0.0 < float(split_threshold) <= 1.0:
            raise ConfigurationError(
                "split_threshold must be in (0, 1], or None to disable splitting"
            )
        if min_split_work < 0:
            raise ConfigurationError("min_split_work must be >= 0")
        self.num_workers = int(num_workers)
        self.capacity_elements = int(capacity_elements)
        self.cache = cache
        self.plan_bank = plan_bank
        self.split_threshold = (
            float(split_threshold) if split_threshold is not None else None
        )
        self.min_split_work = float(min_split_work)
        self.snap_tolerance = snap_tolerance
        # Per-name (per-fingerprint) serving history: how many queries each
        # content has answered, and which worker its heaviest group last
        # landed on.  The named-vector front end feeds the history; placement
        # uses it to keep a repeat vector's groups on a stable worker.
        self._history_lock = threading.Lock()
        self._query_history: Dict[str, int] = {}
        self._affinity: Dict[str, int] = {}
        self._tenant_history: Dict[str, int] = {}

    # -- per-name serving history ----------------------------------------------
    def note_queries(
        self, fingerprint: str, count: int, tenant: str = DEFAULT_TENANT
    ) -> None:
        """Record ``count`` served queries against one vector's fingerprint.

        ``tenant`` additionally accrues the count in a per-tenant total —
        an observability ledger (who drove the traffic), deliberately *not*
        dropped by :meth:`forget` when content leaves the working set.
        """
        with self._history_lock:
            self._query_history[fingerprint] = (
                self._query_history.get(fingerprint, 0) + int(count)
            )
            self._tenant_history[tenant] = (
                self._tenant_history.get(tenant, 0) + int(count)
            )

    def query_history(self, fingerprint: str) -> int:
        """Queries previously recorded against the fingerprint."""
        with self._history_lock:
            return self._query_history.get(fingerprint, 0)

    def tenant_history(self, tenant: str) -> int:
        """Queries previously recorded as driven by ``tenant``."""
        with self._history_lock:
            return self._tenant_history.get(tenant, 0)

    def forget(self, fingerprint: str) -> None:
        """Drop one fingerprint's history and affinity (store-eviction cascade)."""
        with self._history_lock:
            self._query_history.pop(fingerprint, None)
            self._affinity.pop(fingerprint, None)

    # -- classification --------------------------------------------------------
    def classify(self, v: np.ndarray) -> str:
        """Name the route serving ``v``: batched, sharded or streaming.

        In-memory 1-D vectors route by size against the device capacity;
        anything else iterable (a generator of chunks, a list of arrays) is a
        chunked input and takes the streaming route.
        """
        if isinstance(v, np.ndarray):
            if v.ndim != 1:
                raise ConfigurationError(
                    f"expected a 1-D vector or an iterable of chunks, got shape {v.shape}"
                )
            if v.shape[0] > self.capacity_elements:
                return "sharded"
            return "batched"
        if hasattr(v, "__iter__") or hasattr(v, "__next__"):
            return "streaming"
        raise ConfigurationError(
            f"cannot route input of type {type(v).__name__}; "
            "expected a numpy vector or an iterable of chunks"
        )

    # -- batched-route emission ------------------------------------------------
    def expected_query_work(self, n: int, k: int, alpha: int, beta: int) -> float:
        """Expected element workload of one query over a prepared plan.

        The per-query share of :meth:`expected_group_work`: the first top-k
        over the delegate vector plus a ``k``-proportional
        concatenation/second-pass term.  Split placement weighs a dominant
        group's individual queries with this — their construction is paid
        once by the broadcast, not per worker.
        """
        if n < 1:
            raise ConfigurationError("n must be positive")
        if k < 1:
            raise ConfigurationError(f"query work is undefined for k={k}; k must be >= 1")
        if alpha < 0:
            raise ConfigurationError("alpha must be >= 0")
        if beta < 1:
            raise ConfigurationError("beta must be >= 1")
        num_subranges = ceil_div(int(n), 1 << int(alpha))
        m = min(num_subranges * int(beta), int(n))  # delegate-vector size
        return float(m + 4 * int(k))

    def expected_group_work(
        self,
        n: int,
        ks: Sequence[int],
        alpha: int,
        beta: int,
        bank_hit: bool,
    ) -> float:
        """Expected element workload of one plan-sharing group.

        The dominant costs of the pipeline, in input elements: a cold group
        pays the one-time construction (a full scan of ``n`` plus the
        delegate stores), every query then pays the first top-k over the
        delegate vector plus a ``k``-proportional concatenation/second-pass
        term.  A bank-hit group skips the construction term entirely — the
        whole point of weighting placement by work instead of query count.

        The result is always non-negative and monotone in the query list:
        adding a query never lowers a group's weight.  An empty group weighs
        nothing (no queries means no construction is triggered either), and
        invalid geometry (``n < 1``, any ``k < 1``, ``alpha < 0``,
        ``beta < 1``) raises instead of silently producing negative or
        meaningless weights.
        """
        if n < 1:
            raise ConfigurationError("n must be positive")
        if alpha < 0:
            raise ConfigurationError("alpha must be >= 0")
        if beta < 1:
            raise ConfigurationError("beta must be >= 1")
        if not ks:
            return 0.0
        per_query = sum(self.expected_query_work(n, k, alpha, beta) for k in ks)
        num_subranges = ceil_div(int(n), 1 << int(alpha))
        m = min(num_subranges * int(beta), int(n))
        construction = 0.0 if bank_hit else float(n + 2 * m)
        return construction + per_query

    def plan_batched(
        self,
        v: np.ndarray,
        parsed: Sequence[TopKQuery],
        engine: BatchTopK,
        fingerprint: Optional[str] = None,
    ) -> BatchedPlan:
        """Work-weighted placement with dominant-group splitting.

        Groups are weighted by :meth:`expected_group_work` — expected
        workload from ``k``, ``alpha`` and the plan-bank hit state — and
        placed heaviest first onto the least-loaded worker.  A group
        normally stays whole (splitting it naively would re-run its
        construction per worker); a **dominant** group — weight strictly
        above ``split_threshold`` of the dispatch's total, with >= 2 queries
        on a fleet of >= 2 workers — is instead placed query by query, each
        query weighted by :meth:`expected_query_work` (its construction is
        excluded: the dispatcher broadcasts the group's single plan).  The
        greedy bound therefore holds item-wise: no worker's load exceeds the
        even share plus one placed item's weight.

        A vector with recorded per-name hit history (see
        :meth:`note_queries`) additionally carries worker *affinity*: its
        heaviest **whole** group returns to the worker that served it last
        whenever that worker's load is within :data:`AFFINITY_SLACK` of the
        least loaded.  Split queries ignore affinity — pinning them back to
        one remembered worker would undo exactly the spreading the split is
        for.

        Returns the full :class:`BatchedPlan` (placement, per-share
        provenance, modelled loads and the split groups to broadcast).
        """
        n = int(v.shape[0])
        # Same grouping call (bank-aware snapping included) the workers make:
        # placement and execution must agree on the groups.
        groups = group_queries_by_plan(
            parsed,
            n,
            self.cache,
            engine,
            plan_bank=self.plan_bank,
            fingerprint=fingerprint,
            snap_tolerance=self.snap_tolerance,
        )
        beta = engine.config.beta
        group_info = []  # (key, positions, group weight, per-query weights)
        for (alpha, largest), positions in groups.items():
            bank_hit = (
                self.plan_bank is not None
                and fingerprint is not None
                and self.plan_bank.contains(fingerprint, alpha, largest)
            )
            ks = [parsed[p].k for p in positions]
            weight = self.expected_group_work(n, ks, alpha, beta, bank_hit)
            per_query = [self.expected_query_work(n, k, alpha, beta) for k in ks]
            group_info.append(((alpha, largest), positions, weight, per_query))
        total_weight = sum(weight for _, _, weight, _ in group_info)

        split_keys = set()
        if self.split_threshold is not None and self.num_workers > 1:
            for key, positions, weight, per_query in group_info:
                if len(positions) < 2:
                    continue
                if weight <= self.split_threshold * total_weight:
                    continue
                # The absolute floor: splitting spreads only the per-query
                # work (the broadcast pays the construction once), so each
                # split's share must still be worth a broadcast handle and a
                # merge — tiny groups stay whole however dominant they look.
                splits = min(self.num_workers, len(positions))
                if sum(per_query) / splits < self.min_split_work:
                    continue
                split_keys.add(key)

        # Placement items: whole groups, or — for split groups — one item
        # per query.  The stable descending sort keeps equal-weight items in
        # group/query emission order, so identical inputs place identically.
        items = []  # (weight, key, positions tuple, splittable)
        for key, positions, weight, per_query in group_info:
            if key in split_keys:
                items.extend(
                    (w, key, (p,), True) for p, w in zip(positions, per_query)
                )
            else:
                items.append((weight, key, tuple(positions), False))

        preferred: Optional[int] = None
        if fingerprint is not None:
            with self._history_lock:
                if self._query_history.get(fingerprint, 0) > 0:
                    preferred = self._affinity.get(fingerprint)

        load = [0.0] * self.num_workers
        placement: List[List[int]] = [[] for _ in range(self.num_workers)]
        # (group key, worker) -> [positions, share weight]
        share_acc: Dict[Tuple[Tuple[int, bool], int], list] = {}
        heaviest_target: Optional[int] = None
        for weight, key, positions, is_piece in sorted(
            items, key=lambda item: item[0], reverse=True
        ):
            target = min(range(self.num_workers), key=load.__getitem__)
            if (
                not is_piece
                and preferred is not None
                and 0 <= preferred < self.num_workers
                and load[preferred] <= load[target] + AFFINITY_SLACK * total_weight
            ):
                target = preferred
            if heaviest_target is None:
                heaviest_target = target  # sorted: the first item is heaviest
            placement[target].extend(positions)
            acc = share_acc.setdefault((key, target), [[], 0.0])
            acc[0].extend(positions)
            acc[1] += weight
            load[target] += weight
        if fingerprint is not None and heaviest_target is not None:
            # Remember where the heaviest item landed (not the most-loaded
            # worker, which a pile of light groups can out-weigh and flip
            # between dispatches) so repeats steer it back there.
            with self._history_lock:
                self._affinity.pop(fingerprint, None)  # re-insert most recent
                self._affinity[fingerprint] = heaviest_target
                while len(self._affinity) > _AFFINITY_CAP:
                    self._affinity.pop(next(iter(self._affinity)))

        workers_of: Dict[Tuple[int, bool], List[int]] = {}
        for key, worker in share_acc:
            workers_of.setdefault(key, []).append(worker)
        shares: List[GroupShare] = []
        for key, positions, _, _ in group_info:
            group_workers = sorted(workers_of.get(key, []))
            for split_index, worker in enumerate(group_workers):
                acc = share_acc[(key, worker)]
                shares.append(
                    GroupShare(
                        group=key,
                        worker=worker,
                        positions=tuple(acc[0]),
                        split_index=split_index,
                        split_total=len(group_workers),
                        weight=acc[1],
                    )
                )
        split_min_k = {
            key: min(parsed[p].k for p in positions)
            for key, positions, _, _ in group_info
            if key in split_keys and len(workers_of.get(key, [])) > 1
        }
        return BatchedPlan(
            placement=placement,
            shares=shares,
            loads=load,
            total_weight=total_weight,
            split_min_k=split_min_k,
        )

    def place_groups(
        self,
        v: np.ndarray,
        parsed: Sequence[TopKQuery],
        engine: BatchTopK,
        fingerprint: Optional[str] = None,
    ) -> List[List[int]]:
        """Query positions per worker (possibly empty) — see :meth:`plan_batched`."""
        return self.plan_batched(v, parsed, engine, fingerprint=fingerprint).placement

    def batched_units(
        self,
        v: np.ndarray,
        parsed: Sequence[TopKQuery],
        workers: Sequence[BatchTopK],
        fingerprint: Optional[str] = None,
        plan: Optional[BatchedPlan] = None,
    ) -> Tuple[List[WorkUnit], BatchedPlan]:
        """Emit one :class:`WorkUnit` per worker that received queries.

        Each unit runs its worker's :meth:`BatchTopK.run_with_report` over the
        worker's share and returns ``(positions, results, batch_report)`` for
        the dispatcher to merge.  ``fingerprint`` keys the workers' plan-bank
        lookups (and the placement's hit peek) without re-hashing ``v``.

        For every group the placement split, the group's :class:`QueryPlan`
        is **broadcast** here, before any unit runs: fetched from the plan
        bank or built exactly once (:meth:`PlanBank.shared`, which also
        serialises concurrent dispatches racing on one cold key), its views
        materialised so concurrent splits only ever read it, and handed to
        each unit as a shared read-only handle.  The splits charge zero
        construction; the broadcast's own accounting (one construction at
        most per split group, or a bank hit) is recorded on the returned
        :class:`BatchedPlan` for the dispatcher to merge.  Units of one
        split group stay independently submittable — they share the plan
        handle, never execution order.
        """
        engine = workers[0].engine
        if plan is None:
            plan = self.plan_batched(v, parsed, engine, fingerprint=fingerprint)

        for (alpha, largest), min_k in plan.split_min_k.items():

            def build(
                alpha: float = alpha, largest: bool = largest, min_k: int = min_k
            ) -> QueryPlan:
                return engine.prepare_with_alpha(v, alpha, largest=largest, k=min_k)

            if self.plan_bank is not None and fingerprint is not None:
                qplan, constructed = self.plan_bank.shared(
                    fingerprint, alpha, largest, engine.config.beta, build
                )
            else:
                qplan, constructed = build(), True
            if not qplan.is_degenerate:
                # Pre-materialise the lazy views: N splits then share the
                # handle strictly read-only (no first-touch races).
                qplan.materialise_views()
            plan.shared_plans[(alpha, largest)] = qplan
            if not constructed:
                plan.broadcast_bank_hits += 1
            elif not qplan.is_degenerate:
                plan.broadcast_constructions += 1
                plan.broadcast_construction_bytes += qplan.construction_bytes
                plan.broadcast_construction_ms += qplan.construction_ms(
                    engine.config.device
                )
        plan.plan_broadcasts = sum(
            1 for share in plan.shares if share.group in plan.shared_plans
        )

        shares_by_worker: Dict[int, List[GroupShare]] = {}
        for share in plan.shares:
            shares_by_worker.setdefault(share.worker, []).append(share)
        shared = plan.shared_plans or None

        def unit_fn(
            worker: BatchTopK, positions: List[int]
        ) -> Callable[[], Tuple[List[int], List[TopKResult], Any]]:
            sub_queries = [parsed[p] for p in positions]
            return lambda: (
                positions,
                *worker.run_with_report(
                    v, sub_queries, fingerprint=fingerprint, shared_plans=shared
                ),
            )

        units = []
        for w, positions in enumerate(plan.placement):
            if not positions:
                continue
            worker_shares = tuple(shares_by_worker.get(w, ()))
            splits = sum(1 for s in worker_shares if s.split_total > 1)
            label = f"worker{w}:{len(positions)}q"
            if splits:
                label += f":{splits}split"
            units.append(
                WorkUnit(
                    fn=unit_fn(workers[w], positions),
                    worker=w,
                    route="batched",
                    label=label,
                    shares=worker_shares,
                )
            )
        return units, plan

    # -- streaming-route emission ----------------------------------------------
    def streaming_units(
        self,
        chunks: Union[np.ndarray, Iterable[np.ndarray]],
        parsed: Sequence[TopKQuery],
        chunk_elements: int,
        make_engine: Callable[[], BatchTopK],
        chunk_memo: Optional[ChunkMemo] = None,
    ) -> Iterator[WorkUnit]:
        """Lazily emit one :class:`WorkUnit` per stream chunk, round-robin.

        ``chunks`` may be a single array (sliced transparently) or any
        iterable of 1-D arrays; oversized arrays are split to
        ``chunk_elements``.  Each unit distils its chunk into at most
        ``max(k)`` candidates per key order present in the batch — one local
        pipeline run per key order, shared by every query — and returns
        ``(offset, length, {largest: TopKResult}, report, memo_hits)`` where
        ``report`` is ``None`` when every key order was served from the
        chunk memo (zero pipeline work).  Units are yielded lazily so the
        executor's bounded queue also bounds read-ahead.

        ``make_engine`` builds a fresh per-unit :class:`BatchTopK` (units for
        one worker may overlap in the pool, so they cannot share an engine).
        ``chunk_memo`` (when given) memoises each chunk's local candidates by
        content fingerprint, so a replayed stream — or a shared prefix at any
        offset — skips the per-chunk pipeline entirely.
        """
        kmax: dict = {}
        for q in parsed:
            kmax[q.largest] = max(kmax.get(q.largest, 0), q.k)

        if isinstance(chunks, np.ndarray):
            chunks = [chunks]

        def chunk_fn(piece: np.ndarray, offset: int) -> Callable[[], _ChunkOutcome]:
            local_queries = [
                (min(k, piece.shape[0]), largest) for largest, k in sorted(kmax.items())
            ]

            def run() -> _ChunkOutcome:
                by_largest = {}
                memo_hits = 0
                pending = list(local_queries)
                fp = fingerprint_array(piece) if chunk_memo is not None else None
                if fp is not None:
                    pending = []
                    for kk, largest in local_queries:
                        hit = chunk_memo.get(fp, kk, largest)
                        if hit is not None:
                            by_largest[largest] = hit
                            memo_hits += 1
                        else:
                            pending.append((kk, largest))
                report = None
                if pending:
                    engine = make_engine()
                    results = engine.run(piece, pending)
                    report = engine.last_report
                    for (kk, largest), result in zip(pending, results):
                        by_largest[largest] = result
                        if fp is not None:
                            chunk_memo.put(fp, kk, largest, result)
                return offset, piece.shape[0], by_largest, report, memo_hits

            return run

        def generate() -> Iterator[WorkUnit]:
            offset = 0
            index = 0
            for chunk in chunks:
                chunk = np.asarray(chunk)
                if chunk.ndim != 1:
                    raise ConfigurationError(
                        f"stream chunks must be one dimensional, got shape {chunk.shape}"
                    )
                for start in range(0, chunk.shape[0], chunk_elements):
                    piece = chunk[start : start + chunk_elements]
                    if not piece.shape[0]:
                        continue
                    worker = index % self.num_workers
                    yield WorkUnit(
                        fn=chunk_fn(piece, offset),
                        worker=worker,
                        route="streaming",
                        label=f"chunk{index}@worker{worker}",
                    )
                    offset += piece.shape[0]
                    index += 1

        return generate()
