"""Request classification and per-worker work-unit emission.

The :class:`Router` is the decision layer of the unified execution core: it
looks at one request (a vector or a chunk stream, plus its queries) and
decides which route serves it —

* **batched** — the vector fits one device's sub-vector capacity; queries are
  grouped by the plan they can share (same resolved ``alpha`` and key order,
  the :func:`~repro.service.batch.group_queries_by_plan` definition) and whole
  groups are placed on workers with a greedy least-loaded assignment, so plan
  reuse is never split across workers.  Placement is **work-weighted**, not
  query-counted: a group's weight is its expected element workload from
  ``k``, ``alpha`` and the plan-bank hit state (a bank-hit group costs its
  queries only; a cold group additionally pays the O(n) construction scan),
  so one cold group no longer lands on the same worker as a pile of cheap
  bank-hit groups just because the query counts matched;
* **sharded** — the vector exceeds the capacity; every worker becomes one GPU
  of the Figure 16 multi-GPU workflow and the batch runs with per-shard plan
  reuse through :meth:`~repro.distributed.multigpu.MultiGpuDrTopK.topk_batch`;
* **streaming** — the input is not an in-memory vector but an iterable of
  chunks; each chunk becomes one work unit on the next worker round-robin and
  the candidate pools merge on the primary.

The router only *describes* work (as :class:`~repro.service.executor.WorkUnit`
closures); the :class:`~repro.service.executor.ServiceExecutor` runs it and
:class:`~repro.service.dispatcher.ServiceDispatcher` merges the outcomes.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.service.batch import BatchTopK, TopKQuery, group_queries_by_plan
from repro.service.cache import PartitionCache, fingerprint_array
from repro.service.executor import WorkUnit
from repro.service.planbank import ChunkMemo, PlanBank
from repro.utils import ceil_div

__all__ = ["Router"]

#: Route names emitted by :meth:`Router.classify`.
ROUTES = ("batched", "sharded", "streaming")

#: Load slack (as a fraction of the dispatch's total weight) within which
#: placement prefers a repeat vector's remembered worker over the strictly
#: least-loaded one.
AFFINITY_SLACK = 0.25

#: Upper bound on remembered per-fingerprint affinity entries (anonymous
#: dispatches record affinity too; without a cap a long-running service
#: would accrete one entry per distinct vector ever dispatched).
_AFFINITY_CAP = 4096


class Router:
    """Classify requests and emit per-worker :class:`WorkUnit`\\ s.

    Parameters
    ----------
    num_workers:
        Fleet size placements are computed for.
    capacity_elements:
        Per-device sub-vector capacity separating the batched and sharded
        routes.
    cache:
        Shared :class:`PartitionCache` used for the grouping's ``alpha``
        resolution (so routing warms the same cache the engines use).
    plan_bank:
        Optional shared :class:`PlanBank`; when given, placement peeks at
        each group's bank hit state (without perturbing the LRU) and weighs
        bank-hit groups without their construction scan.
    """

    def __init__(
        self,
        num_workers: int,
        capacity_elements: int,
        cache: PartitionCache,
        plan_bank: Optional[PlanBank] = None,
    ):
        if num_workers < 1:
            raise ConfigurationError("num_workers must be positive")
        if capacity_elements < 1:
            raise ConfigurationError("capacity_elements must be positive")
        self.num_workers = int(num_workers)
        self.capacity_elements = int(capacity_elements)
        self.cache = cache
        self.plan_bank = plan_bank
        # Per-name (per-fingerprint) serving history: how many queries each
        # content has answered, and which worker its heaviest group last
        # landed on.  The named-vector front end feeds the history; placement
        # uses it to keep a repeat vector's groups on a stable worker.
        self._history_lock = threading.Lock()
        self._query_history: Dict[str, int] = {}
        self._affinity: Dict[str, int] = {}

    # -- per-name serving history ----------------------------------------------
    def note_queries(self, fingerprint: str, count: int) -> None:
        """Record ``count`` served queries against one vector's fingerprint."""
        with self._history_lock:
            self._query_history[fingerprint] = (
                self._query_history.get(fingerprint, 0) + int(count)
            )

    def query_history(self, fingerprint: str) -> int:
        """Queries previously recorded against the fingerprint."""
        with self._history_lock:
            return self._query_history.get(fingerprint, 0)

    def forget(self, fingerprint: str) -> None:
        """Drop one fingerprint's history and affinity (store-eviction cascade)."""
        with self._history_lock:
            self._query_history.pop(fingerprint, None)
            self._affinity.pop(fingerprint, None)

    # -- classification --------------------------------------------------------
    def classify(self, v) -> str:
        """Name the route serving ``v``: batched, sharded or streaming.

        In-memory 1-D vectors route by size against the device capacity;
        anything else iterable (a generator of chunks, a list of arrays) is a
        chunked input and takes the streaming route.
        """
        if isinstance(v, np.ndarray):
            if v.ndim != 1:
                raise ConfigurationError(
                    f"expected a 1-D vector or an iterable of chunks, got shape {v.shape}"
                )
            if v.shape[0] > self.capacity_elements:
                return "sharded"
            return "batched"
        if hasattr(v, "__iter__") or hasattr(v, "__next__"):
            return "streaming"
        raise ConfigurationError(
            f"cannot route input of type {type(v).__name__}; "
            "expected a numpy vector or an iterable of chunks"
        )

    # -- batched-route emission ------------------------------------------------
    def expected_group_work(
        self,
        n: int,
        ks: Sequence[int],
        alpha: int,
        beta: int,
        bank_hit: bool,
    ) -> float:
        """Expected element workload of one plan-sharing group.

        The dominant costs of the pipeline, in input elements: a cold group
        pays the one-time construction (a full scan of ``n`` plus the
        delegate stores), every query then pays the first top-k over the
        delegate vector plus a ``k``-proportional concatenation/second-pass
        term.  A bank-hit group skips the construction term entirely — the
        whole point of weighting placement by work instead of query count.
        """
        num_subranges = ceil_div(int(n), 1 << int(alpha))
        m = min(num_subranges * int(beta), int(n))  # delegate-vector size
        per_query = sum(m + 4 * int(k) for k in ks)
        construction = 0.0 if bank_hit else float(n + 2 * m)
        return construction + float(per_query)

    def place_groups(
        self,
        v: np.ndarray,
        parsed: Sequence[TopKQuery],
        engine,
        fingerprint: Optional[str] = None,
    ) -> List[List[int]]:
        """Greedy least-loaded placement of whole plan-sharing groups.

        Queries sharing a plan must stay on one worker (splitting a group
        would re-run its construction); groups are weighted by
        :meth:`expected_group_work` — expected workload from ``k``, ``alpha``
        and the plan-bank hit state — and placed heaviest first onto the
        least-loaded worker.  A vector with recorded per-name hit history
        (see :meth:`note_queries`) additionally carries worker *affinity*:
        its heaviest group returns to the worker that served it last whenever
        that worker's load is within :data:`AFFINITY_SLACK` of the least
        loaded, so a steadily served named vector keeps a stable worker
        instead of drifting with every replanned dispatch.  Returns one list
        of query positions per worker (possibly empty).
        """
        n = int(v.shape[0])
        groups = group_queries_by_plan(parsed, n, self.cache, engine)
        beta = engine.config.beta
        weighted = []
        for (alpha, largest), positions in groups.items():
            bank_hit = (
                self.plan_bank is not None
                and fingerprint is not None
                and self.plan_bank.contains(fingerprint, alpha, largest)
            )
            weight = self.expected_group_work(
                n, [parsed[p].k for p in positions], alpha, beta, bank_hit
            )
            weighted.append((weight, positions))
        total_weight = sum(w for w, _ in weighted)
        preferred: Optional[int] = None
        if fingerprint is not None:
            with self._history_lock:
                if self._query_history.get(fingerprint, 0) > 0:
                    preferred = self._affinity.get(fingerprint)
        load = [0.0] * self.num_workers
        placement: List[List[int]] = [[] for _ in range(self.num_workers)]
        heaviest_target: Optional[int] = None
        for weight, positions in sorted(weighted, key=lambda wp: wp[0], reverse=True):
            target = min(range(self.num_workers), key=load.__getitem__)
            if (
                preferred is not None
                and 0 <= preferred < self.num_workers
                and load[preferred] <= load[target] + AFFINITY_SLACK * total_weight
            ):
                target = preferred
            if heaviest_target is None:
                heaviest_target = target  # sorted: the first group is heaviest
            placement[target].extend(positions)
            load[target] += weight
        if fingerprint is not None and heaviest_target is not None:
            # Remember where the heaviest group landed (not the most-loaded
            # worker, which a pile of light groups can out-weigh and flip
            # between dispatches) so repeats steer it back there.
            with self._history_lock:
                self._affinity.pop(fingerprint, None)  # re-insert most recent
                self._affinity[fingerprint] = heaviest_target
                while len(self._affinity) > _AFFINITY_CAP:
                    self._affinity.pop(next(iter(self._affinity)))
        return placement

    def batched_units(
        self,
        v: np.ndarray,
        parsed: Sequence[TopKQuery],
        workers: Sequence[BatchTopK],
        fingerprint: Optional[str] = None,
    ) -> Tuple[List[WorkUnit], List[List[int]]]:
        """Emit one :class:`WorkUnit` per worker that received queries.

        Each unit runs its worker's :meth:`BatchTopK.run_with_report` over the
        worker's share and returns ``(positions, results, batch_report)`` for
        the dispatcher to merge.  ``fingerprint`` keys the workers' plan-bank
        lookups (and the placement's hit peek) without re-hashing ``v``.
        """
        placement = self.place_groups(v, parsed, workers[0].engine, fingerprint=fingerprint)

        def unit_fn(worker: BatchTopK, positions: List[int]):
            sub_queries = [parsed[p] for p in positions]
            return lambda: (
                positions,
                *worker.run_with_report(v, sub_queries, fingerprint=fingerprint),
            )

        units = [
            WorkUnit(
                fn=unit_fn(workers[w], positions),
                worker=w,
                route="batched",
                label=f"worker{w}:{len(positions)}q",
            )
            for w, positions in enumerate(placement)
            if positions
        ]
        return units, placement

    # -- streaming-route emission ----------------------------------------------
    def streaming_units(
        self,
        chunks,
        parsed: Sequence[TopKQuery],
        chunk_elements: int,
        make_engine,
        chunk_memo: Optional[ChunkMemo] = None,
    ):
        """Lazily emit one :class:`WorkUnit` per stream chunk, round-robin.

        ``chunks`` may be a single array (sliced transparently) or any
        iterable of 1-D arrays; oversized arrays are split to
        ``chunk_elements``.  Each unit distils its chunk into at most
        ``max(k)`` candidates per key order present in the batch — one local
        pipeline run per key order, shared by every query — and returns
        ``(offset, length, {largest: TopKResult}, report, memo_hits)`` where
        ``report`` is ``None`` when every key order was served from the
        chunk memo (zero pipeline work).  Units are yielded lazily so the
        executor's bounded queue also bounds read-ahead.

        ``make_engine`` builds a fresh per-unit :class:`BatchTopK` (units for
        one worker may overlap in the pool, so they cannot share an engine).
        ``chunk_memo`` (when given) memoises each chunk's local candidates by
        content fingerprint, so a replayed stream — or a shared prefix at any
        offset — skips the per-chunk pipeline entirely.
        """
        kmax: dict = {}
        for q in parsed:
            kmax[q.largest] = max(kmax.get(q.largest, 0), q.k)

        if isinstance(chunks, np.ndarray):
            chunks = [chunks]

        def chunk_fn(piece: np.ndarray, offset: int):
            local_queries = [
                (min(k, piece.shape[0]), largest) for largest, k in sorted(kmax.items())
            ]

            def run():
                by_largest = {}
                memo_hits = 0
                pending = list(local_queries)
                fp = fingerprint_array(piece) if chunk_memo is not None else None
                if fp is not None:
                    pending = []
                    for kk, largest in local_queries:
                        hit = chunk_memo.get(fp, kk, largest)
                        if hit is not None:
                            by_largest[largest] = hit
                            memo_hits += 1
                        else:
                            pending.append((kk, largest))
                report = None
                if pending:
                    engine = make_engine()
                    results = engine.run(piece, pending)
                    report = engine.last_report
                    for (kk, largest), result in zip(pending, results):
                        by_largest[largest] = result
                        if fp is not None:
                            chunk_memo.put(fp, kk, largest, result)
                return offset, piece.shape[0], by_largest, report, memo_hits

            return run

        def generate():
            offset = 0
            index = 0
            for chunk in chunks:
                chunk = np.asarray(chunk)
                if chunk.ndim != 1:
                    raise ConfigurationError(
                        f"stream chunks must be one dimensional, got shape {chunk.shape}"
                    )
                for start in range(0, chunk.shape[0], chunk_elements):
                    piece = chunk[start : start + chunk_elements]
                    if not piece.shape[0]:
                        continue
                    worker = index % self.num_workers
                    yield WorkUnit(
                        fn=chunk_fn(piece, offset),
                        worker=worker,
                        route="streaming",
                        label=f"chunk{index}@worker{worker}",
                    )
                    offset += piece.shape[0]
                    index += 1

        return generate()
