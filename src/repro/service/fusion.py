"""Group-fused selection and the scratch-buffer arena (the hot-loop fast path).

The batched serving layer amortises *construction* across queries sharing a
:class:`~repro.core.plan.QueryPlan`, but until this module existed the
*selection* stages still ran once per query:
:meth:`~repro.service.batch.BatchTopK.run` looped
:meth:`~repro.core.drtopk.DrTopK.topk_prepared` over each ``(alpha, largest)``
group, re-running the first top-k over the delegate vector and re-gathering
qualified subranges ``N`` times.  :func:`fused_group_topk` replaces that loop
with **one** shared selection at ``max(k)`` plus a cheap per-query refinement,
while staying *exactly* per-query equivalent on values **and** indices:

1. **One shared first top-k** over the delegate vector at the group's largest
   servable ``k``.  Its descending value list yields every query's exact
   Rule-2 threshold (``t_k`` is the k-th largest delegate key — a *value*,
   unique regardless of tie choices), and, when the first algorithm is
   :attr:`~repro.algorithms.base.TopKAlgorithm.prefix_consistent`, its index
   prefix answers every skip-path query by slicing.
2. **One shared gather** of the subranges scanned at the *loosest* threshold
   (thresholds are non-increasing in ``k``, so every query's scan set nests
   inside it).  Each query's concatenated vector is rebuilt from the shared
   block by masking — in the same row-major order the per-query
   :func:`~repro.core.concatenate.concatenate_subranges` produces, with the
   Rule-3 extra delegates appended in the same flat order — so the per-query
   second top-k sees a byte-identical input and returns an identical answer.
3. Queries the plan cannot answer (``plan.answers(k)`` false) fall back to
   the raw-key pipeline; when the second algorithm is prefix consistent they
   too are served from one shared pass at their largest ``k``, otherwise the
   exact per-query calls are kept.

Scratch buffers for the shared gather, masks and sort temporaries come from a
thread-local :class:`ScratchArena` of dtype-bucketed pooled numpy arrays, so
steady-state dispatches stop paying allocation churn; hit/miss/resize
counters aggregate across threads into :func:`arena_info` and surface on
:class:`~repro.service.dispatcher.DispatchReport`.  Returned results never
alias arena memory — every output array is freshly materialised before the
arena scope closes.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import get_algorithm
from repro.algorithms.base import ExecutionTrace
from repro.core.drtopk import DrTopK, _collapse_steps
from repro.core.plan import QueryPlan
from repro.core.config import DrTopKConfig
from repro.errors import ConfigurationError
from repro.types import TopKResult, WorkloadStats

__all__ = [
    "ScratchArena",
    "ArenaInfo",
    "FusedGroupOutcome",
    "fused_group_topk",
    "thread_arena",
    "arena_info",
    "reset_arenas",
    "DEFAULT_ARENA_LIMIT_BYTES",
]

#: Pooled bytes one thread's arena may retain between dispatches; buffers
#: beyond the limit are dropped largest-first when a scope closes.
DEFAULT_ARENA_LIMIT_BYTES = 256 << 20

#: Smallest pooled buffer (elements); tiny takes round up so the free lists
#: stay short.
_MIN_BUFFER_ELEMENTS = 64


@dataclass
class ArenaInfo:
    """Aggregated scratch-arena counters (one thread's arena, or all of them).

    ``hits`` count takes served from a pooled buffer, ``misses`` takes that
    allocated because the dtype bucket was empty, ``resizes`` takes that found
    only too-small pooled buffers and grew one.  ``held_bytes`` is what
    currently sits in free lists waiting for reuse.
    """

    hits: int = 0
    misses: int = 0
    resizes: int = 0
    held_bytes: int = 0
    arenas: int = 0

    @property
    def takes(self) -> int:
        """Total buffer requests observed."""
        return self.hits + self.misses + self.resizes

    @property
    def hit_rate(self) -> float:
        """Fraction of takes served from the pool."""
        if self.takes == 0:
            return 0.0
        return self.hits / self.takes


class ScratchArena:
    """A pool of dtype-bucketed scratch numpy buffers reused across dispatches.

    Buffers are borrowed with :meth:`take` inside a :meth:`scope` and all
    return to the free lists when the scope closes — callers never release
    individually, which makes leaks structurally impossible.  The arena is
    **not** thread-safe by design: use :func:`thread_arena` to get the calling
    thread's own instance (counters still aggregate globally via
    :func:`arena_info`).

    Parameters
    ----------
    limit_bytes:
        Pooled bytes retained between scopes; excess buffers are dropped
        largest-first so one huge dispatch cannot pin memory forever.
    """

    def __init__(self, limit_bytes: int = DEFAULT_ARENA_LIMIT_BYTES) -> None:
        self.limit_bytes = int(limit_bytes)
        self._free: Dict[str, List[np.ndarray]] = {}
        self._scopes: List[List[np.ndarray]] = []
        self.hits = 0
        self.misses = 0
        self.resizes = 0
        self.held_bytes = 0

    @contextmanager
    def scope(self) -> Iterator["ScratchArena"]:
        """Borrowing scope: every :meth:`take` inside returns to the pool on exit."""
        self._scopes.append([])
        try:
            yield self
        finally:
            borrowed = self._scopes.pop()
            for buf in borrowed:
                bucket = self._free.setdefault(buf.dtype.str, [])
                bucket.append(buf)
                bucket.sort(key=lambda b: b.shape[0])
                self.held_bytes += buf.nbytes
            self._trim()

    def take(self, shape: Tuple[int, ...], dtype: "np.typing.DTypeLike") -> np.ndarray:
        """Borrow an uninitialised buffer of ``shape``/``dtype`` from the pool.

        Returns a view over a pooled 1-D backing buffer (contents arbitrary).
        Outside any :meth:`scope` the array is a plain allocation that is not
        pooled afterwards (counted as a miss) — convenient for one-off use.
        """
        dtype = np.dtype(dtype)
        count = 1
        for dim in shape:
            count *= int(dim)
        bucket = self._free.get(dtype.str)
        buf: Optional[np.ndarray] = None
        if bucket:
            for i, candidate in enumerate(bucket):
                if candidate.shape[0] >= count:
                    buf = bucket.pop(i)
                    self.held_bytes -= buf.nbytes
                    self.hits += 1
                    break
            if buf is None:
                # Everything pooled is too small: grow the largest in place of
                # allocating yet another size class.
                grown = bucket.pop()
                self.held_bytes -= grown.nbytes
                self.resizes += 1
                buf = np.empty(self._capacity(count), dtype=dtype)
        else:
            self.misses += 1
            buf = np.empty(self._capacity(count), dtype=dtype)
        if self._scopes:
            self._scopes[-1].append(buf)
        return buf[:count].reshape(shape)

    def info(self) -> ArenaInfo:
        """Snapshot of this arena's counters."""
        return ArenaInfo(
            hits=self.hits,
            misses=self.misses,
            resizes=self.resizes,
            held_bytes=self.held_bytes,
            arenas=1,
        )

    def clear(self) -> None:
        """Drop every pooled buffer and reset the counters."""
        self._free.clear()
        self.hits = self.misses = self.resizes = 0
        self.held_bytes = 0

    @staticmethod
    def _capacity(count: int) -> int:
        """Round a requested element count up to the pooled size class."""
        if count <= _MIN_BUFFER_ELEMENTS:
            return _MIN_BUFFER_ELEMENTS
        return 1 << int(count - 1).bit_length()

    def _trim(self) -> None:
        """Enforce ``limit_bytes`` by dropping the largest pooled buffers."""
        while self.held_bytes > self.limit_bytes:
            largest_key = None
            largest_size = -1
            for key, bucket in self._free.items():
                if bucket and bucket[-1].nbytes > largest_size:
                    largest_key, largest_size = key, bucket[-1].nbytes
            if largest_key is None:
                break
            dropped = self._free[largest_key].pop()
            self.held_bytes -= dropped.nbytes


_TLS = threading.local()
_LEDGER_LOCK = threading.Lock()
_ARENAS: List[ScratchArena] = []


def thread_arena() -> ScratchArena:
    """The calling thread's :class:`ScratchArena` (created on first use)."""
    arena = getattr(_TLS, "arena", None)
    if arena is None:
        arena = ScratchArena()
        _TLS.arena = arena
        with _LEDGER_LOCK:
            _ARENAS.append(arena)
    return arena


def arena_info() -> ArenaInfo:
    """Aggregate counters over every thread's arena (the global ledger)."""
    with _LEDGER_LOCK:
        arenas = list(_ARENAS)
    total = ArenaInfo(arenas=len(arenas))
    for arena in arenas:
        total.hits += arena.hits
        total.misses += arena.misses
        total.resizes += arena.resizes
        total.held_bytes += arena.held_bytes
    return total


def reset_arenas() -> None:
    """Clear every registered arena's pool and counters (tests/benchmarks)."""
    with _LEDGER_LOCK:
        arenas = list(_ARENAS)
    for arena in arenas:
        arena.clear()


@dataclass
class FusedGroupOutcome:
    """What one :func:`fused_group_topk` call produced and what it cost.

    Byte and millisecond quantities are simulated-GPU accounting (all zero
    with ``collect_trace=False``); ``stage_ms`` is *measured* host wall-clock
    per fused stage.  ``selection_calls`` counts full selection passes
    actually executed — the fused equivalent of "how many times did we run
    ``topk_prepared``-grade work"; a fully fused group reports 1.
    """

    results: List[TopKResult] = field(default_factory=list)
    selection_calls: int = 0
    fused_queries: int = 0
    fallback_queries: int = 0
    shared_bytes: float = 0.0
    shared_ms: float = 0.0
    query_bytes: List[float] = field(default_factory=list)
    naive_bytes: List[float] = field(default_factory=list)
    stage_ms: Dict[str, float] = field(default_factory=dict)


def _base_stats(plan: QueryPlan) -> WorkloadStats:
    """Per-query stats skeleton matching ``topk_prepared``'s initialisation."""
    return WorkloadStats(
        input_size=plan.n,
        subrange_size=plan.partition.subrange_size,
        alpha=plan.partition.alpha,
        beta=plan.beta,
        num_subranges=plan.partition.num_subranges,
    )


def _stage(stage_ms: Dict[str, float], name: str, started: float) -> float:
    """Accumulate measured wall-clock for one fused stage; returns a new mark."""
    now = time.perf_counter()
    stage_ms[name] = stage_ms.get(name, 0.0) + (now - started) * 1e3
    return now


def fused_group_topk(
    engine: DrTopK,
    plan: QueryPlan,
    ks: Sequence[int],
    arena: Optional[ScratchArena] = None,
) -> FusedGroupOutcome:
    """Answer every ``k`` in ``ks`` from ``plan`` with one shared selection.

    Exactly equivalent — values *and* indices — to calling
    ``engine.topk_prepared(plan, k, charge_construction=False)`` once per
    ``k``: the shared pass derives each query's exact Rule-2 threshold, each
    query's concatenated vector is reconstructed byte-identically from one
    shared gather, and the per-query second top-k runs on it unchanged.
    Queries the plan cannot answer fall back to the raw-key pipeline (shared
    when the second algorithm is prefix consistent, per query otherwise).

    Results align with ``ks``.  Construction is never charged here — batch
    callers account for it once at the group level, exactly as before.
    """
    cfg = engine.config
    outcome = FusedGroupOutcome(
        results=[None] * len(ks),  # type: ignore[list-item]
        query_bytes=[0.0] * len(ks),
        naive_bytes=[0.0] * len(ks),
    )
    if not ks:
        return outcome
    arena = arena if arena is not None else thread_arena()
    collect = cfg.collect_trace

    servable = [i for i, k in enumerate(ks) if plan.answers(int(k))]
    fallback = [i for i in range(len(ks)) if i not in set(servable)]

    with arena.scope():
        if servable:
            _serve_fused(engine, plan, ks, servable, arena, outcome)
        if fallback:
            _serve_fallback(engine, plan, ks, fallback, outcome)

    if collect:
        # The per-query loop would have paid the shared work once per query;
        # the modelled naive traffic replicates it on top of each query's own
        # refinement bytes (construction re-charges stay with the batch
        # caller, which owns the plan accounting).
        per_query_shared = outcome.shared_bytes
        for i in servable:
            outcome.naive_bytes[i] = outcome.query_bytes[i] + per_query_shared
    return outcome


def _serve_fused(
    engine: DrTopK,
    plan: QueryPlan,
    ks: Sequence[int],
    servable: List[int],
    arena: ScratchArena,
    outcome: FusedGroupOutcome,
) -> None:
    """Serve every plan-answerable query from one shared selection pass."""
    cfg = engine.config
    v = plan.v
    collect = cfg.collect_trace
    itemsize = v.dtype.itemsize
    delegates = plan.delegates
    assert delegates is not None
    partition = plan.partition
    n = partition.n
    mark = time.perf_counter()

    kmax = max(int(ks[i]) for i in servable)
    flat_keys = delegates.flat_keys()
    key_dtype = flat_keys.dtype

    # -- shared first top-k at max(k): thresholds for every query ------------
    first_algo = get_algorithm(cfg.first_algorithm)
    shared_trace = ExecutionTrace(itemsize=itemsize) if collect else None
    first_trace = ExecutionTrace(itemsize=itemsize) if collect else None
    shared_first = first_algo.topk(flat_keys, kmax, largest=True, trace=first_trace)
    if shared_trace is not None and first_trace is not None:
        shared_trace.extend([_collapse_steps("fused_first_topk", first_trace)])
    # Descending shared values: the exact k-th largest delegate key for every
    # k <= kmax — the same *value* qualification_threshold() derives per query
    # regardless of the algorithm's tie choices.
    thresholds = {i: key_dtype.type(shared_first.values[int(ks[i]) - 1]) for i in servable}
    outcome.selection_calls += 1
    mark = _stage(outcome.stage_ms, "first_ms", mark)

    use_beta = cfg.use_beta_rule and plan.beta > 1
    maxima = delegates.maxima()
    crit = delegates.beta_th() if use_beta else maxima
    flat_sub_ids = delegates.flat_subrange_ids()
    flat_indices = delegates.flat_indices()
    m = flat_keys.shape[0]
    num_sub = partition.num_subranges

    # Pre-sorted copies answer the per-query qualification counts by binary
    # search instead of N full-vector comparisons.
    sorted_maxima = arena.take((num_sub,), maxima.dtype)
    np.copyto(sorted_maxima, maxima)
    sorted_maxima.sort()
    if crit is maxima:
        sorted_crit = sorted_maxima
    else:
        sorted_crit = arena.take((num_sub,), crit.dtype)
        np.copyto(sorted_crit, crit)
        sorted_crit.sort()
    crit_of_delegate = arena.take((m,), crit.dtype)
    np.take(crit, flat_sub_ids, out=crit_of_delegate)

    # -- one shared gather at the loosest threshold --------------------------
    t_loosest = min(thresholds.values())
    scan_max = crit >= t_loosest
    scanned_ids = np.nonzero(scan_max)[0]
    s = int(scanned_ids.shape[0])
    sub_size = partition.subrange_size
    block = positions = real = keep = row_mask = None
    real_per_row = None
    crit_rows = None
    if s:
        view = plan.padded_view()
        block = arena.take((s, sub_size), view.dtype)
        np.take(view, scanned_ids, axis=0, out=block)
        positions = arena.take((s, sub_size), np.int64)
        np.add(
            (scanned_ids.astype(np.int64) << partition.alpha)[:, None],
            np.arange(sub_size, dtype=np.int64),
            out=positions,
        )
        real = arena.take((s, sub_size), bool)
        np.less(positions, n, out=real)
        real_per_row = real.sum(axis=1)
        crit_rows = crit[scanned_ids]
        keep = arena.take((s, sub_size), bool)
        row_mask = arena.take((s,), bool)
        if shared_trace is not None:
            scanned_total = int(real_per_row.sum())
            shared_trace.add(
                "fused_gather",
                loads=float(s) + float(scanned_total),
                stores=float(scanned_total),
                kernels=1,
            )
    mark = _stage(outcome.stage_ms, "gather_ms", mark)

    extra_ge = arena.take((m,), bool)
    extra_lt = arena.take((m,), bool)
    flat_idx_cache: Optional[np.ndarray] = None

    for i in servable:
        k = int(ks[i])
        t = thresholds[i]
        stats = _base_stats(plan)
        stats.delegate_vector_size = delegates.size
        stats.qualified_subranges = num_sub - int(
            np.searchsorted(sorted_maxima, t, side="left")
        )
        stats.fully_qualified_subranges = num_sub - int(
            np.searchsorted(sorted_crit, t, side="left")
        )
        trace_q = ExecutionTrace(itemsize=itemsize) if collect else None

        any_scanned = False
        if s:
            np.greater_equal(crit_rows, t, out=row_mask)
            any_scanned = bool(row_mask.any())

        if cfg.skip_second_when_possible and not any_scanned:
            # Figure 8(b): no subrange is fully taken — the first top-k is the
            # answer.  A prefix-consistent first algorithm lets the shared
            # pass answer by slicing; otherwise the exact per-query first
            # top-k runs (still amortising thresholds and the gather).
            mark = time.perf_counter()
            if type(first_algo).prefix_consistent:
                idx_first = shared_first.indices[:k]
                if trace_q is not None:
                    trace_q.add(
                        "fused_refine", loads=float(k), stores=2.0 * k, kernels=1
                    )
            else:
                q_trace = ExecutionTrace(itemsize=itemsize) if collect else None
                first_q = first_algo.topk(flat_keys, k, largest=True, trace=q_trace)
                idx_first = first_q.indices
                if trace_q is not None and q_trace is not None:
                    trace_q.extend([_collapse_steps("first_topk", q_trace)])
                outcome.selection_calls += 1
            if flat_idx_cache is None:
                flat_idx_cache = flat_indices
            original_idx = flat_idx_cache[idx_first]
            stats.second_topk_skipped = True
            stats.concatenated_size = 0
            _finish_query(outcome, i, v, original_idx, k, plan, stats, trace_q, cfg)
            mark = _stage(outcome.stage_ms, "refine_ms", mark)
            continue

        # -- per-query refinement of the shared gather -----------------------
        mark = time.perf_counter()
        pieces_keys: List[np.ndarray] = []
        pieces_idx: List[np.ndarray] = []
        scanned_elements = 0
        copied_scanned = 0
        if any_scanned:
            assert block is not None and real is not None and keep is not None
            assert positions is not None and real_per_row is not None
            scanned_elements = int(real_per_row[row_mask].sum())
            if cfg.use_filtering:
                np.greater_equal(block, t, out=keep)
                np.logical_and(keep, real, out=keep)
            else:
                np.copyto(keep, real)
            np.logical_and(keep, row_mask[:, None], out=keep)
            pieces_keys.append(block[keep])
            pieces_idx.append(positions[keep])
            copied_scanned = int(pieces_keys[0].shape[0])
        stats.filtered_out = scanned_elements - copied_scanned

        np.greater_equal(flat_keys, t, out=extra_ge)
        np.less(crit_of_delegate, t, out=extra_lt)
        np.logical_and(extra_ge, extra_lt, out=extra_ge)
        if bool(extra_ge.any()):
            pieces_keys.append(flat_keys[extra_ge])
            pieces_idx.append(flat_indices[extra_ge])

        if pieces_keys:
            # Pure per-query temporaries (everything escaping below is a
            # fancy-index copy), so they borrow from the group's arena scope
            # instead of allocating per query.
            total = sum(int(p.shape[0]) for p in pieces_keys)
            concat_keys = arena.take((total,), key_dtype)
            concat_idx = arena.take((total,), np.int64)
            np.concatenate(pieces_keys, out=concat_keys)
            np.concatenate(pieces_idx, out=concat_idx)
        else:  # pragma: no cover - >= k candidates always exist above t
            concat_keys = np.empty(0, dtype=key_dtype)  # reprolint: waive[HOT001] zero-element defensive branch, nothing to pool
            concat_idx = np.empty(0, dtype=np.int64)  # reprolint: waive[HOT001] zero-element defensive branch, nothing to pool
        stats.concatenated_size = int(concat_keys.shape[0])
        if trace_q is not None:
            copied = float(concat_keys.shape[0])
            trace_q.add(
                "fused_refine",
                loads=float(int(row_mask.sum()) if s else 0)
                + float(scanned_elements)
                + float(m),
                stores=2.0 * copied,
                atomics=copied,
                kernels=1,
            )
        if concat_keys.shape[0] < k:
            raise ConfigurationError(
                "internal error: concatenated vector smaller than k "
                f"({concat_keys.shape[0]} < {k})"
            )
        mark = _stage(outcome.stage_ms, "refine_ms", mark)

        # -- per-query second top-k on the byte-identical concatenation ------
        second_algo = get_algorithm(cfg.second_algorithm)
        second_trace = ExecutionTrace(itemsize=itemsize) if collect else None
        second = second_algo.topk(concat_keys, k, largest=True, trace=second_trace)
        if trace_q is not None and second_trace is not None:
            trace_q.extend([_collapse_steps("second_topk", second_trace)])
        original_idx = concat_idx[second.indices]
        _finish_query(outcome, i, v, original_idx, k, plan, stats, trace_q, cfg)
        mark = _stage(outcome.stage_ms, "second_ms", mark)

    outcome.fused_queries += len(servable)
    if shared_trace is not None:
        outcome.shared_bytes += shared_trace.total_counters().global_bytes
        outcome.shared_ms += sum(shared_trace.step_times_ms(cfg.device).values())


def _serve_fallback(
    engine: DrTopK,
    plan: QueryPlan,
    ks: Sequence[int],
    fallback: List[int],
    outcome: FusedGroupOutcome,
) -> None:
    """Serve queries the plan cannot answer (the raw-key degenerate regime).

    With a prefix-consistent second algorithm one shared raw-key pass at the
    subgroup's largest ``k`` answers every query by slicing — the degenerate
    equivalent of the fused selection; otherwise the exact per-query
    ``topk_prepared`` calls run unchanged.
    """
    cfg = engine.config
    v = plan.v
    collect = cfg.collect_trace
    itemsize = v.dtype.itemsize
    second_algo = get_algorithm(cfg.second_algorithm)
    mark = time.perf_counter()

    if not type(second_algo).prefix_consistent:
        for i in fallback:
            result = engine.topk_prepared(plan, int(ks[i]), charge_construction=False)
            outcome.results[i] = result
            outcome.selection_calls += 1
            if collect:
                q_bytes = engine.last_trace.total_counters().global_bytes
                outcome.query_bytes[i] = q_bytes
                outcome.naive_bytes[i] = q_bytes
        outcome.fallback_queries += len(fallback)
        _stage(outcome.stage_ms, "fallback_ms", mark)
        return

    kmax = max(int(ks[i]) for i in fallback)
    shared_trace = ExecutionTrace(itemsize=itemsize) if collect else None
    base_trace = ExecutionTrace(itemsize=itemsize) if collect else None
    base = second_algo.topk(plan.keys, kmax, largest=True, trace=base_trace)
    if shared_trace is not None and base_trace is not None:
        shared_trace.extend([_collapse_steps("fused_degenerate_topk", base_trace)])
    outcome.selection_calls += 1
    shared_bytes = (
        shared_trace.total_counters().global_bytes if shared_trace is not None else 0.0
    )
    outcome.shared_bytes += shared_bytes
    if shared_trace is not None:
        outcome.shared_ms += sum(shared_trace.step_times_ms(cfg.device).values())

    for i in fallback:
        k = int(ks[i])
        stats = _base_stats(plan)
        stats.delegate_vector_size = 0
        stats.concatenated_size = stats.input_size
        trace_q = ExecutionTrace(itemsize=itemsize) if collect else None
        indices = base.indices[:k]
        if trace_q is not None:
            trace_q.add("fused_refine", loads=float(k), stores=2.0 * k, kernels=1)
        _finish_query(outcome, i, v, indices, k, plan, stats, trace_q, cfg)
        if collect:
            outcome.naive_bytes[i] = outcome.query_bytes[i] + shared_bytes
    outcome.fallback_queries += len(fallback)
    _stage(outcome.stage_ms, "fallback_ms", mark)


def _finish_query(
    outcome: FusedGroupOutcome,
    i: int,
    v: np.ndarray,
    original_idx: np.ndarray,
    k: int,
    plan: QueryPlan,
    stats: WorkloadStats,
    trace_q: Optional[ExecutionTrace],
    cfg: DrTopKConfig,
) -> None:
    """Materialise one query's result and record its per-query accounting."""
    if trace_q is not None:
        stats.step_times_ms = trace_q.step_times_ms(cfg.device)
        outcome.query_bytes[i] = trace_q.total_counters().global_bytes
    outcome.results[i] = TopKResult(
        values=v[original_idx],
        indices=np.asarray(original_idx, dtype=np.int64),
        k=k,
        largest=plan.largest,
        stats=stats,
    )
