"""Multi-tenant serving policies: quotas, token buckets, and fair queueing.

The serving core (store, executor, dispatcher, load harness) is tenant-aware
but tenant-agnostic by default: every entry point accepts a ``tenant=``
identity that defaults to :data:`DEFAULT_TENANT`, and with no
:class:`TenantRegistry` configured the single-tenant path is bit-for-bit the
pre-tenancy behaviour.  When a registry *is* configured, four per-tenant
policy knobs take effect:

- ``byte_budget`` — a cap on resident bytes in :class:`~repro.service.store.
  VectorStore`; eviction victims are then only ever chosen from the
  requesting tenant's own slice.
- ``qps`` / ``burst`` — a token bucket charged per query; exhaustion raises
  :class:`~repro.errors.TenantQuotaError` before any work is dispatched.
- ``weight`` — the share of executor slots under weighted deficit-round-robin
  (see :class:`WeightedFairQueue`).
- ``max_pins`` — a cap on simultaneously pinned vectors.

Everything here is deterministic under injected clocks and seeds so the
fairness properties can be proven by the test suite rather than observed
statistically.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Generic,
    Iterable,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from ..errors import ConfigurationError, TenantQuotaError

__all__ = [
    "DEFAULT_TENANT",
    "TenantPolicy",
    "TokenBucket",
    "TenantRegistry",
    "WeightedFairQueue",
]

#: Identity used when a caller does not name a tenant.  The default tenant
#: has no registered policy unless one is explicitly added, so the
#: single-tenant path behaves exactly as it did before tenancy existed.
DEFAULT_TENANT = "default"

_T = TypeVar("_T")


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's resource policy.

    Every limit is optional: ``None`` means unlimited, which is also what an
    unregistered tenant gets.  Weights are relative — only ratios between
    tenants matter to the fair scheduler.
    """

    tenant: str
    byte_budget: Optional[int] = None
    qps: Optional[float] = None
    burst: int = 8
    weight: float = 1.0
    max_pins: Optional[int] = None

    def __post_init__(self) -> None:
        """Validate the policy knobs at construction time."""
        if not self.tenant:
            raise ConfigurationError("tenant name must be non-empty")
        if self.byte_budget is not None and self.byte_budget < 1:
            raise ConfigurationError("byte_budget must be >= 1, or None")
        if self.qps is not None and self.qps <= 0:
            raise ConfigurationError("qps must be > 0, or None")
        if self.burst < 1:
            raise ConfigurationError("burst must be >= 1")
        if not self.weight > 0:
            raise ConfigurationError("weight must be > 0")
        if self.max_pins is not None and self.max_pins < 0:
            raise ConfigurationError("max_pins must be >= 0, or None")


class TokenBucket:
    """A deterministic token bucket: ``rate`` tokens/second, ``burst`` deep.

    The clock is injected so tests drive refill with a fake monotonic
    counter; with the default ``time.monotonic`` the bucket is a standard
    leaky-bucket rate limiter.  Refill is monotone in the clock: a later
    ``now`` never yields fewer available tokens than an earlier one (capped
    at ``burst``), and a non-advancing clock never refills.
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Create a bucket that starts full at ``burst`` tokens."""
        if rate <= 0:
            raise ConfigurationError("token bucket rate must be > 0")
        if burst < 1:
            raise ConfigurationError("token bucket burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._last = float(clock())

    def _refill(self, now: float) -> None:
        """Advance ``_tokens`` to clock reading ``now``; caller holds ``_lock``.

        The clock is sampled by the caller *outside* the lock — an injected
        clock is user code and must never run under bucket state.
        """
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; return whether the take succeeded."""
        now = float(self._clock())
        with self._lock:
            self._refill(now)
            if self._tokens + 1e-9 >= tokens:
                self._tokens -= tokens
                return True
            return False

    def available(self) -> float:
        """Tokens currently available (after refilling to the clock)."""
        now = float(self._clock())
        with self._lock:
            self._refill(now)
            return self._tokens


class TenantRegistry:
    """Thread-safe lookup of per-tenant policies plus quota accounting.

    The registry owns one :class:`TokenBucket` per rate-limited tenant and
    counts quota rejections per tenant so the load harness and reports can
    surface them.  Unregistered tenants resolve to an unlimited default
    policy — configuring a registry therefore never restricts tenants you
    did not name.
    """

    def __init__(
        self,
        policies: Iterable[TenantPolicy] = (),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Build a registry over ``policies`` with an injectable clock."""
        self._clock = clock
        self._lock = threading.Lock()
        self._policies: Dict[str, TenantPolicy] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._rejections: Dict[str, int] = {}
        for policy in policies:
            self.register(policy)

    def register(self, policy: TenantPolicy) -> None:
        """Add or replace one tenant's policy (rebuilding its token bucket)."""
        bucket = (
            TokenBucket(policy.qps, policy.burst, self._clock)
            if policy.qps is not None
            else None
        )
        with self._lock:
            self._policies[policy.tenant] = policy
            if bucket is not None:
                self._buckets[policy.tenant] = bucket
            else:
                self._buckets.pop(policy.tenant, None)

    def policy(self, tenant: str) -> TenantPolicy:
        """The registered policy, or an unlimited default for unknown tenants."""
        with self._lock:
            known = self._policies.get(tenant)
        return known if known is not None else TenantPolicy(tenant=tenant)

    def tenants(self) -> List[str]:
        """Sorted names of every registered tenant."""
        with self._lock:
            return sorted(self._policies)

    def weight(self, tenant: str) -> float:
        """The tenant's scheduling weight (1.0 when unregistered)."""
        return self.policy(tenant).weight

    def byte_budget(self, tenant: str) -> Optional[int]:
        """The tenant's resident-byte cap, or ``None`` for unlimited."""
        return self.policy(tenant).byte_budget

    def max_pins(self, tenant: str) -> Optional[int]:
        """The tenant's pin allowance, or ``None`` for unlimited."""
        return self.policy(tenant).max_pins

    def acquire(self, tenant: str, tokens: float = 1.0) -> None:
        """Charge ``tokens`` against the tenant's QPS bucket.

        Raises :class:`TenantQuotaError` (and counts the rejection) when the
        bucket cannot cover the charge; tenants with no ``qps`` policy are
        never charged.
        """
        with self._lock:
            bucket = self._buckets.get(tenant)
        if bucket is None or bucket.try_acquire(tokens):
            return
        self.note_rejection(tenant)
        raise TenantQuotaError(
            f"tenant {tenant!r} exceeded its QPS quota "
            f"({self.policy(tenant).qps}/s, burst {self.policy(tenant).burst})"
        )

    def note_rejection(self, tenant: str) -> None:
        """Count one quota rejection against ``tenant``."""
        with self._lock:
            self._rejections[tenant] = self._rejections.get(tenant, 0) + 1

    def rejections(self, tenant: Optional[str] = None) -> int:
        """Quota rejections for one tenant, or the total across all tenants."""
        with self._lock:
            if tenant is not None:
                return self._rejections.get(tenant, 0)
            return sum(self._rejections.values())

    def rejections_by_tenant(self) -> Dict[str, int]:
        """A snapshot of per-tenant quota-rejection counts."""
        with self._lock:
            return dict(self._rejections)


class WeightedFairQueue(Generic[_T]):
    """Weighted deficit-round-robin over per-tenant FIFO queues.

    Classic DRR in pop-one form: backlogged tenants sit in a rotation
    ordered by when they first became backlogged; each visit credits the
    tenant a quantum proportional to its weight (normalised so the lightest
    active tenant's quantum is 1), and the tenant is served while its
    deficit covers one unit.  The structure is fully deterministic — the pop
    sequence is a pure function of the push sequence and the weights — which
    gives three provable properties the test suite leans on:

    - with a single tenant the pop order *is* the push order (exact FIFO);
    - with equal weights the rotation serves one unit per visit, i.e.
      round-robin, which for interleaved arrivals is again FIFO;
    - while two tenants stay backlogged, served counts converge to the
      weight ratio and a tenant's head-of-line wait is bounded by one round
      (the sum of the other tenants' quanta plus one unit).

    Not internally locked: callers that share a queue across threads hold
    their own lock around ``push``/``pop`` (see ``ServiceExecutor``).
    """

    def __init__(self, weight_of: Callable[[str], float]) -> None:
        """Create an empty queue; ``weight_of`` maps tenant name to weight."""
        self._weight_of = weight_of
        self._queues: "OrderedDict[str, Deque[_T]]" = OrderedDict()
        self._deficit: Dict[str, float] = {}
        self._charged: Dict[str, bool] = {}
        self._rotation: List[str] = []
        self._index = 0
        self._total = 0

    def __len__(self) -> int:
        """Total queued items across all tenants."""
        return self._total

    def pending(self, tenant: str) -> int:
        """Items currently queued for one tenant."""
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    def tenants(self) -> List[str]:
        """Tenants currently backlogged, in rotation order."""
        return list(self._rotation)

    def push(self, tenant: str, item: _T) -> None:
        """Append ``item`` to the tenant's FIFO, activating it if idle."""
        queue = self._queues.get(tenant)
        if queue is None:
            queue = deque()
            self._queues[tenant] = queue
        if not queue:
            self._rotation.append(tenant)
            self._deficit[tenant] = 0.0
            self._charged[tenant] = False
        queue.append(item)
        self._total += 1

    def _quantum(self, tenant: str) -> float:
        """The tenant's per-visit credit, normalised by the lightest active weight."""
        floor = min(self._weight_of(t) for t in self._rotation)
        return self._weight_of(tenant) / floor

    def _deactivate(self, position: int) -> None:
        """Drop the drained tenant at rotation ``position``, fixing the cursor."""
        tenant = self._rotation.pop(position)
        self._deficit[tenant] = 0.0
        self._charged[tenant] = False
        if position < self._index:
            self._index -= 1
        if self._rotation and self._index >= len(self._rotation):
            self._index = 0

    def pop(self) -> Optional[Tuple[str, _T]]:
        """Serve the DRR-next item as ``(tenant, item)``, or ``None`` if empty."""
        if self._total == 0:
            return None
        while True:
            tenant = self._rotation[self._index]
            queue = self._queues[tenant]
            if not self._charged[tenant]:
                self._deficit[tenant] += self._quantum(tenant)
                self._charged[tenant] = True
            if self._deficit[tenant] + 1e-9 >= 1.0:
                self._deficit[tenant] -= 1.0
                item = queue.popleft()
                self._total -= 1
                if not queue:
                    self._deactivate(self._index)
                return tenant, item
            self._charged[tenant] = False
            self._index = (self._index + 1) % len(self._rotation)
